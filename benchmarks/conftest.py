"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are deterministic simulations, so repetition only
wastes wall-clock — the quantity of interest is the experiment's *result*,
which each benchmark prints in the same row/series format as the paper's
figure and which EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
