"""Tests for repro.cpu: ops, registers, and the execution engine."""

import pytest

from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import TRACE_DTYPE, Op, OpKind, array_to_ops, ops_to_array
from repro.cpu.registers import RegisterFile
from repro.memory.address import AddressRange
from repro.persistence.base import IntervalContext, PersistenceMechanism

STACK = AddressRange(0x7000_0000, 0x7010_0000)


class TestOps:
    def test_is_memory(self):
        assert Op(OpKind.READ, 0x10).is_memory
        assert Op(OpKind.WRITE, 0x10).is_memory
        assert not Op(OpKind.CALL, size=64).is_memory
        assert not Op(OpKind.COMPUTE, size=100).is_memory

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Op(OpKind.READ, 0, size=-1)

    def test_array_roundtrip(self):
        ops = [Op(OpKind.WRITE, 0x1234, 8), Op(OpKind.CALL, 0, 128)]
        arr = ops_to_array(ops)
        assert arr.dtype == TRACE_DTYPE
        back = array_to_ops(arr)
        assert back == ops


class TestRegisterFile:
    def test_push_pop_frame(self):
        regs = RegisterFile(stack_pointer=0x1000)
        assert regs.push_frame(0x100) == 0xF00
        assert regs.pop_frame(0x100) == 0x1000

    def test_rejects_negative_frame(self):
        with pytest.raises(ValueError):
            RegisterFile().push_frame(-8)

    def test_snapshot_restore(self):
        regs = RegisterFile(stack_pointer=0x2000, op_index=5)
        regs.gprs[3] = 42
        snap = regs.snapshot()
        regs.stack_pointer = 0
        regs.gprs[3] = 0
        regs.restore(snap)
        assert regs.stack_pointer == 0x2000
        assert regs.gprs[3] == 42
        # Snapshot is deep: mutating restored gprs must not touch snapshot.
        regs.gprs[3] = 7
        assert snap.gprs[3] == 42


class TestEngineBasics:
    def test_sp_follows_call_ret(self):
        engine = ExecutionEngine(stack_range=STACK)
        engine.run([Op(OpKind.CALL, size=256), Op(OpKind.RET, size=256)])
        assert engine.registers.stack_pointer == STACK.end

    def test_stack_overflow_detected(self):
        engine = ExecutionEngine(stack_range=AddressRange(0x1000, 0x2000))
        with pytest.raises(RuntimeError, match="overflow"):
            engine.run([Op(OpKind.CALL, size=0x2000)])

    def test_compute_advances_time_only(self):
        engine = ExecutionEngine(stack_range=STACK)
        stats = engine.run([Op(OpKind.COMPUTE, size=500)])
        assert stats.app_cycles == 500
        assert stats.ops_executed == 1

    def test_stack_vs_other_classification(self):
        engine = ExecutionEngine(stack_range=STACK)
        stats = engine.run(
            [
                Op(OpKind.WRITE, STACK.start + 8, 8),
                Op(OpKind.READ, STACK.start + 8, 8),
                Op(OpKind.WRITE, 0x1000, 8),
            ]
        )
        assert stats.stack_writes == 1
        assert stats.stack_reads == 1
        assert stats.other_writes == 1

    def test_normalized_time_is_one_without_mechanism(self):
        engine = ExecutionEngine(stack_range=STACK)
        stats = engine.run([Op(OpKind.WRITE, STACK.start, 8)] * 10)
        assert stats.normalized_time == 1.0


class _CountingMechanism(PersistenceMechanism):
    """Records hook invocations for engine-integration assertions."""

    name = "counting"

    def __init__(self, store_cost: int = 0, interval_cost: int = 0):
        super().__init__()
        self.store_cost = store_cost
        self.interval_cost = interval_cost
        self.starts = 0
        self.ends = 0
        self.contexts: list[IntervalContext] = []

    def on_store(self, address, size, now):
        self.stats.stores_seen += 1
        return self.store_cost

    def on_interval_start(self, ctx):
        self.starts += 1
        return 0

    def on_interval_end(self, ctx):
        self.ends += 1
        self.contexts.append(ctx)
        return self.interval_cost


class TestEngineIntervals:
    def test_interval_ops_boundaries(self):
        mech = _CountingMechanism()
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        ops = [Op(OpKind.WRITE, STACK.start + 8, 8)] * 10
        engine.run(ops, interval_ops=3)
        # 10 ops / 3 per interval = 3 full boundaries + final checkpoint.
        assert mech.ends == 4
        assert mech.starts == 4

    def test_interval_cycles_boundaries(self):
        mech = _CountingMechanism()
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        ops = [Op(OpKind.COMPUTE, size=100)] * 10
        engine.run(ops, interval_cycles=250)
        assert mech.ends >= 4

    def test_no_intervals_without_config(self):
        mech = _CountingMechanism()
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        engine.run([Op(OpKind.COMPUTE, size=100)] * 5)
        assert mech.ends == 0

    def test_final_checkpoint_optional(self):
        mech = _CountingMechanism()
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        engine.run(
            [Op(OpKind.COMPUTE, size=10)] * 4,
            interval_ops=100,
            final_checkpoint=False,
        )
        assert mech.ends == 0

    def test_store_hook_cost_charged_as_inline(self):
        mech = _CountingMechanism(store_cost=7)
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        stats = engine.run([Op(OpKind.WRITE, STACK.start + 8, 8)] * 5)
        assert stats.inline_cycles == 35

    def test_interval_cost_charged_separately(self):
        mech = _CountingMechanism(interval_cost=1000)
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        stats = engine.run([Op(OpKind.COMPUTE, size=10)] * 4, interval_ops=2)
        assert stats.interval_cycles == 2000
        assert stats.normalized_time > 1.0

    def test_context_carries_min_sp(self):
        mech = _CountingMechanism()
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        ops = [
            Op(OpKind.CALL, size=4096),
            Op(OpKind.WRITE, STACK.end - 4096 + 8, 8),
            Op(OpKind.RET, size=4096),
        ]
        engine.run(ops, interval_ops=10)
        ctx = mech.contexts[0]
        assert ctx.final_sp == STACK.end
        assert ctx.min_sp == STACK.end - 4096

    def test_beyond_final_sp_recorded(self):
        engine = ExecutionEngine(stack_range=STACK)
        ops = [
            Op(OpKind.CALL, size=8192),
            Op(OpKind.WRITE, STACK.end - 8192 + 8, 8),  # dies with the frame
            Op(OpKind.RET, size=4096),  # partial pop: SP = end - 4096
            Op(OpKind.WRITE, STACK.end - 4096 + 8, 8),  # inside live frame
        ]
        stats = engine.run(ops, interval_ops=10)
        rec = stats.intervals[0]
        assert rec.final_sp == STACK.end - 4096
        assert rec.stack_writes == 2
        assert rec.stack_writes_beyond_final_sp == 1

    def test_invalid_interval_args(self):
        engine = ExecutionEngine(stack_range=STACK)
        with pytest.raises(ValueError):
            engine.run([], interval_cycles=-1)
        with pytest.raises(ValueError):
            engine.run([], interval_ops=0)


class TestHeapRouting:
    def test_heap_mechanism_sees_heap_ops_only(self):
        heap = AddressRange(0x1000_0000, 0x1100_0000)
        stack_mech = _CountingMechanism()
        heap_mech = _CountingMechanism()
        engine = ExecutionEngine(
            stack_range=STACK,
            mechanism=stack_mech,
            heap_range=heap,
            heap_mechanism=heap_mech,
        )
        engine.run(
            [
                Op(OpKind.WRITE, STACK.start + 8, 8),
                Op(OpKind.WRITE, heap.start + 8, 8),
                Op(OpKind.WRITE, 0x2000, 8),  # neither region
            ]
        )
        assert stack_mech.stats.stores_seen == 1
        assert heap_mech.stats.stores_seen == 1

    def test_heap_mechanism_requires_range(self):
        with pytest.raises(ValueError):
            ExecutionEngine(
                stack_range=STACK, heap_mechanism=_CountingMechanism()
            )

    def test_nvm_residency_follows_mechanism(self):
        class NvmMech(_CountingMechanism):
            region_in_nvm = True

        engine = ExecutionEngine(stack_range=STACK, mechanism=NvmMech())
        engine.run([Op(OpKind.READ, STACK.start + 8, 8)])
        assert engine.hierarchy.nvm.stats.reads == 1
