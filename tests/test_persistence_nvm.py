"""Tests for the NVM-resident mechanisms: flush/undo/redo, Romulus, SSP."""

import pytest

from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import Op, OpKind
from repro.memory.address import AddressRange
from repro.persistence.logging import (
    FlushPersistence,
    RedoLogPersistence,
    UndoLogPersistence,
)
from repro.persistence.romulus import RomulusPersistence
from repro.persistence.ssp import SspPersistence

STACK = AddressRange(0x7000_0000, 0x7010_0000)


def run(mechanism, ops, interval_ops=None):
    engine = ExecutionEngine(stack_range=STACK, mechanism=mechanism)
    stats = engine.run(ops, interval_ops=interval_ops or max(1, len(ops)))
    return engine, stats


def stack_writes(addresses):
    return [Op(OpKind.WRITE, a, 8) for a in addresses]


class TestFlush:
    def test_every_store_flushes(self):
        mech = FlushPersistence()
        _, stats = run(mech, stack_writes([STACK.start + 8] * 10))
        assert mech.flushes == 10
        assert stats.inline_cycles > 0

    def test_region_lives_in_nvm(self):
        mech = FlushPersistence()
        engine, _ = run(mech, stack_writes([STACK.start + 8]))
        assert engine.hierarchy.nvm.stats.reads >= 1  # demand miss hit NVM

    def test_sp_oracle_skips_dead_stores(self):
        # All writes are below the final SP (oracle says final SP is high).
        oracle = lambda i: STACK.end  # noqa: E731
        mech = FlushPersistence(sp_oracle=oracle)
        run(mech, stack_writes([STACK.start + 8] * 10))
        assert mech.flushes == 0
        assert mech.skipped == 10
        assert mech.sp_aware

    def test_sp_awareness_is_faster(self):
        ops = stack_writes([STACK.start + 8] * 200)
        blind = FlushPersistence()
        _, blind_stats = run(blind, list(ops))
        aware = FlushPersistence(sp_oracle=lambda i: STACK.end)
        _, aware_stats = run(aware, list(ops))
        assert aware_stats.total_cycles < blind_stats.total_cycles


class TestUndoLog:
    def test_logs_once_per_location_per_interval(self):
        mech = UndoLogPersistence()
        run(mech, stack_writes([STACK.start + 8] * 5))
        assert mech.log_entries == 1

    def test_distinct_locations_log_separately(self):
        mech = UndoLogPersistence()
        run(mech, stack_writes([STACK.start + i * 8 for i in range(5)]))
        assert mech.log_entries == 5

    def test_log_resets_each_interval(self):
        mech = UndoLogPersistence()
        run(mech, stack_writes([STACK.start + 8] * 4), interval_ops=2)
        assert mech.log_entries == 2  # once per interval

    def test_log_bytes_include_header(self):
        mech = UndoLogPersistence()
        run(mech, stack_writes([STACK.start + 8]))
        assert mech.log_bytes == 16 + 8


class TestRedoLog:
    def test_every_store_appends(self):
        mech = RedoLogPersistence()
        run(mech, stack_writes([STACK.start + 8] * 5))
        assert mech.log_entries == 5

    def test_loads_pay_lookup(self):
        mech = RedoLogPersistence()
        _, stats = run(mech, [Op(OpKind.READ, STACK.start + 8, 8)] * 4)
        assert stats.inline_cycles == 4 * 8  # REDO_LOOKUP_CYCLES each

    def test_commit_applies_unique_locations(self):
        mech = RedoLogPersistence()
        run(mech, stack_writes([STACK.start + 8] * 5 + [STACK.start + 16]))
        assert mech.stats.checkpoint_bytes == [2 * 8]


class TestRomulus:
    def test_log_records_per_store(self):
        mech = RomulusPersistence()
        run(mech, stack_writes([STACK.start + 8] * 7))
        assert mech.log_records_total == 7

    def test_no_coalescing_in_copy(self):
        # Five stores to the same address are copied five times.
        mech = RomulusPersistence()
        run(mech, stack_writes([STACK.start + 8] * 5))
        assert mech.copied_bytes_total == 5 * 8

    def test_log_drains_at_interval(self):
        mech = RomulusPersistence()
        run(mech, stack_writes([STACK.start + 8] * 4), interval_ops=2)
        assert mech.pending_log_records == 0

    def test_costlier_than_flush(self):
        ops = stack_writes([STACK.start + i * 8 for i in range(300)])
        flush = FlushPersistence()
        _, flush_stats = run(flush, list(ops), interval_ops=100)
        romulus = RomulusPersistence()
        _, rom_stats = run(romulus, list(ops), interval_ops=100)
        assert rom_stats.total_cycles > flush_stats.total_cycles


class TestSsp:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SspPersistence(consolidation_interval_us=0)

    def test_variant_name(self):
        assert SspPersistence(10).variant_name == "ssp-10us"
        assert SspPersistence(1000).variant_name == "ssp-1ms"

    def test_tracks_dirty_lines_per_page(self):
        mech = SspPersistence(1000)
        run(mech, stack_writes([STACK.start + 8, STACK.start + 70]))
        assert mech.tracked_pages == 1
        # Two distinct cache lines committed at interval end.
        assert mech.stats.checkpoint_bytes == [2 * 64]

    def test_consolidation_thread_runs(self):
        mech = SspPersistence(10)
        ops = stack_writes([STACK.start + 8] * 50) + [
            Op(OpKind.COMPUTE, size=200_000)
        ] + stack_writes([STACK.start + 8] * 50)
        run(mech, ops)
        assert mech.consolidation_invocations > 0

    def test_faster_consolidation_costs_more(self):
        ops = []
        for i in range(400):
            ops.append(Op(OpKind.WRITE, STACK.start + (i % 512) * 8, 8))
            ops.append(Op(OpKind.COMPUTE, size=500))
        fast = SspPersistence(10)
        _, fast_stats = run(fast, list(ops), interval_ops=100)
        slow = SspPersistence(1000)
        _, slow_stats = run(slow, list(ops), interval_ops=100)
        assert fast.consolidation_invocations > slow.consolidation_invocations
        assert fast_stats.total_cycles >= slow_stats.total_cycles

    def test_merged_lines_counted(self):
        mech = SspPersistence(10)
        ops = stack_writes([STACK.start + 8]) + [
            Op(OpKind.COMPUTE, size=500_000),
            Op(OpKind.READ, STACK.start + 8, 8),
        ]
        run(mech, ops)
        assert mech.consolidated_lines_total >= 1


class TestCapabilityMatrix:
    def test_nvm_mechanisms_disallow_dram_stack(self):
        for cls in (
            FlushPersistence,
            UndoLogPersistence,
            RedoLogPersistence,
            RomulusPersistence,
            SspPersistence,
        ):
            assert cls.region_in_nvm
            assert not cls.capabilities.allows_stack_in_dram
            assert not cls.capabilities.stack_pointer_aware

    def test_logging_needs_compiler_support(self):
        assert not UndoLogPersistence.capabilities.works_without_compiler_support
        assert not RedoLogPersistence.capabilities.works_without_compiler_support
        # Romulus-as-hardware-co-design does not.
        assert RomulusPersistence.capabilities.works_without_compiler_support
