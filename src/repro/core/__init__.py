"""Prosper core: the paper's contribution.

* :mod:`repro.core.msr` — the custom model-specific registers through which
  the OS programs the tracker (stack range, granularity, bitmap base,
  control/status).
* :mod:`repro.core.bitmap` — the DRAM-resident dirty bitmap, one bit per
  tracking granule of the stack.
* :mod:`repro.core.lookup_table` — the small coalescing cache inside the
  tracker, with HWM write-out and LWM eviction.
* :mod:`repro.core.policies` — Accumulate-and-Apply vs Load-and-Update
  entry-allocation policies.
* :mod:`repro.core.tracker` — the per-core dirty tracker itself (SOI
  filtering, bitmap maintenance, flush/quiescence protocol, state
  save/restore for context switches).
* :mod:`repro.core.checkpoint` — the OS-side checkpoint engine (bitmap
  inspection, run coalescing, two-step copy into NVM).
* :mod:`repro.core.energy` — lookup-table energy/area accounting.
"""

from repro.core.msr import MsrBank
from repro.core.bitmap import DirtyBitmap
from repro.core.lookup_table import LookupTable, TableStats
from repro.core.policies import AllocationPolicy
from repro.core.tracker import ProsperTracker, TrackerState
from repro.core.checkpoint import CheckpointResult, ProsperCheckpointEngine
from repro.core.energy import EnergyModel, EnergyReport
from repro.core.adaptive import GranularityController, WatermarkController

__all__ = [
    "MsrBank",
    "DirtyBitmap",
    "LookupTable",
    "TableStats",
    "AllocationPolicy",
    "ProsperTracker",
    "TrackerState",
    "CheckpointResult",
    "ProsperCheckpointEngine",
    "EnergyModel",
    "EnergyReport",
    "GranularityController",
    "WatermarkController",
]
