"""Synthetic stack models of the SPEC CPU 2017 benchmarks used in Figures 12-13.

The tracking-overhead study runs 605.mcf_s, 620.omnetpp_s, 600.perlbench_s
and 641.leela_s (plus SSSP, PR and Stream) under a Linux kernel thread that
checkpoints every 10 ms.  Only the *stack access behaviour* of these
benchmarks matters to the tracker, so each profile captures:

* stack-op intensity (how much of the instruction stream touches the stack),
* spatial locality of those accesses (drives the lookup table's hit rate and
  the HWM/LWM trends of Figure 13 — mcf's pointer-chasing yields scattered
  stack temporaries, while SSSP's relaxation loop reuses a tight frame),
* call-chain depth (recursion vs flat loops).

The generator reuses the application-model machinery with profiles tuned to
these published characteristics.
"""

from __future__ import annotations

from repro.memory.address import AddressRange
from repro.workloads.apps import APP_STACK, AppProfile, app_workload
from repro.workloads.synthetic import DEFAULT_HEAP
from repro.workloads.trace import Trace

#: SPEC CPU 2017 profiles.  `hot_locality` near 1.0 means accesses scatter
#: across the whole hot set (mcf); small values mean tight reuse (SSSP-like).
SPEC_PROFILES: dict[str, AppProfile] = {
    # mcf: network-simplex pointer chasing; stack temporaries scattered over
    # a large spill area with little spatial locality.
    "605.mcf_s": AppProfile(
        name="605.mcf_s",
        stack_fraction=0.35,
        stack_write_fraction=0.50,
        excursion_probability=0.10,
        excursion_depth=(1, 3),
        excursion_writes=4,
        frame_bytes=128,
        hot_set_bytes=32 * 1024,
        hot_phase_ops=200,
        hot_locality=1.2,
        hot_run_words=20,
        hot_streams=6,
    ),
    # omnetpp: discrete-event simulation, moderate call depth, medium
    # locality.
    "620.omnetpp_s": AppProfile(
        name="620.omnetpp_s",
        stack_fraction=0.45,
        stack_write_fraction=0.55,
        excursion_probability=0.35,
        excursion_depth=(3, 8),
        excursion_writes=8,
        frame_bytes=256,
        hot_set_bytes=8 * 1024,
        hot_phase_ops=150,
        hot_locality=0.4,
        hot_run_words=8,
    ),
    # perlbench: interpreter loop, deep call chains, good frame locality.
    "600.perlbench_s": AppProfile(
        name="600.perlbench_s",
        stack_fraction=0.55,
        stack_write_fraction=0.55,
        excursion_probability=0.45,
        excursion_depth=(4, 12),
        excursion_writes=10,
        frame_bytes=224,
        hot_set_bytes=6 * 1024,
        hot_phase_ops=120,
        hot_locality=0.2,
        hot_run_words=16,
    ),
    # leela: MCTS game tree search, recursive descents with tight frames.
    "641.leela_s": AppProfile(
        name="641.leela_s",
        stack_fraction=0.50,
        stack_write_fraction=0.50,
        excursion_probability=0.50,
        excursion_depth=(4, 10),
        excursion_writes=6,
        frame_bytes=160,
        hot_set_bytes=4 * 1024,
        hot_phase_ops=130,
        hot_locality=0.25,
        hot_run_words=12,
    ),
    # gcc: compiler passes over IR; deep call chains with moderate frames
    # and bursty temporaries.
    "602.gcc_s": AppProfile(
        name="602.gcc_s",
        stack_fraction=0.55,
        stack_write_fraction=0.55,
        excursion_probability=0.40,
        excursion_depth=(5, 14),
        excursion_writes=9,
        frame_bytes=288,
        hot_set_bytes=12 * 1024,
        hot_phase_ops=140,
        hot_locality=0.3,
        hot_run_words=10,
    ),
    # xalancbmk: XML transformation, very deep recursive tree walks with
    # small frames.
    "623.xalancbmk_s": AppProfile(
        name="623.xalancbmk_s",
        stack_fraction=0.60,
        stack_write_fraction=0.50,
        excursion_probability=0.55,
        excursion_depth=(8, 20),
        excursion_writes=6,
        frame_bytes=128,
        hot_set_bytes=4 * 1024,
        hot_phase_ops=100,
        hot_locality=0.2,
        hot_run_words=8,
    ),
    # x264: video encoder; large streaming stack buffers per macroblock.
    "625.x264_s": AppProfile(
        name="625.x264_s",
        stack_fraction=0.40,
        stack_write_fraction=0.60,
        excursion_probability=0.20,
        excursion_depth=(2, 5),
        excursion_writes=12,
        frame_bytes=512,
        hot_set_bytes=24 * 1024,
        hot_phase_ops=220,
        hot_locality=0.1,
        hot_run_words=48,
    ),
    # deepsjeng: alpha-beta chess search; regular recursion with a compact
    # working frame per ply.
    "631.deepsjeng_s": AppProfile(
        name="631.deepsjeng_s",
        stack_fraction=0.50,
        stack_write_fraction=0.52,
        excursion_probability=0.60,
        excursion_depth=(6, 12),
        excursion_writes=8,
        frame_bytes=192,
        hot_set_bytes=3 * 1024,
        hot_phase_ops=110,
        hot_locality=0.2,
        hot_run_words=10,
    ),
}


def spec_workload(
    name: str,
    target_ops: int = 200_000,
    stack: AddressRange = APP_STACK,
    heap: AddressRange = DEFAULT_HEAP,
    seed: int = 42,
) -> Trace:
    """Generate a trace for the SPEC benchmark *name* (key of SPEC_PROFILES)."""
    if name not in SPEC_PROFILES:
        raise KeyError(
            f"unknown SPEC profile {name!r}; choose from {sorted(SPEC_PROFILES)}"
        )
    return app_workload(SPEC_PROFILES[name], target_ops, stack, heap, seed)
