"""Architectural register state for one hardware thread.

Only the registers the checkpoint path cares about are modeled: the stack
pointer (central to SP awareness), a program counter surrogate (op index),
and a bank of general-purpose registers that the checkpoint manager saves
alongside memory so that a restored process resumes at its last checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RegisterFile:
    """The architectural state checkpointed per thread."""

    stack_pointer: int = 0
    op_index: int = 0
    gprs: list[int] = field(default_factory=lambda: [0] * 16)

    def snapshot(self) -> "RegisterFile":
        """Deep copy of the register state (used by checkpoints)."""
        return RegisterFile(
            stack_pointer=self.stack_pointer,
            op_index=self.op_index,
            gprs=list(self.gprs),
        )

    def restore(self, other: "RegisterFile") -> None:
        """Overwrite this state from a snapshot (used on recovery)."""
        self.stack_pointer = other.stack_pointer
        self.op_index = other.op_index
        self.gprs = list(other.gprs)

    def push_frame(self, frame_bytes: int) -> int:
        """Grow the stack downwards by *frame_bytes*; returns the new SP."""
        if frame_bytes < 0:
            raise ValueError("frame size must be non-negative")
        self.stack_pointer -= frame_bytes
        return self.stack_pointer

    def pop_frame(self, frame_bytes: int) -> int:
        """Shrink the stack by *frame_bytes*; returns the new SP."""
        if frame_bytes < 0:
            raise ValueError("frame size must be non-negative")
        self.stack_pointer += frame_bytes
        return self.stack_pointer
