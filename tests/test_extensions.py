"""Tests for the extension experiments (Prosper on heap, adaptive loops)."""

from repro.experiments import extensions


class TestProsperHeap:
    def test_prosper_heap_competitive_with_ssp_heap(self):
        cells = extensions.prosper_heap_experiment(target_ops=20_000)
        by_key = {(c.workload, c.heap_mechanism): c.normalized_time for c in cells}
        for workload in {c.workload for c in cells}:
            # Tracking the heap with Prosper must not be worse than SSP-10us
            # on the heap (the paper argues the design generalizes).
            assert by_key[(workload, "prosper")] <= by_key[(workload, "ssp-10us")]

    def test_normalized_times_sane(self):
        cells = extensions.prosper_heap_experiment(target_ops=15_000)
        for c in cells:
            assert c.normalized_time >= 1.0


class TestAdaptiveGranularity:
    def test_stream_adapts_away_from_8b(self):
        cells = extensions.adaptive_granularity_experiment()
        stream_adaptive = next(
            c for c in cells
            if c.workload == "stream" and c.mechanism == "prosper-adaptive"
        )
        assert stream_adaptive.final_granularity > 8
        assert stream_adaptive.transitions >= 1

    def test_sparse_stays_fine(self):
        cells = extensions.adaptive_granularity_experiment()
        sparse_adaptive = next(
            c for c in cells
            if c.workload == "sparse" and c.mechanism == "prosper-adaptive"
        )
        assert sparse_adaptive.final_granularity == 8

    def test_adaptive_never_much_worse_than_fixed(self):
        cells = extensions.adaptive_granularity_experiment()
        for workload in {c.workload for c in cells}:
            fixed = next(c for c in cells if c.workload == workload and c.mechanism == "prosper-8B")
            adaptive = next(c for c in cells if c.workload == workload and c.mechanism == "prosper-adaptive")
            assert adaptive.normalized_time <= fixed.normalized_time * 1.10


class TestAdaptiveWatermarks:
    def test_directions_diverge(self):
        results = extensions.adaptive_watermark_experiment(target_ops=20_000)
        by_name = {r.workload: r for r in results}
        sssp = by_name["g500_sssp"]
        mcf = by_name["605.mcf_s"]
        # SSSP prefers large HWM, mcf small: the hill climbers should end
        # on opposite sides of the starting point (or at least not both on
        # the same extreme).
        assert sssp.final_hwm >= mcf.final_hwm
        assert sssp.history[0] == 20


class TestCrossThreadWrites:
    def test_overhead_grows_with_fraction(self):
        cells = extensions.cross_thread_write_experiment(
            fractions=(0.0, 0.05, 0.20), writes_per_thread=800
        )
        base = cells[0]
        assert base.cross_writes == 0
        overheads = [c.overhead_vs(base) for c in cells]
        assert overheads[0] == 1.0
        assert overheads[1] < overheads[2]

    def test_rare_regime_is_cheap(self):
        cells = extensions.cross_thread_write_experiment(
            fractions=(0.0, 0.01), writes_per_thread=800
        )
        # ~1% cross-writes (the paper's "rare" observation): modest cost.
        assert cells[1].overhead_vs(cells[0]) < 1.25

    def test_cross_writes_counted(self):
        cells = extensions.cross_thread_write_experiment(
            fractions=(0.20,), writes_per_thread=500
        )
        assert 100 < cells[0].cross_writes < 300  # ~20% of 1000
