"""Tests for repro.experiments.runner: scaling and the run driver."""

import pytest

from repro.config import setup_i
from repro.experiments.runner import (
    TRACE_PAPER_MS,
    fixed_cost_scale_for,
    make_engine,
    run_mechanism,
    scaled_interval_cycles,
    vanilla_cycles,
)
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.none import NoPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.ssp import SspPersistence
from repro.workloads.synthetic import random_workload


class TestScaling:
    def test_scaled_interval_proportional(self):
        base = 1_000_000
        ten = scaled_interval_cycles(base, 10.0)
        one = scaled_interval_cycles(base, 1.0)
        assert ten == 10 * one
        assert ten == base * 10 / TRACE_PAPER_MS

    def test_rejects_nonpositive_ms(self):
        with pytest.raises(ValueError):
            scaled_interval_cycles(1000, 0)

    def test_fixed_cost_scale_bounded(self):
        assert fixed_cost_scale_for(10**12) == 1.0
        small = fixed_cost_scale_for(600_000)
        assert 0 < small < 0.01

    def test_fixed_cost_scale_formula(self):
        cfg = setup_i()
        base = 6_000_000
        expected = base / (TRACE_PAPER_MS * cfg.freq_hz / 1e3)
        assert fixed_cost_scale_for(base, cfg) == pytest.approx(expected)


class TestDriver:
    def test_vanilla_cycles_deterministic(self):
        trace = random_workload(num_writes=2_000)
        assert vanilla_cycles(trace) == vanilla_cycles(trace)

    def test_make_engine_matches_trace_layout(self):
        trace = random_workload(num_writes=100)
        engine = make_engine(trace, NoPersistence())
        assert engine.stack_range == trace.stack_range

    def test_run_mechanism_produces_normalized_time(self):
        trace = random_workload(num_writes=3_000)
        result = run_mechanism(trace, ProsperPersistence(), 10.0)
        assert result.trace_name == "random"
        assert result.mechanism_name == "prosper-8B"
        assert result.normalized_time >= 1.0
        assert result.overhead_fraction == result.normalized_time - 1.0

    def test_vanilla_normalizes_to_one(self):
        trace = random_workload(num_writes=3_000)
        result = run_mechanism(trace, NoPersistence(), 10.0)
        assert result.normalized_time == pytest.approx(1.0, rel=0.02)

    def test_label_override(self):
        trace = random_workload(num_writes=500)
        result = run_mechanism(
            trace, DirtyBitPersistence(), 10.0, mechanism_label="db"
        )
        assert result.mechanism_name == "db"

    def test_ssp_variant_label(self):
        trace = random_workload(num_writes=500)
        result = run_mechanism(trace, SspPersistence(100.0), 10.0)
        assert result.mechanism_name == "ssp-100us"

    def test_checkpoints_happen(self):
        trace = random_workload(num_writes=5_000)
        mech = ProsperPersistence()
        run_mechanism(trace, mech, 10.0)
        # 200 paper-ms trace at 10 ms intervals: about 20 checkpoints.
        assert 10 <= mech.stats.intervals <= 40
