"""Set-associative write-back cache with LRU replacement.

The hierarchy (L1D/L2/L3 from Table II) is modeled functionally: a cache
holds line tags, tracks dirtiness, and reports hit/miss so the hierarchy can
charge the right latency.  No data payload is stored — the simulator's
"memory contents" live with the workload, not the cache model.

Storage is columnar rather than object-based: one flat tag array, one dirty
array, and one last-use-tick array, each ``num_sets * associativity`` long
(slot ``set * associativity + way``), plus a dict mapping resident line →
slot for O(1) probes.  Exact LRU comes from a global monotonic tick: every
touch stamps the slot, and a full set evicts the slot with the smallest
stamp.  Ticks strictly increase, so the minimum is unique and the victim
matches what an ordered-per-set model would evict.  Tags and ages are plain
Python lists (unboxed indexing on the hot path); ``tag_array`` /
``dirty_array`` / ``age_array`` expose numpy snapshots for analysis code
and the batched engine's precompute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.evictions = 0


class Cache:
    """One level of a write-back, write-allocate cache."""

    __slots__ = (
        "config",
        "name",
        "stats",
        "_assoc",
        "_num_sets",
        "_set_mask",
        "_power_of_two_sets",
        "_tags",
        "_dirty",
        "_age",
        "_index",
        "_free",
        "_tick",
    )

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        assoc = config.associativity
        num_sets = config.num_sets
        self._assoc = assoc
        self._num_sets = num_sets
        self._set_mask = num_sets - 1
        self._power_of_two_sets = num_sets & (num_sets - 1) == 0
        # Flat columnar state, slot = set * assoc + way.
        self._tags: list[int] = [-1] * (num_sets * assoc)
        self._dirty = bytearray(num_sets * assoc)
        self._age: list[int] = [0] * (num_sets * assoc)
        #: Resident line -> flat slot.
        self._index: dict[int, int] = {}
        #: Per-set stack of unallocated slots (popped MSB-first so way 0
        #: fills first, like an empty ordered set would).
        self._free: list[list[int]] = [
            list(range((s + 1) * assoc - 1, s * assoc - 1, -1))
            for s in range(num_sets)
        ]
        self._tick = 0

    # ------------------------------------------------------------------ #
    # Demand interface
    # ------------------------------------------------------------------ #

    def _set_for(self, line: int) -> int:
        if self._power_of_two_sets:
            return line & self._set_mask
        return line % self._num_sets

    def lookup(self, line: int) -> bool:
        """Probe for *line* without changing replacement state."""
        return line in self._index

    def access(self, line: int, is_write: bool) -> tuple[bool, int | None]:
        """Access cache *line*; returns ``(hit, writeback_victim_line)``.

        On a miss the line is allocated (write-allocate) and the LRU victim,
        if dirty, is returned so the caller can charge a write-back.
        """
        slot = self._index.get(line)
        if slot is not None:
            self.stats.hits += 1
            self._tick += 1
            self._age[slot] = self._tick
            if is_write:
                self._dirty[slot] = 1
            return True, None

        self.stats.misses += 1
        victim_writeback: int | None = None
        set_index = self._set_for(line)
        free = self._free[set_index]
        if free:
            slot = free.pop()
        else:
            # Evict the least-recently used way of the set.
            age = self._age
            base = set_index * self._assoc
            slot = base
            best = age[base]
            for way in range(base + 1, base + self._assoc):
                stamp = age[way]
                if stamp < best:
                    best = stamp
                    slot = way
            self.stats.evictions += 1
            del self._index[self._tags[slot]]
            if self._dirty[slot]:
                self.stats.writebacks += 1
                victim_writeback = self._tags[slot]
        self._tags[slot] = line
        self._dirty[slot] = 1 if is_write else 0
        self._tick += 1
        self._age[slot] = self._tick
        self._index[line] = slot
        return False, victim_writeback

    # ------------------------------------------------------------------ #
    # Persistence interface
    # ------------------------------------------------------------------ #

    def invalidate(self, line: int) -> bool:
        """Drop *line*; returns True if the line was present and dirty."""
        slot = self._index.pop(line, None)
        if slot is None:
            return False
        dirty = bool(self._dirty[slot])
        self._dirty[slot] = 0
        self._tags[slot] = -1
        self._free[slot // self._assoc].append(slot)
        return dirty

    def clean(self, line: int) -> bool:
        """Write back *line* if present and dirty (clwb); keep it resident.

        Returns True when a write-back to the next level is required.
        """
        slot = self._index.get(line)
        if slot is not None and self._dirty[slot]:
            self._dirty[slot] = 0
            self.stats.writebacks += 1
            return True
        return False

    def flush_all(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = 0
        for slot in self._index.values():
            if self._dirty[slot]:
                dirty += 1
        self.stats.writebacks += dirty
        assoc = self._assoc
        self._index.clear()
        self._tags = [-1] * (self._num_sets * assoc)
        self._dirty = bytearray(self._num_sets * assoc)
        self._free = [
            list(range((s + 1) * assoc - 1, s * assoc - 1, -1))
            for s in range(self._num_sets)
        ]
        return dirty

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def resident_lines(self) -> int:
        return len(self._index)

    def set_occupancy(self, set_index: int) -> int:
        """Number of resident ways in one set (debug/test accessor)."""
        return self._assoc - len(self._free[set_index])

    @property
    def tag_array(self) -> np.ndarray:
        """``(num_sets, assoc)`` int64 snapshot of line tags (-1 = empty)."""
        return np.asarray(self._tags, dtype=np.int64).reshape(
            self._num_sets, self._assoc
        )

    @property
    def dirty_array(self) -> np.ndarray:
        """``(num_sets, assoc)`` uint8 snapshot of dirty bits."""
        return np.frombuffer(self._dirty, dtype=np.uint8).reshape(
            self._num_sets, self._assoc
        )

    @property
    def age_array(self) -> np.ndarray:
        """``(num_sets, assoc)`` uint64 snapshot of last-use ticks."""
        return np.asarray(self._age, dtype=np.uint64).reshape(
            self._num_sets, self._assoc
        )
