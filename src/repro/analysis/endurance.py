"""NVM write-traffic and endurance accounting.

One of the paper's arguments for checkpoint-based stack persistence is that
"maintaining the stack in NVM leads to performance and endurance issues":
per-store mechanisms push every stack write (plus logs/shadow copies) into
the NVM cell array, while checkpointing coalesces an interval's writes into
one pass over the dirty bytes.  This module turns the NVM device counters
of a run into comparable endurance metrics:

* total NVM write volume (bytes) and write amplification relative to the
  application's unique dirty footprint;
* a crude lifetime estimate: years until the busiest region reaches the
  cell endurance limit at the observed write rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CPU_FREQ_HZ

#: Conservative PCM cell endurance (writes per cell) used for estimates.
DEFAULT_CELL_ENDURANCE = 1e8


@dataclass(frozen=True)
class EnduranceReport:
    """NVM wear profile of one run."""

    mechanism: str
    nvm_write_bytes: int
    nvm_writes: int
    app_dirty_bytes: int
    elapsed_cycles: int
    cell_endurance: float = DEFAULT_CELL_ENDURANCE

    @property
    def write_amplification(self) -> float:
        """NVM bytes written per unique application-dirty byte."""
        if self.app_dirty_bytes == 0:
            return 0.0 if self.nvm_write_bytes == 0 else float("inf")
        return self.nvm_write_bytes / self.app_dirty_bytes

    @property
    def write_bandwidth_mbps(self) -> float:
        """Sustained NVM write bandwidth over the run (MB/s)."""
        if self.elapsed_cycles == 0:
            return 0.0
        seconds = self.elapsed_cycles / CPU_FREQ_HZ
        return self.nvm_write_bytes / seconds / 1e6

    def lifetime_years(self, hot_region_bytes: int = 64 * 1024) -> float:
        """Years until a *hot_region_bytes* region wears out.

        Assumes the observed write volume concentrates uniformly on the hot
        region (pessimistic, no wear-leveling) and the run's write rate is
        sustained continuously.
        """
        if self.nvm_write_bytes == 0 or self.elapsed_cycles == 0:
            return float("inf")
        seconds = self.elapsed_cycles / CPU_FREQ_HZ
        writes_per_byte_per_second = (
            self.nvm_write_bytes / hot_region_bytes / seconds
        )
        if writes_per_byte_per_second == 0:
            return float("inf")
        lifetime_seconds = self.cell_endurance / writes_per_byte_per_second
        return lifetime_seconds / (365.25 * 24 * 3600)


def endurance_report(
    mechanism_name: str,
    hierarchy,
    app_dirty_bytes: int,
    elapsed_cycles: int,
    cell_endurance: float = DEFAULT_CELL_ENDURANCE,
) -> EnduranceReport:
    """Build a report from a finished run's memory hierarchy."""
    nvm = hierarchy.nvm
    if nvm is None:
        return EnduranceReport(
            mechanism_name, 0, 0, app_dirty_bytes, elapsed_cycles, cell_endurance
        )
    return EnduranceReport(
        mechanism=mechanism_name,
        nvm_write_bytes=nvm.stats.write_bytes,
        nvm_writes=nvm.stats.writes,
        app_dirty_bytes=app_dirty_bytes,
        elapsed_cycles=elapsed_cycles,
        cell_endurance=cell_endurance,
    )
