"""Torn-write detection at recovery time, in the kernel world.

A power cut can tear any write still pending behind the last persist
barrier.  These tests crash the multicore checkpoint protocol mid-staging,
apply a persist plan that tears one specific record, and assert that
recovery *detects* the tear via CRC32, degrades to the previous committed
checkpoint (or pristine state), and never raises out of
``CrashSimulator.recover``."""

import pytest

from repro.faults.injector import STAGE_COMPLETE, CrashInjected, FaultInjector
from repro.faults.order import PersistOrderOracle, PersistPlan
from repro.faults.sweep import _SweepScenario


def _crashed_scenario(point: str, occurrence: int):
    """Run the 2-thread sweep workload until the armed crash point fires.

    Returns the scenario plus its persist-order oracle, whose pending set
    holds exactly the writes issued since the last persist barrier.
    """
    injector = FaultInjector(0)
    injector.arm(point, occurrence)
    scenario = _SweepScenario(
        seed=0,
        threads=2,
        intervals=3,
        writes_per_interval=4,
        transient_rate=0.0,
        injector=injector,
    )
    oracle = PersistOrderOracle()
    scenario.hierarchy.nvm.order_oracle = oracle
    with pytest.raises(CrashInjected):
        scenario.run()
    return scenario, oracle


def _pending_stage_runs(oracle):
    return [label for label in oracle.pending_labels() if ".stage_run[" in label]


class TestTornMetadataRecord:
    # With 2 threads, stage_complete occurrence 1 is checkpoint 0's second
    # thread: both threads have fully staged, the metadata record and every
    # staged run are pending (the commit-flag barrier has not run yet).
    POINT, OCCURRENCE = STAGE_COMPLETE, 1

    def test_neat_power_loss_rolls_checkpoint_forward(self):
        # Control: with nothing torn, the completed staging is promotable
        # and recovery rolls checkpoint 0 forward.
        scenario, oracle = _crashed_scenario(self.POINT, self.OCCURRENCE)
        assert "proc[0].metadata" in oracle.pending_labels()
        scenario.crash_sim.crash(order_oracle=oracle, plan=PersistPlan())
        report = scenario.crash_sim.recover()
        assert report.resumed_from_sequence == 0
        assert report.rolled_forward
        assert scenario.state_mismatch(0) is None

    def test_torn_metadata_is_caught_and_discarded(self):
        # Same crash, but the metadata record tore mid-line.  Its CRC32
        # fails, the otherwise-complete staging must NOT roll forward, and
        # recovery lands on the pristine state without raising.
        scenario, oracle = _crashed_scenario(self.POINT, self.OCCURRENCE)
        plan = PersistPlan(frozenset(), "proc[0].metadata")
        scenario.crash_sim.crash(order_oracle=oracle, plan=plan)
        report = scenario.crash_sim.recover()
        assert report.resumed_from_sequence is None
        assert not report.rolled_forward
        assert scenario.state_mismatch(None) is None


class TestTornStagedRun:
    def test_torn_run_blocks_roll_forward_of_checkpoint_zero(self):
        # Tear one staged run instead of the metadata: the staged-run
        # checksum fails, so the staging is incomplete and pristine wins.
        scenario, oracle = _crashed_scenario(STAGE_COMPLETE, 1)
        torn = _pending_stage_runs(oracle)[-1]
        scenario.crash_sim.crash(
            order_oracle=oracle, plan=PersistPlan(frozenset(), torn)
        )
        report = scenario.crash_sim.recover()
        assert report.resumed_from_sequence is None
        assert scenario.state_mismatch(None) is None

    def test_torn_run_rolls_back_to_previous_checkpoint(self):
        # Crash while thread 2 stages checkpoint 1 (occurrence 3 =
        # checkpoint*threads + thread index).  Checkpoint 0 is committed;
        # tearing a checkpoint-1 staged run must roll back to it, exactly —
        # no blend of the two epochs.
        scenario, oracle = _crashed_scenario(STAGE_COMPLETE, 3)
        runs = _pending_stage_runs(oracle)
        assert runs and all(label.startswith("t2.ckpt[1].") for label in runs)
        scenario.crash_sim.crash(
            order_oracle=oracle, plan=PersistPlan(frozenset(), runs[-1])
        )
        report = scenario.crash_sim.recover()
        assert report.resumed_from_sequence == 0
        assert not report.rolled_forward
        assert scenario.state_mismatch(0) is None

    def test_recover_never_raises_on_any_single_tear(self):
        # Robustness sweep: every pending label at the crash, torn one at
        # a time.  Recovery must always terminate with a legal checkpoint.
        scenario, oracle = _crashed_scenario(STAGE_COMPLETE, 3)
        labels = list(oracle.pending_labels())
        for torn in labels:
            scenario, oracle = _crashed_scenario(STAGE_COMPLETE, 3)
            record = next(
                (r for r in oracle.pending if r.label == torn), None
            )
            plan = (
                PersistPlan(frozenset(), torn)
                if record is not None and record.tear is not None
                else PersistPlan(frozenset({torn}), None)
                if record is not None and record.undo is not None
                else PersistPlan()
            )
            scenario.crash_sim.crash(order_oracle=oracle, plan=plan)
            report = scenario.crash_sim.recover()
            assert report.resumed_from_sequence in (None, 0, 1)
            assert scenario.state_mismatch(report.resumed_from_sequence) is None
