"""Supervised multiprocessing worker pool with timeouts and retries.

Each run unit executes in its own worker process, supervised by the
parent: a unit that exceeds its wall-clock budget is killed (SIGKILL) and
requeued, a worker that dies without reporting a result is a
``WorkerCrash``, and a workload exception travels back over the result
pipe as a ``WorkloadError``.  Transient failures retry with exponential
backoff (the backoff is a *not-before* timestamp on the queue entry, so
waiting units never block the rest of the pool); permanent ones are
reported to the caller and degrade the owning figure.

One process per unit, rather than a long-lived worker pool, is a
deliberate robustness choice: a kill cannot poison a sibling unit's
state, a crashed unit cannot leave a worker wedged, and on Linux (fork)
the per-unit spawn cost is milliseconds against units that run for
seconds.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.harness import cache as cache_mod
from repro.harness.errors import (
    PERMANENT,
    TIMEOUT,
    WORKER_CRASH,
    WORKLOAD_ERROR,
    UnitFailure,
    backoff_delay,
    should_retry,
)
from repro.harness.figures import RunUnit, execute_unit

#: Supervisor poll period while workers run.
_POLL_S = 0.02


@dataclass
class UnitOutcome:
    """Terminal outcome of one run unit (after retries)."""

    figure: str
    unit_id: str
    payload: dict | None
    failure: UnitFailure | None
    attempts: int
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class _Queued:
    unit: RunUnit
    attempt: int = 0
    not_before: float = 0.0
    first_started: float | None = None


@dataclass
class _InFlight:
    task: _Queued
    proc: mp.process.BaseProcess
    conn: object  # receiving end of the result pipe
    deadline: float | None
    started: float = field(default_factory=time.monotonic)


def _worker_main(conn, figure: str, unit_id: str, params: dict, attempt: int,
                 cache_dir: str | None) -> None:
    """Worker entry: run one unit, send ("ok", payload) or ("error", ...)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # ctrl-C belongs to the parent
    if cache_mod.active_cache() is None and cache_dir is not None:
        cache_mod.activate(cache_mod.ResultCache(cache_dir))
    try:
        payload = execute_unit(figure, params, attempt=attempt, unit_id=unit_id)
        conn.send(("ok", payload))
    except BaseException as exc:  # report everything; the parent classifies
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class WorkerPool:
    """Runs units on up to *jobs* supervised worker processes."""

    def __init__(
        self,
        jobs: int,
        timeout_s: float | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 8.0,
        cache_dir: str | None = None,
        on_outcome: Callable[[UnitOutcome], None] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.timeout_s = timeout_s if timeout_s and timeout_s > 0 else None
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.cache_dir = cache_dir
        self.on_outcome = on_outcome
        self.progress = progress or (lambda _msg: None)
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")

    # ------------------------------------------------------------------ #

    def run(self, units: list[RunUnit]) -> list[UnitOutcome]:
        """Execute *units*; returns outcomes in completion order.

        On KeyboardInterrupt every in-flight worker is killed and the
        interrupt propagates — outcomes recorded so far were already
        delivered through ``on_outcome``.
        """
        queue: list[_Queued] = [_Queued(unit) for unit in units]
        inflight: list[_InFlight] = []
        outcomes: list[UnitOutcome] = []
        try:
            while queue or inflight:
                self._launch_ready(queue, inflight)
                self._poll(queue, inflight, outcomes)
                if queue or inflight:
                    time.sleep(_POLL_S)
        except BaseException:
            for entry in inflight:
                self._kill(entry)
            raise
        return outcomes

    # ------------------------------------------------------------------ #

    def _launch_ready(self, queue: list[_Queued], inflight: list[_InFlight]) -> None:
        now = time.monotonic()
        while len(inflight) < self.jobs:
            index = next(
                (i for i, task in enumerate(queue) if task.not_before <= now), None
            )
            if index is None:
                return
            task = queue.pop(index)
            if task.first_started is None:
                task.first_started = now
            recv_conn, send_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    send_conn,
                    task.unit.figure,
                    task.unit.unit_id,
                    task.unit.params,
                    task.attempt,
                    self.cache_dir,
                ),
                daemon=True,
            )
            proc.start()
            send_conn.close()  # the worker holds the other end
            deadline = now + self.timeout_s if self.timeout_s else None
            inflight.append(_InFlight(task, proc, recv_conn, deadline))

    def _poll(
        self,
        queue: list[_Queued],
        inflight: list[_InFlight],
        outcomes: list[UnitOutcome],
    ) -> None:
        now = time.monotonic()
        still_running: list[_InFlight] = []
        for entry in inflight:
            message = None
            try:
                if entry.conn.poll(0):
                    message = entry.conn.recv()
            except (EOFError, OSError):
                message = None
            if message is not None:
                entry.proc.join()
                entry.conn.close()
                self._handle_message(entry, message, queue, outcomes)
            elif entry.deadline is not None and now >= entry.deadline:
                self._kill(entry)
                self._handle_failure(
                    entry.task,
                    TIMEOUT,
                    None,
                    f"exceeded {self.timeout_s:g}s wall-clock budget",
                    queue,
                    outcomes,
                )
            elif not entry.proc.is_alive():
                entry.conn.close()
                self._handle_failure(
                    entry.task,
                    WORKER_CRASH,
                    None,
                    f"worker exited with code {entry.proc.exitcode} "
                    "before reporting a result",
                    queue,
                    outcomes,
                )
            else:
                still_running.append(entry)
        inflight[:] = still_running

    def _kill(self, entry: _InFlight) -> None:
        try:
            entry.proc.kill()
            entry.proc.join()
        except (OSError, AttributeError):
            pass
        try:
            entry.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------ #

    def _handle_message(
        self,
        entry: _InFlight,
        message: tuple,
        queue: list[_Queued],
        outcomes: list[UnitOutcome],
    ) -> None:
        task = entry.task
        if message[0] == "ok":
            outcome = UnitOutcome(
                figure=task.unit.figure,
                unit_id=task.unit.unit_id,
                payload=message[1],
                failure=None,
                attempts=task.attempt + 1,
                elapsed_s=time.monotonic() - (task.first_started or entry.started),
            )
            outcomes.append(outcome)
            self.progress(
                f"{task.unit.figure}/{task.unit.unit_id} ok "
                f"({outcome.elapsed_s:.1f}s, attempt {outcome.attempts})"
            )
            if self.on_outcome is not None:
                self.on_outcome(outcome)
        else:
            _, exc_type, detail = message
            self._handle_failure(
                task, WORKLOAD_ERROR, exc_type, f"{exc_type}: {detail}", queue, outcomes
            )

    def _handle_failure(
        self,
        task: _Queued,
        kind: str,
        exc_type: str | None,
        detail: str,
        queue: list[_Queued],
        outcomes: list[UnitOutcome],
    ) -> None:
        if should_retry(kind, exc_type, task.attempt, self.max_retries):
            delay = backoff_delay(task.attempt, self.backoff_base_s, self.backoff_cap_s)
            self.progress(
                f"{task.unit.figure}/{task.unit.unit_id} {kind}: {detail} — "
                f"retry {task.attempt + 1}/{self.max_retries} in {delay:.1f}s"
            )
            task.attempt += 1
            task.not_before = time.monotonic() + delay
            queue.append(task)
            return
        # Terminal failures are Permanent by definition: either the event
        # itself was (a deterministic workload exception), or its retries
        # are exhausted and nothing in this run will try again.
        failure = UnitFailure(
            figure=task.unit.figure,
            unit_id=task.unit.unit_id,
            kind=kind,
            severity=PERMANENT,
            detail=detail,
            attempts=task.attempt + 1,
        )
        outcome = UnitOutcome(
            figure=task.unit.figure,
            unit_id=task.unit.unit_id,
            payload=None,
            failure=failure,
            attempts=task.attempt + 1,
            elapsed_s=time.monotonic() - (task.first_started or time.monotonic()),
        )
        outcomes.append(outcome)
        self.progress(f"{task.unit.figure}/{task.unit.unit_id} FAILED: {failure.reason}")
        if self.on_outcome is not None:
            self.on_outcome(outcome)
