"""Ablations of Prosper's design choices (DESIGN.md design-decision index).

Not a paper figure — these quantify the decisions the paper makes by
argument: the Accumulate-and-Apply allocation policy, the 16-entry lookup
table, the tracker sharing the maximum active stack region with the OS, and
the choice of PTE dirty bits over write-protection for the page baseline.
"""

from collections import defaultdict

from repro.analysis.report import render_table
from repro.experiments import ablations


def test_allocation_policy(benchmark):
    cells = benchmark.pedantic(
        ablations.allocation_policy_ablation, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            "Ablation: entry-allocation policy (bitmap memory traffic)",
            ["workload", "policy", "loads", "stores", "total"],
            [
                [c.workload, c.policy, c.bitmap_loads, c.bitmap_stores, c.memory_ops]
                for c in cells
            ],
        )
    )
    # Both policies must produce traffic of the same order; the choice is
    # about allocation latency, not bandwidth.
    by_key = {(c.workload, c.policy): c.memory_ops for c in cells}
    for workload in {c.workload for c in cells}:
        aa = by_key[(workload, "accumulate-and-apply")]
        lu = by_key[(workload, "load-and-update")]
        assert 0.3 < aa / lu < 3.0


def test_table_size(benchmark):
    cells = benchmark.pedantic(ablations.table_size_ablation, rounds=1, iterations=1)
    table = defaultdict(dict)
    for c in cells:
        table[c.workload][c.entries] = c.memory_ops
    print()
    print(
        render_table(
            "Ablation: lookup-table size (total bitmap memory ops)",
            ["workload"] + [str(s) for s in (4, 8, 16, 32, 64)],
            [
                [w] + [table[w][s] for s in (4, 8, 16, 32, 64)]
                for w in sorted(table)
            ],
        )
    )
    # More entries -> more coalescing -> never more traffic.
    for row in table.values():
        assert row[64] <= row[4]


def test_active_region_bounding(benchmark):
    cells = benchmark.pedantic(
        ablations.active_region_bounding_ablation, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            "Ablation: bounding bitmap inspection to the active stack region",
            ["workload", "bounded cyc/ckpt", "unbounded cyc/ckpt", "speedup"],
            [
                [
                    c.workload,
                    f"{c.bounded_cycles:.0f}",
                    f"{c.unbounded_cycles:.0f}",
                    f"{c.speedup:.2f}x",
                ]
                for c in cells
            ],
        )
    )
    for c in cells:
        assert c.speedup >= 1.0


def test_page_tracking_flavours(benchmark):
    cells = benchmark.pedantic(
        ablations.page_tracking_ablation, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            "Ablation: PTE dirty bits (LDT) vs write-protection faults",
            ["workload", "mechanism", "normalized time", "faults"],
            [
                [c.workload, c.mechanism, f"{c.normalized_time:.3f}", c.faults]
                for c in cells
            ],
        )
    )
    # Write protection is never cheaper than the dirty-bit walk (LDT claim).
    by_key = {(c.workload, c.mechanism): c.normalized_time for c in cells}
    for workload in {c.workload for c in cells}:
        assert by_key[(workload, "writeprotect")] >= by_key[(workload, "dirtybit")]
