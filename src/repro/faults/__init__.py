"""Fault injection and crash-consistency verification.

Three cooperating layers (see ``docs/FAULTS.md``):

* :mod:`repro.faults.injector` — named crash points threaded through the
  checkpoint pipeline, armed deterministically per (point, occurrence);
* :mod:`repro.faults.nvm_errors` — a seeded NVM media error model
  (transient failures, torn writes, sticky bad blocks) consulted by the
  device's reliable-write path;
* :mod:`repro.faults.order` — the persist-order oracle: pending durable
  writes become guaranteed-durable only at a flush/commit barrier, and a
  crash may persist any subset of the pending set (torn tail optional);
* :mod:`repro.faults.sweep` — the crash-consistency sweep harness that
  crashes at every enumerated point and asserts the recovery invariant;
* :mod:`repro.faults.fuzzer` — seeded crash-schedule campaigns over
  arbitrary-cycle crashes x sampled persist orders, verified against a
  golden-image recovery oracle and shrunk on violation.

``sweep`` and ``fuzzer`` are intentionally *not* imported here: they pull
in the kernel/engine layers, which in turn reach back down to
:mod:`repro.memory.devices` — a module that imports this package for the
error model and the order oracle.  Import them as ``repro.faults.sweep``
/ ``repro.faults.fuzzer`` directly.
"""

from repro.faults.injector import (
    BITMAP_CLEAR,
    COMMIT_FLAG_WRITE,
    CRASH_POINT_FAMILIES,
    METADATA_WRITE,
    PERSIST_BARRIER,
    STAGE_BEGIN,
    STAGE_COMPLETE,
    CrashInjected,
    FaultInjector,
    cycle_point,
    is_cycle_point,
    stage_run_copy,
)
from repro.faults.order import (
    CrashOutcome,
    PendingWrite,
    PersistOrderOracle,
    PersistPlan,
)
from repro.faults.nvm_errors import (
    WRITE_BAD_BLOCK,
    WRITE_OK,
    WRITE_TORN,
    WRITE_TRANSIENT,
    NvmErrorModel,
    NvmMediaError,
)

__all__ = [
    "BITMAP_CLEAR",
    "COMMIT_FLAG_WRITE",
    "CRASH_POINT_FAMILIES",
    "METADATA_WRITE",
    "PERSIST_BARRIER",
    "STAGE_BEGIN",
    "STAGE_COMPLETE",
    "CrashInjected",
    "CrashOutcome",
    "FaultInjector",
    "PendingWrite",
    "PersistOrderOracle",
    "PersistPlan",
    "cycle_point",
    "is_cycle_point",
    "stage_run_copy",
    "WRITE_BAD_BLOCK",
    "WRITE_OK",
    "WRITE_TORN",
    "WRITE_TRANSIENT",
    "NvmErrorModel",
    "NvmMediaError",
]
