"""Micro-operation vocabulary for the trace-driven engine.

A workload is a sequence of :class:`Op` records.  The vocabulary is
deliberately small — it matches what the paper's trace-based analysis needs:

* ``READ`` / ``WRITE`` — data accesses with an address, a size, and a flag
  for whether the address falls in the stack segment (precomputed by the
  workload generators for speed; the engine re-derives it when absent).
* ``CALL`` / ``RET`` — stack-pointer movement.  A ``CALL`` pushes a frame of
  ``size`` bytes (SP moves down); a ``RET`` pops it (SP moves up).  The
  engine uses these to track the *active stack region*, the quantity behind
  SP awareness (Section II-A).
* ``COMPUTE`` — ``size`` ALU cycles with no memory traffic, used by the
  Normal/Poisson micro-benchmarks whose compute blocks increment a register
  a thousand times between bursts of stack writes.

Traces can also be represented in bulk as numpy structured arrays
(see :mod:`repro.workloads.trace`), with this module defining the dtype.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class OpKind(enum.IntEnum):
    """Discriminator for trace records."""

    READ = 0
    WRITE = 1
    CALL = 2
    RET = 3
    COMPUTE = 4


@dataclass(frozen=True)
class Op:
    """One micro-operation.

    ``address`` is meaningful for READ/WRITE; ``size`` is bytes for memory
    ops, frame bytes for CALL/RET, and ALU cycles for COMPUTE.
    """

    kind: OpKind
    address: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"op size must be non-negative, got {self.size}")

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.READ, OpKind.WRITE)


#: Numpy dtype for bulk trace storage: (kind, address, size).
TRACE_DTYPE = np.dtype(
    [("kind", np.uint8), ("address", np.uint64), ("size", np.uint32)]
)


def ops_to_array(ops: list[Op]) -> np.ndarray:
    """Pack a list of :class:`Op` into a ``TRACE_DTYPE`` array."""
    arr = np.empty(len(ops), dtype=TRACE_DTYPE)
    for i, op in enumerate(ops):
        arr[i] = (int(op.kind), op.address, op.size)
    return arr


def array_to_ops(arr: np.ndarray) -> list[Op]:
    """Unpack a ``TRACE_DTYPE`` array into :class:`Op` records."""
    return [
        Op(OpKind(int(k)), int(a), int(s))
        for k, a, s in zip(arr["kind"], arr["address"], arr["size"])
    ]
