"""Tests for repro.kernel.checkpoint_mgr and repro.kernel.restore:
whole-process checkpoints, crash, and recovery."""

from repro.config import setup_i
from repro.core.tracker import ProsperTracker
from repro.kernel.checkpoint_mgr import METADATA_BYTES, CheckpointManager
from repro.kernel.process import Process
from repro.kernel.restore import CrashSimulator
from repro.memory.hierarchy import MemoryHierarchy

import pytest


def setup_process(persistent=True, threads=1):
    proc = Process()
    for _ in range(threads):
        proc.spawn_thread(stack_bytes=1 << 20, persistent=persistent)
    hierarchy = MemoryHierarchy(setup_i())
    tracker = ProsperTracker(proc.tracker_config)
    mgr = CheckpointManager(proc, hierarchy, tracker)
    return proc, tracker, mgr


def dirty_thread(proc, tracker, tid=1, offset=8):
    """Dirty one live granule: SP sits one frame down, the write is above it
    (SP-aware checkpoints drop writes below the final SP)."""
    thread = proc.thread(tid)
    tracker.configure(thread.bitmap)
    thread.registers.stack_pointer = thread.stack.end - 4096
    tracker.observe_store(thread.registers.stack_pointer + offset, 8)
    thread.registers.op_index = 1234


class TestCheckpointManager:
    def test_checkpoint_captures_registers_and_memory(self):
        proc, tracker, mgr = setup_process()
        dirty_thread(proc, tracker)
        record, cycles = mgr.checkpoint_process()
        assert record.committed
        assert cycles > 0
        snap = record.threads[0]
        assert snap.registers.op_index == 1234
        assert snap.copied_bytes == 8
        assert record.total_bytes == METADATA_BYTES + 8

    def test_sequence_numbers_increment(self):
        proc, tracker, mgr = setup_process()
        dirty_thread(proc, tracker)
        r0, _ = mgr.checkpoint_process()
        r1, _ = mgr.checkpoint_process()
        assert (r0.sequence, r1.sequence) == (0, 1)
        assert mgr.last_committed is r1

    def test_incremental_second_checkpoint_smaller(self):
        proc, tracker, mgr = setup_process()
        dirty_thread(proc, tracker)
        first, _ = mgr.checkpoint_process()
        second, _ = mgr.checkpoint_process()  # nothing dirtied since
        assert second.threads[0].copied_bytes == 0
        assert first.threads[0].copied_bytes == 8

    def test_multi_threaded_checkpoint(self):
        proc, tracker, mgr = setup_process(threads=2)
        t1, t2 = proc.thread(1), proc.thread(2)
        tracker.configure(t1.bitmap)
        t1.registers.stack_pointer = t1.stack.end - 4096
        tracker.observe_store(t1.registers.stack_pointer + 8, 8)
        record, _ = mgr.checkpoint_process()
        assert len(record.threads) == 2

    def test_nonpersistent_thread_registers_only(self):
        proc, tracker, mgr = setup_process(persistent=False)
        record, _ = mgr.checkpoint_process()
        assert record.threads[0].copied_bytes == 0
        assert record.committed


class TestCrashRecovery:
    def test_crash_wipes_volatile_state(self):
        proc, tracker, mgr = setup_process()
        dirty_thread(proc, tracker)
        mgr.checkpoint_process()
        sim = CrashSimulator(proc, mgr)
        sim.crash()
        t = proc.thread(1)
        assert t.registers.op_index == 0
        assert t.bitmap.dirty_granule_count() == 0

    def test_recover_restores_last_committed(self):
        proc, tracker, mgr = setup_process()
        dirty_thread(proc, tracker)
        mgr.checkpoint_process()
        sim = CrashSimulator(proc, mgr)
        sim.crash()
        report = sim.recover()
        assert report.recovered
        assert report.resumed_from_sequence == 0
        assert proc.thread(1).registers.op_index == 1234

    def test_recover_without_crash_raises(self):
        proc, _, mgr = setup_process()
        with pytest.raises(RuntimeError):
            CrashSimulator(proc, mgr).recover()

    def test_crash_mid_commit_rolls_forward(self):
        proc, tracker, mgr = setup_process()
        dirty_thread(proc, tracker)
        mgr.checkpoint_process()  # sequence 0, committed
        tracker.configure(proc.thread(1).bitmap)
        tracker.observe_store(proc.thread(1).registers.stack_pointer + 256, 8)
        proc.thread(1).registers.op_index = 5678
        mgr.checkpoint_process(crash_during_commit=True)  # sequence 1, staged
        sim = CrashSimulator(proc, mgr)
        sim.crash()
        report = sim.recover()
        assert report.rolled_forward
        # The fully-staged checkpoint 1 was completed and wins.
        assert report.resumed_from_sequence == 1
        assert proc.thread(1).registers.op_index == 5678

    def test_crash_before_any_checkpoint(self):
        proc, _, mgr = setup_process()
        sim = CrashSimulator(proc, mgr)
        sim.crash()
        report = sim.recover()
        assert not report.recovered
        assert report.threads_restored == 0

    def test_double_crash_recover_cycle(self):
        proc, tracker, mgr = setup_process()
        dirty_thread(proc, tracker)
        mgr.checkpoint_process()
        sim = CrashSimulator(proc, mgr)
        sim.crash()
        sim.recover()
        # Run a bit more, checkpoint, crash again.
        tracker.configure(proc.thread(1).bitmap)
        tracker.observe_store(proc.thread(1).registers.stack_pointer + 512, 8)
        proc.thread(1).registers.op_index = 9999
        mgr.checkpoint_process()
        sim.crash()
        report = sim.recover()
        assert report.resumed_from_sequence == 1
        assert proc.thread(1).registers.op_index == 9999
