"""Trace container and trace-level statistics.

A :class:`Trace` couples an operation stream with the address-space layout
it was generated against (stack range, optional heap range) so an
experiment can build a matching engine without re-deriving layout.  The
statistics here power the motivation figures (stack-op fraction for Fig. 1,
writes beyond the final SP for Fig. 2, page- vs byte-granularity copy size
for Fig. 4) directly from a trace, without running the timing model.

The canonical storage is a ``TRACE_DTYPE`` structured numpy array — what
the generators emit and what the batched engine consumes.  A ``list[Op]``
view is materialized lazily for code that still walks ops one by one (the
scalar reference engine, ad-hoc analyses); constructing a ``Trace`` from a
list of ops remains supported and packs the array on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.ops import TRACE_DTYPE, Op, OpKind, array_to_ops, ops_to_array
from repro.memory.address import AddressRange

_CALL = int(OpKind.CALL)
_RET = int(OpKind.RET)


@dataclass
class TraceStats:
    """Counts derived from a trace (no timing involved)."""

    total_ops: int = 0
    memory_ops: int = 0
    stack_reads: int = 0
    stack_writes: int = 0
    other_reads: int = 0
    other_writes: int = 0

    @property
    def stack_ops(self) -> int:
        return self.stack_reads + self.stack_writes

    @property
    def stack_fraction(self) -> float:
        """Fraction of memory operations hitting the stack (Figure 1)."""
        return self.stack_ops / self.memory_ops if self.memory_ops else 0.0

    @property
    def stack_write_fraction(self) -> float:
        writes = self.stack_writes + self.other_writes
        return self.stack_writes / writes if writes else 0.0


class Trace:
    """A generated workload: operations plus the layout they assume.

    *ops* may be a ``TRACE_DTYPE`` structured array (the native generator
    output) or a sequence of :class:`Op` records; either view is derived
    from the other lazily and cached.
    """

    __slots__ = ("_array", "_ops", "stack_range", "heap_range", "name",
                 "initial_sp", "_stats")

    def __init__(
        self,
        ops,
        stack_range: AddressRange,
        heap_range: AddressRange | None = None,
        name: str = "trace",
        initial_sp: int | None = None,
    ) -> None:
        if isinstance(ops, np.ndarray):
            if ops.dtype != TRACE_DTYPE:
                raise TypeError(
                    f"trace array must have TRACE_DTYPE, got {ops.dtype}"
                )
            self._array: np.ndarray | None = ops
            self._ops: list[Op] | None = None
        else:
            self._ops = list(ops)
            self._array = None
        self.stack_range = stack_range
        self.heap_range = heap_range
        self.name = name
        #: Initial SP (top of stack); generators may start below the top.
        self.initial_sp = initial_sp
        self._stats: TraceStats | None = None

    @property
    def array(self) -> np.ndarray:
        """The canonical ``TRACE_DTYPE`` array of the op stream."""
        if self._array is None:
            self._array = ops_to_array(self._ops)
        return self._array

    @property
    def ops(self) -> list[Op]:
        """Materialized :class:`Op` view (lazy; prefer :attr:`array`)."""
        if self._ops is None:
            self._ops = array_to_ops(self._array)
        return self._ops

    def __len__(self) -> int:
        if self._array is not None:
            return len(self._array)
        return len(self._ops)

    def __iter__(self):
        return iter(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.name!r}, ops={len(self)}, "
            f"stack_range={self.stack_range!r})"
        )

    @property
    def stats(self) -> TraceStats:
        if self._stats is None:
            self._stats = self._compute_stats()
        return self._stats

    def _compute_stats(self) -> TraceStats:
        arr = self.array
        kinds = arr["kind"]
        addrs = arr["address"]
        stack = self.stack_range
        in_stack = (addrs >= stack.start) & (addrs < stack.end)
        is_read = kinds == int(OpKind.READ)
        is_write = kinds == int(OpKind.WRITE)
        stack_reads = int(np.count_nonzero(is_read & in_stack))
        stack_writes = int(np.count_nonzero(is_write & in_stack))
        reads = int(np.count_nonzero(is_read))
        writes = int(np.count_nonzero(is_write))
        return TraceStats(
            total_ops=len(arr),
            memory_ops=reads + writes,
            stack_reads=stack_reads,
            stack_writes=stack_writes,
            other_reads=reads - stack_reads,
            other_writes=writes - stack_writes,
        )

    # ------------------------------------------------------------------ #
    # Interval-based trace analysis (motivation experiments)
    # ------------------------------------------------------------------ #

    def _interval_bounds(self, num_intervals: int) -> list[tuple[int, int]]:
        """Half-open index bounds of the equal-op interval chunks.

        Mirrors the historical list-slicing behaviour exactly: a trailing
        remainder shorter than one chunk is dropped.
        """
        if num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        n = len(self)
        chunk = max(1, n // num_intervals)
        bounds = []
        for i in range(num_intervals):
            lo = min(i * chunk, n)
            hi = min(lo + chunk, n)
            if hi > lo:
                bounds.append((lo, hi))
        return bounds

    def _sp_path(self) -> np.ndarray:
        """SP value after each op (CALL pushes, RET pops, others hold)."""
        arr = self.array
        kinds = arr["kind"]
        sizes = arr["size"].astype(np.int64)
        delta = np.zeros(len(arr), dtype=np.int64)
        calls = kinds == _CALL
        rets = kinds == _RET
        delta[calls] = -sizes[calls]
        delta[rets] = sizes[rets]
        sp0 = self.initial_sp if self.initial_sp is not None else self.stack_range.end
        return sp0 + np.cumsum(delta)

    def split_intervals(self, num_intervals: int) -> list[list[Op]]:
        """Split ops into *num_intervals* equal chunks (trace-time intervals).

        The motivation studies operate on trace position rather than
        simulated cycles; equal op chunks approximate equal time slices for
        the steady-state workloads involved.
        """
        ops = self.ops
        return [ops[lo:hi] for lo, hi in self._interval_bounds(num_intervals)]

    def writes_beyond_final_sp(self, num_intervals: int) -> list[tuple[int, int]]:
        """Per interval: (total stack writes, writes below the final SP).

        Replays SP movement through CALL/RET and, for every interval, counts
        stack writes whose address ends up below the interval-final SP —
        writes to frames already popped, the waste SP-unaware mechanisms do
        (Figure 2).
        """
        bounds = self._interval_bounds(num_intervals)
        arr = self.array
        addrs = arr["address"].astype(np.int64)
        stack = self.stack_range
        stack_write = (
            (arr["kind"] == int(OpKind.WRITE))
            & (addrs >= stack.start)
            & (addrs < stack.end)
        )
        path = self._sp_path()
        results: list[tuple[int, int]] = []
        for lo, hi in bounds:
            final_sp = int(path[hi - 1])
            write_addrs = addrs[lo:hi][stack_write[lo:hi]]
            results.append(
                (
                    len(write_addrs),
                    int(np.count_nonzero(write_addrs < final_sp)),
                )
            )
        return results

    def final_sp_per_interval(self, num_intervals: int) -> list[int]:
        """SP value at the end of each trace-time interval (the SP oracle)."""
        path = self._sp_path()
        return [int(path[hi - 1]) for _, hi in self._interval_bounds(num_intervals)]

    def copy_sizes(
        self, num_intervals: int, granularity: int
    ) -> list[int]:
        """Checkpoint copy size per interval at the given dirty granularity.

        *granularity* may be a sub-page granule (8..128) or the page size —
        the same post-processing the paper applies for Figure 4.
        """
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        arr = self.array
        addrs = arr["address"].astype(np.int64)
        sizes = arr["size"].astype(np.int64)
        stack = self.stack_range
        stack_write = (
            (arr["kind"] == int(OpKind.WRITE))
            & (addrs >= stack.start)
            & (addrs < stack.end)
            & (sizes > 0)
        )
        firsts_all = addrs // granularity
        lasts_all = (addrs + sizes - 1) // granularity
        out: list[int] = []
        for lo, hi in self._interval_bounds(num_intervals):
            mask = stack_write[lo:hi]
            firsts = firsts_all[lo:hi][mask]
            lasts = lasts_all[lo:hi][mask]
            if not len(firsts):
                out.append(0)
                continue
            pieces = [firsts, lasts]
            # Accesses spanning 3+ granules (rare) need their interior runs.
            wide = lasts - firsts > 1
            for f, l in zip(firsts[wide].tolist(), lasts[wide].tolist()):
                pieces.append(np.arange(f + 1, l, dtype=np.int64))
            dirty = np.unique(np.concatenate(pieces))
            out.append(len(dirty) * granularity)
        return out
