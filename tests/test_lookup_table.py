"""Tests for repro.core.lookup_table: coalescing, HWM/LWM, eviction."""

from hypothesis import given, settings, strategies as st

from repro.config import TrackerConfig
from repro.core.bitmap import DirtyBitmap
from repro.core.lookup_table import LookupTable, popcount
from repro.core.policies import AllocationPolicy
from repro.memory.address import AddressRange

REGION = AddressRange(0, 1 << 20)


def make(entries=4, hwm=24, lwm=8, policy=AllocationPolicy.ACCUMULATE_AND_APPLY):
    cfg = TrackerConfig(
        lookup_table_entries=entries, high_water_mark=hwm, low_water_mark=lwm
    )
    return LookupTable(cfg, policy), DirtyBitmap(REGION, 8)


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0xFFFF_FFFF) == 32
        assert popcount(0b1010) == 2


class TestCoalescing:
    def test_hit_coalesces_without_memory_ops(self):
        table, bm = make()
        ops = table.record(0, 0, bm)
        ops += table.record(0, 1, bm)
        ops += table.record(0, 2, bm)
        assert ops == 0  # accumulate-and-apply: no loads until write-out
        assert table.stats.hits == 2
        assert table.stats.misses == 1
        assert len(table) == 1

    def test_flush_applies_accumulated_bits(self):
        table, bm = make()
        table.record(0, 3, bm)
        table.record(0, 5, bm)
        ops = table.flush(bm)
        assert ops == 2  # one load + one store
        assert bm.load_word(0) == (1 << 3) | (1 << 5)
        assert len(table) == 0

    def test_flush_elides_store_when_bits_already_set(self):
        table, bm = make()
        bm.store_word(0, 1 << 4)
        table.record(0, 4, bm)
        ops = table.flush(bm)
        assert ops == 1  # load only; store elided
        assert table.stats.elided_stores == 1

    def test_repeated_same_bit_is_single_bit(self):
        table, bm = make()
        for _ in range(10):
            table.record(2, 7, bm)
        table.flush(bm)
        assert bm.load_word(2) == 1 << 7


class TestHighWaterMark:
    def test_hwm_triggers_writeout(self):
        table, bm = make(hwm=4)
        ops = 0
        for bit in range(4):
            ops += table.record(0, bit, bm)
        assert table.stats.hwm_writeouts == 1
        assert len(table) == 0  # entry freed after write-out
        assert popcount(bm.load_word(0)) == 4

    def test_below_hwm_no_writeout(self):
        table, bm = make(hwm=4)
        for bit in range(3):
            table.record(0, bit, bm)
        assert table.stats.hwm_writeouts == 0
        assert len(table) == 1


class TestEviction:
    def test_lwm_prefers_sparse_victims(self):
        table, bm = make(entries=2, hwm=32, lwm=8)
        # Entry for word 0: 5 bits (sparse); word 1: 7 bits (denser).
        for bit in range(5):
            table.record(0, bit, bm)
        for bit in range(7):
            table.record(1, bit, bm)
        # Table full; new word forces eviction of the sparsest (word 0).
        table.record(2, 0, bm)
        assert table.stats.lwm_evictions == 1
        assert popcount(bm.load_word(0)) == 5
        assert bm.load_word(1) == 0  # denser entry survived

    def test_random_eviction_when_no_lwm_candidates(self):
        table, bm = make(entries=2, hwm=32, lwm=2)
        for bit in range(10):
            table.record(0, bit, bm)
        for bit in range(10):
            table.record(1, bit, bm)
        table.record(2, 0, bm)
        assert table.stats.random_evictions == 1
        assert table.stats.lwm_evictions == 0

    def test_occupancy_never_exceeds_capacity(self):
        table, bm = make(entries=3, hwm=32, lwm=32)
        for word in range(50):
            table.record(word, word % 32, bm)
        assert len(table) <= 3


class TestLoadAndUpdatePolicy:
    def test_allocation_issues_load(self):
        table, bm = make(policy=AllocationPolicy.LOAD_AND_UPDATE)
        bm.store_word(0, 1 << 31)
        ops = table.record(0, 0, bm)
        assert ops == 1
        assert table.stats.bitmap_loads == 1

    def test_writeout_is_store_only(self):
        table, bm = make(policy=AllocationPolicy.LOAD_AND_UPDATE)
        bm.store_word(0, 1 << 31)
        table.record(0, 0, bm)
        ops = table.flush(bm)
        assert ops == 1  # store only: value already merged in the table
        assert bm.load_word(0) == (1 << 31) | 1

    def test_policy_properties(self):
        assert AllocationPolicy.ACCUMULATE_AND_APPLY.loads_on_writeout
        assert not AllocationPolicy.ACCUMULATE_AND_APPLY.loads_on_allocation
        assert AllocationPolicy.LOAD_AND_UPDATE.loads_on_allocation
        assert not AllocationPolicy.LOAD_AND_UPDATE.loads_on_writeout


class TestInvariants:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 31)),
            min_size=1,
            max_size=400,
        ),
        st.sampled_from(list(AllocationPolicy)),
    )
    def test_flush_leaves_bitmap_equal_to_reference(self, records, policy):
        """After a flush, the bitmap holds exactly the union of recorded bits
        regardless of HWM/LWM pressure or the allocation policy."""
        table, bm = make(entries=4, hwm=6, lwm=3, policy=policy)
        reference: dict[int, int] = {}
        for word, bit in records:
            table.record(word, bit, bm)
            reference[word] = reference.get(word, 0) | (1 << bit)
        table.flush(bm)
        for word, value in reference.items():
            assert bm.load_word(word) == value

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 31)), max_size=300
        )
    )
    def test_stats_accounting_consistent(self, records):
        table, bm = make(entries=4)
        for word, bit in records:
            table.record(word, bit, bm)
        table.flush(bm)
        s = table.stats
        assert s.hits + s.misses == len(records)
        writeouts = (
            s.hwm_writeouts + s.lwm_evictions + s.random_evictions + s.flush_writeouts
        )
        # Accumulate-and-apply: every write-out issues exactly one load.
        assert s.bitmap_loads == writeouts
        assert s.bitmap_stores + s.elided_stores == writeouts
