"""Address arithmetic shared across the simulator.

Everything in the simulator operates on integer virtual addresses.  These
helpers centralize page / cache-line / tracking-granule math so that the
dirty-tracking mechanisms, caches, and checkpoint engines agree on how an
address maps onto chunks of a given size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config import CACHE_LINE_BYTES, PAGE_BYTES


def align_down(address: int, alignment: int) -> int:
    """Round *address* down to a multiple of *alignment* (a power of two or not)."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (address // alignment) * alignment


def align_up(address: int, alignment: int) -> int:
    """Round *address* up to a multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return -(-address // alignment) * alignment


def page_index(address: int, page_bytes: int = PAGE_BYTES) -> int:
    """Index of the OS page containing *address*."""
    return address // page_bytes


def line_index(address: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Index of the cache line containing *address*."""
    return address // line_bytes


def granule_index(address: int, granularity: int) -> int:
    """Index of the tracking granule containing *address*."""
    return address // granularity


def span_pages(address: int, size: int, page_bytes: int = PAGE_BYTES) -> range:
    """Page indices touched by an access of *size* bytes at *address*."""
    if size <= 0:
        return range(0)
    first = address // page_bytes
    last = (address + size - 1) // page_bytes
    return range(first, last + 1)


def span_lines(address: int, size: int, line_bytes: int = CACHE_LINE_BYTES) -> range:
    """Cache-line indices touched by an access of *size* bytes at *address*."""
    if size <= 0:
        return range(0)
    first = address // line_bytes
    last = (address + size - 1) // line_bytes
    return range(first, last + 1)


def span_granules(address: int, size: int, granularity: int) -> range:
    """Tracking-granule indices touched by an access of *size* bytes."""
    if size <= 0:
        return range(0)
    first = address // granularity
    last = (address + size - 1) // granularity
    return range(first, last + 1)


@dataclass(frozen=True, order=True)
class AddressRange:
    """A half-open virtual address range ``[start, end)``.

    Used for stack bounds (the two Prosper MSRs hold exactly such a range),
    heap bounds, and bitmap areas.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid range [{self.start:#x}, {self.end:#x})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, address: int) -> bool:
        """True when *address* lies inside the range."""
        return self.start <= address < self.end

    def contains_access(self, address: int, size: int = 1) -> bool:
        """True when the whole access ``[address, address+size)`` lies inside."""
        return self.start <= address and address + size <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "AddressRange") -> "AddressRange | None":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return AddressRange(start, end)

    def pages(self, page_bytes: int = PAGE_BYTES) -> range:
        """Indices of every page overlapping the range."""
        if self.size == 0:
            return range(0)
        return span_pages(self.start, self.size, page_bytes)

    def granules(self, granularity: int) -> range:
        """Indices of every tracking granule overlapping the range."""
        if self.size == 0:
            return range(0)
        return span_granules(self.start, self.size, granularity)

    def iter_chunks(self, chunk_bytes: int) -> Iterator["AddressRange"]:
        """Split the range into aligned chunks of *chunk_bytes*.

        The first and last chunk may be partial.  Useful for charging bulk
        copies chunk by chunk.
        """
        cursor = self.start
        while cursor < self.end:
            boundary = align_down(cursor, chunk_bytes) + chunk_bytes
            yield AddressRange(cursor, min(boundary, self.end))
            cursor = boundary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AddressRange({self.start:#x}, {self.end:#x})"
