"""Tests for repro.core.tracker: SOI filtering, flush protocol, ctx switch."""

from repro.config import TrackerConfig
from repro.core.bitmap import DirtyBitmap
from repro.core.msr import ControlBits, Msr
from repro.core.tracker import ProsperTracker
from repro.memory.address import AddressRange

REGION = AddressRange(0x7000_0000, 0x7001_0000)  # 64 KiB stack


def tracker(granularity: int = 8, **kwargs) -> tuple[ProsperTracker, DirtyBitmap]:
    cfg = TrackerConfig(granularity_bytes=granularity, **kwargs)
    t = ProsperTracker(cfg)
    bm = DirtyBitmap(REGION, granularity)
    t.configure(bm)
    return t, bm


class TestSoiFiltering:
    def test_store_inside_region_is_tracked(self):
        t, bm = tracker()
        t.observe_store(REGION.start + 128, 8)
        t.request_flush()
        t.poll_quiescent()
        assert bm.is_dirty(REGION.start + 128)

    def test_store_outside_region_ignored(self):
        t, bm = tracker()
        t.observe_store(REGION.end + 64, 8)
        t.observe_store(REGION.start - 64, 8)
        t.request_flush()
        assert bm.dirty_granule_count() == 0

    def test_partial_overlap_clamped(self):
        t, bm = tracker()
        # Write straddles the region end: only the inside part is tracked.
        t.observe_store(REGION.end - 4, 8)
        t.request_flush()
        assert bm.is_dirty(REGION.end - 4)

    def test_disabled_tracker_ignores_stores(self):
        t, bm = tracker()
        t.disable()
        t.observe_store(REGION.start, 8)
        assert bm.dirty_granule_count() == 0
        assert len(t.table) == 0

    def test_zero_size_store_ignored(self):
        t, bm = tracker()
        assert t.observe_store(REGION.start, 0) == 0

    def test_multi_granule_store_sets_all_bits(self):
        t, bm = tracker(granularity=8)
        t.observe_store(REGION.start, 32)
        t.request_flush()
        assert bm.dirty_granule_count() == 4

    def test_granularity_respected(self):
        t, bm = tracker(granularity=64)
        t.observe_store(REGION.start + 10, 8)
        t.request_flush()
        assert bm.dirty_granule_count() == 1
        assert bm.is_dirty(REGION.start)  # whole 64B granule dirty


class TestQuiescenceProtocol:
    def test_flush_sets_and_clears_counters(self):
        t, bm = tracker()
        for i in range(40):
            t.observe_store(REGION.start + i * 512, 8)
        t.request_flush()
        assert t.msrs.flush_requested
        assert t.poll_quiescent() is True
        assert not t.msrs.flush_requested
        assert t.msrs.outstanding_ops == 0

    def test_poll_without_flush_is_true(self):
        t, _ = tracker()
        assert t.poll_quiescent() is True

    def test_begin_interval_resets_min_dirty(self):
        t, _ = tracker()
        t.observe_store(REGION.start + 64, 8)
        assert t.min_dirty_address == REGION.start + 64
        t.begin_interval()
        assert t.min_dirty_address is None


class TestActiveRegionTracking:
    def test_min_dirty_address_tracks_lowest(self):
        t, _ = tracker()
        t.observe_store(REGION.start + 4096, 8)
        t.observe_store(REGION.start + 512, 8)
        t.observe_store(REGION.start + 8192, 8)
        assert t.min_dirty_address == REGION.start + 512
        assert t.msrs.min_dirty_address == REGION.start + 512


class TestInterference:
    def test_coalesced_stores_no_interference(self):
        t, _ = tracker()
        cost = t.observe_store(REGION.start, 8)
        cost += t.observe_store(REGION.start + 8, 8)
        assert cost == 0  # both land in one table entry, no memory ops yet

    def test_hwm_writeout_costs_interference(self):
        t, _ = tracker()
        total = 0
        # 8B granularity: 24 bits (HWM) of one word = 24 stores.
        for i in range(24):
            total += t.observe_store(REGION.start + i * 8, 8)
        assert total > 0
        assert t.stats.hwm_writeouts == 1


class TestContextSwitch:
    def test_save_restore_roundtrip(self):
        t, bm = tracker()
        t.observe_store(REGION.start + 100, 8)
        state, save_cycles = t.save_state()
        assert save_cycles >= t.STATE_SWAP_CYCLES
        assert bm.is_dirty(REGION.start + 100)  # flush pushed bits out

        # Another thread's context runs...
        other_bm = DirtyBitmap(REGION, 8)
        t.configure(other_bm)
        t.observe_store(REGION.start + 200, 8)

        restore_cycles = t.restore_state(state, bm)
        assert restore_cycles == t.STATE_SWAP_CYCLES
        assert t.msrs.stack_range == REGION
        assert t.bitmap is bm

    def test_save_without_bitmap_is_cheap(self):
        cfg = TrackerConfig()
        t = ProsperTracker(cfg)
        state, cycles = t.save_state()
        assert cycles == t.STATE_SWAP_CYCLES

    def test_configure_enables(self):
        t, _ = tracker()
        assert t.msrs.enabled
        assert t.msrs.read(Msr.CONTROL) & int(ControlBits.ENABLE)
