"""Tests for the markdown report generator."""

import pytest

from repro.experiments.report_gen import ReportSection, _md_table, generate_report


@pytest.fixture(scope="module")
def report():
    """One live report shared by all assertions (generation is expensive)."""
    return generate_report(ops=12_000, seeds=(42,), timestamp="2026-01-01")


class TestMdTable:
    def test_structure(self):
        md = _md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[-1] == "| 3 | 4 |"

    def test_section_dataclass(self):
        section = ReportSection("T", "body")
        assert section.title == "T"


class TestGenerateReport:
    def test_contains_every_section(self, report):
        for expected in (
            "# Prosper reproduction report",
            "Figure 1", "Figure 2", "Figure 4", "Figure 8",
            "Figure 10", "Figure 12", "Figure 13",
            "Shape validation",
        ):
            assert expected in report, f"missing section: {expected}"

    def test_timestamp_injected(self, report):
        assert "Generated 2026-01-01" in report

    def test_validation_passes_at_default_scale(self, report):
        assert "**all shape checks pass**" in report
