"""The vanilla baseline: no persistence at all.

Stack lives in DRAM, no tracking, no checkpoints.  Every result in the
paper's Figures 3, 8, and 9 is normalized to the execution time of this
configuration.
"""

from __future__ import annotations

from repro.persistence.base import Capabilities, PersistenceMechanism


class NoPersistence(PersistenceMechanism):
    """Counts accesses, does nothing else."""

    name = "vanilla"
    capabilities = Capabilities(
        achieves_process_persistence=False,
        works_without_compiler_support=True,
        stack_pointer_aware=False,
        allows_stack_in_dram=True,
    )
    region_in_nvm = False
