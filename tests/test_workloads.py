"""Tests for repro.workloads: generators and trace analysis."""

import pytest

from repro.cpu.ops import OpKind
from repro.workloads.apps import APP_PROFILES, app_workload, gapbs_pr, g500_sssp, ycsb_mem
from repro.workloads.callstack import quicksort_workload, recursive_workload
from repro.workloads.spec import SPEC_PROFILES, spec_workload
from repro.workloads.synthetic import (
    normal_workload,
    poisson_workload,
    random_workload,
    sparse_workload,
    stream_workload,
)


def replay_sp(trace):
    """Replay CALL/RET and assert SP never leaves the stack region."""
    sp = trace.stack_range.end
    min_sp = sp
    for op in trace.ops:
        if op.kind == OpKind.CALL:
            sp -= op.size
        elif op.kind == OpKind.RET:
            sp += op.size
        if op.is_memory and trace.stack_range.contains(op.address):
            pass
        min_sp = min(min_sp, sp)
    return sp, min_sp


class TestSyntheticGenerators:
    def test_random_determinism(self):
        a = random_workload(num_writes=500, seed=3)
        b = random_workload(num_writes=500, seed=3)
        assert a.ops == b.ops

    def test_random_seed_changes_trace(self):
        a = random_workload(num_writes=500, seed=3)
        b = random_workload(num_writes=500, seed=4)
        assert a.ops != b.ops

    def test_random_stays_in_array(self):
        t = random_workload(array_bytes=4096, num_writes=200)
        frame_base = t.stack_range.end - 4096
        for op in t.ops:
            if op.is_memory:
                assert frame_base <= op.address < t.stack_range.end

    def test_random_rejects_oversized_array(self):
        with pytest.raises(ValueError):
            random_workload(array_bytes=1 << 30)

    def test_stream_covers_every_word(self):
        t = stream_workload(array_bytes=1024, passes=1)
        writes = {op.address for op in t.ops if op.kind == OpKind.WRITE}
        assert len(writes) == 1024 // 8

    def test_sparse_touches_once_per_page(self):
        t = sparse_workload(pages=4, rounds=1)
        writes = [op for op in t.ops if op.kind == OpKind.WRITE]
        assert len(writes) == 4
        pages = {op.address // 4096 for op in writes}
        assert len(pages) == 4

    def test_sparse_sp_balanced(self):
        t = sparse_workload(pages=8, rounds=3)
        final_sp, _ = replay_sp(t)
        assert final_sp == t.stack_range.end

    def test_normal_poisson_have_compute_blocks(self):
        for t in (normal_workload(blocks=20), poisson_workload(blocks=20)):
            kinds = {op.kind for op in t.ops}
            assert OpKind.COMPUTE in kinds
            assert OpKind.WRITE in kinds


class TestCallstackGenerators:
    def test_quicksort_sorts(self):
        # The generator asserts sortedness internally; reaching here is the test.
        t = quicksort_workload(elements=256)
        assert len(t.ops) > 256

    def test_quicksort_sp_balanced(self):
        t = quicksort_workload(elements=128)
        final_sp, min_sp = replay_sp(t)
        assert final_sp == t.stack_range.end
        assert min_sp < t.stack_range.end

    def test_quicksort_heap_accesses_in_heap(self):
        t = quicksort_workload(elements=64)
        for op in t.ops:
            if op.is_memory and not t.stack_range.contains(op.address):
                assert t.heap_range.contains(op.address)

    def test_recursive_deepens_by_one_frame_per_cycle(self):
        t = recursive_workload(depth=4, descents=3, frame_bytes=256)
        final_sp, min_sp = replay_sp(t)
        # Deepest point: floor after 2 completed cycles + a full descent.
        assert min_sp == t.stack_range.end - (2 + 4) * 256
        assert final_sp == t.stack_range.end  # fully unwound at the end

    def test_recursive_rejects_too_many_cycles(self):
        with pytest.raises(ValueError):
            recursive_workload(depth=4, descents=100_000, frame_bytes=256)

    def test_recursive_names(self):
        assert recursive_workload(depth=16, descents=1).name == "rec-16"

    def test_recursive_rejects_too_deep(self):
        with pytest.raises(ValueError):
            recursive_workload(depth=100_000, frame_bytes=4096)


class TestAppModels:
    @pytest.mark.parametrize("name", sorted(APP_PROFILES))
    def test_stack_fraction_near_target(self, name):
        trace = app_workload(name, target_ops=40_000)
        target = APP_PROFILES[name].stack_fraction
        assert trace.stats.stack_fraction == pytest.approx(target, abs=0.12)

    def test_sp_balanced(self):
        for make in (gapbs_pr, g500_sssp, ycsb_mem):
            t = make(target_ops=10_000)
            final_sp, _ = replay_sp(t)
            assert final_sp == t.stack_range.end

    def test_ycsb_beyond_sp_fraction_substantial(self):
        t = ycsb_mem(target_ops=60_000)
        rows = t.writes_beyond_final_sp(20)
        total = sum(w for w, _ in rows)
        beyond = sum(b for _, b in rows)
        assert total > 0
        assert 0.15 < beyond / total < 0.75  # paper: ~36 %

    def test_heap_ops_within_heap(self):
        t = ycsb_mem(target_ops=5_000)
        for op in t.ops:
            if op.is_memory and not t.stack_range.contains(op.address):
                assert t.heap_range.contains(op.address)

    def test_deterministic(self):
        assert gapbs_pr(5_000, seed=1).ops == gapbs_pr(5_000, seed=1).ops


class TestSpecModels:
    def test_all_profiles_generate(self):
        for name in SPEC_PROFILES:
            t = spec_workload(name, target_ops=5_000)
            assert len(t.ops) >= 5_000
            assert t.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            spec_workload("999.nonexistent")

    def test_mcf_scatters_more_than_perlbench(self):
        """mcf's stack writes should touch more distinct granules per write
        (low locality) than perlbench (tight interpreter frames)."""
        def granules_per_write(trace):
            writes = [
                op.address // 8
                for op in trace.ops
                if op.kind == OpKind.WRITE and trace.stack_range.contains(op.address)
            ]
            return len(set(writes)) / len(writes)

        mcf = spec_workload("605.mcf_s", target_ops=30_000)
        perl = spec_workload("600.perlbench_s", target_ops=30_000)
        assert granules_per_write(mcf) > granules_per_write(perl)


class TestTraceAnalysis:
    def test_split_intervals_partition(self):
        t = random_workload(num_writes=1000)
        chunks = t.split_intervals(10)
        assert sum(len(c) for c in chunks) <= len(t.ops)
        assert len(chunks) == 10

    def test_split_rejects_bad_count(self):
        with pytest.raises(ValueError):
            random_workload(num_writes=10).split_intervals(0)

    def test_copy_sizes_page_vs_byte(self):
        t = sparse_workload(pages=16, rounds=4)
        page = t.copy_sizes(4, 4096)
        byte = t.copy_sizes(4, 8)
        assert sum(page) > sum(byte)

    def test_final_sp_per_interval_ends_at_top(self):
        t = recursive_workload(depth=4, descents=8)
        finals = t.final_sp_per_interval(4)
        assert finals[-1] == t.stack_range.end

    def test_stats_cached(self):
        t = random_workload(num_writes=100)
        assert t.stats is t.stats


class TestYcsbPhased:
    def test_two_phases_concatenate_sp_balanced(self):
        from repro.workloads.apps import ycsb_mem_phased

        t = ycsb_mem_phased(target_ops=20_000)
        final_sp, _ = replay_sp(t)
        assert final_sp == t.stack_range.end

    def test_load_phase_write_heavier(self):
        from repro.workloads.apps import ycsb_mem_phased

        t = ycsb_mem_phased(target_ops=30_000, load_fraction=0.5)
        half = len(t.ops) // 2
        def write_share(ops):
            writes = sum(
                1 for op in ops
                if op.kind == OpKind.WRITE and t.stack_range.contains(op.address)
            )
            reads = sum(
                1 for op in ops
                if op.kind == OpKind.READ and t.stack_range.contains(op.address)
            )
            return writes / max(1, writes + reads)
        assert write_share(t.ops[:half]) > write_share(t.ops[half:])

    def test_rejects_bad_fraction(self):
        import pytest as _pytest
        from repro.workloads.apps import ycsb_mem_phased

        with _pytest.raises(ValueError):
            ycsb_mem_phased(load_fraction=0.0)

    def test_stack_fraction_still_near_target(self):
        from repro.workloads.apps import ycsb_mem_phased

        t = ycsb_mem_phased(target_ops=40_000)
        assert 0.05 < t.stats.stack_fraction < 0.35
