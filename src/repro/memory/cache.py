"""Set-associative write-back cache with LRU replacement.

The hierarchy (L1D/L2/L3 from Table II) is modeled functionally: a cache
holds line tags, tracks dirtiness, and reports hit/miss so the hierarchy can
charge the right latency.  No data payload is stored — the simulator's
"memory contents" live with the workload, not the cache model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.evictions = 0


class Cache:
    """One level of a write-back, write-allocate cache.

    Each set is an :class:`OrderedDict` mapping line tag to a dirty flag,
    ordered least- to most-recently used.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._set_mask = config.num_sets - 1
        self._power_of_two_sets = config.num_sets & (config.num_sets - 1) == 0

    def _set_for(self, line: int) -> OrderedDict[int, bool]:
        if self._power_of_two_sets:
            return self._sets[line & self._set_mask]
        return self._sets[line % self.config.num_sets]

    def lookup(self, line: int) -> bool:
        """Probe for *line* without changing replacement state."""
        return line in self._set_for(line)

    def access(self, line: int, is_write: bool) -> tuple[bool, int | None]:
        """Access cache *line*; returns ``(hit, writeback_victim_line)``.

        On a miss the line is allocated (write-allocate) and the LRU victim,
        if dirty, is returned so the caller can charge a write-back.
        """
        cache_set = self._set_for(line)
        if line in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = True
            return True, None

        self.stats.misses += 1
        victim_writeback: int | None = None
        if len(cache_set) >= self.config.associativity:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_writeback = victim_line
        cache_set[line] = is_write
        return False, victim_writeback

    def invalidate(self, line: int) -> bool:
        """Drop *line*; returns True if the line was present and dirty."""
        cache_set = self._set_for(line)
        dirty = cache_set.pop(line, False)
        return bool(dirty)

    def clean(self, line: int) -> bool:
        """Write back *line* if present and dirty (clwb); keep it resident.

        Returns True when a write-back to the next level is required.
        """
        cache_set = self._set_for(line)
        if line in cache_set and cache_set[line]:
            cache_set[line] = False
            self.stats.writebacks += 1
            return True
        return False

    def flush_all(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for d in cache_set.values() if d)
            cache_set.clear()
        self.stats.writebacks += dirty
        return dirty

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
