"""Tests for repro.memory.hierarchy: the L1/L2/L3 + DRAM/NVM stack."""

import pytest

from repro.config import CACHE_LINE_BYTES, setup_i, setup_ii
from repro.memory.hierarchy import MemoryHierarchy


def hybrid(nvm_start: int = 0x8000_0000) -> MemoryHierarchy:
    return MemoryHierarchy(setup_i(), nvm_resident=lambda a: a >= nvm_start)


class TestDemandPath:
    def test_cold_miss_goes_to_memory(self):
        h = MemoryHierarchy(setup_i())
        result = h.access(0x1000, 8, is_write=False)
        assert result.hit_level == "mem"
        expected = (
            setup_i().l1d.latency_cycles
            + setup_i().l2.latency_cycles
            + setup_i().l3.latency_cycles
            + h.dram.read_latency_cycles
        )
        assert result.latency_cycles == expected

    def test_second_access_hits_l1(self):
        h = MemoryHierarchy(setup_i())
        h.access(0x1000, 8, False)
        result = h.access(0x1000, 8, False)
        assert result.hit_level == "L1"
        assert result.latency_cycles == setup_i().l1d.latency_cycles

    def test_line_straddling_access_charges_both_lines(self):
        h = MemoryHierarchy(setup_i())
        h.access(0x1000, 8, False)  # warm line 0x1000//64
        one = h.access(0x1000, 8, False).latency_cycles
        straddle = h.access(0x103C, 16, False)  # crosses into next line
        assert straddle.latency_cycles > one

    def test_nvm_resident_address_reads_from_nvm(self):
        h = hybrid()
        dram_r = h.access(0x1000, 8, False).latency_cycles
        nvm_r = h.access(0x8000_0000, 8, False).latency_cycles
        assert nvm_r > dram_r
        assert h.nvm.stats.reads == 1

    def test_l1_eviction_falls_to_l2(self):
        h = MemoryHierarchy(setup_i())
        cfg = setup_i().l1d
        # Fill one L1 set beyond associativity with dirty lines.
        set_stride = cfg.num_sets * CACHE_LINE_BYTES
        for i in range(cfg.associativity + 2):
            h.access(i * set_stride, 8, is_write=True)
        # The first line was evicted from L1 but should hit in L2.
        result = h.access(0, 8, False)
        assert result.hit_level == "L2"


class TestPersistPath:
    def test_clwb_of_dirty_line_writes_nvm(self):
        h = hybrid()
        h.access(0x8000_0000, 8, is_write=True)
        before = h.nvm.stats.writes
        cost = h.clwb(0x8000_0000, 8)
        assert h.nvm.stats.writes == before + 1
        assert cost > 0

    def test_clwb_clean_line_is_cheap(self):
        h = hybrid()
        h.access(0x8000_0000, 8, is_write=False)
        cost = h.clwb(0x8000_0000, 8)
        assert cost == 2

    def test_clwb_without_nvm_raises(self):
        cfg = setup_ii()
        h = MemoryHierarchy(cfg)
        h.nvm = None
        with pytest.raises(RuntimeError):
            h.clwb(0x1000, 8)

    def test_clwb_burst_with_advancing_now_is_bounded(self):
        h = hybrid()
        lines = 200
        for i in range(lines):
            h.access(0x8000_0000 + i * CACHE_LINE_BYTES, 8, is_write=True)
        total = 0
        for i in range(lines):
            total += h.clwb(0x8000_0000 + i * CACHE_LINE_BYTES,
                            CACHE_LINE_BYTES, now=total)
        # Drain-rate bound: about one drain slot per line, not quadratic.
        drain = h.nvm._write_buffer.drain_cycles
        assert total < lines * drain * 3

    def test_persist_barrier_drains(self):
        h = hybrid()
        h.access(0x8000_0000, 8, True)
        h.clwb(0x8000_0000, 8)
        assert h.persist_barrier() >= 0
        assert h.persist_barrier() == 0  # idempotent once drained


class TestBulkCopies:
    def test_copy_costs_ordering(self):
        h = hybrid()
        size = 64 * 1024
        d2n = h.copy_dram_to_nvm(size)
        d2d = h.copy_dram_to_dram(size)
        n2n = h.copy_nvm_to_nvm(size)
        assert d2d < d2n <= n2n

    def test_zero_copy_free(self):
        h = hybrid()
        assert h.copy_dram_to_nvm(0) == 0
        assert h.copy_nvm_to_nvm(0) == 0

    def test_latency_scale_reduces_fixed_part(self):
        h = hybrid()
        full = h.copy_dram_to_nvm(4096, latency_scale=1.0)
        scaled = h.copy_dram_to_nvm(4096, latency_scale=0.01)
        assert scaled < full

    def test_reset_stats(self):
        h = hybrid()
        h.access(0x1000, 8, False)
        h.reset_stats()
        assert h.l1.stats.accesses == 0
        assert h.dram.stats.reads == 0
