"""Command-line interface: regenerate paper figures from the shell.

Usage::

    python -m repro list                 # what can be run
    python -m repro fig8                 # one figure's table to stdout
    python -m repro all --ops 50000      # every figure, sequentially
    python -m repro all --jobs 4 --timeout 300   # supervised worker pool
    python -m repro all --manifest run.jsonl     # journal progress
    python -m repro all --manifest run.jsonl --resume   # pick up where killed
    python -m repro fig10 --out results/ # also write the table to a file
    python -m repro faults sweep         # crash-consistency sweep (fault injection)
    python -m repro faults fuzz --budget 256     # crash-schedule fuzzing (persist order)
    python -m repro faults sweep --multicore     # ctx-switch / barrier crash points

Figures are decomposed into independent run units and executed by the
harness (:mod:`repro.harness`): ``--jobs 1`` (the default) runs them
inline in the legacy serial order with byte-identical output, ``--jobs N``
runs them on a supervised worker pool with per-unit timeouts, bounded
retry, and graceful degradation.  See ``docs/HARNESS.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import defaultdict
from pathlib import Path
from typing import Callable

from repro.analysis.report import render_table
from repro.harness import (
    FigureOutcome,
    HarnessInterrupted,
    HarnessOptions,
    ManifestMismatch,
    figure_names,
    run_figures,
)

#: Shared exit-code convention for the fault-injection commands
#: (``repro faults sweep`` and ``repro faults fuzz``), documented in
#: docs/FAULTS.md: 0 = all invariants held, 1 = at least one violation,
#: 2 = usage error (bad arguments).
EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2
#: POSIX convention: 128 + SIGINT.
EXIT_INTERRUPTED = 130


def _legacy_runner(name: str) -> Callable[[int], str]:
    def run(ops: int, _name: str = name) -> str:
        return run_figures([_name], HarnessOptions(ops=ops))[0].text

    return run


#: Back-compat: each figure as a plain ``ops -> table text`` callable,
#: running serially through the harness.
COMMANDS: dict[str, Callable[[int], str]] = {
    name: _legacy_runner(name) for name in figure_names()
}


def _render_sweep_report(report, title: str) -> tuple[str, list[str]]:
    """Shared rendering for the single-core and multicore crash sweeps."""
    order: list[str] = []
    per_point: dict[str, dict[str, int]] = {}
    for case in report.cases:
        if case.point not in per_point:
            per_point[case.point] = defaultdict(int)
            order.append(case.point)
        per_point[case.point][case.outcome] += 1
    table = render_table(
        title,
        ["crash point", "cases", "rolled fwd", "previous", "fresh", "violations"],
        [
            [
                point,
                sum(per_point[point].values()),
                per_point[point]["rolled_forward"],
                per_point[point]["previous"],
                per_point[point]["fresh_start"],
                per_point[point]["violation"],
            ]
            for point in order
        ],
    )
    lines = [
        f"  VIOLATION at {case.point}#{case.occurrence} "
        f"(interval {case.crashed_in_interval}): {case.detail}"
        for case in report.violations
    ]
    return table, lines


def build_faults_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Fault injection: crash-point sweep with verified "
        "recovery, NVM media-error demos.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sweep = sub.add_parser(
        "sweep",
        help="crash at every enumerated point, recover, verify the invariant",
    )
    sweep.add_argument("--seed", type=int, default=0, help="workload seed")
    sweep.add_argument("--threads", type=int, default=2)
    sweep.add_argument("--intervals", type=int, default=3)
    sweep.add_argument(
        "--writes", type=int, default=4, help="dirty clusters per thread per interval"
    )
    sweep.add_argument(
        "--transient-rate",
        type=float,
        default=0.0,
        help="transient NVM write-failure probability during the sweep",
    )
    sweep.add_argument(
        "--no-demos",
        action="store_true",
        help="skip the transient-retry and torn-metadata demos",
    )
    sweep.add_argument(
        "--multicore",
        action="store_true",
        help="also sweep crash points in context-switch tracker save/restore "
        "and the multicore checkpoint barrier",
    )
    sweep.add_argument(
        "--cores", type=int, default=2, help="cores for the --multicore sweep"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded crash-schedule fuzzing with a persist-order oracle "
        "and golden-image recovery verification",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--budget",
        type=int,
        default=256,
        help="total schedules, split evenly across the mechanism x engine grid",
    )
    fuzz.add_argument(
        "--mechanism",
        action="append",
        choices=["prosper", "dirtybit", "ssp", "flush", "undo", "redo"],
        help="mechanism(s) to fuzz (repeatable; default: prosper, dirtybit)",
    )
    fuzz.add_argument(
        "--engine",
        action="append",
        choices=["scalar", "batched"],
        help="execution engine(s) to fuzz (repeatable; default: both)",
    )
    fuzz.add_argument("--ops", type=int, default=1200, help="trace length")
    fuzz.add_argument(
        "--intervals", type=int, default=4, help="checkpoint intervals per run"
    )
    fuzz.add_argument(
        "--report", type=Path, default=None, help="write the JSON campaign report here"
    )
    fuzz.add_argument(
        "--schedule",
        type=int,
        default=None,
        help="replay only this schedule index per combo (reproducing a report line)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking failing persist plans",
    )
    fuzz.add_argument(
        "--weaken",
        action="store_true",
        help="enable the TEST-ONLY trust-completeness recovery mutant "
        "(prosper); the campaign should then FAIL — demonstrates detection",
    )
    return parser


def _faults_fuzz_main(args) -> int:
    import json

    from repro.faults.fuzzer import FuzzConfig, run_campaign

    try:
        config = FuzzConfig(
            seed=args.seed,
            budget=args.budget,
            mechanisms=tuple(args.mechanism or ("prosper", "dirtybit")),
            engines=tuple(args.engine or ("scalar", "batched")),
            ops=args.ops,
            intervals=args.intervals,
            weaken=args.weaken,
            shrink=not args.no_shrink,
            only_schedule=args.schedule,
        )
        report = run_campaign(config)
    except ValueError as exc:
        print(f"repro faults fuzz: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    def cell(counts: dict, key: str) -> int:
        return counts.get(key, 0)

    print(render_table(
        f"Crash-schedule fuzz campaign (seed {report['seed']}, "
        f"{report['schedules']} schedules, {report['ops']} ops x "
        f"{report['intervals']} intervals)",
        ["mechanism", "engine", "schedules", "rolled fwd", "previous",
         "fresh", "no crash", "violations"],
        [
            [
                combo["mechanism"],
                combo["engine"],
                combo["schedules"],
                cell(combo["classifications"], "rolled_forward"),
                cell(combo["classifications"], "previous"),
                cell(combo["classifications"], "fresh_start"),
                cell(combo["classifications"], "no_crash"),
                cell(combo["classifications"], "violation"),
            ]
            for combo in report["combos"]
        ],
    ))
    print(
        f"\n{report['schedules']} schedules: "
        f"{len(report['violations'])} oracle violation(s)"
    )
    for violation in report["violations"]:
        crash = violation["crash"]
        where = (
            f"cycle {crash['cycle']}"
            if crash["kind"] == "cycle"
            else f"{crash['point']}#{crash['occurrence']}"
        )
        print(
            f"  VIOLATION {violation['mechanism']}/{violation['engine']} "
            f"schedule {violation['index']} at {where}: {violation['detail']}"
        )
        if violation.get("shrunk_plan") is not None:
            print(f"    minimal plan: {violation['shrunk_plan']}")
        print(f"    reproduce: {violation['repro']}")

    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nJSON report written to {args.report}")

    return EXIT_OK if report["ok"] else EXIT_VIOLATIONS


def _faults_main(argv: list[str]) -> int:
    from repro.faults.sweep import (
        CrashConsistencyChecker,
        torn_metadata_demo,
        transient_retry_demo,
    )

    args = build_faults_parser().parse_args(argv)
    if args.action == "fuzz":
        return _faults_fuzz_main(args)
    try:
        checker = CrashConsistencyChecker(
            seed=args.seed,
            threads=args.threads,
            intervals=args.intervals,
            writes_per_interval=args.writes,
            transient_rate=args.transient_rate,
        )
    except ValueError as exc:
        print(f"repro faults sweep: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    report = checker.run()
    table, violation_lines = _render_sweep_report(
        report,
        f"Crash-consistency sweep (seed {report.seed}, "
        f"{report.threads} threads, {report.intervals} intervals)",
    )
    print(table)
    print(
        f"\n{len(report.cases)} cases over {report.points_swept} crash points: "
        f"{len(report.violations)} invariant violation(s)"
    )
    for line in violation_lines:
        print(line)

    failed = not report.ok
    if args.multicore:
        from repro.faults.multicore_sweep import MulticoreCrashChecker

        mc_checker = MulticoreCrashChecker(
            seed=args.seed,
            cores=args.cores,
            intervals=args.intervals,
            writes_per_interval=args.writes,
        )
        mc_report = mc_checker.run()
        mc_table, mc_lines = _render_sweep_report(
            mc_report,
            f"Multicore crash sweep (seed {mc_report.seed}, "
            f"{mc_report.cores} cores, {mc_report.intervals} intervals)",
        )
        print()
        print(mc_table)
        print(
            f"\n{len(mc_report.cases)} cases over {mc_report.points_swept} "
            f"crash points: {len(mc_report.violations)} invariant violation(s)"
        )
        for line in mc_lines:
            print(line)
        failed = failed or not mc_report.ok

    if not args.no_demos:
        retry = transient_retry_demo(seed=args.seed, threads=args.threads)
        print(render_table(
            "Transient NVM write errors: retry with backoff, then recover",
            ["checkpoints", "write retries", "resumed from", "state verified"],
            [[retry.checkpoints, retry.retries, retry.resumed_from,
              "yes" if retry.state_ok else "NO"]],
        ))
        torn = torn_metadata_demo(seed=args.seed, threads=args.threads)
        print(render_table(
            "Torn metadata record: CRC detection, fall back to previous",
            ["resumed from", "staged discarded", "tear detected", "state verified"],
            [[torn.resumed_from, torn.discarded_staged,
              "yes" if torn.detected else "NO",
              "yes" if torn.state_ok else "NO"]],
        ))
        failed = failed or not retry.state_ok or not torn.state_ok or not torn.detected
    return EXIT_VIOLATIONS if failed else EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Prosper: Program Stack "
        "Persistence in Hybrid Memory Systems' (HPCA 2024).  "
        "Fault injection lives under the 'faults' subcommand "
        "(repro faults sweep --help).",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["all", "list"],
        help="figure to regenerate, 'all', or 'list'",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=60_000,
        help="approximate trace length per workload (default 60000)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write each table into (one .txt per figure)",
    )
    parser.add_argument(
        "--csv",
        type=Path,
        default=None,
        help="directory to write raw result rows as CSV (tabular figures only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 1 (default) runs the legacy serial path",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock budget; exceeded units are killed and "
        "retried (requires --jobs >= 2)",
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        metavar="FILE",
        help="journal per-unit progress to this JSONL manifest",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay units already journaled ok in --manifest instead of "
        "re-running them",
    )
    parser.add_argument(
        "--engine",
        choices=["batched", "scalar"],
        default=None,
        help="execution engine: the vectorized fast path (default) or the "
        "scalar reference; both produce identical results "
        "(see docs/PERFORMANCE.md)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "faults":
        try:
            return _faults_main(argv[1:])
        except KeyboardInterrupt:
            print("repro faults: interrupted", file=sys.stderr)
            return EXIT_INTERRUPTED
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(COMMANDS):
            print(name)
        print("faults (subcommands: sweep, fuzz)")
        return 0
    if args.resume and args.manifest is None:
        print("repro: error: --resume requires --manifest", file=sys.stderr)
        return 2
    if args.engine is not None:
        # Through the environment so harness worker processes inherit it.
        os.environ["REPRO_ENGINE"] = args.engine

    names = sorted(COMMANDS) if args.command == "all" else [args.command]
    opts = HarnessOptions(
        ops=args.ops,
        jobs=args.jobs,
        timeout_s=args.timeout,
        manifest_path=args.manifest,
        resume=args.resume,
        progress=lambda msg: print(f"# {msg}", file=sys.stderr),
    )

    delivered: list[FigureOutcome] = []

    def deliver(outcome: FigureOutcome) -> None:
        delivered.append(outcome)
        print(outcome.text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{outcome.name}.txt").write_text(outcome.text + "\n")
        if args.csv is not None and outcome.raw_rows:
            from repro.analysis.export import export_experiment

            export_experiment(outcome.name, outcome.raw_rows, args.csv)

    try:
        run_figures(names, opts, on_figure=deliver)
    except ManifestMismatch as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except HarnessInterrupted:
        # Completed (and partially completed) figures were already flushed
        # through ``deliver`` — stdout, --out and --csv artifacts included.
        print(
            f"repro: interrupted; flushed {len(delivered)}/{len(names)} "
            "figure(s)",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED

    failed = [oc for oc in delivered if oc.failures]
    if failed:
        for outcome in failed:
            print(
                f"repro: {outcome.name}: "
                f"{len(outcome.failures)}/{outcome.units_total} runs failed",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
