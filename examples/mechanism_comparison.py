#!/usr/bin/env python3
"""Compare stack-persistence mechanisms on one workload (Figure 8 style).

Runs a memcached-like workload under every mechanism the paper evaluates —
Prosper, page-level Dirtybit, SSP at three consolidation intervals, and
Romulus — and prints execution time normalized to no persistence, plus each
mechanism's checkpoint footprint.

Run:  python examples/mechanism_comparison.py [target_ops]
"""

import sys

from repro import (
    DirtyBitPersistence,
    ProsperPersistence,
    RomulusPersistence,
    SspPersistence,
    run_mechanism,
)
from repro.analysis.report import format_bytes, render_table
from repro.experiments.runner import vanilla_cycles
from repro.workloads import ycsb_mem


def main() -> None:
    target_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    trace = ycsb_mem(target_ops=target_ops)
    base = vanilla_cycles(trace)

    mechanisms = [
        ("prosper", ProsperPersistence()),
        ("dirtybit", DirtyBitPersistence()),
        ("ssp-10us", SspPersistence(consolidation_interval_us=10)),
        ("ssp-100us", SspPersistence(consolidation_interval_us=100)),
        ("ssp-1ms", SspPersistence(consolidation_interval_us=1000)),
        ("romulus", RomulusPersistence()),
    ]

    rows = []
    for label, mechanism in mechanisms:
        result = run_mechanism(
            trace, mechanism, interval_paper_ms=10.0, baseline_cycles=base
        )
        rows.append(
            [
                label,
                f"{result.normalized_time:.3f}x",
                "DRAM" if not mechanism.region_in_nvm else "NVM",
                format_bytes(mechanism.stats.mean_checkpoint_bytes),
                mechanism.stats.intervals,
            ]
        )

    print(
        render_table(
            f"Stack persistence on {trace.name} ({len(trace)} ops)",
            ["mechanism", "norm. time", "stack in", "mean ckpt", "intervals"],
            rows,
        )
    )
    print(
        "\nShape to expect (paper Figure 8): prosper < dirtybit < ssp-1ms"
        " < ssp-100us < ssp-10us, romulus worst."
    )


if __name__ == "__main__":
    main()
