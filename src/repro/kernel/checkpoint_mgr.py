"""Periodic whole-process checkpointing (the GemOS baseline of Section III-D).

The checkpoint manager captures, every interval, all process state needed to
resume after a crash:

* per-thread **register files** (including SP and the op index, our program
  counter surrogate);
* per-thread **stack images**, via whichever dirty-tracking mechanism the
  process is configured with (Prosper sub-page runs or page-granularity
  dirty bits) — incremental: only dirtied data is copied;
* process **metadata** (thread list, layout) as a small fixed-cost record.

Each checkpoint is written to NVM using the two-step staging/commit protocol
so a crash at any point leaves either the previous or the new checkpoint
fully intact.  :mod:`repro.kernel.restore` consumes the records produced
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitmap import DirtyRun
from repro.core.checkpoint import ProsperCheckpointEngine
from repro.core.tracker import ProsperTracker
from repro.cpu.registers import RegisterFile
from repro.kernel.process import Process, Thread
from repro.memory.hierarchy import MemoryHierarchy

#: Fixed cost of capturing non-memory state (registers, fds, metadata).
METADATA_CAPTURE_CYCLES = 800
#: Bytes of the metadata record persisted per checkpoint.
METADATA_BYTES = 512


@dataclass
class ThreadSnapshot:
    """Persistent record of one thread at a checkpoint."""

    tid: int
    registers: RegisterFile
    dirty_runs: list[DirtyRun] = field(default_factory=list)
    copied_bytes: int = 0


@dataclass
class ProcessCheckpoint:
    """One committed process checkpoint in NVM."""

    sequence: int
    threads: list[ThreadSnapshot]
    committed: bool = False

    @property
    def total_bytes(self) -> int:
        return METADATA_BYTES + sum(t.copied_bytes for t in self.threads)


class CheckpointManager:
    """Drives periodic checkpoints of one process."""

    def __init__(
        self,
        process: Process,
        hierarchy: MemoryHierarchy,
        tracker: ProsperTracker | None = None,
    ) -> None:
        self.process = process
        self.hierarchy = hierarchy
        self.tracker = tracker
        self.checkpoints: list[ProcessCheckpoint] = []
        self._engines: dict[int, ProsperCheckpointEngine] = {}
        self._sequence = 0

    def _walk_bound(self, thread: Thread) -> int:
        """Lowest address whose bitmap words the OS must inspect/clear.

        Combines the thread's SP with the tracker's lowest dirty address —
        taken from the live tracker when the thread is current, or from the
        tracker state saved at its last context switch (Section III-C).
        The bound must cover dead frames too, so stale dirty bits below the
        final SP are cleared rather than leaking into later checkpoints.
        """
        candidates = [thread.registers.stack_pointer]
        if self.tracker is not None and self.tracker.bitmap is thread.bitmap:
            if self.tracker.min_dirty_address is not None:
                candidates.append(self.tracker.min_dirty_address)
        elif thread.tracker_state is not None and thread.tracker_state.min_dirty_address:
            candidates.append(thread.tracker_state.min_dirty_address)
        return max(thread.stack.start, min(candidates))

    def _engine_for(self, thread: Thread) -> ProsperCheckpointEngine | None:
        if thread.bitmap is None or self.tracker is None:
            return None
        engine = self._engines.get(thread.tid)
        if engine is None:
            engine = ProsperCheckpointEngine(
                self.tracker, thread.bitmap, self.hierarchy
            )
            self._engines[thread.tid] = engine
        return engine

    def checkpoint_process(self, crash_during_commit: bool = False) -> tuple[ProcessCheckpoint, int]:
        """Capture one full process checkpoint; returns (record, cycles).

        With *crash_during_commit* set, the checkpoint is staged but the
        commit flag never flips — simulating a power failure mid-commit for
        the recovery tests.
        """
        cycles = METADATA_CAPTURE_CYCLES
        cycles += self.hierarchy.copy_dram_to_nvm(METADATA_BYTES)

        snapshots: list[ThreadSnapshot] = []
        for thread in self.process.iter_threads():
            snap = ThreadSnapshot(thread.tid, thread.registers.snapshot())
            engine = self._engine_for(thread)
            if engine is not None:
                result = engine.checkpoint(
                    self._sequence,
                    active_low_hint=self._walk_bound(thread),
                    final_sp=thread.registers.stack_pointer,
                    crash_after_stage=crash_during_commit,
                )
                snap.copied_bytes = result.copied_bytes
                snap.dirty_runs = (
                    engine.staged.runs if engine.staged is not None else []
                )
                cycles += result.cycles
            snapshots.append(snap)

        record = ProcessCheckpoint(self._sequence, snapshots)
        if not crash_during_commit:
            # Flip the commit record (a small ordered NVM write).
            if self.hierarchy.nvm is not None:
                cycles += self.hierarchy.nvm.write(8, self.hierarchy.now)
                cycles += self.hierarchy.persist_barrier()
            record.committed = True
        self.checkpoints.append(record)
        self._sequence += 1
        return record, cycles

    @property
    def last_committed(self) -> ProcessCheckpoint | None:
        for record in reversed(self.checkpoints):
            if record.committed:
                return record
        return None

    def complete_staged_commits(self) -> int:
        """Recovery helper: finish any staged-but-uncommitted thread commits.

        Returns the number of thread engines whose staged data was applied.
        """
        completed = 0
        for engine in self._engines.values():
            if engine.staged is not None and not engine.staged.committed:
                engine.recover_staged()
                completed += 1
        return completed
