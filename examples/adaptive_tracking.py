#!/usr/bin/env python3
"""Adaptive tracking: the OS re-tunes Prosper per workload behaviour.

The paper leaves two adaptation loops as future work; this example runs
both implementations:

1. **Granularity adaptation** — a sparse writer keeps 8-byte tracking,
   while a streaming writer is detected as dense and moved along the
   granularity ladder into the page-level Dirtybit fallback.
2. **Watermark adaptation** — starting from HWM=20, the controller walks
   mcf's table toward a small HWM and SSSP's toward a large one, matching
   the opposing trends of Figure 13.

Run:  python examples/adaptive_tracking.py
"""

from repro import AdaptiveProsperPersistence, ProsperPersistence, run_mechanism
from repro.analysis.report import format_bytes, render_table
from repro.experiments.extensions import adaptive_watermark_experiment
from repro.experiments.runner import vanilla_cycles
from repro.workloads import sparse_workload, stream_workload


def granularity_demo() -> None:
    rows = []
    for trace in (
        sparse_workload(pages=48, rounds=100),
        stream_workload(array_bytes=96 * 1024, passes=3),
    ):
        base = vanilla_cycles(trace)
        for label, factory in (
            ("fixed 8B", ProsperPersistence),
            ("adaptive", AdaptiveProsperPersistence),
        ):
            mech = factory()
            result = run_mechanism(trace, mech, 10.0, baseline_cycles=base)
            final = (
                mech.current_granularity
                if isinstance(mech, AdaptiveProsperPersistence)
                else 8
            )
            rows.append(
                [
                    trace.name,
                    label,
                    f"{result.normalized_time:.3f}",
                    format_bytes(mech.stats.mean_checkpoint_bytes),
                    "page" if final == 4096 else f"{final}B",
                ]
            )
    print(
        render_table(
            "Granularity adaptation",
            ["workload", "tracking", "norm. time", "mean ckpt", "final granularity"],
            rows,
        )
    )


def watermark_demo() -> None:
    results = adaptive_watermark_experiment(target_ops=30_000)
    print()
    print(
        render_table(
            "HWM hill-climb from a common start of 20",
            ["workload", "final HWM", "first steps"],
            [
                [r.workload, r.final_hwm, " -> ".join(map(str, r.history[:8]))]
                for r in results
            ],
        )
    )
    print(
        "\nmcf (scattered temporaries) walks DOWN; SSSP (spatial locality)"
        " walks UP — the controller discovers Figure 13's per-workload"
        " optima automatically."
    )


if __name__ == "__main__":
    granularity_demo()
    watermark_demo()
