"""Figure 11 — checkpoint size vs checkpoint interval (1/5/10 ms).

Runs Quicksort and Recursive (depths 4/8/16) under Prosper at three
checkpoint intervals, reporting mean checkpoint size and the per-byte
checkpoint cost.
Paper shape: Recursive checkpoint size grows with the interval (no
coalescing, no shrink within the interval) while Quicksort shrinks at 10 ms;
Recursive's per-byte checkpoint time is highest at 1 ms because many
checkpoints carry no data yet still pay the bitmap inspection.
"""

from collections import defaultdict

from repro.analysis.report import format_bytes, render_table
from repro.experiments import evaluation


def test_fig11_interval_sweep(benchmark):
    cells = benchmark.pedantic(
        evaluation.fig11_interval_sweep,
        rounds=1,
        iterations=1,
    )
    sizes = defaultdict(dict)
    per_byte = defaultdict(dict)
    for c in cells:
        sizes[c.workload][c.interval_paper_ms] = c.mean_checkpoint_bytes
        per_byte[c.workload][c.interval_paper_ms] = c.ns_per_byte
    intervals = [1.0, 5.0, 10.0]
    print()
    print(
        render_table(
            "Figure 11: mean checkpoint size vs interval",
            ["workload"] + [f"{i:g}ms" for i in intervals],
            [
                [w] + [format_bytes(sizes[w][i]) for i in intervals]
                for w in sorted(sizes)
            ],
        )
    )
    print()
    print(
        render_table(
            "Figure 11 (note): per-byte checkpoint time (ns/B)",
            ["workload"] + [f"{i:g}ms" for i in intervals],
            [
                [w] + [f"{per_byte[w][i]:.1f}" for i in intervals]
                for w in sorted(per_byte)
            ],
        )
    )
    for depth in (4, 8, 16):
        name = f"rec-{depth}"
        # Recursive: the stack never shrinks in-interval -> size grows
        # roughly with the interval (no coalescing opportunity).
        assert sizes[name][10.0] > sizes[name][1.0] * 2
        # Per-byte checkpoint cost is highest at 1 ms (empty checkpoints
        # still pay bitmap inspection; paper: 22 ns vs 11 ns for Rec-4).
        assert per_byte[name][1.0] > per_byte[name][10.0]
    # Quicksort: repeated sorts re-dirty the same shallow frames, so the
    # size saturates with the interval (coalescing benefit), in contrast
    # to Recursive's near-linear growth.
    qs_growth = sizes["quicksort"][10.0] / sizes["quicksort"][5.0]
    rec_growth = sizes["rec-8"][10.0] / sizes["rec-8"][5.0]
    assert qs_growth < rec_growth * 1.05
