"""Context-switch overhead of Prosper (Section V study).

A two-thread micro-benchmark alternates on one CPU; each slice performs
random writes to its own stack.  The measured quantity is the extra
save/restore work the scheduler does for the Prosper tracker state.
Paper shape: ~870 cycles of additional overhead per switch on average.
"""

from repro.experiments import overhead


def test_context_switch_overhead(benchmark):
    result = benchmark.pedantic(
        overhead.context_switch_overhead,
        kwargs={"switches": 400, "writes_per_slice": 400},
        rounds=1,
        iterations=1,
    )
    print()
    print("Context-switch Prosper overhead")
    print("===============================")
    print(f"switches:                 {result.switches}")
    print(f"mean prosper cycles:      {result.mean_prosper_cycles:.0f}")
    print(f"total prosper cycles:     {result.total_prosper_cycles}")
    print("paper reference:          ~870 cycles/switch")
    assert 300 < result.mean_prosper_cycles < 2500
