#!/usr/bin/env python3
"""End-to-end process persistence: checkpoint, crash, recover.

Mirrors the paper's correctness test (Section III-D): a process runs with
periodic Prosper checkpoints, the machine "loses power" — all DRAM and CPU
state vanishes, only NVM survives — and the process resumes from its last
committed checkpoint.  A second crash is injected *between* the staging and
commit steps of a checkpoint to show the two-step protocol rolling forward.

Run:  python examples/crash_recovery.py
"""

from repro.config import setup_i
from repro.core.tracker import ProsperTracker
from repro.kernel.checkpoint_mgr import CheckpointManager
from repro.kernel.process import Process
from repro.kernel.restore import CrashSimulator
from repro.memory.hierarchy import MemoryHierarchy


def run_some_work(proc: Process, tracker: ProsperTracker, ops: int, at: int) -> None:
    """Pretend the thread executed *ops* instructions writing its stack."""
    thread = proc.thread(1)
    for i in range(ops):
        tracker.observe_store(thread.stack.end - 64 - (i % 256) * 8, 8)
    thread.registers.op_index = at
    thread.registers.stack_pointer = thread.stack.end - 4096


def main() -> None:
    proc = Process(name="demo")
    proc.spawn_thread(stack_bytes=1 << 20, persistent=True)
    hierarchy = MemoryHierarchy(setup_i())
    tracker = ProsperTracker(proc.tracker_config)
    tracker.configure(proc.thread(1).bitmap)
    manager = CheckpointManager(proc, hierarchy, tracker)
    sim = CrashSimulator(proc, manager)

    # --- interval 0: work, then a clean checkpoint ---------------------
    run_some_work(proc, tracker, ops=500, at=500)
    record, cycles = manager.checkpoint_process()
    print(f"checkpoint {record.sequence}: committed={record.committed}, "
          f"{record.total_bytes} bytes, {cycles} cycles")

    # --- crash out of nowhere ------------------------------------------
    sim.crash()
    print("\n*** power failure #1 (DRAM and registers lost) ***")
    report = sim.recover()
    print(f"recovered from checkpoint {report.resumed_from_sequence}; "
          f"thread resumes at op {proc.thread(1).registers.op_index}")
    assert proc.thread(1).registers.op_index == 500

    # --- interval 1: more work, crash mid-commit ------------------------
    tracker.configure(proc.thread(1).bitmap)
    run_some_work(proc, tracker, ops=300, at=800)
    record, _ = manager.checkpoint_process(crash_during_commit=True)
    print(f"\ncheckpoint {record.sequence}: committed={record.committed} "
          "(crashed between staging and commit)")

    sim.crash()
    print("*** power failure #2 (mid-commit) ***")
    report = sim.recover()
    print(f"rolled forward: {report.rolled_forward}; "
          f"recovered from checkpoint {report.resumed_from_sequence}; "
          f"thread resumes at op {proc.thread(1).registers.op_index}")
    assert report.rolled_forward
    assert proc.thread(1).registers.op_index == 800

    print("\nBoth recoveries resumed from a consistent state — the two-step "
          "staging/commit protocol never exposes a torn checkpoint.")


if __name__ == "__main__":
    main()
