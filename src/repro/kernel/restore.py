"""Crash model and recovery path.

The paper validates correctness by killing the gem5 process while an
application runs inside GemOS, restarting, and observing the process resume
from its last checkpoint.  The equivalent here:

* :class:`CrashSimulator` discards everything volatile — CPU registers, the
  DRAM stack contents, tracker state, un-flushed cache lines — and keeps
  only what lives in NVM: committed checkpoints and, possibly, a staged but
  uncommitted one.
* :func:`recover` replays the two-step commit rule: a fully staged
  checkpoint is rolled forward (its staging buffer is complete), anything
  less is discarded and the previous committed checkpoint wins.

The recovery report states which checkpoint the process resumed from and
what state was restored, which the integration tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.checkpoint_mgr import CheckpointManager, ProcessCheckpoint
from repro.kernel.process import Process


@dataclass
class RecoveryReport:
    """Outcome of one crash/restore cycle."""

    resumed_from_sequence: int | None
    rolled_forward: bool
    threads_restored: int

    @property
    def recovered(self) -> bool:
        return self.resumed_from_sequence is not None


class CrashSimulator:
    """Simulates a power failure over a checkpointed process."""

    def __init__(self, process: Process, manager: CheckpointManager) -> None:
        self.process = process
        self.manager = manager
        self.crashed = False

    def crash(self) -> None:
        """Drop all volatile state.

        Register files are zeroed and dirty bitmaps cleared — they lived in
        DRAM/core.  NVM-resident checkpoint records in the manager survive.
        """
        self.crashed = True
        for thread in self.process.iter_threads():
            thread.registers.stack_pointer = 0
            thread.registers.op_index = 0
            thread.registers.gprs = [0] * len(thread.registers.gprs)
            if thread.bitmap is not None:
                thread.bitmap.clear()
            thread.tracker_state = None

    def recover(self) -> RecoveryReport:
        """Restart after a crash and resume from the best checkpoint."""
        if not self.crashed:
            raise RuntimeError("recover() called without a crash")

        # Roll forward any checkpoint that was fully staged: its staging
        # buffer is complete in NVM, so the commit can be finished.
        rolled = self.manager.complete_staged_commits() > 0
        candidate: ProcessCheckpoint | None = None
        for record in reversed(self.manager.checkpoints):
            if record.committed:
                candidate = record
                break
            if record.threads and all(
                snap.dirty_runs is not None for snap in record.threads
            ) and rolled:
                # The staged data was applied during complete_staged_commits;
                # promote the record.
                record.committed = True
                candidate = record
                break

        if candidate is None:
            return RecoveryReport(None, rolled, 0)

        restored = 0
        for snap in candidate.threads:
            thread = self.process.threads.get(snap.tid)
            if thread is None:
                continue
            thread.registers.restore(snap.registers)
            restored += 1
        self.crashed = False
        return RecoveryReport(candidate.sequence, rolled, restored)
