"""Extensions beyond the paper: Prosper on the heap, adaptive granularity,
adaptive watermarks (the paper's stated future directions)."""

from repro.analysis.report import format_bytes, render_table
from repro.experiments import extensions


def test_prosper_heap(benchmark):
    cells = benchmark.pedantic(
        extensions.prosper_heap_experiment,
        kwargs={"target_ops": 40_000},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            "Extension: Prosper tracking the heap (stack always Prosper)",
            ["workload", "heap mechanism", "normalized time"],
            [
                [c.workload, c.heap_mechanism, f"{c.normalized_time:.3f}"]
                for c in cells
            ],
        )
    )
    by_key = {(c.workload, c.heap_mechanism): c.normalized_time for c in cells}
    for workload in {c.workload for c in cells}:
        assert by_key[(workload, "prosper")] <= by_key[(workload, "ssp-10us")]


def test_adaptive_granularity(benchmark):
    cells = benchmark.pedantic(
        extensions.adaptive_granularity_experiment, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            "Extension: OS-driven granularity adaptation",
            ["workload", "mechanism", "normalized", "mean ckpt", "final gran", "moves"],
            [
                [
                    c.workload,
                    c.mechanism,
                    f"{c.normalized_time:.3f}",
                    format_bytes(c.mean_checkpoint_bytes),
                    c.final_granularity,
                    c.transitions,
                ]
                for c in cells
            ],
        )
    )
    stream = {c.mechanism: c for c in cells if c.workload == "stream"}
    assert stream["prosper-adaptive"].final_granularity > 8


def test_adaptive_watermarks(benchmark):
    results = benchmark.pedantic(
        extensions.adaptive_watermark_experiment,
        kwargs={"target_ops": 40_000},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            "Extension: HWM hill-climb (start 20)",
            ["workload", "final HWM", "walk"],
            [
                [r.workload, r.final_hwm, "->".join(str(h) for h in r.history[:10])]
                for r in results
            ],
        )
    )
    by_name = {r.workload: r.final_hwm for r in results}
    assert by_name["g500_sssp"] >= by_name["605.mcf_s"]


def test_cross_thread_writes(benchmark):
    cells = benchmark.pedantic(
        extensions.cross_thread_write_experiment, rounds=1, iterations=1
    )
    base = cells[0]
    print()
    print(
        render_table(
            "Extension: inter-thread stack writes via page-permission faults",
            ["cross-write fraction", "cross writes", "cycles", "overhead"],
            [
                [
                    f"{c.cross_write_fraction:.0%}",
                    c.cross_writes,
                    c.cycles,
                    f"{c.overhead_vs(base):.3f}x",
                ]
                for c in cells
            ],
        )
    )
    overheads = [c.overhead_vs(base) for c in cells]
    assert overheads == sorted(overheads)  # monotone in the fraction
    assert overheads[1] < 1.25  # the paper's rare (~1%) regime stays cheap
