"""Checkpoint-performance experiments (Section V, Setup-I: Figures 8-11).

* **Figure 8** — stack persistence: normalized execution time under
  Prosper, Romulus, SSP (three consolidation intervals) and Dirtybit.
* **Figure 9** — full memory-state persistence: SSP on the whole memory vs
  SSP (heap) combined with Dirtybit or Prosper (stack).
* **Figure 10** — Table III micro-benchmarks under Prosper at five tracking
  granularities: mean checkpoint size and checkpoint time normalized to the
  page-level Dirtybit scheme.
* **Figure 11** — checkpoint size vs checkpoint interval (1/5/10 ms) for
  Quicksort and Recursive at depths 4/8/16, plus the per-byte checkpoint
  time observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import TrackerConfig
from repro.experiments.runner import (
    RunResult,
    run_mechanism,
    vanilla_cycles,
)
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.romulus import RomulusPersistence
from repro.persistence.ssp import SspPersistence
from repro.workloads.apps import g500_sssp, gapbs_pr, ycsb_mem
from repro.workloads.callstack import quicksort_workload, recursive_workload
from repro.workloads.synthetic import (
    normal_workload,
    poisson_workload,
    random_workload,
    sparse_workload,
    stream_workload,
)
from repro.workloads.trace import Trace

DEFAULT_OPS = 100_000

#: SSP consolidation-thread invocation intervals swept in the paper (µs).
SSP_INTERVALS_US = (10.0, 100.0, 1000.0)

#: Tracking granularities swept in Figure 10 (bytes).
FIG10_GRANULARITIES = (8, 16, 32, 64, 128)


def _app_traces(target_ops: int = DEFAULT_OPS, seed: int = 42) -> list[Trace]:
    return [
        gapbs_pr(target_ops, seed),
        g500_sssp(target_ops, seed),
        ycsb_mem(target_ops, seed),
    ]


#: Stable keys for the seven Table III micro-benchmarks, in figure order.
MICRO_BENCHMARK_KEYS = (
    "random", "stream", "sparse", "quicksort", "recursive", "normal", "poisson",
)


def micro_benchmark_builders(
    scale: float = 1.0, seed: int = 11
) -> dict[str, Callable[[], Trace]]:
    """Deferred builders for the Table III micro-benchmarks, keyed stably.

    Random uses a small array with several times more writes than words so
    each interval's coverage is dense-but-fragmented — the case where
    page-granularity copying beats sub-page tracking (the paper's "except
    Random and Stream" observation).
    """
    s = scale
    return {
        "random": lambda: random_workload(
            array_bytes=16 * 1024, num_writes=int(100_000 * s), seed=seed
        ),
        "stream": lambda: stream_workload(
            array_bytes=int(128 * 1024 * min(1.0, s)) // 8 * 8, passes=2, seed=seed
        ),
        "sparse": lambda: sparse_workload(pages=48, rounds=int(120 * s), seed=seed),
        "quicksort": lambda: quicksort_workload(elements=int(1500 * s), seed=seed),
        "recursive": lambda: recursive_workload(
            depth=8, descents=int(250 * s), seed=seed
        ),
        "normal": lambda: normal_workload(blocks=int(600 * s), seed=seed),
        "poisson": lambda: poisson_workload(blocks=int(600 * s), seed=seed),
    }


def micro_benchmarks(scale: float = 1.0, seed: int = 11) -> list[Trace]:
    """The seven Table III micro-benchmarks at a size multiplier."""
    builders = micro_benchmark_builders(scale, seed)
    return [builders[key]() for key in MICRO_BENCHMARK_KEYS]


# --------------------------------------------------------------------- #
# Figure 8 — stack persistence mechanisms
# --------------------------------------------------------------------- #

def stack_mechanisms() -> dict[str, Callable[[], object]]:
    """Factories for the Figure 8 mechanism sweep."""
    factories: dict[str, Callable[[], object]] = {
        "romulus": RomulusPersistence,
        "dirtybit": DirtyBitPersistence,
        "prosper": ProsperPersistence,
    }
    for us in SSP_INTERVALS_US:
        label = f"ssp-{us:g}us" if us < 1000 else f"ssp-{us / 1000:g}ms"
        factories[label] = (lambda u=us: SspPersistence(consolidation_interval_us=u))
    return factories


def fig8_stack_persistence(
    target_ops: int = DEFAULT_OPS,
    interval_paper_ms: float = 10.0,
    seed: int = 42,
) -> list[RunResult]:
    """Normalized execution time of each mechanism on each application."""
    results: list[RunResult] = []
    for trace in _app_traces(target_ops, seed):
        base = vanilla_cycles(trace)
        for label, factory in stack_mechanisms().items():
            mechanism = factory()
            results.append(
                run_mechanism(
                    trace,
                    mechanism,
                    interval_paper_ms,
                    baseline_cycles=base,
                    mechanism_label=label,
                )
            )
    return results


# --------------------------------------------------------------------- #
# Figure 9 — full memory-state persistence
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class MemoryPersistenceCell:
    workload: str
    combination: str
    ssp_interval_us: float
    normalized_time: float


def fig9_memory_persistence(
    target_ops: int = DEFAULT_OPS,
    interval_paper_ms: float = 10.0,
    ssp_intervals_us: tuple[float, ...] = SSP_INTERVALS_US,
    seed: int = 42,
) -> list[MemoryPersistenceCell]:
    """SSP-everything vs SSP(heap)+Dirtybit/Prosper(stack)."""
    combos: dict[str, Callable[[], object]] = {
        "ssp": SspPersistence,  # stack also under SSP
        "ssp+dirtybit": DirtyBitPersistence,
        "ssp+prosper": ProsperPersistence,
    }
    results: list[MemoryPersistenceCell] = []
    for trace in _app_traces(target_ops, seed):
        base = vanilla_cycles(trace)
        for us in ssp_intervals_us:
            for combo, stack_factory in combos.items():
                if combo == "ssp":
                    stack_mech = SspPersistence(consolidation_interval_us=us)
                else:
                    stack_mech = stack_factory()
                heap_mech = SspPersistence(consolidation_interval_us=us)
                result = run_mechanism(
                    trace,
                    stack_mech,
                    interval_paper_ms,
                    heap_mechanism=heap_mech,
                    baseline_cycles=base,
                    mechanism_label=combo,
                )
                results.append(
                    MemoryPersistenceCell(
                        trace.name, combo, us, result.normalized_time
                    )
                )
    return results


# --------------------------------------------------------------------- #
# Figure 10 — usage patterns x tracking granularity
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class UsagePatternCell:
    workload: str
    granularity: int | str  # bytes, or "page" for the Dirtybit baseline
    mean_checkpoint_bytes: float
    mean_checkpoint_cycles: float
    checkpoint_time_vs_dirtybit: float


def fig10_usage_patterns(
    scale: float = 1.0,
    interval_paper_ms: float = 10.0,
    granularities: tuple[int, ...] = FIG10_GRANULARITIES,
    seed: int = 11,
) -> list[UsagePatternCell]:
    """Checkpoint size and normalized checkpoint time per micro-benchmark."""
    cells: list[UsagePatternCell] = []
    for trace in micro_benchmarks(scale, seed):
        base = vanilla_cycles(trace)

        dirtybit = DirtyBitPersistence()
        run_mechanism(
            trace, dirtybit, interval_paper_ms, baseline_cycles=base
        )
        db_cycles = dirtybit.stats.mean_checkpoint_cycles or 1.0
        cells.append(
            UsagePatternCell(
                trace.name,
                "page",
                dirtybit.stats.mean_checkpoint_bytes,
                db_cycles,
                1.0,
            )
        )

        for granularity in granularities:
            mech = ProsperPersistence(
                TrackerConfig().with_granularity(granularity)
            )
            run_mechanism(
                trace, mech, interval_paper_ms, baseline_cycles=base
            )
            cells.append(
                UsagePatternCell(
                    trace.name,
                    granularity,
                    mech.stats.mean_checkpoint_bytes,
                    mech.stats.mean_checkpoint_cycles,
                    (mech.stats.mean_checkpoint_cycles or 0.0) / db_cycles,
                )
            )
    return cells


# --------------------------------------------------------------------- #
# Figure 11 — checkpoint-interval sweep
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class IntervalSweepCell:
    workload: str
    interval_paper_ms: float
    mean_checkpoint_bytes: float
    ns_per_byte: float


def fig11_interval_sweep(
    intervals_paper_ms: tuple[float, ...] = (1.0, 5.0, 10.0),
    depths: tuple[int, ...] = (4, 8, 16),
    seed: int = 11,
) -> list[IntervalSweepCell]:
    """Checkpoint size vs interval for Quicksort and Rec-{4,8,16}.

    Recursive descents are separated by long compute blocks so short
    intervals produce empty checkpoints, reproducing the paper's per-byte
    cost observation.
    """
    traces = [quicksort_workload(elements=1500, seed=seed)]
    for depth in depths:
        traces.append(
            recursive_workload(
                depth=depth, descents=250, seed=seed
            )
        )

    cells: list[IntervalSweepCell] = []
    for trace in traces:
        base = vanilla_cycles(trace)
        for paper_ms in intervals_paper_ms:
            mech = ProsperPersistence()
            run_mechanism(
                trace, mech, paper_ms, baseline_cycles=base
            )
            total_bytes = mech.stats.total_checkpoint_bytes
            total_cycles = mech.stats.total_checkpoint_cycles
            ns_per_byte = (
                total_cycles / 3.0 / total_bytes if total_bytes else float("inf")
            )
            cells.append(
                IntervalSweepCell(
                    trace.name,
                    paper_ms,
                    mech.stats.mean_checkpoint_bytes,
                    ns_per_byte,
                )
            )
    return cells
