"""Custom model-specific registers of the Prosper hardware.

Section III-D: the OS programs the per-core tracker through custom MSRs —
two hold the stack virtual address range for the comparator circuit near
L1D, two more carry the tracking granularity and the base address of the
dirty-bitmap area.  A control register arms/disarms tracking and requests a
flush; a status register exposes the outstanding load/store counters the OS
polls for quiescence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.memory.address import AddressRange


class Msr(enum.Enum):
    """Names of the custom MSRs."""

    STACK_START = "PROSPER_STACK_START"
    STACK_END = "PROSPER_STACK_END"
    GRANULARITY = "PROSPER_GRANULARITY"
    BITMAP_BASE = "PROSPER_BITMAP_BASE"
    CONTROL = "PROSPER_CONTROL"
    STATUS = "PROSPER_STATUS"


class ControlBits(enum.IntFlag):
    """Bit layout of the CONTROL MSR."""

    ENABLE = 1 << 0
    FLUSH = 1 << 1


# Plain-int views of the control bits: ``control & ControlBits.ENABLE``
# routes through IntFlag.__and__ and is measurably slow on the per-store
# path, where MsrBank.enabled is consulted for every tracked store.
_ENABLE = int(ControlBits.ENABLE)
_FLUSH = int(ControlBits.FLUSH)


@dataclass
class MsrBank:
    """The per-core MSR file seen by both the OS and the tracker.

    The OS writes configuration (WRMSR); the tracker reads it and posts
    status.  Values are plain integers, as they would be in hardware.
    """

    stack_start: int = 0
    stack_end: int = 0
    granularity: int = 8
    bitmap_base: int = 0
    control: int = 0
    #: Outstanding tracker-generated loads+stores, polled for quiescence.
    outstanding_ops: int = 0
    #: Lowest stack address stored to in the current interval (the maximum
    #: active stack extent Prosper shares with the OS, Section III-A).
    min_dirty_address: int = 0

    def write(self, msr: Msr, value: int) -> None:
        """OS-side WRMSR."""
        if value < 0:
            raise ValueError(f"MSR value must be non-negative, got {value}")
        if msr is Msr.STACK_START:
            self.stack_start = value
        elif msr is Msr.STACK_END:
            self.stack_end = value
        elif msr is Msr.GRANULARITY:
            if value % 8 != 0 or value == 0:
                raise ValueError("granularity must be a positive multiple of 8")
            self.granularity = value
        elif msr is Msr.BITMAP_BASE:
            self.bitmap_base = value
        elif msr is Msr.CONTROL:
            self.control = value
        else:
            raise PermissionError(f"{msr.value} is read-only")

    def read(self, msr: Msr) -> int:
        """RDMSR."""
        return {
            Msr.STACK_START: self.stack_start,
            Msr.STACK_END: self.stack_end,
            Msr.GRANULARITY: self.granularity,
            Msr.BITMAP_BASE: self.bitmap_base,
            Msr.CONTROL: self.control,
            Msr.STATUS: self.outstanding_ops,
        }[msr]

    @property
    def enabled(self) -> bool:
        return bool(self.control & _ENABLE)

    @property
    def flush_requested(self) -> bool:
        return bool(self.control & _FLUSH)

    def clear_flush(self) -> None:
        self.control &= ~_FLUSH

    @property
    def stack_range(self) -> AddressRange:
        return AddressRange(self.stack_start, self.stack_end)

    def snapshot(self) -> "MsrBank":
        """Copy of the configuration, saved/restored on context switch."""
        return MsrBank(
            stack_start=self.stack_start,
            stack_end=self.stack_end,
            granularity=self.granularity,
            bitmap_base=self.bitmap_base,
            control=self.control,
            outstanding_ops=0,
            min_dirty_address=self.min_dirty_address,
        )
