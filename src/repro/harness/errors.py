"""Structured error taxonomy for supervised experiment runs.

Every run-unit failure is classified along two axes:

* **kind** — what happened mechanically: the unit exceeded its wall-clock
  budget (``Timeout``), the worker process died without reporting a result
  (``WorkerCrash``), or the workload itself raised (``WorkloadError``).
* **severity** — whether retrying can help: ``Transient`` failures are
  requeued with exponential backoff; ``Permanent`` ones are journaled and
  surface as a ``DEGRADED`` annotation on the owning figure.

Timeouts and worker crashes are environmental, so they start ``Transient``
and harden to ``Permanent`` only once the retry budget is exhausted.  A
workload exception is ``Permanent`` immediately — rerunning a
deterministic simulation cannot change its outcome — unless the exception
type is on the known-transient list (resource pressure, interrupted
syscalls) or the workload raised :class:`TransientWorkloadError` to ask
for a retry explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Failure kinds.
TIMEOUT = "Timeout"
WORKER_CRASH = "WorkerCrash"
WORKLOAD_ERROR = "WorkloadError"

#: Failure severities.
TRANSIENT = "Transient"
PERMANENT = "Permanent"

#: Exception type names whose failures are worth retrying: they signal
#: resource pressure or interruption, not a deterministic workload bug.
TRANSIENT_EXCEPTION_TYPES = frozenset(
    {
        "TransientWorkloadError",
        "MemoryError",
        "OSError",
        "BlockingIOError",
        "InterruptedError",
        "BrokenPipeError",
        "EOFError",
    }
)


class TransientWorkloadError(RuntimeError):
    """A workload-raised error the harness should treat as retryable."""


@dataclass(frozen=True)
class UnitFailure:
    """Terminal failure record for one run unit (after all retries)."""

    figure: str
    unit_id: str
    kind: str
    severity: str
    detail: str
    attempts: int

    @property
    def reason(self) -> str:
        """One-line reason used in journal records and DEGRADED notes."""
        return (
            f"{self.unit_id}: {self.kind} [{self.severity}] "
            f"after {self.attempts} attempt(s): {self.detail}"
        )

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "detail": self.detail,
            "attempts": self.attempts,
        }


def exception_is_transient(exc_type_name: str) -> bool:
    """Whether a workload exception of this type is worth retrying."""
    return exc_type_name in TRANSIENT_EXCEPTION_TYPES


def classify_event(kind: str, exc_type_name: str | None) -> str:
    """Severity of one failure *event*: is retrying it worthwhile?"""
    if kind in (TIMEOUT, WORKER_CRASH):
        return TRANSIENT
    if exc_type_name is not None and exception_is_transient(exc_type_name):
        return TRANSIENT
    return PERMANENT


def should_retry(kind: str, exc_type_name: str | None, attempt: int, max_retries: int) -> bool:
    """Decide whether a failed attempt is requeued.

    *attempt* is 0-based (the attempt that just failed); the unit has
    ``max_retries`` retries beyond the first attempt.  Only transient
    events retry; a permanent event (a deterministic workload exception)
    fails the unit immediately.  A unit whose transient events exhaust the
    retry budget is *hardened* to a Permanent terminal failure — nothing
    within this run will retry it again, only an explicit ``--resume``.
    """
    if attempt >= max_retries:
        return False
    return classify_event(kind, exc_type_name) == TRANSIENT


def backoff_delay(attempt: int, base_s: float, cap_s: float) -> float:
    """Exponential backoff delay before retry *attempt + 1* (seconds)."""
    return min(cap_s, base_s * (2.0 ** attempt))
