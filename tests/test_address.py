"""Tests for repro.memory.address: ranges and chunk math."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import (
    AddressRange,
    align_down,
    align_up,
    granule_index,
    line_index,
    page_index,
    span_granules,
    span_lines,
    span_pages,
)


class TestAlignment:
    def test_align_down(self):
        assert align_down(4097, 4096) == 4096
        assert align_down(4096, 4096) == 4096
        assert align_down(0, 64) == 0

    def test_align_up(self):
        assert align_up(4097, 4096) == 8192
        assert align_up(4096, 4096) == 4096

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_down(10, 0)
        with pytest.raises(ValueError):
            align_up(10, -4)

    @given(st.integers(0, 2**48), st.sampled_from([8, 64, 4096]))
    def test_align_properties(self, addr, alignment):
        down = align_down(addr, alignment)
        up = align_up(addr, alignment)
        assert down <= addr <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestIndices:
    def test_page_index(self):
        assert page_index(0) == 0
        assert page_index(4095) == 0
        assert page_index(4096) == 1

    def test_line_index(self):
        assert line_index(63) == 0
        assert line_index(64) == 1

    def test_granule_index(self):
        assert granule_index(15, 8) == 1
        assert granule_index(16, 16) == 1


class TestSpans:
    def test_span_within_one_page(self):
        assert list(span_pages(100, 8)) == [0]

    def test_span_crossing_page(self):
        assert list(span_pages(4090, 16)) == [0, 1]

    def test_span_zero_size(self):
        assert list(span_pages(100, 0)) == []
        assert list(span_lines(100, 0)) == []
        assert list(span_granules(100, 0, 8)) == []

    def test_span_lines_crossing(self):
        assert list(span_lines(60, 8)) == [0, 1]

    def test_span_granules_exact(self):
        assert list(span_granules(8, 8, 8)) == [1]
        assert list(span_granules(8, 9, 8)) == [1, 2]

    @given(
        st.integers(0, 2**32),
        st.integers(1, 1024),
        st.sampled_from([8, 64, 4096]),
    )
    def test_span_covers_every_byte(self, addr, size, chunk):
        indices = list(span_granules(addr, size, chunk))
        assert indices[0] == addr // chunk
        assert indices[-1] == (addr + size - 1) // chunk
        # contiguity
        assert indices == list(range(indices[0], indices[-1] + 1))


class TestAddressRange:
    def test_basic_properties(self):
        r = AddressRange(0x1000, 0x2000)
        assert r.size == 0x1000
        assert r.contains(0x1000)
        assert r.contains(0x1FFF)
        assert not r.contains(0x2000)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            AddressRange(0x2000, 0x1000)

    def test_empty_range_allowed(self):
        r = AddressRange(0x1000, 0x1000)
        assert r.size == 0
        assert not r.contains(0x1000)
        assert list(r.pages()) == []
        assert list(r.granules(8)) == []

    def test_contains_access(self):
        r = AddressRange(0x1000, 0x2000)
        assert r.contains_access(0x1FF8, 8)
        assert not r.contains_access(0x1FF9, 8)

    def test_overlaps(self):
        a = AddressRange(0, 100)
        b = AddressRange(99, 200)
        c = AddressRange(100, 200)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_intersection(self):
        a = AddressRange(0, 100)
        b = AddressRange(50, 150)
        inter = a.intersection(b)
        assert inter == AddressRange(50, 100)
        assert a.intersection(AddressRange(100, 200)) is None

    def test_pages(self):
        r = AddressRange(4000, 8193)
        assert list(r.pages()) == [0, 1, 2]

    def test_iter_chunks_alignment(self):
        r = AddressRange(100, 300)
        chunks = list(r.iter_chunks(128))
        assert chunks[0] == AddressRange(100, 128)
        assert chunks[-1].end == 300
        assert sum(c.size for c in chunks) == r.size

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_iter_chunks_cover_exactly(self, start, length):
        r = AddressRange(start, start + length)
        chunks = list(r.iter_chunks(64))
        assert sum(c.size for c in chunks) == length
        if chunks:
            assert chunks[0].start == start
            assert chunks[-1].end == start + length
            for a, b in zip(chunks, chunks[1:]):
                assert a.end == b.start
