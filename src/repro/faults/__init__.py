"""Fault injection and crash-consistency verification.

Three cooperating layers (see ``docs/FAULTS.md``):

* :mod:`repro.faults.injector` — named crash points threaded through the
  checkpoint pipeline, armed deterministically per (point, occurrence);
* :mod:`repro.faults.nvm_errors` — a seeded NVM media error model
  (transient failures, torn writes, sticky bad blocks) consulted by the
  device's reliable-write path;
* :mod:`repro.faults.sweep` — the crash-consistency sweep harness that
  crashes at every enumerated point and asserts the recovery invariant.

``sweep`` is intentionally *not* imported here: it pulls in the kernel
layer, which in turn reaches back down to :mod:`repro.memory.devices` —
a module that imports this package for the error model.  Import it as
``repro.faults.sweep`` directly.
"""

from repro.faults.injector import (
    BITMAP_CLEAR,
    COMMIT_FLAG_WRITE,
    CRASH_POINT_FAMILIES,
    METADATA_WRITE,
    PERSIST_BARRIER,
    STAGE_BEGIN,
    STAGE_COMPLETE,
    CrashInjected,
    FaultInjector,
    stage_run_copy,
)
from repro.faults.nvm_errors import (
    WRITE_BAD_BLOCK,
    WRITE_OK,
    WRITE_TORN,
    WRITE_TRANSIENT,
    NvmErrorModel,
    NvmMediaError,
)

__all__ = [
    "BITMAP_CLEAR",
    "COMMIT_FLAG_WRITE",
    "CRASH_POINT_FAMILIES",
    "METADATA_WRITE",
    "PERSIST_BARRIER",
    "STAGE_BEGIN",
    "STAGE_COMPLETE",
    "CrashInjected",
    "FaultInjector",
    "stage_run_copy",
    "WRITE_BAD_BLOCK",
    "WRITE_OK",
    "WRITE_TORN",
    "WRITE_TRANSIENT",
    "NvmErrorModel",
    "NvmMediaError",
]
