"""Energy and area model of the Prosper lookup table (Section V).

The paper reports CACTI-P numbers for the 16-entry lookup table at 7 nm
FinFET with two read ports and one write port:

* dynamic read energy per access: 0.000773194 nJ
* dynamic write energy per access: 0.000128375 nJ
* bank leakage power: 0.01067596 mW
* area: 0.000704786 mm^2

This module turns tracker access counts and elapsed time into total energy,
reproducing the paper's accounting without CACTI itself (a substitution
documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CPU_FREQ_HZ

#: CACTI-P 7nm numbers reported in the paper.
READ_ENERGY_NJ = 0.000773194
WRITE_ENERGY_NJ = 0.000128375
LEAKAGE_POWER_MW = 0.01067596
AREA_MM2 = 0.000704786


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of a tracker run."""

    reads: int
    writes: int
    elapsed_cycles: int
    dynamic_read_nj: float
    dynamic_write_nj: float
    leakage_nj: float
    area_mm2: float = AREA_MM2

    @property
    def dynamic_nj(self) -> float:
        return self.dynamic_read_nj + self.dynamic_write_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.leakage_nj


class EnergyModel:
    """Accumulates lookup-table access counts into an energy report."""

    def __init__(
        self,
        read_energy_nj: float = READ_ENERGY_NJ,
        write_energy_nj: float = WRITE_ENERGY_NJ,
        leakage_power_mw: float = LEAKAGE_POWER_MW,
        freq_hz: int = CPU_FREQ_HZ,
    ) -> None:
        if min(read_energy_nj, write_energy_nj, leakage_power_mw) < 0:
            raise ValueError("energy parameters must be non-negative")
        self.read_energy_nj = read_energy_nj
        self.write_energy_nj = write_energy_nj
        self.leakage_power_mw = leakage_power_mw
        self.freq_hz = freq_hz

    def report(self, reads: int, writes: int, elapsed_cycles: int) -> EnergyReport:
        """Energy for *reads*/*writes* table accesses over *elapsed_cycles*."""
        if reads < 0 or writes < 0 or elapsed_cycles < 0:
            raise ValueError("counts must be non-negative")
        seconds = elapsed_cycles / self.freq_hz
        # mW * s = mJ = 1e6 nJ.
        leakage_nj = self.leakage_power_mw * seconds * 1e6
        return EnergyReport(
            reads=reads,
            writes=writes,
            elapsed_cycles=elapsed_cycles,
            dynamic_read_nj=reads * self.read_energy_nj,
            dynamic_write_nj=writes * self.write_energy_nj,
            leakage_nj=leakage_nj,
        )

    def report_for_tracker(self, tracker, elapsed_cycles: int) -> EnergyReport:
        """Convenience: read access counts straight off a ProsperTracker."""
        return self.report(tracker.table_reads, tracker.table_writes, elapsed_cycles)
