"""Crash model and recovery path.

The paper validates correctness by killing the gem5 process while an
application runs inside GemOS, restarting, and observing the process resume
from its last checkpoint.  The equivalent here:

* :class:`CrashSimulator` discards everything volatile — CPU registers, the
  DRAM stack contents, tracker state, un-flushed cache lines — and keeps
  only what lives in NVM: committed checkpoints and, possibly, a staged but
  uncommitted one.
* :func:`recover` replays the two-step commit rule: a checkpoint whose
  staging is *actually* complete in NVM — every thread staged every planned
  run, every staged run and the metadata record pass their checksums — is
  rolled forward; anything less (a partial staging, a torn record) is
  discarded and the previous committed checkpoint wins.  Restoration covers
  both register files and the persistent stack *contents*, copied back into
  each thread's volatile DRAM image.

The recovery report states which checkpoint the process resumed from and
what state was restored, which the integration tests assert on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.kernel.checkpoint_mgr import CheckpointManager, ProcessCheckpoint
from repro.kernel.process import Process
from repro.memory.image import ByteImage


@dataclass
class RecoveryReport:
    """Outcome of one crash/restore cycle."""

    resumed_from_sequence: int | None
    rolled_forward: bool
    threads_restored: int

    @property
    def recovered(self) -> bool:
        return self.resumed_from_sequence is not None


class CrashSimulator:
    """Simulates a power failure over a checkpointed process."""

    def __init__(
        self,
        process: Process,
        manager: CheckpointManager,
        dram_images: dict[int, ByteImage] | None = None,
        nvm_images: dict[int, ByteImage] | None = None,
    ) -> None:
        self.process = process
        self.manager = manager
        #: Actual stack contents, when the simulation tracks them: the DRAM
        #: images die with a crash, the NVM images survive and recovery
        #: copies them back.
        self.dram_images = dram_images if dram_images is not None else manager.dram_images
        self.nvm_images = nvm_images if nvm_images is not None else manager.nvm_images
        self.crashed = False

    def crash(self, order_oracle=None, plan=None, rng=None) -> None:
        """Drop all volatile state.

        Register files are zeroed, dirty bitmaps cleared, and the DRAM stack
        images emptied — they lived in DRAM/core.  NVM-resident checkpoint
        records in the manager (and the persistent NVM images) survive.

        When a persist-order *order_oracle* (:mod:`repro.faults.order`) is
        given, power loss also resolves the writes still pending behind the
        last persist barrier: a *plan* (or one sampled from *rng*) decides
        which of them actually landed — any subset, with an optional torn
        tail — instead of the neat everything-landed assumption.  Recovery
        then sees exactly the durable state a real power cut would leave.
        """
        if order_oracle is not None:
            if plan is None:
                plan = order_oracle.sample_plan(
                    rng if rng is not None else random.Random(0)
                )
            order_oracle.apply_plan(plan)
        self.crashed = True
        for thread in self.process.iter_threads():
            thread.registers.stack_pointer = 0
            thread.registers.op_index = 0
            thread.registers.gprs = [0] * len(thread.registers.gprs)
            if thread.bitmap is not None:
                thread.bitmap.clear()
            thread.tracker_state = None
        if self.dram_images is not None:
            for image in self.dram_images.values():
                image.clear()

    def recover(self) -> RecoveryReport:
        """Restart after a crash and resume from the best checkpoint."""
        if not self.crashed:
            raise RuntimeError("recover() called without a crash")

        # Roll forward any checkpoint that was fully staged — all-or-nothing
        # across the process, gated on the staged checksums and the owning
        # record's metadata CRC (see complete_staged_commits).
        rolled = self.manager.complete_staged_commits() > 0
        candidate: ProcessCheckpoint | None = None
        for record in reversed(self.manager.checkpoints):
            if record.committed:
                candidate = record
                break
            # A corrupt record (torn metadata, mangled staging) must
            # degrade to "previous checkpoint wins", never crash recovery.
            try:
                promotable = record.verify_metadata() and (
                    self.manager.staging_complete_for(record)
                )
            except Exception:
                promotable = False
            if promotable:
                # Every thread's staging for this record is complete in NVM
                # and has been applied: finishing the commit is safe.  A
                # record that fails either test is skipped — the previous
                # committed checkpoint wins.
                record.committed = True
                candidate = record
                break

        if candidate is None:
            return RecoveryReport(None, rolled, 0)

        restored = 0
        for snap in candidate.threads:
            thread = self.process.threads.get(snap.tid)
            if thread is None:
                continue
            thread.registers.restore(snap.registers)
            # The persistent stack *contents* come back too: repopulate the
            # thread's volatile DRAM image from the NVM image the committed
            # checkpoints built up.
            if self.dram_images is not None and self.nvm_images is not None:
                source = self.nvm_images.get(snap.tid)
                target = self.dram_images.get(snap.tid)
                if source is not None and target is not None:
                    target.copy_range_from(source, thread.stack)
            restored += 1
        self.crashed = False
        return RecoveryReport(candidate.sequence, rolled, restored)
