"""Figure 10 — Prosper across stack usage patterns and tracking granularity.

Runs the seven Table III micro-benchmarks under Prosper at 8/16/32/64/128
byte granularity and under the page-level Dirtybit baseline, reporting
(a) mean checkpoint size and (b) checkpoint time normalized to Dirtybit.
Paper shape: Sparse benefits most (~99 % size reduction, ~22x faster
checkpoints); Stream gains nothing; granularity trades metadata against
copy size.
"""

from collections import defaultdict

from repro.analysis.report import format_bytes, render_table
from repro.experiments import evaluation


def test_fig10_usage_patterns(benchmark):
    cells = benchmark.pedantic(
        evaluation.fig10_usage_patterns,
        kwargs={"scale": 0.6},
        rounds=1,
        iterations=1,
    )
    sizes = defaultdict(dict)
    times = defaultdict(dict)
    for c in cells:
        sizes[c.workload][c.granularity] = c.mean_checkpoint_bytes
        times[c.workload][c.granularity] = c.checkpoint_time_vs_dirtybit
    columns = ["page", 8, 16, 32, 64, 128]
    print()
    print(
        render_table(
            "Figure 10a: mean checkpoint size",
            ["workload"] + [str(c) for c in columns],
            [
                [w] + [format_bytes(sizes[w].get(c, 0)) for c in columns]
                for w in sorted(sizes)
            ],
        )
    )
    print()
    print(
        render_table(
            "Figure 10b: checkpoint time normalized to Dirtybit",
            ["workload"] + [str(c) for c in columns],
            [
                [w] + [f"{times[w].get(c, 0):.3f}" for c in columns]
                for w in sorted(times)
            ],
        )
    )
    # Sparse: huge size reduction and much faster checkpoints at 8B.
    assert sizes["sparse"][8] < sizes["sparse"]["page"] * 0.02
    assert times["sparse"][8] < 0.5
    # Stream: no meaningful size benefit from fine tracking (page rounding
    # at the interval edges is the only slack).
    assert sizes["stream"][8] >= sizes["stream"]["page"] * 0.4
