"""Seed-robustness validation of the headline shapes.

Runs the load-bearing paper-shape checks (Prosper best, Romulus worst, SSP
interval trend, Figure 9 combination ordering, Figure 4 reductions,
Figure 12 overhead bound, Figure 13 HWM divergence) across three seeds and
reports a pass matrix — evidence that the reproduction's orderings are not
one random draw.
"""

from repro.analysis.report import render_table
from repro.experiments.validation import summarize, validate_shapes


def test_shape_validation_across_seeds(benchmark):
    results = benchmark.pedantic(
        validate_shapes,
        kwargs={"seeds": (42, 7, 1234), "target_ops": 25_000},
        rounds=1,
        iterations=1,
    )
    summary = summarize(results)
    print()
    print(
        render_table(
            "Shape validation across seeds {42, 7, 1234}",
            ["check", "passes", "total"],
            [[name, p, t] for name, (p, t) in sorted(summary.items())],
        )
    )
    failures = [r for r in results if not r.passed]
    for failure in failures[:10]:
        print(f"  FAILED {failure.name} seed={failure.seed}: {failure.detail}")
    # Every check must pass at every seed and workload.
    total_pass = sum(p for p, _ in summary.values())
    total = sum(t for _, t in summary.values())
    assert total_pass == total, f"{total - total_pass} shape checks failed"
