"""Batched execution engine: the vectorized fast path of the simulator.

:class:`BatchedExecutionEngine` executes the same machine model as the
scalar :class:`~repro.cpu.engine.ExecutionEngine` — cycle for cycle, stat
for stat — but consumes the trace in its native ``TRACE_DTYPE`` array form
and eliminates the per-op Python object overhead that dominates the scalar
loop:

* the op stream is processed in chunks; per chunk, op classification
  (kind, read/write, stack/heap containment), cache-line indices,
  single-line detection, and the full SP trajectory (cumulative CALL/RET
  deltas) are computed as numpy arrays up front;
* when the configuration allows it (no TLB, no NVM-resident persistence
  region, and every mechanism hook either trivial or batch-eligible),
  the chunk enters **vectorized-run mode**: L1 residency is predicted up front, maximal runs of predicted
  single-line L1 hits are committed as whole array operations against
  numpy mirrors of the cache's replacement state (ages authoritative in
  the mirror, tags patched from the cache's list, dirty bits shared via
  the cache's own buffer), and only the sequential residue — predicted
  misses, multi-line accesses, interval boundaries — walks the per-op
  path with the mirrors re-synced around each stateful call;
* mechanism store/load hooks for stack (and heap) traffic are delivered
  in batches through :meth:`PersistenceMechanism.on_store_batch` /
  ``on_load_batch`` when the mechanism declares ``supports_batching``;
  mechanisms whose per-op costs feed back into the current cycle (SSP,
  the logging family) fall back to exact per-op delivery;
* otherwise the remaining per-op loop touches plain Python ints from
  ``tolist()``'d columns and handles only the inherently sequential
  residue: cache tag state, device write-buffer timing, and mechanism
  hooks — the single-line L1 hit is still handled inline against the
  cache's columnar arrays without a method call;
* aggregate statistics (op counts, stack/other read/write counters, the
  interval write log, the interval-minimum SP) are accumulated as numpy
  reductions over chunk slices instead of per-op updates.

What cannot be vectorized is not approximated: cache hit/miss sequences,
NVM write-buffer stalls (which depend on the access's exact cycle), and
mechanism inline costs all flow through the same code paths as the scalar
engine, with ``hierarchy.now`` kept in sync at every stateful call.  The
scalar engine remains the differential oracle; see
``tests/test_engine_equivalence.py`` and ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import numpy as np

from repro.config import CACHE_LINE_BYTES
from repro.cpu.engine import EngineStats, ExecutionEngine, trace_array
from repro.cpu.ops import OpKind, array_to_ops
from repro.persistence.none import NoPersistence

_READ = int(OpKind.READ)
_WRITE = int(OpKind.WRITE)
_CALL = int(OpKind.CALL)
_RET = int(OpKind.RET)
_COMPUTE = int(OpKind.COMPUTE)

#: Ops per vectorization chunk.  Large enough to amortize the numpy
#: precompute, small enough to keep the per-chunk arrays cache-resident.
CHUNK_OPS = 8192


class BatchedExecutionEngine(ExecutionEngine):
    """Drop-in engine producing identical results to the scalar reference.

    Construction, configuration, and the :meth:`run` contract are inherited
    unchanged; only the execution strategy differs.  ``run`` accepts a
    :class:`~repro.workloads.trace.Trace`, a ``TRACE_DTYPE`` array, or any
    op sequence (converted once up front).
    """

    def run(
        self,
        ops,
        interval_cycles: int = 0,
        interval_ops: int | None = None,
        final_checkpoint: bool = True,
    ) -> EngineStats:
        if self._scalar_exact_required():
            # Graceful degradation: an armed (or merely attached) fault
            # injector and a persist-order oracle both need the per-op
            # scalar path — its crash points, cycle-deadline polls, and
            # write ordering are the semantics under test.  Delegating the
            # whole run (rather than skipping hooks in vectorized chunks)
            # guarantees the fired crash points and cycle counts are
            # identical to the scalar engine by construction.
            return ExecutionEngine.run(
                self,
                array_to_ops(trace_array(ops)),
                interval_cycles,
                interval_ops,
                final_checkpoint,
            )
        if interval_cycles < 0:
            raise ValueError("interval_cycles must be non-negative")
        if interval_ops is not None and interval_ops <= 0:
            raise ValueError("interval_ops must be positive")
        arr = trace_array(ops)
        periodic = bool(interval_cycles) or interval_ops is not None
        next_boundary = self.now + interval_cycles if interval_cycles else None
        ops_in_interval = 0
        if periodic:
            self._start_interval()

        total = len(arr)
        start = 0
        while start < total:
            stop = min(total, start + CHUNK_OPS)
            next_boundary, ops_in_interval = self._run_chunk(
                arr[start:stop],
                interval_cycles,
                interval_ops,
                next_boundary,
                ops_in_interval,
            )
            start = stop

        if periodic and final_checkpoint and ops_in_interval > 0:
            self._end_interval()
        return self.stats

    def _scalar_exact_required(self) -> bool:
        """True when fault machinery demands the exact scalar path."""
        if self.fault_injector is not None:
            return True
        nvm = self.hierarchy.nvm
        return nvm is not None and nvm.order_oracle is not None

    def _run_chunk(
        self,
        chunk: np.ndarray,
        interval_cycles: int,
        interval_ops: int | None,
        next_boundary: int | None,
        ops_in_interval: int,
    ) -> tuple[int | None, int]:
        n = len(chunk)
        kinds_np = chunk["kind"]
        addrs_np = chunk["address"].astype(np.int64)
        sizes_np = chunk["size"].astype(np.int64)

        stack_start = self.stack_range.start
        stack_end = self.stack_range.end
        line_bytes = CACHE_LINE_BYTES

        # Vectorized classification.  READ/WRITE are the two lowest kinds,
        # so one comparison yields the memory-op mask.
        is_write_np = kinds_np == _WRITE
        mem_np = kinds_np <= _WRITE
        stack_np = mem_np & (addrs_np >= stack_start) & (addrs_np < stack_end)
        stack_write_np = stack_np & is_write_np
        single_np = mem_np & (sizes_np > 0) & (
            addrs_np % line_bytes + sizes_np <= line_bytes
        )
        lines_np = addrs_np // line_bytes

        heap_mech = self.heap_mechanism
        heap_np = None
        if heap_mech is not None:
            heap_range = self.heap_range
            heap_np = (
                mem_np
                & ~stack_np
                & (addrs_np >= heap_range.start)
                & (addrs_np < heap_range.end)
            )

        # SP trajectory: value of the stack pointer after each op.
        delta_np = np.where(
            kinds_np == _CALL,
            -sizes_np,
            np.where(kinds_np == _RET, sizes_np, 0),
        )
        sp_np = self.registers.stack_pointer + np.cumsum(delta_np)

        # A CALL that pushes SP below the stack base raises mid-run; find
        # the first offender (if any) and truncate the loop there.
        overflow_at = -1
        if int(sp_np.min(initial=stack_start)) < stack_start:
            violations = np.nonzero((kinds_np == _CALL) & (sp_np < stack_start))[0]
            if len(violations):
                overflow_at = int(violations[0])

        # Hot-loop locals.
        hierarchy = self.hierarchy
        l1 = hierarchy.l1
        l1_index_get = l1._index.get
        l1_age = l1._age
        l1_dirty = l1._dirty
        l1_latency = self.config.l1d.latency_cycles
        access_line = hierarchy._access_line
        full_access = hierarchy.access
        tlb = self.tlb
        mechanism = self.mechanism
        mech_trivial = type(mechanism) is NoPersistence
        mech_load = mechanism.on_load
        mech_store = mechanism.on_store
        heap_trivial = heap_mech is None or type(heap_mech) is NoPersistence
        heap_load = heap_mech.on_load if heap_mech is not None else None
        heap_store = heap_mech.on_store if heap_mech is not None else None
        ops_mode = interval_ops is not None
        cycles_mode = next_boundary is not None

        # Batched hook delivery (see PersistenceMechanism.supports_batching).
        # Deferring hooks is exact only when (a) no region is NVM-resident,
        # so every demand latency inside a deferred window is independent of
        # the cycle count the deferred inline costs would have advanced, and
        # (b) every non-trivial mechanism in play batches, so no per-op hook
        # can observe a cycle count that is missing another mechanism's
        # deferred costs.
        no_nvm = not (
            mechanism.region_in_nvm
            or (heap_mech is not None and heap_mech.region_in_nvm)
        )
        batch_env = (
            no_nvm
            and (mech_trivial or mechanism.supports_batching)
            and (heap_mech is None or heap_trivial or heap_mech.supports_batching)
        )
        stack_batched = batch_env and not mech_trivial and mechanism.supports_batching
        heap_batched = (
            batch_env
            and heap_mech is not None
            and not heap_trivial
            and heap_mech.supports_batching
        )
        bounds_np = None
        if stack_batched or heap_batched:
            # Per-op upper bounds on deferred store costs: the loop may keep
            # deferring only while the accumulated bound cannot reach the
            # next interval boundary.
            bounds_np = np.zeros(n, dtype=np.int64)
            if stack_batched and stack_write_np.any():
                bounds_np[stack_write_np] = mechanism.store_cost_bound_array(
                    addrs_np[stack_write_np], sizes_np[stack_write_np]
                )
            if heap_batched:
                hw_mask = heap_np & is_write_np
                if hw_mask.any():
                    bounds_np[hw_mask] = heap_mech.store_cost_bound_array(
                        addrs_np[hw_mask], sizes_np[hw_mask]
                    )
        mech_store_batch = mechanism.on_store_batch
        mech_load_batch = mechanism.on_load_batch
        heap_store_batch = heap_mech.on_store_batch if heap_mech is not None else None
        heap_load_batch = heap_mech.on_load_batch if heap_mech is not None else None

        now = self.now
        app = 0
        inline = 0
        l1_hits = 0
        seg = 0  # start of the unflushed segment [seg, i)
        mseg = 0  # start of the undelivered mechanism window [mseg, i)
        pending_bound = 0  # upper bound on the window's deferred cycles

        def mech_flush(end: int) -> None:
            """Deliver deferred mechanism hooks for ops [mseg, end)."""
            nonlocal now, inline, mseg, pending_bound
            if end <= mseg:
                return
            win = slice(mseg, end)
            if stack_batched:
                w = stack_write_np[win]
                if w.any():
                    extra = mech_store_batch(
                        addrs_np[win][w], sizes_np[win][w], now
                    )
                    if extra:
                        now += extra
                        inline += extra
                r = stack_np[win] & ~is_write_np[win]
                if r.any():
                    extra = mech_load_batch(
                        addrs_np[win][r], sizes_np[win][r], now
                    )
                    if extra:
                        now += extra
                        inline += extra
            if heap_batched:
                hwin = heap_np[win]
                w = hwin & is_write_np[win]
                if w.any():
                    extra = heap_store_batch(
                        addrs_np[win][w], sizes_np[win][w], now
                    )
                    if extra:
                        now += extra
                        inline += extra
                r = hwin & ~is_write_np[win]
                if r.any():
                    extra = heap_load_batch(
                        addrs_np[win][r], sizes_np[win][r], now
                    )
                    if extra:
                        now += extra
                        inline += extra
            mseg = end
            pending_bound = 0

        def flush(end: int) -> None:
            """Commit aggregates for ops [seg, end) and sync engine state."""
            nonlocal app, inline, l1_hits, seg
            mech_flush(end)
            stats = self.stats
            if end > seg:
                seg_slice = slice(seg, end)
                seg_stack = stack_np[seg_slice]
                seg_write = is_write_np[seg_slice]
                seg_mem = mem_np[seg_slice]
                sw = seg_stack & seg_write
                stack_writes = int(np.count_nonzero(sw))
                stack_reads = int(np.count_nonzero(seg_stack)) - stack_writes
                writes = int(np.count_nonzero(seg_write))
                mem_ops = int(np.count_nonzero(seg_mem))
                stats.stack_writes += stack_writes
                stats.stack_reads += stack_reads
                stats.other_writes += writes - stack_writes
                stats.other_reads += (
                    mem_ops - writes - stack_reads
                )
                if stack_writes:
                    self._interval_writes.extend_array(addrs_np[seg_slice][sw])
                seg_min = int(sp_np[seg_slice].min())
                if seg_min < self._interval_min_sp:
                    self._interval_min_sp = seg_min
                if mech_trivial:
                    mechanism.stats.stores_seen += stack_writes
                    mechanism.stats.loads_seen += stack_reads
                if heap_mech is not None and heap_trivial and heap_np is not None:
                    seg_heap = heap_np[seg_slice]
                    hw = int(np.count_nonzero(seg_heap & seg_write))
                    heap_mech.stats.stores_seen += hw
                    heap_mech.stats.loads_seen += (
                        int(np.count_nonzero(seg_heap)) - hw
                    )
                stats.ops_executed += end - seg
                self.registers.op_index += end - seg
                self.registers.stack_pointer = int(sp_np[end - 1])
                seg = end
            stats.app_cycles += app
            stats.inline_cycles += inline
            app = 0
            inline = 0
            if l1_hits:
                l1.stats.hits += l1_hits
                l1_hits = 0
            self.now = now
            hierarchy.now = now

        loop_end = overflow_at if overflow_at >= 0 else n

        # ------------------------------------------------------------------
        # Vectorized-run mode: when per-op state feedback is limited to the
        # L1 replacement state (no TLB, and every mechanism either trivial
        # or batched), whole runs of predicted L1 hits commit as array
        # operations.  Residency is predicted once per chunk and updated
        # incrementally at each miss (the inserted line becomes a future
        # hit, the evicted LRU victim a future miss), so run membership is
        # exact; interval boundaries inside a run are located by binary
        # search over the run's cumulative cost (plus the deferred-cost
        # bound, which can only over-estimate and therefore never misses a
        # boundary).
        # ------------------------------------------------------------------
        if tlb is None and batch_env:
            any_batched = stack_batched or heap_batched
            # Static cost of every *simple* op: a single-line L1 hit costs
            # the L1 latency, COMPUTE its size, CALL/RET one cycle.  Only
            # run members (predicted hits / non-memory ops) read this.
            costs_np = np.where(
                mem_np,
                np.int64(l1_latency),
                np.where(kinds_np == _COMPUTE, sizes_np, np.int64(1)),
            )
            # Whole-chunk cumulative costs: run advances and boundary
            # searches become O(1)/O(log n) lookups.  Sums over [r0, stop)
            # are differences of the cumulative array; entries outside runs
            # (sequential ops, whose true cost differs) never fall inside a
            # queried span.
            ccost_all = np.cumsum(costs_np)
            cb_all = (
                np.cumsum(bounds_np)
                if (cycles_mode and any_batched)
                else None
            )
            tot_all = ccost_all + cb_all if cb_all is not None else ccost_all
            # Memory-op stream: every L1 access of the chunk in op order.
            # A run's hits are a contiguous slice of this stream, found via
            # the cumulative mem-op count — no per-run boolean indexing.
            cummem_all = np.cumsum(mem_np)
            mlines = lines_np[mem_np]
            mwrites = is_write_np[mem_np]
            # Chunk-wide consecutive-repeat masks and the write-position
            # stream, hoisted so commit_run never rebuilds them per run.
            # keep_all[p] is False where the next access touches the same
            # line; a run's last position is force-kept at commit time.
            num_mem = len(mlines)
            if num_mem:
                keep_all = np.empty(num_mem, dtype=bool)
                np.not_equal(mlines[1:], mlines[:-1], out=keep_all[:-1])
                keep_all[-1] = True
                # Kept positions and their running count, so a run maps to
                # a slice kidx_all[lo:hi] instead of a per-run flatnonzero.
                kidx_all = np.flatnonzero(keep_all)
                cumkeep = np.cumsum(keep_all)
                cumw_all = np.cumsum(mwrites)
                wlines = mlines[mwrites]
                num_w = len(wlines)
                if num_w:
                    wkeep_all = np.empty(num_w, dtype=bool)
                    np.not_equal(wlines[1:], wlines[:-1], out=wkeep_all[:-1])
                    wkeep_all[-1] = True
                    wkidx_all = np.flatnonzero(wkeep_all)
                    cumwkeep = np.cumsum(wkeep_all)
            nonsimple_np = np.empty(n, dtype=bool)
            l1_index = l1._index
            l1_tags = l1._tags
            l1_free = l1._free
            assoc = l1._assoc
            power2 = l1._power_of_two_sets
            set_mask = l1._set_mask
            num_sets = l1._num_sets
            # Numpy mirrors of the L1 replacement state.  Inside vector
            # mode the *age* mirror is authoritative — commit_run writes
            # whole runs of ages into it vectorized — and is written back
            # to the cache's list (sync_ages) before anything that reads
            # the list: an eviction scan inside cache.access, a multi-line
            # access, an interval end, or leaving the chunk.  Tags flow
            # the other way (the list stays authoritative; the mirror is
            # patched after each sequential access), and the dirty mirror
            # shares the cache's buffer outright.
            age_np = np.empty(num_sets * assoc, dtype=np.int64)
            age_np[:] = l1_age
            tags_np = np.empty(num_sets * assoc, dtype=np.int64)
            tags_np[:] = l1_tags
            tags2d = tags_np.reshape(num_sets, assoc)
            dirty_np = np.frombuffer(l1_dirty, dtype=np.uint8)

            def sync_ages() -> None:
                """Write the authoritative age mirror back to the cache."""
                l1_age[:] = age_np.tolist()

            def predict(start: int) -> None:
                """Recompute run membership for ops [start, loop_end)."""
                # The cache's list state is authoritative whenever this
                # runs (chunk start, or pred_stale after arbitrary cache
                # mutation); refresh the mirrors from it.
                age_np[:] = l1_age
                tags_np[:] = l1_tags
                rest = slice(start, loop_end)
                if l1_index:
                    resident = np.fromiter(
                        l1_index.keys(), np.int64, len(l1_index)
                    )
                    resident.sort()
                    seg = lines_np[rest]
                    slot = np.searchsorted(resident, seg)
                    hit = np.take(resident, slot, mode="clip") == seg
                    nonsimple_np[rest] = mem_np[rest] & ~(single_np[rest] & hit)
                else:
                    nonsimple_np[rest] = mem_np[rest]

            def commit_run(r0: int, stop: int) -> None:
                """Apply a run of L1 hits to the cache's columnar state.

                Replicates the inline-hit bookkeeping exactly: the tick
                advances once per access, each touched line's age becomes
                the tick of its last access in the run, and written lines
                turn dirty — all as array writes into the numpy mirrors.
                Slots come from matching tags within each line's set; a
                non-match would mean the residency prediction was wrong,
                which by construction cannot happen (and the differential
                suite would catch any drift).
                """
                nonlocal l1_hits
                a = int(cummem_all[r0 - 1]) if r0 else 0
                b = int(cummem_all[stop - 1])
                k = b - a
                if not k:
                    return
                tick0 = l1._tick
                l1._tick = tick0 + k
                if k > 1:
                    # Consecutive repeats were deduped chunk-wide (stack
                    # locality makes them the common case); position b-1
                    # is force-kept to close the group the chunk-wide mask
                    # can't see ends here.  Fancy assignment stores the
                    # last value for a repeated slot, so non-adjacent
                    # repeats resolve last-wins like per-op updates would.
                    lo = int(cumkeep[a - 1]) if a else 0
                    hi = int(cumkeep[b - 2])
                    idx = np.empty(hi - lo + 1, dtype=np.int64)
                    idx[:-1] = kidx_all[lo:hi]
                    idx[-1] = b - 1
                    lines_sel = mlines[idx]
                    set_idx = (
                        lines_sel & set_mask
                        if power2
                        else lines_sel % num_sets
                    )
                    ways = (tags2d[set_idx] == lines_sel[:, None]).argmax(
                        axis=1
                    )
                    age_np[set_idx * assoc + ways] = idx + (tick0 + 1 - a)
                else:
                    age_np[l1_index[int(mlines[a])]] = tick0 + 1
                wa = int(cumw_all[a - 1]) if a else 0
                wb = int(cumw_all[b - 1])
                if wb > wa:
                    # Setting a dirty bit twice is harmless, so the forced
                    # last position needs no dedup against the mask.
                    if wb - wa > 1:
                        wlo = int(cumwkeep[wa - 1]) if wa else 0
                        whi = int(cumwkeep[wb - 2])
                        widx = np.empty(whi - wlo + 1, dtype=np.int64)
                        widx[:-1] = wkidx_all[wlo:whi]
                        widx[-1] = wb - 1
                        wl = wlines[widx]
                        wset = wl & set_mask if power2 else wl % num_sets
                        wways = (tags2d[wset] == wl[:, None]).argmax(axis=1)
                        dirty_np[wset * assoc + wways] = 1
                    else:
                        dirty_np[l1_index[int(wlines[wa])]] = 1
                l1_hits += k

            if loop_end:
                predict(0)
            pred_stale = False
            i = 0
            while i < loop_end:
                if pred_stale:
                    # An interval boundary or a multi-line access may have
                    # reshaped L1 residency arbitrarily; re-predict.
                    predict(i)
                    pred_stale = False
                if nonsimple_np[i]:
                    # Sequential op: a predicted L1 miss or a multi-line
                    # access (always a memory op — non-memory ops are
                    # simple by definition).
                    address = int(addrs_np[i])
                    size = int(sizes_np[i])
                    is_write = bool(is_write_np[i])
                    if single_np[i]:
                        line = int(lines_np[i])
                        # Predict the LRU victim before the access (same
                        # unique-minimum scan the cache performs) so the
                        # residency picture can be patched incrementally.
                        victim_line = -1
                        set_index = (
                            line & set_mask if power2 else line % num_sets
                        )
                        base = set_index * assoc
                        set_ages = age_np[base : base + assoc]
                        # The mirror is authoritative for ages inside the
                        # vector loop; hand the cache this set's current
                        # picture before the access (the post-access patch
                        # below copies list -> mirror for the whole set, so
                        # a stale list entry would clobber newer mirror
                        # ages written by commit_run).
                        l1_age[base : base + assoc] = set_ages.tolist()
                        if not l1_free[set_index]:
                            # argmin = first minimum, the same way the
                            # cache's strict-less scan resolves (ticks are
                            # unique anyway).
                            victim_line = int(
                                tags_np[base + int(set_ages.argmin())]
                            )
                        hierarchy.now = now
                        latency = access_line(
                            line, address, is_write
                        ).latency_cycles
                        # The access rewrote this set's replacement state;
                        # patch the mirrors from the list.
                        age_np[base : base + assoc] = l1_age[
                            base : base + assoc
                        ]
                        tags_np[base : base + assoc] = l1_tags[
                            base : base + assoc
                        ]
                        if i + 1 < loop_end:
                            rest = slice(i + 1, loop_end)
                            rl = lines_np[rest]
                            rsingle = single_np[rest]
                            view = nonsimple_np[rest]
                            # The inserted line now hits; the evicted
                            # victim now misses.
                            view[(rl == line) & rsingle] = False
                            if victim_line >= 0:
                                view[(rl == victim_line) & rsingle] = True
                    else:
                        # A multi-line access may read replacement state
                        # across arbitrary sets; hand the cache its exact
                        # list state first, then re-mirror what the access
                        # rewrote (a later sync_ages must not clobber the
                        # list with the pre-access picture).
                        sync_ages()
                        hierarchy.now = now
                        latency = full_access(
                            address, size, is_write
                        ).latency_cycles
                        age_np[:] = l1_age
                        tags_np[:] = l1_tags
                        pred_stale = True
                    now += latency
                    app += latency
                    if cycles_mode and any_batched:
                        pending_bound += int(bounds_np[i])
                    if ops_mode:
                        ops_in_interval += 1
                        if ops_in_interval >= interval_ops:
                            sync_ages()
                            flush(i + 1)
                            self._end_interval()
                            ops_in_interval = 0
                            self._start_interval()
                            now = self.now
                            pred_stale = True
                    elif cycles_mode:
                        ops_in_interval += 1
                        if now + pending_bound >= next_boundary:
                            if pending_bound:
                                mech_flush(i + 1)
                            if now >= next_boundary:
                                sync_ages()
                                flush(i + 1)
                                self._end_interval()
                                next_boundary = self.now + interval_cycles
                                ops_in_interval = 0
                                self._start_interval()
                                now = self.now
                                pred_stale = True
                    i += 1
                    continue

                # Maximal run of simple ops [i, r1).
                seg_ns = nonsimple_np[i:loop_end]
                rel = int(seg_ns.argmax())
                r1 = i + rel if seg_ns[rel] else loop_end
                r0 = i
                while r0 < r1:
                    seg_len = r1 - r0
                    boundary_hit = False
                    base_c = int(ccost_all[r0 - 1]) if r0 else 0
                    if cycles_mode:
                        # First op where the (bound-inflated) cycle count
                        # reaches the boundary, by binary search over the
                        # non-decreasing cumulative cost.
                        base_t = int(tot_all[r0 - 1]) if r0 else 0
                        budget = next_boundary - now - pending_bound + base_t
                        if int(tot_all[r1 - 1]) < budget:
                            # Whole run fits before the boundary — the
                            # overwhelmingly common case; skip the search.
                            stop = r1
                        else:
                            j = int(
                                np.searchsorted(tot_all[r0:r1], budget)
                            )
                            if j < seg_len:
                                boundary_hit = True
                                stop = r0 + j + 1
                            else:
                                stop = r1
                        commit_run(r0, stop)
                        adv = int(ccost_all[stop - 1]) - base_c
                        now += adv
                        app += adv
                        if cb_all is not None:
                            pending_bound += (
                                int(cb_all[stop - 1])
                                - (int(cb_all[r0 - 1]) if r0 else 0)
                            )
                        ops_in_interval += stop - r0
                    elif ops_mode:
                        remaining = interval_ops - ops_in_interval
                        if remaining <= seg_len:
                            boundary_hit = True
                            stop = r0 + remaining
                        else:
                            stop = r1
                        commit_run(r0, stop)
                        adv = int(ccost_all[stop - 1]) - base_c
                        now += adv
                        app += adv
                        ops_in_interval += stop - r0
                    else:
                        stop = r1
                        commit_run(r0, stop)
                        adv = int(ccost_all[stop - 1]) - base_c
                        now += adv
                        app += adv
                    r0 = stop
                    if boundary_hit:
                        if cycles_mode:
                            if pending_bound:
                                mech_flush(stop)
                            if now >= next_boundary:
                                sync_ages()
                                flush(stop)
                                self._end_interval()
                                next_boundary = self.now + interval_cycles
                                ops_in_interval = 0
                                self._start_interval()
                                now = self.now
                                pred_stale = True
                                break
                            # Bound over-estimated: no boundary yet, keep
                            # consuming the run with the bound reset.
                        else:
                            sync_ages()
                            flush(stop)
                            self._end_interval()
                            ops_in_interval = 0
                            self._start_interval()
                            now = self.now
                            pred_stale = True
                            break
                i = r0

            # Leaving vector mode: the cache's list state must be exact
            # again for the scalar-visible world (next chunk, fault
            # snapshots, end-of-run inspection).  When pred_stale is set
            # the list is already authoritative (an interval end mutated
            # the cache after the last sync) and the mirrors are stale —
            # syncing would clobber it.
            if not pred_stale:
                sync_ages()
            if overflow_at >= 0:
                flush(overflow_at + 1)
                sp = int(sp_np[overflow_at])
                raise RuntimeError(
                    f"stack overflow: SP {sp:#x} below {stack_start:#x}"
                )
            flush(n)
            return next_boundary, ops_in_interval

        # Python-int columns for the residual per-op loop (the fallback for
        # TLB-enabled or non-batchable configurations).
        kinds = kinds_np.tolist()
        addrs = addrs_np.tolist()
        sizes = sizes_np.tolist()
        stack_flags = stack_np.tolist()
        single_flags = single_np.tolist()
        lines = lines_np.tolist()
        heap_flags = heap_np.tolist() if heap_np is not None else None
        sbounds = bounds_np.tolist() if bounds_np is not None else None

        i = 0
        while i < loop_end:
            k = kinds[i]
            if k <= _WRITE:
                address = addrs[i]
                size = sizes[i]
                is_write = k == _WRITE
                if tlb is not None:
                    cost = tlb.translate(address, is_write)
                    now += cost
                    app += cost
                if single_flags[i]:
                    slot = l1_index_get(lines[i])
                    if slot is not None:
                        # Inline L1 hit: the dominant case.
                        l1_hits += 1
                        tick = l1._tick + 1
                        l1._tick = tick
                        l1_age[slot] = tick
                        if is_write:
                            l1_dirty[slot] = 1
                        latency = l1_latency
                    else:
                        hierarchy.now = now
                        latency = access_line(
                            lines[i], address, is_write
                        ).latency_cycles
                else:
                    hierarchy.now = now
                    latency = full_access(address, size, is_write).latency_cycles
                now += latency
                app += latency
                if stack_flags[i]:
                    if stack_batched:
                        # Hook deferred; only the cost bound advances.
                        pending_bound += sbounds[i]
                    elif not mech_trivial:
                        hierarchy.now = now
                        extra = (
                            mech_store(address, size, now)
                            if is_write
                            else mech_load(address, size, now)
                        )
                        if extra:
                            now += extra
                            inline += extra
                elif heap_flags is not None and heap_flags[i]:
                    if heap_batched:
                        pending_bound += sbounds[i]
                    elif not heap_trivial:
                        hierarchy.now = now
                        extra = (
                            heap_store(address, size, now)
                            if is_write
                            else heap_load(address, size, now)
                        )
                        if extra:
                            now += extra
                            inline += extra
            elif k == _COMPUTE:
                cost = sizes[i]
                now += cost
                app += cost
            else:  # CALL / RET (overflowing CALLs were truncated out above)
                now += 1
                app += 1

            if ops_mode:
                ops_in_interval += 1
                if ops_in_interval >= interval_ops:
                    flush(i + 1)
                    self._end_interval()
                    ops_in_interval = 0
                    self._start_interval()
                    now = self.now
            elif cycles_mode:
                # The count still matters here: a trailing partial interval
                # is only committed when ops ran since the last boundary.
                ops_in_interval += 1
                if now + pending_bound >= next_boundary:
                    # The boundary is within reach of the deferred costs:
                    # deliver the pending batch to learn the exact cycle
                    # count, then test the boundary as the scalar engine
                    # would have.
                    if pending_bound:
                        mech_flush(i + 1)
                    if now >= next_boundary:
                        flush(i + 1)
                        self._end_interval()
                        next_boundary = self.now + interval_cycles
                        ops_in_interval = 0
                        self._start_interval()
                        now = self.now
            i += 1

        if overflow_at >= 0:
            # Replicate the scalar engine exactly: the faulting CALL counts
            # as executed, moves SP (and the interval minimum), charges no
            # cycles, and raises.
            flush(overflow_at + 1)
            sp = int(sp_np[overflow_at])
            raise RuntimeError(
                f"stack overflow: SP {sp:#x} below {stack_start:#x}"
            )
        flush(n)
        return next_boundary, ops_in_interval
