"""Figure decomposition: every figure as a set of independent run units.

Each figure the CLI can regenerate is registered here as a
:class:`FigureSpec` with three parts:

* ``enumerate_units(ops)`` — the figure's independent run units, one per
  ``(trace, mechanism, interval, config)`` combination where the figure
  has that structure (coarser for the single-measurement studies).  Unit
  ids are stable across runs, which is what makes the journal resumable.
* ``execute(params)`` — runs one unit and returns a JSON-serializable
  payload.  Executed inside a supervised worker process (or inline on the
  serial path); it must not depend on any other unit's in-process state.
* ``assemble(ops, payloads, failed)`` — folds completed unit payloads,
  in enumeration order, into the exact table text the legacy serial
  driver printed.  With no failures the text is byte-identical to the
  pre-harness output; failed units simply drop their rows (the
  supervisor appends the ``DEGRADED`` annotation).

Baseline deduplication: units obtain their no-persistence baselines via
:func:`repro.harness.cache.vanilla_cycles_cached`, so the same (trace,
config) baseline is computed once per run instead of once per figure.

Chaos hook: the ``REPRO_HARNESS_FAULTS`` environment variable injects
failures into matching units (hang, worker crash, workload error…) so the
timeout/retry/degrade machinery can be exercised end-to-end from the real
CLI — by the tests and by CI.  See :func:`_apply_chaos`.
"""

from __future__ import annotations

import fnmatch
import os
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from repro.analysis.report import format_bytes, render_table
from repro.config import PAGE_BYTES, TrackerConfig, setup_ii
from repro.experiments import ablations, evaluation, extensions, motivation, overhead
from repro.experiments.runner import (
    fixed_cost_scale_for,
    make_engine,
    run_mechanism,
    scaled_interval_cycles,
)
from repro.harness.cache import vanilla_cycles_cached
from repro.harness.errors import TransientWorkloadError
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.logging import (
    FlushPersistence,
    RedoLogPersistence,
    UndoLogPersistence,
)
from repro.persistence.prosper import ProsperPersistence
from repro.workloads.apps import g500_sssp, gapbs_pr, ycsb_mem
from repro.workloads.callstack import quicksort_workload, recursive_workload
from repro.workloads.spec import SPEC_PROFILES, spec_workload
from repro.workloads.synthetic import stream_workload


@dataclass(frozen=True)
class RunUnit:
    """One independent unit of evaluation work."""

    figure: str
    unit_id: str
    params: dict


@dataclass
class FigureOutput:
    """Assembled figure: table text plus raw rows for ``--csv`` export."""

    text: str
    raw_rows: list[dict] | None = None


@dataclass(frozen=True)
class FigureSpec:
    name: str
    enumerate_units: Callable[[int], list[RunUnit]]
    execute: Callable[[dict], dict]
    assemble: Callable[[int, dict[str, dict], list[str]], FigureOutput]


FIGURES: dict[str, FigureSpec] = {}


def register(spec: FigureSpec) -> FigureSpec:
    FIGURES[spec.name] = spec
    return spec


def figure_names() -> list[str]:
    return sorted(FIGURES)


# --------------------------------------------------------------------- #
# Chaos hook (tests / CI)
# --------------------------------------------------------------------- #

CHAOS_ENV = "REPRO_HARNESS_FAULTS"


def _apply_chaos(figure: str, unit_id: str, attempt: int) -> None:
    """Inject failures from ``REPRO_HARNESS_FAULTS``.

    Format: comma-separated ``<pattern>=<action>[:<arg>]`` clauses, where
    *pattern* is an fnmatch glob over ``figure/unit_id`` and *action* is:

    * ``hang[:seconds]`` — sleep (default 3600 s): exercises the timeout;
    * ``crash[:N]`` — ``os._exit(1)`` (a true worker crash); with ``N``,
      only on the first N attempts, so retry-then-succeed is testable;
    * ``raise`` — raise ``RuntimeError`` (a permanent workload error);
    * ``transient[:N]`` — raise :class:`TransientWorkloadError`, with the
      same attempt gating as ``crash``;
    * ``interrupt`` — raise ``KeyboardInterrupt`` (serial ctrl-C path).
    """
    plan = os.environ.get(CHAOS_ENV)
    if not plan:
        return
    target = f"{figure}/{unit_id}"
    for clause in plan.split(","):
        clause = clause.strip()
        if not clause or "=" not in clause:
            continue
        pattern, _, spec = clause.partition("=")
        if not fnmatch.fnmatch(target, pattern):
            continue
        action, _, arg = spec.partition(":")
        if action == "hang":
            time.sleep(float(arg) if arg else 3600.0)
        elif action == "crash":
            if attempt < (int(arg) if arg else 10**9):
                os._exit(1)
        elif action == "raise":
            raise RuntimeError(f"chaos: injected workload error in {target}")
        elif action == "transient":
            if attempt < (int(arg) if arg else 10**9):
                raise TransientWorkloadError(
                    f"chaos: injected transient error in {target} "
                    f"(attempt {attempt})"
                )
        elif action == "interrupt":
            raise KeyboardInterrupt


def execute_unit(
    figure: str, params: dict, attempt: int = 0, unit_id: str = ""
) -> dict:
    """Worker entry point: run one unit of *figure* and return its payload."""
    _apply_chaos(figure, unit_id, attempt)
    spec = FIGURES.get(figure)
    if spec is None:
        raise KeyError(f"unknown figure {figure!r}")
    return spec.execute(params)


# --------------------------------------------------------------------- #
# Workload registries (stable names -> builders)
# --------------------------------------------------------------------- #

#: The three application models, in the order the figure drivers use.
APP_WORKLOADS = ("gapbs_pr", "g500_sssp", "ycsb_mem")

_APP_BUILDERS = {"gapbs_pr": gapbs_pr, "g500_sssp": g500_sssp, "ycsb_mem": ycsb_mem}


def _app_trace(name: str, ops: int, seed: int = 42):
    return _APP_BUILDERS[name](ops, seed)


def _overhead_workload_names() -> list[str]:
    return sorted(SPEC_PROFILES) + ["g500_sssp", "gapbs_pr", "stream"]


def _overhead_trace(name: str, ops: int, seed: int = 42):
    if name in SPEC_PROFILES:
        return spec_workload(name, ops, seed=seed)
    if name == "stream":
        return stream_workload(array_bytes=128 * 1024, passes=2, seed=seed)
    return _app_trace(name, ops, seed)


def _rows(payloads: dict[str, dict]) -> list[dict]:
    """Concatenate unit payload rows in enumeration (payload) order."""
    out: list[dict] = []
    for payload in payloads.values():
        out.extend(payload.get("rows", ()))
    return out


# --------------------------------------------------------------------- #
# Figures 1-4 (motivation)
# --------------------------------------------------------------------- #

def _fig1_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit("fig1", name, {"workload": name, "ops": ops, "seed": 42})
        for name in APP_WORKLOADS
    ]


def _fig1_execute(params: dict) -> dict:
    trace = _app_trace(params["workload"], params["ops"], params["seed"])
    stats = trace.stats
    return {
        "rows": [
            {
                "workload": trace.name,
                "stack_fraction": stats.stack_fraction,
                "stack_write_fraction": stats.stack_write_fraction,
            }
        ]
    }


def _fig1_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Figure 1: stack share of memory operations",
        ["workload", "stack op fraction", "stack write fraction"],
        [
            [r["workload"], f"{r['stack_fraction']:.3f}", f"{r['stack_write_fraction']:.3f}"]
            for r in rows
        ],
    )
    return FigureOutput(text, raw_rows=rows)


def _fig2_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit(
            "fig2",
            name,
            {"workload": name, "ops": ops, "seed": 42, "num_intervals": 100},
        )
        for name in APP_WORKLOADS
    ]


def _fig2_execute(params: dict) -> dict:
    trace = _app_trace(params["workload"], params["ops"], params["seed"])
    per_interval = trace.writes_beyond_final_sp(params["num_intervals"])
    total_writes = sum(w for w, _ in per_interval)
    total_beyond = sum(b for _, b in per_interval)
    return {
        "rows": [
            {
                "workload": trace.name,
                "total_writes": total_writes,
                "total_beyond": total_beyond,
                "beyond_fraction": total_beyond / total_writes if total_writes else 0.0,
            }
        ]
    }


def _fig2_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Figure 2: stack writes beyond interval-final SP",
        ["workload", "stack writes", "beyond final SP", "fraction"],
        [
            [r["workload"], r["total_writes"], r["total_beyond"], f"{r['beyond_fraction']:.3f}"]
            for r in rows
        ],
    )
    return FigureOutput(text)


_FIG3_MECHANISMS = {
    "flush": FlushPersistence,
    "undo": UndoLogPersistence,
    "redo": RedoLogPersistence,
}


def _fig3_units(ops: int) -> list[RunUnit]:
    target = min(ops, 60_000)
    units = []
    for name in APP_WORKLOADS:
        for mech in _FIG3_MECHANISMS:
            for aware in (False, True):
                suffix = "sp" if aware else "nosp"
                units.append(
                    RunUnit(
                        "fig3",
                        f"{name}/{mech}/{suffix}",
                        {
                            "workload": name,
                            "ops": target,
                            "mechanism": mech,
                            "aware": aware,
                            "seed": 42,
                            "num_intervals": 20,
                        },
                    )
                )
    return units


def _fig3_execute(params: dict) -> dict:
    full_trace = _app_trace(params["workload"], params["ops"], params["seed"])
    trace = motivation.stack_only(full_trace)
    base = vanilla_cycles_cached(trace)
    num_intervals = params["num_intervals"]
    interval_ops = max(1, len(trace.ops) // num_intervals)
    finals = trace.final_sp_per_interval(num_intervals)

    def oracle(i: int, _finals=finals) -> int:
        return _finals[min(i, len(_finals) - 1)]

    factory = _FIG3_MECHANISMS[params["mechanism"]]
    mechanism = factory(sp_oracle=oracle if params["aware"] else None)
    engine = make_engine(trace, mechanism)
    stats = engine.run(trace, interval_ops=interval_ops)
    return {
        "rows": [
            {
                "workload": trace.name,
                "mechanism": mechanism.name,
                "sp_aware": params["aware"],
                "normalized_time": stats.total_cycles / base,
            }
        ]
    }


def _fig3_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Figure 3: flush/undo/redo +/- SP awareness (normalized time)",
        ["workload", "mechanism", "SP aware", "normalized"],
        [
            [r["workload"], r["mechanism"], "yes" if r["sp_aware"] else "no",
             f"{r['normalized_time']:.1f}x"]
            for r in rows
        ],
    )
    return FigureOutput(text)


def _fig4_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit(
            "fig4",
            name,
            {"workload": name, "ops": ops, "seed": 42, "num_intervals": 50,
             "fine_granularity": 8},
        )
        for name in APP_WORKLOADS
    ]


def _fig4_execute(params: dict) -> dict:
    trace = _app_trace(params["workload"], params["ops"], params["seed"])
    num_intervals = params["num_intervals"]
    page_sizes = trace.copy_sizes(num_intervals, PAGE_BYTES)
    fine_sizes = trace.copy_sizes(num_intervals, params["fine_granularity"])
    return {
        "rows": [
            {
                "workload": trace.name,
                "page_bytes_per_interval": sum(page_sizes) / len(page_sizes),
                "byte_bytes_per_interval": sum(fine_sizes) / len(fine_sizes),
            }
        ]
    }


def _fig4_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    rendered = []
    for r in rows:
        byte_mean = r["byte_bytes_per_interval"]
        reduction = (
            r["page_bytes_per_interval"] / byte_mean if byte_mean else float("inf")
        )
        rendered.append(
            [r["workload"], format_bytes(r["page_bytes_per_interval"]),
             format_bytes(byte_mean), f"{reduction:.1f}x"]
        )
    text = render_table(
        "Figure 4: copy size, page vs 8-byte tracking",
        ["workload", "page", "8-byte", "reduction"],
        rendered,
    )
    return FigureOutput(text, raw_rows=rows)


# --------------------------------------------------------------------- #
# Figures 8-11 (evaluation)
# --------------------------------------------------------------------- #

def _fig8_units(ops: int) -> list[RunUnit]:
    labels = list(evaluation.stack_mechanisms())
    return [
        RunUnit(
            "fig8",
            f"{name}/{label}",
            {"workload": name, "ops": ops, "seed": 42, "mechanism": label,
             "interval_paper_ms": 10.0},
        )
        for name in APP_WORKLOADS
        for label in labels
    ]


def _fig8_execute(params: dict) -> dict:
    trace = _app_trace(params["workload"], params["ops"], params["seed"])
    base = vanilla_cycles_cached(trace)
    label = params["mechanism"]
    mechanism = evaluation.stack_mechanisms()[label]()
    result = run_mechanism(
        trace,
        mechanism,
        params["interval_paper_ms"],
        baseline_cycles=base,
        mechanism_label=label,
    )
    return {
        "rows": [
            {
                "workload": result.trace_name,
                "mechanism": label,
                "normalized_time": result.normalized_time,
            }
        ]
    }


def _fig8_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    table: dict[str, dict[str, float]] = defaultdict(dict)
    for r in rows:
        table[r["workload"]][r["mechanism"]] = r["normalized_time"]
    mechanisms = sorted({r["mechanism"] for r in rows})
    text = render_table(
        "Figure 8: stack persistence (normalized time)",
        ["workload"] + mechanisms,
        [
            [w] + [
                f"{table[w][m]:.2f}" if m in table[w] else "-" for m in mechanisms
            ]
            for w in sorted(table)
        ],
    )
    return FigureOutput(text, raw_rows=rows)


def _fig9_units(ops: int) -> list[RunUnit]:
    units = []
    for name in APP_WORKLOADS:
        for us in evaluation.SSP_INTERVALS_US:
            for combo in ("ssp", "ssp+dirtybit", "ssp+prosper"):
                units.append(
                    RunUnit(
                        "fig9",
                        f"{name}/ssp{us:g}us/{combo}",
                        {"workload": name, "ops": ops, "seed": 42,
                         "ssp_interval_us": us, "combo": combo,
                         "interval_paper_ms": 10.0},
                    )
                )
    return units


def _fig9_execute(params: dict) -> dict:
    from repro.persistence.ssp import SspPersistence

    trace = _app_trace(params["workload"], params["ops"], params["seed"])
    base = vanilla_cycles_cached(trace)
    us = params["ssp_interval_us"]
    combo = params["combo"]
    if combo == "ssp":
        stack_mech = SspPersistence(consolidation_interval_us=us)
    elif combo == "ssp+dirtybit":
        stack_mech = DirtyBitPersistence()
    else:
        stack_mech = ProsperPersistence()
    heap_mech = SspPersistence(consolidation_interval_us=us)
    result = run_mechanism(
        trace,
        stack_mech,
        params["interval_paper_ms"],
        heap_mechanism=heap_mech,
        baseline_cycles=base,
        mechanism_label=combo,
    )
    return {
        "rows": [
            {
                "workload": trace.name,
                "combination": combo,
                "ssp_interval_us": us,
                "normalized_time": result.normalized_time,
            }
        ]
    }


def _fig9_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Figure 9: memory-state persistence (normalized time)",
        ["workload", "ssp interval (us)", "combination", "normalized"],
        [
            [r["workload"], f"{r['ssp_interval_us']:g}", r["combination"],
             f"{r['normalized_time']:.2f}"]
            for r in rows
        ],
    )
    return FigureOutput(text, raw_rows=rows)


def _fig10_scale(ops: int) -> float:
    return max(0.2, min(1.0, ops / 100_000))


def _fig10_units(ops: int) -> list[RunUnit]:
    scale = _fig10_scale(ops)
    units = []
    for key in evaluation.MICRO_BENCHMARK_KEYS:
        for granularity in ("page",) + evaluation.FIG10_GRANULARITIES:
            units.append(
                RunUnit(
                    "fig10",
                    f"{key}/{granularity}",
                    {"micro": key, "scale": scale, "seed": 11,
                     "granularity": granularity, "interval_paper_ms": 10.0},
                )
            )
    return units


def _fig10_execute(params: dict) -> dict:
    builders = evaluation.micro_benchmark_builders(params["scale"], params["seed"])
    trace = builders[params["micro"]]()
    base = vanilla_cycles_cached(trace)
    granularity = params["granularity"]
    if granularity == "page":
        mech = DirtyBitPersistence()
    else:
        mech = ProsperPersistence(TrackerConfig().with_granularity(granularity))
    run_mechanism(
        trace, mech, params["interval_paper_ms"], baseline_cycles=base
    )
    cycles = mech.stats.mean_checkpoint_cycles
    if granularity == "page":
        cycles = cycles or 1.0  # the Dirtybit normalization base
    return {
        "rows": [
            {
                "workload": trace.name,
                "granularity": granularity,
                "mean_checkpoint_bytes": mech.stats.mean_checkpoint_bytes,
                "mean_checkpoint_cycles": cycles,
            }
        ]
    }


def _fig10_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    db_cycles: dict[str, float] = {
        r["workload"]: r["mean_checkpoint_cycles"]
        for r in rows
        if r["granularity"] == "page"
    }
    raw_rows: list[dict] = []
    rendered: list[list] = []
    for r in rows:
        base = db_cycles.get(r["workload"])
        if r["granularity"] == "page":
            ratio = 1.0
        elif base:
            ratio = (r["mean_checkpoint_cycles"] or 0.0) / base
        else:
            ratio = None  # Dirtybit baseline unit failed: nothing to normalize to
        raw_rows.append({**r, "checkpoint_time_vs_dirtybit": ratio})
        rendered.append(
            [r["workload"], str(r["granularity"]),
             format_bytes(r["mean_checkpoint_bytes"]),
             f"{ratio:.3f}" if ratio is not None else "n/a"]
        )
    text = render_table(
        "Figure 10: usage patterns x granularity",
        ["workload", "granularity", "mean ckpt size", "time vs dirtybit"],
        rendered,
    )
    return FigureOutput(text, raw_rows=raw_rows)


_FIG11_WORKLOADS = ("quicksort", "rec-4", "rec-8", "rec-16")


def _fig11_trace(key: str, seed: int):
    if key == "quicksort":
        return quicksort_workload(elements=1500, seed=seed)
    depth = int(key.split("-")[1])
    return recursive_workload(depth=depth, descents=250, seed=seed)


def _fig11_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit(
            "fig11",
            f"{key}/{paper_ms:g}ms",
            {"workload": key, "seed": 11, "interval_paper_ms": paper_ms},
        )
        for key in _FIG11_WORKLOADS
        for paper_ms in (1.0, 5.0, 10.0)
    ]


def _fig11_execute(params: dict) -> dict:
    trace = _fig11_trace(params["workload"], params["seed"])
    base = vanilla_cycles_cached(trace)
    mech = ProsperPersistence()
    run_mechanism(
        trace, mech, params["interval_paper_ms"], baseline_cycles=base
    )
    total_bytes = mech.stats.total_checkpoint_bytes
    total_cycles = mech.stats.total_checkpoint_cycles
    return {
        "rows": [
            {
                "workload": trace.name,
                "interval_paper_ms": params["interval_paper_ms"],
                "mean_checkpoint_bytes": mech.stats.mean_checkpoint_bytes,
                "ns_per_byte": (
                    total_cycles / 3.0 / total_bytes if total_bytes else float("inf")
                ),
            }
        ]
    }


def _fig11_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Figure 11: checkpoint size vs interval",
        ["workload", "interval (ms)", "mean ckpt size", "ns/byte"],
        [
            [r["workload"], f"{r['interval_paper_ms']:g}",
             format_bytes(r["mean_checkpoint_bytes"]), f"{r['ns_per_byte']:.2f}"]
            for r in rows
        ],
    )
    return FigureOutput(text, raw_rows=rows)


# --------------------------------------------------------------------- #
# Figures 12-13, context switch, energy (overhead)
# --------------------------------------------------------------------- #

def _fig12_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit(
            "fig12",
            f"{name}/{granularity}B",
            {"workload": name, "ops": ops, "seed": 42, "granularity": granularity,
             "interval_paper_ms": 10.0},
        )
        for name in _overhead_workload_names()
        for granularity in overhead.FIG12_GRANULARITIES
    ]


def _fig12_execute(params: dict) -> dict:
    config = setup_ii()
    trace = _overhead_trace(params["workload"], params["ops"], params["seed"])
    base = vanilla_cycles_cached(trace, config, "setup_ii")
    mech = ProsperPersistence(
        TrackerConfig().with_granularity(params["granularity"])
    )
    result = run_mechanism(
        trace,
        mech,
        params["interval_paper_ms"],
        config=config,
        baseline_cycles=base,
    )
    base_ipc = result.stats.ops_executed / base
    return {
        "rows": [
            {
                "workload": trace.name,
                "granularity": params["granularity"],
                "speedup": result.stats.user_ipc / base_ipc,
            }
        ]
    }


def _fig12_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Figure 12: tracking overhead (user-IPC speedup)",
        ["workload", "granularity", "speedup", "overhead %"],
        [
            [r["workload"], f"{r['granularity']}B", f"{r['speedup']:.4f}",
             f"{(1.0 - r['speedup']) * 100.0:.2f}"]
            for r in rows
        ],
    )
    return FigureOutput(text, raw_rows=rows)


_FIG13_WORKLOADS = ("605.mcf_s", "g500_sssp")


def _fig13_units(ops: int) -> list[RunUnit]:
    units = []
    for name in _FIG13_WORKLOADS:
        for hwm in (8, 16, 24, 32):
            units.append(
                RunUnit(
                    "fig13",
                    f"{name}/hwm{hwm}",
                    {"workload": name, "ops": ops, "seed": 42,
                     "hwm": hwm, "lwm": 4},
                )
            )
        for lwm in (2, 4, 8, 16):
            units.append(
                RunUnit(
                    "fig13",
                    f"{name}/lwm{lwm}",
                    {"workload": name, "ops": ops, "seed": 42,
                     "hwm": 24, "lwm": lwm},
                )
            )
    return units


def _fig13_execute(params: dict) -> dict:
    name = params["workload"]
    if name in SPEC_PROFILES:
        trace = spec_workload(name, params["ops"], seed=params["seed"])
    else:
        trace = _app_trace(name, params["ops"], params["seed"])
    cfg = TrackerConfig(
        high_water_mark=params["hwm"], low_water_mark=params["lwm"]
    )
    loads, stores = overhead._replay_tracker(trace, cfg)
    return {
        "rows": [
            {
                "workload": trace.name,
                "hwm": params["hwm"],
                "lwm": params["lwm"],
                "bitmap_loads": loads,
                "bitmap_stores": stores,
            }
        ]
    }


def _fig13_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Figure 13: HWM/LWM sensitivity (bitmap loads/stores)",
        ["workload", "HWM", "LWM", "loads", "stores"],
        [
            [r["workload"], r["hwm"], r["lwm"], r["bitmap_loads"], r["bitmap_stores"]]
            for r in rows
        ],
    )
    return FigureOutput(text, raw_rows=rows)


def _ctx_units(ops: int) -> list[RunUnit]:
    return [RunUnit("ctx-switch", "ctx", {})]


def _ctx_execute(params: dict) -> dict:
    result = overhead.context_switch_overhead()
    return {
        "rows": [
            {"switches": result.switches,
             "mean_prosper_cycles": result.mean_prosper_cycles}
        ]
    }


def _ctx_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Context-switch overhead (paper: ~870 cycles)",
        ["switches", "mean prosper cycles"],
        [[r["switches"], f"{r['mean_prosper_cycles']:.0f}"] for r in rows],
    )
    return FigureOutput(text)


def _energy_units(ops: int) -> list[RunUnit]:
    return [RunUnit("energy", "energy", {"ops": min(ops, 60_000)})]


def _energy_execute(params: dict) -> dict:
    report = overhead.energy_report(target_ops=params["ops"])
    return {
        "rows": [
            {
                "reads": report.reads,
                "writes": report.writes,
                "dynamic_nj": report.dynamic_nj,
                "leakage_nj": report.leakage_nj,
                "area_mm2": report.area_mm2,
            }
        ]
    }


def _energy_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "Lookup-table energy (CACTI-P 7nm)",
        ["reads", "writes", "dynamic nJ", "leakage nJ", "area mm^2"],
        [
            [r["reads"], r["writes"], f"{r['dynamic_nj']:.4f}",
             f"{r['leakage_nj']:.4f}", r["area_mm2"]]
            for r in rows
        ],
    )
    return FigureOutput(text)


# --------------------------------------------------------------------- #
# Ablations, extensions, endurance, report
# --------------------------------------------------------------------- #

def _ablations_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit("ablations", "policy", {"ops": ops}),
        RunUnit("ablations", "bounding", {}),
    ]


def _ablations_execute(params: dict) -> dict:
    if "ops" in params:
        cells = ablations.allocation_policy_ablation(target_ops=params["ops"])
        return {
            "part": "policy",
            "rows": [
                {"workload": c.workload, "policy": c.policy, "memory_ops": c.memory_ops}
                for c in cells
            ],
        }
    cells = ablations.active_region_bounding_ablation()
    return {
        "part": "bounding",
        "rows": [{"workload": c.workload, "speedup": c.speedup} for c in cells],
    }


def _ablations_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    parts = []
    for payload in payloads.values():
        if payload.get("part") == "policy":
            parts.append(render_table(
                "Ablation: allocation policy (bitmap memory ops)",
                ["workload", "policy", "total ops"],
                [[r["workload"], r["policy"], r["memory_ops"]] for r in payload["rows"]],
            ))
        else:
            parts.append(render_table(
                "Ablation: active-region bounding",
                ["workload", "speedup"],
                [[r["workload"], f"{r['speedup']:.2f}x"] for r in payload["rows"]],
            ))
    return FigureOutput("\n\n".join(parts))


def _extensions_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit("extensions", "heap", {"ops": ops}),
        RunUnit("extensions", "adaptive", {}),
    ]


def _extensions_execute(params: dict) -> dict:
    if "ops" in params:
        cells = extensions.prosper_heap_experiment(target_ops=params["ops"])
        return {
            "part": "heap",
            "rows": [
                {"workload": c.workload, "heap_mechanism": c.heap_mechanism,
                 "normalized_time": c.normalized_time}
                for c in cells
            ],
        }
    cells = extensions.adaptive_granularity_experiment()
    return {
        "part": "adaptive",
        "rows": [
            {"workload": c.workload, "mechanism": c.mechanism,
             "normalized_time": c.normalized_time,
             "mean_checkpoint_bytes": c.mean_checkpoint_bytes,
             "final_granularity": c.final_granularity}
            for c in cells
        ],
    }


def _extensions_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    parts = []
    for payload in payloads.values():
        if payload.get("part") == "heap":
            parts.append(render_table(
                "Extension: Prosper on the heap (normalized time)",
                ["workload", "heap mechanism", "normalized"],
                [
                    [r["workload"], r["heap_mechanism"], f"{r['normalized_time']:.2f}"]
                    for r in payload["rows"]
                ],
            ))
        else:
            parts.append(render_table(
                "Extension: adaptive granularity",
                ["workload", "mechanism", "normalized", "mean ckpt", "final granularity"],
                [
                    [r["workload"], r["mechanism"], f"{r['normalized_time']:.3f}",
                     format_bytes(r["mean_checkpoint_bytes"]), r["final_granularity"]]
                    for r in payload["rows"]
                ],
            ))
    return FigureOutput("\n\n".join(parts))


_ENDURANCE_MECHANISMS = ("prosper", "dirtybit", "flush")


def _endurance_units(ops: int) -> list[RunUnit]:
    return [
        RunUnit(
            "endurance",
            label,
            {"mechanism": label, "ops": min(ops, 50_000), "seed": 42},
        )
        for label in _ENDURANCE_MECHANISMS
    ]


def _endurance_execute(params: dict) -> dict:
    from repro.analysis.endurance import endurance_report

    label = params["mechanism"]
    mechanism = {
        "prosper": ProsperPersistence,
        "dirtybit": DirtyBitPersistence,
        "flush": FlushPersistence,
    }[label]()
    trace = gapbs_pr(params["ops"], params["seed"])
    base = vanilla_cycles_cached(trace)
    scale = fixed_cost_scale_for(base)
    interval = scaled_interval_cycles(base, 10.0)
    dirty = sum(trace.copy_sizes(1, 8))
    engine = make_engine(trace, mechanism, fixed_cost_scale=scale)
    engine.run(trace, interval_cycles=interval)
    report = endurance_report(label, engine.hierarchy, dirty, round(base / scale))
    return {
        "rows": [
            {
                "mechanism": label,
                "nvm_write_bytes": report.nvm_write_bytes,
                "write_amplification": report.write_amplification,
            }
        ]
    }


def _endurance_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    rows = _rows(payloads)
    text = render_table(
        "NVM endurance: write traffic by mechanism (gapbs_pr)",
        ["mechanism", "NVM bytes written", "amplification"],
        [
            [r["mechanism"], r["nvm_write_bytes"], f"{r['write_amplification']:.1f}x"]
            for r in rows
        ],
    )
    return FigureOutput(text)


def _report_units(ops: int) -> list[RunUnit]:
    return [RunUnit("report", "report", {"ops": ops})]


def _report_execute(params: dict) -> dict:
    from repro.experiments.report_gen import generate_report

    return {"text": generate_report(ops=params["ops"])}


def _report_assemble(ops: int, payloads: dict, failed: list[str]) -> FigureOutput:
    texts = [p["text"] for p in payloads.values() if "text" in p]
    return FigureOutput("\n".join(texts))


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

for _spec in (
    FigureSpec("fig1", _fig1_units, _fig1_execute, _fig1_assemble),
    FigureSpec("fig2", _fig2_units, _fig2_execute, _fig2_assemble),
    FigureSpec("fig3", _fig3_units, _fig3_execute, _fig3_assemble),
    FigureSpec("fig4", _fig4_units, _fig4_execute, _fig4_assemble),
    FigureSpec("fig8", _fig8_units, _fig8_execute, _fig8_assemble),
    FigureSpec("fig9", _fig9_units, _fig9_execute, _fig9_assemble),
    FigureSpec("fig10", _fig10_units, _fig10_execute, _fig10_assemble),
    FigureSpec("fig11", _fig11_units, _fig11_execute, _fig11_assemble),
    FigureSpec("fig12", _fig12_units, _fig12_execute, _fig12_assemble),
    FigureSpec("fig13", _fig13_units, _fig13_execute, _fig13_assemble),
    FigureSpec("ctx-switch", _ctx_units, _ctx_execute, _ctx_assemble),
    FigureSpec("energy", _energy_units, _energy_execute, _energy_assemble),
    FigureSpec("ablations", _ablations_units, _ablations_execute, _ablations_assemble),
    FigureSpec("extensions", _extensions_units, _extensions_execute, _extensions_assemble),
    FigureSpec("endurance", _endurance_units, _endurance_execute, _endurance_assemble),
    FigureSpec("report", _report_units, _report_execute, _report_assemble),
):
    register(_spec)
