"""Tests for repro.core.energy: the CACTI-P lookup-table energy model."""

import pytest

from repro.core.energy import (
    AREA_MM2,
    LEAKAGE_POWER_MW,
    READ_ENERGY_NJ,
    WRITE_ENERGY_NJ,
    EnergyModel,
)


class TestPaperNumbers:
    def test_published_constants(self):
        assert READ_ENERGY_NJ == pytest.approx(0.000773194)
        assert WRITE_ENERGY_NJ == pytest.approx(0.000128375)
        assert LEAKAGE_POWER_MW == pytest.approx(0.01067596)
        assert AREA_MM2 == pytest.approx(0.000704786)


class TestReports:
    def test_dynamic_energy_scales_with_accesses(self):
        model = EnergyModel()
        r = model.report(reads=1000, writes=500, elapsed_cycles=0)
        assert r.dynamic_read_nj == pytest.approx(1000 * READ_ENERGY_NJ)
        assert r.dynamic_write_nj == pytest.approx(500 * WRITE_ENERGY_NJ)
        assert r.dynamic_nj == r.dynamic_read_nj + r.dynamic_write_nj
        assert r.leakage_nj == 0.0

    def test_leakage_scales_with_time(self):
        model = EnergyModel()
        one_second = model.report(0, 0, elapsed_cycles=3_000_000_000)
        # 0.01067596 mW for 1 s = 0.01067596 mJ = 10675.96 nJ
        assert one_second.leakage_nj == pytest.approx(10675.96, rel=1e-4)

    def test_total(self):
        r = EnergyModel().report(10, 10, 3_000_000)
        assert r.total_nj == pytest.approx(r.dynamic_nj + r.leakage_nj)

    def test_area_attached(self):
        assert EnergyModel().report(0, 0, 0).area_mm2 == AREA_MM2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyModel().report(-1, 0, 0)
        with pytest.raises(ValueError):
            EnergyModel(read_energy_nj=-1.0)

    def test_report_for_tracker(self):
        from repro.config import TrackerConfig
        from repro.core.bitmap import DirtyBitmap
        from repro.core.tracker import ProsperTracker
        from repro.memory.address import AddressRange

        tracker = ProsperTracker(TrackerConfig())
        bm = DirtyBitmap(AddressRange(0, 65536), 8)
        tracker.configure(bm)
        tracker.observe_store(100, 8)
        report = EnergyModel().report_for_tracker(tracker, elapsed_cycles=300)
        assert report.reads == tracker.table_reads
        assert report.writes == tracker.table_writes
        assert report.dynamic_nj > 0
