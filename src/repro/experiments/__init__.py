"""Experiment harness: one entry point per paper figure.

* :mod:`repro.experiments.runner` — shared driver (build engine, scale
  intervals, collect results).
* :mod:`repro.experiments.motivation` — Figures 1-4 (Section II).
* :mod:`repro.experiments.evaluation` — Figures 8-11 (checkpoint
  performance, Setup-I).
* :mod:`repro.experiments.overhead` — Figures 12-13, context-switch cost,
  and the energy/area table (Setup-II).
"""

from repro.experiments.runner import (
    RunResult,
    make_engine,
    run_mechanism,
    scaled_interval_cycles,
)
from repro.experiments import ablations, evaluation, extensions, motivation, overhead

__all__ = [
    "RunResult",
    "make_engine",
    "run_mechanism",
    "scaled_interval_cycles",
    "motivation",
    "evaluation",
    "overhead",
    "ablations",
    "extensions",
]
