"""Tests for ByteImage and data-integrity recovery in the simulation."""

import numpy as np
from hypothesis import given, strategies as st

from repro.cpu.ops import Op, OpKind
from repro.kernel.simulation import MultiThreadSimulation
from repro.memory.address import AddressRange
from repro.memory.image import ByteImage


class TestByteImage:
    def test_write_read_roundtrip(self):
        img = ByteImage()
        img.write(0x1000, 42)
        assert img.read(0x1000) == 42
        assert img.read(0x1004) == 42  # same word
        assert img.read(0x1008) == 0  # unwritten word reads 0

    def test_copy_range(self):
        src, dst = ByteImage(), ByteImage()
        src.write(0x100, 1)
        src.write(0x108, 2)
        src.write(0x200, 3)  # outside the copied range
        copied = dst.copy_range_from(src, AddressRange(0x100, 0x110))
        assert copied == 2
        assert dst.read(0x100) == 1 and dst.read(0x108) == 2
        assert dst.read(0x200) == 0

    def test_copy_range_removes_stale_words(self):
        src, dst = ByteImage(), ByteImage()
        dst.write(0x100, 99)  # stale word absent from source
        dst.copy_range_from(src, AddressRange(0x100, 0x108))
        assert dst.read(0x100) == 0

    def test_equals_in_range(self):
        a, b = ByteImage(), ByteImage()
        a.write(0x10, 5)
        b.write(0x10, 5)
        assert a.equals_in_range(b, AddressRange(0x0, 0x100))
        b.write(0x18, 7)
        assert not a.equals_in_range(b, AddressRange(0x0, 0x100))
        assert a.equals_in_range(b, AddressRange(0x0, 0x18))

    def test_snapshot_independent(self):
        img = ByteImage()
        img.write(0x0, 1)
        snap = img.snapshot()
        img.write(0x0, 2)
        assert snap.read(0x0) == 1

    def test_clear(self):
        img = ByteImage()
        img.write(0x0, 1)
        img.clear()
        assert len(img) == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 2**40)),
            max_size=100,
        )
    )
    def test_copy_makes_exact_replica(self, writes):
        src, dst = ByteImage(), ByteImage()
        for offset, value in writes:
            src.write(offset * 8, value)
        rng = AddressRange(0, 8 * 1024)
        dst.copy_range_from(src, rng)
        assert dst.equals_in_range(src, rng)


def build_sim(num_threads=2, writes=300, **kwargs):
    sim = MultiThreadSimulation(
        [[Op(OpKind.COMPUTE, size=1)] for _ in range(num_threads)], **kwargs
    )
    streams = []
    for i, (thread, _, _) in enumerate(sim._streams):
        rng = np.random.default_rng(100 + i)
        frame = thread.stack.size // 2
        ops = [Op(OpKind.CALL, size=frame)]
        base = thread.stack.end - frame
        for off in (rng.integers(0, frame // 8, size=writes) * 8):
            ops.append(Op(OpKind.WRITE, base + int(off), 8))
        streams.append((thread, ops, 0))
    sim._streams = streams
    return sim


class TestDataIntegrityRecovery:
    def test_contents_survive_crash(self):
        sim = build_sim(2, writes=300, quantum_ops=64, checkpoint_every_quanta=3)
        sim.run()
        # Capture each thread's live contents at the final checkpoint.
        expected = {
            tid: img.snapshot() for tid, img in sim.dram_images.items()
        }
        sim.crash()
        assert all(len(img) == 0 for img in sim.dram_images.values())
        report = sim.recover()
        assert report.recovered
        assert sim.verify_recovered_contents()
        # Restored words within the live frame match the pre-crash values:
        # the final checkpoint ran after the last write, so the persistent
        # image holds exactly the live state.
        for thread in sim.process.iter_threads():
            frame = AddressRange(
                thread.stack.end - thread.stack.size // 2, thread.stack.end
            )
            assert sim.dram_images[thread.tid].equals_in_range(
                expected[thread.tid], frame
            )

    def test_post_checkpoint_writes_lost_by_design(self):
        sim = build_sim(1, writes=200, quantum_ops=50, checkpoint_every_quanta=100)
        sim.run()  # one mid-run checkpoint at most + final checkpoint
        thread = sim.process.thread(1)
        # Write after the final checkpoint, then crash without another one.
        address = thread.stack.end - 64
        sim.dram_images[1].write(address, 0xDEAD)
        sim.crash()
        sim.recover()
        assert sim.dram_images[1].read(address) != 0xDEAD
