"""Access-pattern and access-intensity micro-benchmarks (Table III).

These reproduce the micro-benchmarks the paper uses to explore Prosper's
behaviour across stack usage patterns:

* **Random** — writes to random elements of a stack-allocated array
  (average case for sub-page tracking);
* **Stream** — sequential writes to the whole array (worst case: everything
  is dirty, so fine tracking cannot shrink the copy);
* **Sparse** — four dirty bytes per 4 KiB page, across recursive calls
  (best case: page tracking copies 1024x more than needed);
* **Normal / Poisson** — bursts of stack writes whose count is drawn from a
  normal(63, 20) / Poisson(63) distribution, separated by compute blocks
  that increment a register one thousand times.

Every generator is deterministic given its seed, emits its op stream as a
``TRACE_DTYPE`` numpy array (no per-op objects), and returns a
:class:`~repro.workloads.trace.Trace`.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.ops import OpKind, TraceBuilder
from repro.memory.address import AddressRange
from repro.workloads.trace import Trace

#: Default layout used by all micro-benchmarks: a 1 MiB stack.
DEFAULT_STACK = AddressRange(0x7F00_0000, 0x7F10_0000)
#: Default heap region (used by Quicksort and the app models).
DEFAULT_HEAP = AddressRange(0x1000_0000, 0x1100_0000)

#: Compute block between write bursts: one thousand register increments.
COMPUTE_BLOCK_CYCLES = 1000


def random_workload(
    array_bytes: int = 256 * 1024,
    num_writes: int = 100_000,
    read_fraction: float = 0.2,
    stack: AddressRange = DEFAULT_STACK,
    seed: int = 1,
) -> Trace:
    """Writes to random 8-byte words of a stack-allocated array."""
    if array_bytes > stack.size:
        raise ValueError("array does not fit in the stack region")
    rng = np.random.default_rng(seed)
    frame = array_bytes
    base = stack.end - frame
    offsets = rng.integers(0, array_bytes // 8, size=num_writes) * 8
    is_read = rng.random(num_writes) < read_fraction

    builder = TraceBuilder()
    builder.call(frame)
    builder.extend(
        np.where(is_read, int(OpKind.READ), int(OpKind.WRITE)),
        base + offsets,
        8,
    )
    builder.ret(frame)
    return Trace(builder.to_array(), stack, name="random")


def stream_workload(
    array_bytes: int = 256 * 1024,
    passes: int = 2,
    stack: AddressRange = DEFAULT_STACK,
    seed: int = 1,
) -> Trace:
    """Sequential writes over the whole stack array, *passes* times."""
    if array_bytes > stack.size:
        raise ValueError("array does not fit in the stack region")
    frame = array_bytes
    base = stack.end - frame
    offsets = np.arange(0, array_bytes, 8, dtype=np.int64)

    builder = TraceBuilder()
    builder.call(frame)
    for _ in range(passes):
        builder.extend(int(OpKind.WRITE), base + offsets, 8)
    builder.ret(frame)
    return Trace(builder.to_array(), stack, name="stream")


def sparse_workload(
    pages: int = 64,
    rounds: int = 200,
    page_bytes: int = 4096,
    stack: AddressRange = DEFAULT_STACK,
    seed: int = 1,
) -> Trace:
    """Dirty four bytes of each stack page across recursive invocations.

    Each recursion level pushes a page-sized frame and writes 4 bytes into
    it; after reaching *pages* levels the recursion unwinds.  Repeated for
    *rounds* rounds — a workload whose page-granularity checkpoint is ~1000x
    its true dirty footprint.
    """
    if pages * page_bytes > stack.size:
        raise ValueError("recursion does not fit in the stack region")
    # One round is a fixed op pattern; build it once and tile.
    round_builder = TraceBuilder()
    sp = stack.end
    for _level in range(pages):
        round_builder.call(page_bytes)
        sp -= page_bytes
        round_builder.write(sp + 64, 4)
    for _level in range(pages):
        round_builder.ret(page_bytes)
    round_builder.compute(COMPUTE_BLOCK_CYCLES)
    arr = np.tile(round_builder.to_array(), max(0, rounds))
    return Trace(arr, stack, name="sparse")


def _burst_workload(
    name: str,
    burst_sizes: np.ndarray,
    working_set_bytes: int,
    stack: AddressRange,
    seed: int,
) -> Trace:
    """Shared body of the Normal/Poisson access-intensity benchmarks.

    Each burst writes *sequentially* into a local buffer starting at a
    small random offset — the compiler-generated pattern of filling a
    function-scope array between computation blocks.  The dirty footprint
    per interval is therefore localized (a few hundred bytes), which is
    what lets sub-page tracking beat page tracking on these workloads.
    """
    rng = np.random.default_rng(seed)
    frame = working_set_bytes
    base = stack.end - frame
    words = working_set_bytes // 8

    builder = TraceBuilder()
    builder.call(frame)
    for burst in burst_sizes:
        count = int(max(0, burst))
        if count:
            start = int(rng.integers(0, max(1, words - count)))
            word_indices = (start + np.arange(count, dtype=np.int64)) % words
            builder.extend(int(OpKind.WRITE), base + word_indices * 8, 8)
        builder.compute(COMPUTE_BLOCK_CYCLES)
    builder.ret(frame)
    return Trace(builder.to_array(), stack, name=name)


def normal_workload(
    blocks: int = 1500,
    mu: float = 63.0,
    sigma: float = 20.0,
    working_set_bytes: int = 64 * 1024,
    stack: AddressRange = DEFAULT_STACK,
    seed: int = 1,
) -> Trace:
    """Normally distributed stack-write bursts between compute blocks."""
    rng = np.random.default_rng(seed)
    bursts = np.rint(rng.normal(mu, sigma, size=blocks)).astype(int)
    return _burst_workload("normal", bursts, working_set_bytes, stack, seed + 1)


def poisson_workload(
    blocks: int = 1500,
    lam: float = 63.0,
    working_set_bytes: int = 64 * 1024,
    stack: AddressRange = DEFAULT_STACK,
    seed: int = 1,
) -> Trace:
    """Poisson distributed stack-write bursts between compute blocks."""
    rng = np.random.default_rng(seed)
    bursts = rng.poisson(lam, size=blocks)
    return _burst_workload("poisson", bursts, working_set_bytes, stack, seed + 1)
