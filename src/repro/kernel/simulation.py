"""End-to-end multithreaded simulation: threads, quanta, checkpoints.

Combines the substrate pieces into the full system of Section III-C: a
process with several persistent threads time-shared on one logical CPU.
The simulation interleaves each thread's trace in scheduler quanta; on
every switch the scheduler saves/restores the Prosper tracker state, and a
periodic checkpoint captures every thread's registers plus the dirty stack
data its bitmap accumulated — whichever core its stores ran on.

This is the layer the two-thread context-switch study runs on, and it is
exercised directly by the integration tests (all threads' modifications
must survive a crash regardless of how the scheduler interleaved them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig, setup_i
from repro.core.tracker import ProsperTracker
from repro.cpu.ops import Op, OpKind
from repro.faults.injector import FaultInjector
from repro.kernel.checkpoint_mgr import CheckpointManager
from repro.kernel.process import Process, Thread
from repro.kernel.restore import CrashSimulator, RecoveryReport
from repro.kernel.scheduler import Scheduler
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import ByteImage


@dataclass
class SimulationStats:
    """Accounting of one multithreaded run."""

    ops_executed: int = 0
    cycles: int = 0
    switches: int = 0
    checkpoints: int = 0
    checkpoint_cycles: int = 0
    per_thread_ops: dict[int, int] = field(default_factory=dict)


class MultiThreadSimulation:
    """Round-robin execution of per-thread traces with Prosper persistence."""

    def __init__(
        self,
        thread_ops: list[list[Op]],
        stack_bytes: int = 512 * 1024,
        quantum_ops: int = 500,
        checkpoint_every_quanta: int = 10,
        config: SystemConfig | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        if not thread_ops:
            raise ValueError("need at least one thread")
        if quantum_ops <= 0 or checkpoint_every_quanta <= 0:
            raise ValueError("quantum and checkpoint period must be positive")
        self.config = config or setup_i()
        self.process = Process(name="sim")
        self.hierarchy = MemoryHierarchy(self.config)
        self.tracker = ProsperTracker(self.process.tracker_config)
        self.scheduler = Scheduler(self.tracker)
        #: Actual stack contents: volatile DRAM image + persistent NVM
        #: image per thread, used to validate data integrity across crashes.
        self.dram_images: dict[int, ByteImage] = {}
        self.nvm_images: dict[int, ByteImage] = {}
        self.injector = injector
        self.manager = CheckpointManager(
            self.process,
            self.hierarchy,
            self.tracker,
            injector=injector,
            dram_images=self.dram_images,
            nvm_images=self.nvm_images,
        )
        self.crash_sim = CrashSimulator(
            self.process,
            self.manager,
            dram_images=self.dram_images,
            nvm_images=self.nvm_images,
        )
        self.quantum_ops = quantum_ops
        self.checkpoint_every_quanta = checkpoint_every_quanta
        self.stats = SimulationStats()

        self._streams: list[tuple[Thread, list[Op], int]] = []
        for ops in thread_ops:
            thread = self.process.spawn_thread(stack_bytes, persistent=True)
            self._streams.append((thread, ops, 0))
            self.dram_images[thread.tid] = ByteImage()
            self.nvm_images[thread.tid] = ByteImage()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, stop_after_quanta: int | None = None) -> SimulationStats:
        """Run every thread's trace to completion, checkpointing as we go.

        *stop_after_quanta* halts execution early (mid-run), which the
        crash/resume tests use to inject failures at arbitrary points.
        """
        quanta = 0
        while any(cursor < len(ops) for _, ops, cursor in self._streams):
            for index, (thread, ops, cursor) in enumerate(self._streams):
                if cursor >= len(ops):
                    continue
                self.stats.cycles += self.scheduler.switch_to(thread)
                self.stats.switches += 1
                end = min(cursor + self.quantum_ops, len(ops))
                self._execute_slice(thread, ops, cursor, end)
                self._streams[index] = (thread, ops, end)
                quanta += 1
                if quanta % self.checkpoint_every_quanta == 0:
                    self._checkpoint()
                if stop_after_quanta is not None and quanta >= stop_after_quanta:
                    return self.stats
        self._checkpoint()
        return self.stats

    def resume(self) -> SimulationStats:
        """Continue execution after :meth:`recover`.

        Each thread's trace cursor is rewound to the op index its restored
        registers carry — exactly where the last committed checkpoint saw
        it — and execution proceeds to completion.  Work done after that
        checkpoint is re-executed, which is the checkpoint-resume semantics
        the paper validates by killing and restarting gem5.
        """
        for index, (thread, ops, _cursor) in enumerate(self._streams):
            self._streams[index] = (thread, ops, thread.registers.op_index)
        # The crash wiped the tracker: the next switch reprograms it.
        self.scheduler.current = None
        return self.run()

    def _execute_slice(self, thread: Thread, ops: list[Op], start: int, end: int) -> None:
        regs = thread.registers
        for op in ops[start:end]:
            kind = op.kind
            if kind == OpKind.COMPUTE:
                self.stats.cycles += op.size
            elif kind == OpKind.CALL:
                regs.push_frame(op.size)
                self.stats.cycles += 1
            elif kind == OpKind.RET:
                regs.pop_frame(op.size)
                self.stats.cycles += 1
            else:
                result = self.hierarchy.access(
                    op.address, op.size, kind == OpKind.WRITE
                )
                self.stats.cycles += result.latency_cycles
                if kind == OpKind.WRITE:
                    if thread.stack.contains(op.address):
                        self.stats.cycles += self.tracker.observe_store(
                            op.address, op.size
                        )
                        # Deterministic content: value derives from the
                        # writing thread and its op position, so recovery
                        # checks can recompute expected bytes.
                        self.dram_images[thread.tid].write(
                            op.address, (thread.tid << 32) | regs.op_index
                        )
                    elif self.process.handle_cross_thread_write(
                        thread.tid, op.address, op.size
                    ):
                        # Cross-thread stack write: the OS fault path
                        # recorded it in the victim's bitmap.
                        self.stats.cycles += 2500
                        for victim in self.process.iter_threads():
                            if victim.stack.contains(op.address):
                                self.dram_images[victim.tid].write(
                                    op.address, (thread.tid << 32) | regs.op_index
                                )
            regs.op_index += 1
            self.stats.ops_executed += 1
        self.stats.per_thread_ops[thread.tid] = regs.op_index
        self.hierarchy.now = self.stats.cycles

    def _checkpoint(self) -> None:
        # The current thread's tracker state must be flushed so its bitmap
        # is complete before the manager walks it.
        current = self.scheduler.current
        if current is not None and current.persistent:
            self.tracker.request_flush()
            self.tracker.poll_quiescent()
        # The manager stages each thread's dirty runs (with real contents,
        # checksummed) and applies them to the persistent NVM images at
        # commit — the data that survives a power failure.
        _record, cycles = self.manager.checkpoint_process()
        self.stats.checkpoints += 1
        self.stats.checkpoint_cycles += cycles
        self.stats.cycles += cycles

    # ------------------------------------------------------------------ #
    # Crash / recovery passthrough
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Power failure: volatile state (registers, DRAM images) vanishes."""
        self.crash_sim.crash()

    def recover(self) -> RecoveryReport:
        """Restart: registers restore from the last committed checkpoint and
        each thread's DRAM stack image is repopulated from its persistent
        NVM image (both handled by the crash simulator)."""
        return self.crash_sim.recover()

    def verify_recovered_contents(self) -> bool:
        """Check every thread's restored stack equals its persistent image."""
        return all(
            self.dram_images[t.tid].equals_in_range(
                self.nvm_images[t.tid], t.stack
            )
            for t in self.process.iter_threads()
        )
