#!/usr/bin/env python3
"""Tune Prosper's tracking granularity per stack usage pattern (Figure 10).

Runs three contrasting micro-benchmarks — Sparse (best case for fine
tracking), Random (average), Stream (worst) — under Prosper at 8-128 byte
granularity and the page-level Dirtybit baseline, showing how checkpoint
size and time move with granularity.  The paper's takeaway: granularity
should be tuned (or Prosper disabled in favour of Dirtybit) per workload.

Run:  python examples/granularity_tuning.py
"""

from repro import DirtyBitPersistence, ProsperPersistence, TrackerConfig, run_mechanism
from repro.analysis.report import format_bytes, render_table
from repro.experiments.runner import vanilla_cycles
from repro.workloads import random_workload, sparse_workload, stream_workload

GRANULARITIES = (8, 16, 32, 64, 128)


def main() -> None:
    workloads = [
        sparse_workload(pages=48, rounds=80),
        random_workload(array_bytes=128 * 1024, num_writes=25_000),
        stream_workload(array_bytes=96 * 1024, passes=2),
    ]

    rows = []
    for trace in workloads:
        base = vanilla_cycles(trace)

        dirtybit = DirtyBitPersistence()
        run_mechanism(trace, dirtybit, 10.0, baseline_cycles=base)
        db_time = dirtybit.stats.mean_checkpoint_cycles or 1.0
        rows.append(
            [trace.name, "page", format_bytes(dirtybit.stats.mean_checkpoint_bytes), "1.000"]
        )

        for granularity in GRANULARITIES:
            mech = ProsperPersistence(TrackerConfig().with_granularity(granularity))
            run_mechanism(trace, mech, 10.0, baseline_cycles=base)
            rows.append(
                [
                    trace.name,
                    f"{granularity}B",
                    format_bytes(mech.stats.mean_checkpoint_bytes),
                    f"{mech.stats.mean_checkpoint_cycles / db_time:.3f}",
                ]
            )

    print(
        render_table(
            "Prosper granularity sweep (checkpoint time relative to Dirtybit)",
            ["workload", "granularity", "mean ckpt size", "ckpt time vs dirtybit"],
            rows,
        )
    )
    print(
        "\nShape to expect (paper Figure 10): sparse collapses to a few bytes"
        " per page (~22x faster checkpoints); stream gains nothing from fine"
        " tracking; random sits in between."
    )


if __name__ == "__main__":
    main()
