"""Memory-persistence mechanisms: Prosper and every baseline it is compared to.

All mechanisms implement the :class:`~repro.persistence.base.PersistenceMechanism`
interface, which the execution engine drives with per-access and per-interval
hooks.  This uniformity is what lets the benchmarks sweep mechanisms and what
lets :class:`~repro.persistence.combined.CombinedPersistence` compose one
mechanism for the heap with another for the stack (Figure 9).
"""

from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    MechanismStats,
    PersistenceMechanism,
)
from repro.persistence.none import NoPersistence
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.writeprotect import WriteProtectPersistence
from repro.persistence.logging import (
    FlushPersistence,
    RedoLogPersistence,
    UndoLogPersistence,
)
from repro.persistence.romulus import RomulusPersistence
from repro.persistence.ssp import SspPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.adaptive import AdaptiveProsperPersistence
from repro.persistence.combined import CombinedPersistence

__all__ = [
    "Capabilities",
    "IntervalContext",
    "MechanismStats",
    "PersistenceMechanism",
    "NoPersistence",
    "DirtyBitPersistence",
    "WriteProtectPersistence",
    "FlushPersistence",
    "UndoLogPersistence",
    "RedoLogPersistence",
    "RomulusPersistence",
    "SspPersistence",
    "ProsperPersistence",
    "AdaptiveProsperPersistence",
    "CombinedPersistence",
]
