"""Byte-addressable memory images: actual *contents*, not just timing.

The timing model elsewhere treats memory as events; recovery correctness,
however, is about bytes.  A :class:`ByteImage` stores 8-byte words sparsely
so the simulation can keep a real DRAM image of each stack, copy dirty runs
into a persistent NVM image at checkpoints, throw the DRAM image away at a
crash, and verify after recovery that the restored contents equal what the
last committed checkpoint captured — the data-integrity half of the paper's
"kill gem5 and restart" validation.
"""

from __future__ import annotations

from typing import Iterator

from repro.memory.address import AddressRange

WORD_BYTES = 8


class ByteImage:
    """Sparse word-granularity memory contents."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._words)

    def write(self, address: int, value: int) -> None:
        """Store *value* at the word containing *address*."""
        self._words[address // WORD_BYTES] = value

    def read(self, address: int, default: int = 0) -> int:
        """Load the word containing *address* (unwritten words read 0)."""
        return self._words.get(address // WORD_BYTES, default)

    def copy_range_from(self, source: "ByteImage", rng: AddressRange) -> int:
        """Copy every word of *rng* present in *source*; returns words copied.

        Words absent from the source within the range are removed here too,
        so the destination range becomes an exact replica.
        """
        copied = 0
        first = rng.start // WORD_BYTES
        last = (rng.end - 1) // WORD_BYTES if rng.size else first - 1
        for word in range(first, last + 1):
            if word in source._words:
                self._words[word] = source._words[word]
                copied += 1
            else:
                self._words.pop(word, None)
        return copied

    def words_in_range(self, rng: AddressRange) -> Iterator[tuple[int, int]]:
        """(word-aligned address, value) pairs present within *rng*, ordered.

        This is the content the checkpoint path stages for one dirty run —
        the raw material its CRC32 is computed over.
        """
        first = rng.start // WORD_BYTES
        last = (rng.end - 1) // WORD_BYTES if rng.size else first - 1
        for word in range(first, last + 1):
            if word in self._words:
                yield word * WORD_BYTES, self._words[word]

    def replace_range(self, rng: AddressRange, words) -> int:
        """Make *rng* hold exactly *words* ((address, value) pairs).

        Words of the range not listed are removed, mirroring
        :meth:`copy_range_from`'s exact-replica semantics; used when a
        staged checkpoint run is applied to the persistent image.  Returns
        the number of words written.
        """
        first = rng.start // WORD_BYTES
        last = (rng.end - 1) // WORD_BYTES if rng.size else first - 1
        for word in range(first, last + 1):
            self._words.pop(word, None)
        written = 0
        for address, value in words:
            self._words[address // WORD_BYTES] = value
            written += 1
        return written

    def iter_words(self) -> Iterator[tuple[int, int]]:
        """(word-aligned address, value) pairs, unordered."""
        for word, value in self._words.items():
            yield word * WORD_BYTES, value

    def clear(self) -> None:
        """Drop all contents (a power failure for a DRAM image)."""
        self._words.clear()

    def equals_in_range(self, other: "ByteImage", rng: AddressRange) -> bool:
        """True when both images hold identical words across *rng*."""
        first = rng.start // WORD_BYTES
        last = (rng.end - 1) // WORD_BYTES if rng.size else first - 1
        for word in range(first, last + 1):
            if self._words.get(word, 0) != other._words.get(word, 0):
                return False
        return True

    def snapshot(self) -> "ByteImage":
        """Independent copy of the current contents."""
        clone = ByteImage()
        clone._words = dict(self._words)
        return clone
