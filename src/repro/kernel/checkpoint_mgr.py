"""Periodic whole-process checkpointing (the GemOS baseline of Section III-D).

The checkpoint manager captures, every interval, all process state needed to
resume after a crash:

* per-thread **register files** (including SP and the op index, our program
  counter surrogate);
* per-thread **stack images**, via whichever dirty-tracking mechanism the
  process is configured with (Prosper sub-page runs or page-granularity
  dirty bits) — incremental: only dirtied data is copied;
* process **metadata** (thread list, layout) as a small fixed-cost record,
  protected by a CRC32 so a torn NVM write is detected at recovery.

Each checkpoint is written to NVM using the two-step staging/commit
protocol, *process-wide*: every thread's dirty runs are staged first, then
a single commit flag flips, then the staged data is applied to each
thread's persistent stack.  A crash at any point therefore leaves either
the previous or the new checkpoint fully intact across **all** threads —
never a mix.  :mod:`repro.kernel.restore` consumes the records produced
here; :mod:`repro.faults.sweep` crashes at every step and checks exactly
that invariant.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.core.bitmap import DirtyRun
from repro.core.checkpoint import ProsperCheckpointEngine, StagedRun
from repro.core.tracker import ProsperTracker
from repro.cpu.registers import RegisterFile
from repro.faults.injector import COMMIT_FLAG_WRITE, METADATA_WRITE, FaultInjector
from repro.kernel.process import Process, Thread
from repro.memory.address import AddressRange
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import ByteImage

#: Fixed cost of capturing non-memory state (registers, fds, metadata).
METADATA_CAPTURE_CYCLES = 800
#: Bytes of the metadata record persisted per checkpoint.
METADATA_BYTES = 512

#: XOR mask applied to a stored metadata CRC to model a torn NVM write of
#: the metadata record (silent at write time, caught at recovery).
TORN_METADATA_MASK = 0x5A5A_5A5A


@dataclass
class ThreadSnapshot:
    """Persistent record of one thread at a checkpoint."""

    tid: int
    registers: RegisterFile
    dirty_runs: list[DirtyRun] = field(default_factory=list)
    copied_bytes: int = 0
    #: Whether every planned run reached the staging buffer (written as part
    #: of the staging descriptor; recovery must not trust a False one).
    staged_complete: bool = True


@dataclass
class ProcessCheckpoint:
    """One process checkpoint record in NVM (committed once the flag flips)."""

    sequence: int
    threads: list[ThreadSnapshot]
    committed: bool = False
    #: CRC32 over the metadata record as stored in NVM; None means the
    #: crash happened before the metadata write finished.
    metadata_crc: int | None = None
    #: NVM write retries spent on this checkpoint's traffic (media errors).
    retries: int = 0

    @property
    def total_bytes(self) -> int:
        return METADATA_BYTES + sum(t.copied_bytes for t in self.threads)

    def verify_metadata(self) -> bool:
        """Recompute the metadata CRC and compare with the stored one."""
        if self.metadata_crc is None:
            return False
        return self.metadata_crc == _metadata_crc(self)


def _metadata_crc(record: ProcessCheckpoint) -> int:
    """CRC32 over the recovery-critical metadata: sequence + register files."""
    payload = repr(
        (
            record.sequence,
            [
                (
                    snap.tid,
                    snap.registers.stack_pointer,
                    snap.registers.op_index,
                    tuple(snap.registers.gprs),
                )
                for snap in record.threads
            ],
        )
    )
    return zlib.crc32(payload.encode())


def _safe_verify(staged) -> bool:
    """Checksum a staging buffer, treating a record so mangled that the
    verify itself fails as a failed checksum (recovery must degrade to
    the previous checkpoint, never crash)."""
    try:
        return staged.verify()
    except Exception:
        return False


def _lose_metadata(record: "ProcessCheckpoint"):
    """Persist-order undo: the metadata record never reached the media."""

    def undo() -> None:
        record.metadata_crc = None

    return undo


def _tear_metadata(record: "ProcessCheckpoint"):
    """Persist-order tear: the metadata line was cut mid-flight."""

    def tear() -> None:
        if record.metadata_crc is not None:
            record.metadata_crc ^= TORN_METADATA_MASK

    return tear


def _lose_commit_flag(record: "ProcessCheckpoint"):
    """Persist-order undo: the commit flag never flipped in NVM."""

    def undo() -> None:
        record.committed = False

    return undo


class CheckpointManager:
    """Drives periodic checkpoints of one process."""

    def __init__(
        self,
        process: Process,
        hierarchy: MemoryHierarchy,
        tracker: ProsperTracker | None = None,
        injector: FaultInjector | None = None,
        dram_images: dict[int, ByteImage] | None = None,
        nvm_images: dict[int, ByteImage] | None = None,
    ) -> None:
        self.process = process
        self.hierarchy = hierarchy
        self.tracker = tracker
        self.injector = injector
        #: Optional actual stack contents (per tid); when provided, staged
        #: runs carry real payloads (checksummed) and commits apply them to
        #: the persistent NVM image.
        self.dram_images = dram_images
        self.nvm_images = nvm_images
        self.checkpoints: list[ProcessCheckpoint] = []
        self._engines: dict[int, ProsperCheckpointEngine] = {}
        self._sequence = 0
        #: Recovery accounting: staged buffers discarded as incomplete or
        #: checksum-failed, and the interval indices they belonged to.
        self.discarded_staged = 0
        self.discarded_intervals: set[int] = set()

    def _reached(self, point: str) -> None:
        if self.injector is not None:
            self.injector.reached(point)

    def _order_oracle(self):
        """The persist-order oracle on the NVM device, if attached."""
        nvm = self.hierarchy.nvm
        return nvm.order_oracle if nvm is not None else None

    def _walk_bound(self, thread: Thread) -> int:
        """Lowest address whose bitmap words the OS must inspect/clear.

        Combines the thread's SP with the tracker's lowest dirty address —
        taken from the live tracker when the thread is current, or from the
        tracker state saved at its last context switch (Section III-C).
        The bound must cover dead frames too, so stale dirty bits below the
        final SP are cleared rather than leaking into later checkpoints.
        """
        candidates = [thread.registers.stack_pointer]
        if self.tracker is not None and self.tracker.bitmap is thread.bitmap:
            if self.tracker.min_dirty_address is not None:
                candidates.append(self.tracker.min_dirty_address)
        elif thread.tracker_state is not None and thread.tracker_state.min_dirty_address:
            candidates.append(thread.tracker_state.min_dirty_address)
        return max(thread.stack.start, min(candidates))

    def _engine_for(self, thread: Thread) -> ProsperCheckpointEngine | None:
        if thread.bitmap is None or self.tracker is None:
            return None
        engine = self._engines.get(thread.tid)
        if engine is None:
            reader = self._content_reader(thread.tid)
            writer = self._content_writer(thread.tid)
            engine = ProsperCheckpointEngine(
                self.tracker,
                thread.bitmap,
                self.hierarchy,
                injector=self.injector,
                content_reader=reader,
                content_writer=writer,
                # Per-thread namespace: several engines share one NVM
                # device, and persist-order labels must not collide when
                # two threads stage the same checkpoint sequence.
                label_prefix=f"t{thread.tid}.ckpt",
            )
            self._engines[thread.tid] = engine
        return engine

    def _content_reader(self, tid: int):
        if self.dram_images is None:
            return None
        images = self.dram_images

        def reader(run: DirtyRun):
            image = images.get(tid)
            if image is None:
                return ()
            return image.words_in_range(AddressRange(run.start, run.end))

        return reader

    def _content_writer(self, tid: int):
        if self.nvm_images is None:
            return None
        images = self.nvm_images

        def writer(staged_run: StagedRun) -> None:
            image = images.get(tid)
            if image is None:
                return
            image.replace_range(
                AddressRange(staged_run.run.start, staged_run.run.end),
                staged_run.payload,
            )

        return writer

    def checkpoint_process(
        self, crash_during_commit: bool = False
    ) -> tuple[ProcessCheckpoint, int]:
        """Capture one full process checkpoint; returns (record, cycles).

        Protocol order (each step a named crash point):

        1. metadata record (register files + CRC) written to NVM;
        2. every thread's dirty runs staged — no persistent stack touched;
        3. the commit flag flips (an 8-byte ordered NVM write);
        4. staged runs applied to each thread's persistent stack;
        5. consumed bitmap words cleared.

        With *crash_during_commit* set, the checkpoint stops after step 2 —
        staged but the flag never flips — simulating a power failure
        mid-commit for the recovery tests.  A :class:`CrashInjected` raised
        by an armed injector leaves the record exactly as durably written
        so far (the partial record stays in :attr:`checkpoints`, as it
        would in NVM).
        """
        record = ProcessCheckpoint(self._sequence, [])
        self.checkpoints.append(record)
        self._sequence += 1

        cycles = METADATA_CAPTURE_CYCLES
        for thread in self.process.iter_threads():
            record.threads.append(
                ThreadSnapshot(thread.tid, thread.registers.snapshot())
            )
        self._reached(METADATA_WRITE)
        metadata = self.hierarchy.reliable_copy_dram_to_nvm(METADATA_BYTES)
        cycles += metadata.cycles
        record.retries += metadata.retries
        record.metadata_crc = _metadata_crc(record)
        torn = metadata.torn or (
            self.injector is not None
            and self.injector.should_tear_metadata(record.sequence)
        )
        if torn:
            record.metadata_crc ^= TORN_METADATA_MASK
        oracle = self._order_oracle()
        if oracle is not None:
            oracle.record(
                f"proc[{record.sequence}].metadata",
                undo=_lose_metadata(record),
                tear=_tear_metadata(record),
                size=METADATA_BYTES,
            )

        # Step 2 — stage every tracked thread before committing anything.
        engines: list[ProsperCheckpointEngine] = []
        snapshots = {snap.tid: snap for snap in record.threads}
        for thread in self.process.iter_threads():
            engine = self._engine_for(thread)
            if engine is None:
                continue
            stage = engine.stage(
                record.sequence,
                active_low_hint=self._walk_bound(thread),
                final_sp=thread.registers.stack_pointer,
            )
            snap = snapshots[thread.tid]
            snap.copied_bytes = stage.copied_bytes
            snap.dirty_runs = engine.staged.runs if engine.staged is not None else []
            snap.staged_complete = (
                engine.staged.complete if engine.staged is not None else False
            )
            cycles += stage.cycles
            record.retries += stage.retries
            engines.append(engine)

        if crash_during_commit:
            return record, cycles

        # Persist-order discipline: the metadata record and every thread's
        # staged runs must be guaranteed durable *before* the commit flag
        # can flip — otherwise a power failure could persist the flag while
        # the data it vouches for is still sitting in the write queue, and
        # recovery would roll forward a checkpoint that never fully landed.
        cycles += self.hierarchy.persist_barrier()

        # Step 3 — flip the commit record (a small ordered NVM write).
        self._reached(COMMIT_FLAG_WRITE)
        if self.hierarchy.nvm is not None:
            cycles += self.hierarchy.nvm.write(8, self.hierarchy.now)
        record.committed = True
        oracle = self._order_oracle()
        if oracle is not None:
            oracle.record(
                f"proc[{record.sequence}].commit",
                undo=_lose_commit_flag(record),
                size=8,
            )
        if self.hierarchy.nvm is not None:
            # The flag is explicitly ordered: write + sfence, so it is
            # durable before the staged data is applied in step 4.
            cycles += self.hierarchy.persist_barrier()

        # Steps 4–5 — apply staged runs to the persistent stacks, clear
        # consumed bitmap words.  The flag already flipped: a crash in here
        # is recovered by replaying the staged buffers.
        for engine in engines:
            cycles += engine.commit_staged()
            cycles += engine.finish_interval()
        return record, cycles

    @property
    def last_committed(self) -> ProcessCheckpoint | None:
        for record in reversed(self.checkpoints):
            if record.committed:
                return record
        return None

    def _record_for(self, sequence: int) -> ProcessCheckpoint | None:
        for record in reversed(self.checkpoints):
            if record.sequence == sequence:
                return record
        return None

    def _staged_covers(self, sequence: int) -> bool:
        """True when every tracked thread holds a complete staging for
        *sequence* (committed or not) — the process-level completeness test
        recovery applies before rolling anything forward."""
        found = False
        for thread in self.process.iter_threads():
            engine = self._engine_for(thread)
            if engine is None:
                continue
            found = True
            staged = engine.staged
            if (
                staged is None
                or staged.interval_index != sequence
                or not staged.complete
            ):
                return False
        return found

    def staging_complete_for(self, record: ProcessCheckpoint) -> bool:
        """True when every tracked thread's staging for *record* has been
        applied — the promotion test after :meth:`complete_staged_commits`."""
        found = False
        for thread in self.process.iter_threads():
            engine = self._engine_for(thread)
            if engine is None:
                continue
            found = True
            staged = engine.staged
            if (
                staged is None
                or staged.interval_index != record.sequence
                or not staged.committed
            ):
                return False
        return found

    def complete_staged_commits(self) -> int:
        """Recovery helper: finish any staged-but-uncommitted thread commits.

        All-or-nothing across the process: the pending staged buffers are
        applied only if **every** one passes its checksums, the owning
        record's metadata verifies (unless the commit flag already flipped,
        which is authoritative), and every tracked thread staged the same
        interval completely.  Anything less and the whole set is discarded —
        rolling one thread forward while another falls back would leave a
        blended process state.  Returns the number of thread engines whose
        staged data was applied.
        """
        pending = [
            engine
            for engine in self._engines.values()
            if engine.staged is not None and not engine.staged.committed
        ]
        if not pending:
            return 0
        ok = all(_safe_verify(engine.staged) for engine in pending)
        if ok:
            for sequence in {engine.staged.interval_index for engine in pending}:
                record = self._record_for(sequence)
                if record is None:
                    ok = False
                    break
                if not record.committed and not record.verify_metadata():
                    ok = False
                    break
                if not record.committed and not self._staged_covers(sequence):
                    ok = False
                    break
        if ok:
            for engine in pending:
                engine.commit_staged()
            return len(pending)
        self.discarded_intervals.update(
            engine.staged.interval_index for engine in pending
        )
        for engine in pending:
            engine.discard_staged()
        self.discarded_staged += len(pending)
        return 0
