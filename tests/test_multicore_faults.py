"""Tests for the multicore crash sweep: context switches and barriers.

The single-core sweep (tests/test_faults.py) covers the staging/commit
protocol; these tests cover the crash surfaces only the multicore path
has — tracker save/restore inside a context switch and the stop-the-world
quiesce barrier — and assert recovery never blends per-thread checkpoint
epochs.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import (
    BARRIER_QUIESCE,
    CRASH_POINT_FAMILIES,
    CTX_RESTORE,
    CTX_SAVE,
    CrashInjected,
    FaultInjector,
)
from repro.faults.multicore_sweep import (
    MulticoreCrashChecker,
    _MulticoreScenario,
)
from repro.faults.sweep import OUTCOME_VIOLATION


@pytest.fixture(scope="module")
def checker() -> MulticoreCrashChecker:
    return MulticoreCrashChecker(seed=0, cores=2, intervals=2, writes_per_interval=2)


@pytest.fixture(scope="module")
def points(checker) -> list[tuple[str, int]]:
    return checker.enumerate_points()


class TestEnumeration:
    def test_ctx_and_barrier_points_fire(self, points):
        names = {point for point, _ in points}
        assert CTX_SAVE in names
        assert CTX_RESTORE in names
        assert BARRIER_QUIESCE in names

    def test_staging_protocol_points_also_covered(self, points):
        names = {point for point, _ in points}
        assert "metadata_write" in names
        assert "commit_flag_write" in names

    def test_new_points_are_documented_families(self):
        assert CTX_SAVE in CRASH_POINT_FAMILIES
        assert CTX_RESTORE in CRASH_POINT_FAMILIES
        assert BARRIER_QUIESCE in CRASH_POINT_FAMILIES

    def test_barrier_fires_once_per_core_per_checkpoint(self, points):
        count = sum(1 for point, _ in points if point == BARRIER_QUIESCE)
        # 2 cores x 2 checkpoints = 4 quiesce crossings.
        assert count == 4


class TestSweep:
    def test_full_sweep_has_no_violations(self, checker):
        report = checker.run()
        assert report.cases, "sweep enumerated no cases"
        assert report.ok, [case.detail for case in report.violations]

    def test_ctx_save_crash_restores_latest_checkpoint(self, checker, points):
        occurrences = [occ for point, occ in points if point == CTX_SAVE]
        assert occurrences
        # The last ctx_save fires after checkpoint 0 committed; recovery
        # must restore checkpoint 0 exactly, not fresh state.
        case = checker.run_case(CTX_SAVE, occurrences[-1])
        assert case.ok, case.detail
        assert case.resumed_from == 0

    def test_ctx_restore_crash_recovers(self, checker, points):
        occurrences = [occ for point, occ in points if point == CTX_RESTORE]
        assert occurrences
        case = checker.run_case(CTX_RESTORE, occurrences[0])
        assert case.ok, case.detail

    def test_barrier_crash_falls_back_to_previous(self, checker, points):
        occurrences = [occ for point, occ in points if point == BARRIER_QUIESCE]
        # A barrier crash happens before any staging of the in-flight
        # checkpoint, so roll-forward is impossible.
        for occurrence in occurrences:
            case = checker.run_case(BARRIER_QUIESCE, occurrence)
            assert case.ok, case.detail
            assert case.outcome in ("previous", "fresh_start")


class TestBlendDetection:
    """The invariant check itself must be able to catch blends."""

    def test_mismatched_epoch_is_detected(self):
        checker = MulticoreCrashChecker(
            seed=0, cores=2, intervals=2, writes_per_interval=2
        )
        scenario = checker._scenario(None)
        scenario.run()
        scenario.sim.crash()
        report = scenario.sim.recover()
        resumed = report.resumed_from_sequence
        assert resumed == 1
        # Exact match against the restored checkpoint...
        assert scenario.state_mismatch(resumed) is None
        # ...and a definite mismatch against the other epoch: if recovery
        # ever blended epochs, at least one of these comparisons would
        # wrongly succeed.
        assert scenario.state_mismatch(0) is not None

    def test_hand_blended_state_is_flagged(self):
        """Corrupt one thread's restored stack word; the check must fire."""
        checker = MulticoreCrashChecker(
            seed=0, cores=2, intervals=2, writes_per_interval=2
        )
        scenario = checker._scenario(None)
        scenario.run()
        scenario.sim.crash()
        report = scenario.sim.recover()
        resumed = report.resumed_from_sequence
        victim = next(iter(scenario.sp))
        address = scenario.sp[victim]
        stale = scenario.mem_at[0][victim][address]  # epoch-0 value
        scenario.dram_images[victim].write(address, stale)
        mismatch = scenario.state_mismatch(resumed)
        assert mismatch is not None
        assert "blend or data loss" in mismatch


class TestScenarioDeterminism:
    def test_probe_and_armed_runs_align(self):
        """The armed run must reach the same points as the probe."""
        checker = MulticoreCrashChecker(
            seed=3, cores=2, intervals=2, writes_per_interval=2
        )
        probe_points = checker.enumerate_points()
        injector = FaultInjector(3)
        injector.arm(CTX_SAVE, 0)
        scenario = _MulticoreScenario(3, 2, 2, 2, injector)
        with pytest.raises(CrashInjected):
            scenario.run()
        fired_before_crash = injector.fired
        probe_names = [point for point, _ in probe_points]
        assert set(fired_before_crash) <= set(probe_names)

    def test_violation_cases_would_carry_detail(self, checker):
        report = checker.run()
        for case in report.cases:
            if case.outcome == OUTCOME_VIOLATION:
                assert case.detail
