"""The full memory hierarchy: L1D → L2 → L3 → {DRAM, NVM}.

The hierarchy decides which device backs an address via a caller-supplied
predicate (the kernel's address-space layout knows which regions live in
NVM).  Demand accesses walk the cache levels and return a latency; persist
operations (``clwb``) force a line out to the NVM write path, which is how
the flush/undo/redo and SSP baselines pay their per-store costs.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.config import CACHE_LINE_BYTES, SystemConfig
from repro.memory.address import span_lines
from repro.memory.cache import Cache
from repro.memory.devices import DramDevice, NvmDevice, ReliableWriteResult


class AccessResult(NamedTuple):
    """Outcome of one demand access."""

    latency_cycles: int
    hit_level: str  # "L1", "L2", "L3", "mem"


#: Ordering of hit levels, outermost = slowest; shared by every access.
_LEVEL_RANK = {"L1": 0, "L2": 1, "L3": 2, "mem": 3}


class MemoryHierarchy:
    """Three-level cache hierarchy over a hybrid DRAM+NVM backing store.

    Parameters
    ----------
    config:
        Machine configuration (cache geometry, device timings).
    nvm_resident:
        Predicate over a *virtual* address that returns True when the
        address is backed by NVM rather than DRAM.  Defaults to "nothing in
        NVM" — the vanilla configuration where all application state is in
        DRAM and only explicit checkpoint traffic touches NVM.
    """

    def __init__(
        self,
        config: SystemConfig,
        nvm_resident: Callable[[int], bool] | None = None,
    ) -> None:
        self.config = config
        self.l1 = Cache(config.l1d, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self.l3 = Cache(config.l3, "L3")
        self.dram = DramDevice(config.dram, config.freq_hz)
        self.nvm = NvmDevice(config.nvm, config.freq_hz) if config.nvm else None
        self._nvm_resident = nvm_resident or (lambda _address: False)
        self._l1_latency = config.l1d.latency_cycles
        self._l2_latency = config.l2.latency_cycles
        self._l3_latency = config.l3.latency_cycles
        self.now = 0  # advanced by callers that track global time

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #

    def _device_for(self, address: int):
        if self.nvm is not None and self._nvm_resident(address):
            return self.nvm
        return self.dram

    def access(self, address: int, size: int, is_write: bool) -> AccessResult:
        """Perform a demand load/store covering ``[address, address+size)``.

        Multi-line accesses are charged per line; the returned latency is the
        serial sum, a deliberately pessimistic but simple model.
        """
        if 0 < size and (address % CACHE_LINE_BYTES) + size <= CACHE_LINE_BYTES:
            # Common case: the access stays within one cache line.
            return self._access_line(
                address // CACHE_LINE_BYTES, address, is_write
            )
        total = 0
        worst_rank = 0
        worst_level = "L1"
        level_rank = _LEVEL_RANK
        for line in span_lines(address, size):
            result = self._access_line(line, address, is_write)
            total += result.latency_cycles
            rank = level_rank[result.hit_level]
            if rank > worst_rank:
                worst_rank = rank
                worst_level = result.hit_level
        return AccessResult(total, worst_level)

    def _access_line(self, line: int, address: int, is_write: bool) -> AccessResult:
        latency = self._l1_latency
        hit, victim = self.l1.access(line, is_write)
        self._handle_writeback(victim, self.l2)
        if hit:
            return AccessResult(latency, "L1")

        latency += self._l2_latency
        hit, victim = self.l2.access(line, False)
        self._handle_writeback(victim, self.l3)
        if hit:
            return AccessResult(latency, "L2")

        latency += self._l3_latency
        hit, victim = self.l3.access(line, False)
        if victim is not None:
            # Dirty L3 victim goes to its backing device.
            device = self._device_for(victim * CACHE_LINE_BYTES)
            if device is self.nvm:
                device.write(CACHE_LINE_BYTES, self.now)
            else:
                device.write(CACHE_LINE_BYTES)
        if hit:
            return AccessResult(latency, "L3")

        device = self._device_for(address)
        latency += device.read(CACHE_LINE_BYTES)
        return AccessResult(latency, "mem")

    def _handle_writeback(self, victim: int | None, lower: Cache) -> None:
        if victim is None:
            return
        # Install the dirty victim in the next level (write-back).
        _, next_victim = lower.access(victim, True)
        if lower is self.l2:
            self._handle_writeback(next_victim, self.l3)
        elif next_victim is not None:
            device = self._device_for(next_victim * CACHE_LINE_BYTES)
            if device is self.nvm:
                device.write(CACHE_LINE_BYTES, self.now)
            else:
                device.write(CACHE_LINE_BYTES)

    # ------------------------------------------------------------------ #
    # Persistence path
    # ------------------------------------------------------------------ #

    def clwb(self, address: int, size: int = CACHE_LINE_BYTES, now: int | None = None) -> int:
        """Write back (without invalidating) the lines covering the access.

        Models the ``clwb`` instruction used by flush-based persistence: each
        covered line that is dirty anywhere in the hierarchy is pushed to the
        NVM write buffer.  Returns the cycles charged to the issuing core.
        Callers issuing bursts of clwb in one logical instant should pass a
        *now* that advances by the returned cost between calls, so the write
        buffer sees forward-moving time.
        """
        if self.nvm is None:
            raise RuntimeError("clwb issued on a machine without NVM")
        base_now = self.now if now is None else now
        total = 0
        for line in span_lines(address, size):
            dirty = self.l1.clean(line) | self.l2.clean(line) | self.l3.clean(line)
            if dirty:
                total += self.nvm.write(CACHE_LINE_BYTES, base_now + total)
            else:
                # clwb of a clean/absent line still costs the pipeline a few
                # cycles to issue.
                total += 2
        return total

    def persist_barrier(self) -> int:
        """Drain pending NVM writes (sfence semantics)."""
        if self.nvm is None:
            return 0
        return self.nvm.persist_barrier(self.now)

    # ------------------------------------------------------------------ #
    # Bulk copy path (checkpoints)
    # ------------------------------------------------------------------ #

    def copy_dram_to_nvm(self, size: int, latency_scale: float = 1.0) -> int:
        """Cycles for the OS to copy *size* bytes from DRAM into NVM."""
        if self.nvm is None:
            raise RuntimeError("checkpoint copy issued on a machine without NVM")
        if size <= 0:
            return 0
        return self.dram.bulk_read(size, latency_scale) + self.nvm.bulk_write(
            size, latency_scale
        )

    def copy_nvm_to_nvm(self, size: int, latency_scale: float = 1.0) -> int:
        """Cycles for an NVM-internal copy (e.g. staging buffer → stack)."""
        if self.nvm is None:
            raise RuntimeError("NVM copy issued on a machine without NVM")
        if size <= 0:
            return 0
        return self.nvm.bulk_read(size, latency_scale) + self.nvm.bulk_write(
            size, latency_scale
        )

    def reliable_copy_dram_to_nvm(
        self, size: int, latency_scale: float = 1.0
    ) -> ReliableWriteResult:
        """Checkpoint copy DRAM → NVM through the reliable-write path.

        Identical cycles to :meth:`copy_dram_to_nvm` on perfect media; with
        an error model on the NVM device, transient failures are retried
        (with backoff charged) and torn writes are flagged for the
        checkpoint layer's checksums.
        """
        if self.nvm is None:
            raise RuntimeError("checkpoint copy issued on a machine without NVM")
        if size <= 0:
            return ReliableWriteResult(0)
        read_cycles = self.dram.bulk_read(size, latency_scale)
        result = self.nvm.reliable_bulk_write(size, latency_scale)
        return ReliableWriteResult(
            read_cycles + result.cycles,
            result.retries,
            result.torn,
            result.remapped_blocks,
        )

    def reliable_copy_nvm_to_nvm(
        self, size: int, latency_scale: float = 1.0
    ) -> ReliableWriteResult:
        """NVM-internal checkpoint copy through the reliable-write path."""
        if self.nvm is None:
            raise RuntimeError("NVM copy issued on a machine without NVM")
        if size <= 0:
            return ReliableWriteResult(0)
        read_cycles = self.nvm.bulk_read(size, latency_scale)
        result = self.nvm.reliable_bulk_write(size, latency_scale)
        return ReliableWriteResult(
            read_cycles + result.cycles,
            result.retries,
            result.torn,
            result.remapped_blocks,
        )

    def copy_dram_to_dram(self, size: int, latency_scale: float = 1.0) -> int:
        """Cycles for a DRAM-internal copy."""
        if size <= 0:
            return 0
        return self.dram.bulk_read(size, latency_scale) + self.dram.bulk_write(
            size, latency_scale
        )

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def reset_stats(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.stats.reset()
        self.dram.stats.reset()
        if self.nvm is not None:
            self.nvm.stats.reset()
