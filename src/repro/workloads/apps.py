"""Synthetic models of the three traced applications.

The paper traces Gapbs_pr (PageRank from GAPBS), G500_sssp (SSSP from
Graph500), and Ycsb_mem (Memcached under YCSB) with Intel Pin / SniP and
feeds the stack/heap access streams into its motivation and evaluation
studies.  Those traces are not available, so — per the substitution policy
in DESIGN.md — this module generates traces calibrated to the distributional
properties the paper reports:

* the fraction of memory operations hitting the stack (Figure 1:
  Gapbs_pr ≈ 70 %, G500_sssp moderate, Ycsb_mem ≈ 15 %);
* the fraction of stack writes landing beyond the interval-final SP
  (Section II-A: ≈ 36 % for Ycsb_mem, lower for the graph workloads);
* stack spatial locality (tight reuse of hot frames for the graph kernels,
  deeper call excursions for Memcached's request handling).

The generator is a two-level model: an outer loop of *phases* alternates
hot-frame computation (writes/reads concentrated in the top frames) with
call excursions (a burst of CALL/WRITE/RET to some depth, whose writes die
with their frames — these become the beyond-final-SP writes).  Heap accesses
are interleaved at the profile's stack fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.ops import OpKind, TraceBuilder
from repro.memory.address import AddressRange
from repro.workloads.synthetic import DEFAULT_HEAP
from repro.workloads.trace import Trace

#: Application stacks are larger than the micro-benchmark default: 4 MiB,
#: leaving room for the sparse spill areas the real traces exhibit.
APP_STACK = AddressRange(0x7EC0_0000, 0x7F00_0000)


@dataclass(frozen=True)
class AppProfile:
    """Calibration knobs of one application model."""

    name: str
    #: Target fraction of memory ops in the stack region (Figure 1).
    stack_fraction: float
    #: Fraction of stack memory ops that are writes.
    stack_write_fraction: float
    #: Probability that a phase is a call excursion (vs hot-frame work).
    excursion_probability: float
    #: Depth range (frames) of a call excursion.
    excursion_depth: tuple[int, int]
    #: Writes per excursion frame.
    excursion_writes: int
    #: Frame size of excursion calls (bytes).
    frame_bytes: int
    #: Size of the resident hot stack working set (bytes).
    hot_set_bytes: int
    #: Ops per phase in the hot-frame computation.
    hot_phase_ops: int
    #: Spatial locality of hot-set accesses: stddev of the (gaussian) offset
    #: walk as a fraction of the hot set; smaller = tighter locality.
    hot_locality: float
    #: Heap working-set size (bytes) and its access locality.
    heap_set_bytes: int = 8 * 1024 * 1024
    #: Stack accesses proceed in sequential runs of this many 8-byte words
    #: before the cursor jumps (gaussian step scaled by hot_locality).
    #: 1 = a pure gaussian walk; larger values model streaming over locals
    #: and spill areas.
    hot_run_words: int = 1
    #: A large, sparsely-written stack area (register spills, big locals,
    #: alloca'd buffers).  Writes land on uniformly random words, so at page
    #: granularity each touch dirties 4 KiB for a handful of bytes — the
    #: behaviour behind the paper's 33-300x page-vs-byte copy-size gap
    #: (Figure 4).  0 disables the area.
    spill_set_bytes: int = 0
    #: Fraction of *stack* accesses directed at the spill area.
    spill_fraction: float = 0.0
    #: Heap accesses emitted per excursion frame (request handling does
    #: real work between calls); keeps the global stack-op fraction at the
    #: profile's target even for excursion-heavy workloads.
    excursion_heap_ops: int = 0
    #: Interleaved hot-set access streams.  1 models a single sequential
    #: working cursor; larger values model pointer-chasing codes (e.g. mcf)
    #: whose stack temporaries alternate between several regions at once,
    #: keeping multiple tracker lookup-table entries simultaneously active.
    hot_streams: int = 1


#: Profiles calibrated against the numbers the paper reports.
APP_PROFILES: dict[str, AppProfile] = {
    # ~70% of memory ops to the stack; graph kernel with tight frame reuse
    # and shallow excursions -> few writes beyond final SP.
    "gapbs_pr": AppProfile(
        name="gapbs_pr",
        stack_fraction=0.70,
        stack_write_fraction=0.55,
        excursion_probability=0.18,
        excursion_depth=(2, 5),
        excursion_writes=6,
        frame_bytes=192,
        hot_set_bytes=4 * 1024,
        hot_phase_ops=220,
        hot_locality=0.15,
        hot_run_words=16,
        spill_set_bytes=1536 * 1024,
        spill_fraction=0.15,
        excursion_heap_ops=3,
    ),
    # Moderate stack fraction; BFS-like worklist processing.
    "g500_sssp": AppProfile(
        name="g500_sssp",
        stack_fraction=0.45,
        stack_write_fraction=0.50,
        excursion_probability=0.25,
        excursion_depth=(2, 7),
        excursion_writes=8,
        frame_bytes=256,
        hot_set_bytes=8 * 1024,
        hot_phase_ops=180,
        hot_locality=0.35,
        hot_run_words=24,
        spill_set_bytes=384 * 1024,
        spill_fraction=0.10,
        excursion_heap_ops=11,
    ),
    # ~15% stack ops, but deep request-handling call chains whose frames
    # die quickly -> ~36% of stack writes beyond the final SP.
    "ycsb_mem": AppProfile(
        name="ycsb_mem",
        stack_fraction=0.15,
        stack_write_fraction=0.60,
        excursion_probability=0.60,
        excursion_depth=(6, 14),
        excursion_writes=10,
        frame_bytes=320,
        hot_set_bytes=2 * 1024,
        hot_phase_ops=60,
        hot_locality=0.25,
        hot_run_words=8,
        spill_set_bytes=128 * 1024,
        spill_fraction=0.08,
        excursion_heap_ops=62,
    ),
}


def app_workload(
    profile: AppProfile | str,
    target_ops: int = 200_000,
    stack: AddressRange = APP_STACK,
    heap: AddressRange = DEFAULT_HEAP,
    seed: int = 42,
) -> Trace:
    """Generate a trace for *profile* with roughly *target_ops* operations."""
    if isinstance(profile, str):
        profile = APP_PROFILES[profile]
    rng = np.random.default_rng(seed)
    ops = TraceBuilder()
    # The resident base frame holds the hot working set plus the sparse
    # spill area; excursions push frames below it.
    base_frame = profile.hot_set_bytes + profile.spill_set_bytes
    if base_frame > stack.size // 2:
        raise ValueError("profile working set does not fit in the stack region")
    sp = stack.end - base_frame
    ops.call(base_frame)

    heap_span = min(profile.heap_set_bytes, heap.size)
    hot_words = profile.hot_set_bytes // 8
    # One (cursor, remaining-run) pair per interleaved stream, plus the
    # round-robin index as the final element.
    streams = max(1, profile.hot_streams)
    cursor_state = [
        [(hot_words * (2 * k + 1)) // (2 * streams), 0] for k in range(streams)
    ] + [0]

    while len(ops) < target_ops:
        if rng.random() < profile.excursion_probability:
            _emit_excursion(ops, rng, profile, sp, stack, heap, heap_span)
        else:
            _emit_hot_phase(
                ops, rng, profile, sp, cursor_state, hot_words, heap, heap_span
            )

    ops.ret(base_frame)
    return Trace(
        ops.to_array(), stack, heap_range=heap, name=profile.name, initial_sp=None
    )


def _emit_hot_phase(
    ops: TraceBuilder,
    rng: np.random.Generator,
    profile: AppProfile,
    sp: int,
    cursor_state: list[int],
    hot_words: int,
    heap: AddressRange,
    heap_span: int,
) -> None:
    """Hot-frame computation: mixed stack/heap ops above the resident SP.

    Stack accesses advance sequentially for ``hot_run_words`` words, then
    the cursor jumps by a gaussian step scaled by ``hot_locality`` — the
    two knobs together span tight frame reuse (small locality, long runs)
    through scattered temporaries (large locality, short runs).
    """
    n = profile.hot_phase_ops
    to_stack = rng.random(n) < profile.stack_fraction
    to_spill = rng.random(n) < profile.spill_fraction
    stack_is_write = rng.random(n) < profile.stack_write_fraction
    heap_is_write = rng.random(n) < 0.45
    steps = rng.normal(0, profile.hot_locality * hot_words, size=n)
    heap_offsets = rng.integers(0, max(1, heap_span // 8), size=n) * 8
    spill_words = profile.spill_set_bytes // 8
    spill_offsets = (
        rng.integers(0, spill_words, size=n) * 8 if spill_words else None
    )
    streams = len(cursor_state) - 1
    rr = cursor_state[-1]
    read_kind = int(OpKind.READ)
    write_kind = int(OpKind.WRITE)
    to_stack_list = to_stack.tolist()
    to_spill_list = to_spill.tolist()
    stack_write_list = stack_is_write.tolist()
    heap_write_list = heap_is_write.tolist()
    steps_list = steps.tolist()
    heap_offset_list = heap_offsets.tolist()
    spill_offset_list = (
        spill_offsets.tolist() if spill_offsets is not None else None
    )
    for i in range(n):
        if to_stack_list[i]:
            kind = write_kind if stack_write_list[i] else read_kind
            if spill_offset_list is not None and to_spill_list[i]:
                # Sparse touch in the spill area above the hot set.
                address = sp + profile.hot_set_bytes + spill_offset_list[i]
            else:
                stream = cursor_state[rr]
                rr = (rr + 1) % streams
                cursor, remaining = stream
                if remaining > 0:
                    cursor = (cursor + 1) % hot_words
                    remaining -= 1
                else:
                    cursor = int(cursor + steps_list[i]) % hot_words
                    remaining = profile.hot_run_words - 1
                stream[0] = cursor
                stream[1] = remaining
                address = sp + cursor * 8
            ops.append(kind, address, 8)
        else:
            kind = write_kind if heap_write_list[i] else read_kind
            ops.append(kind, heap.start + heap_offset_list[i], 8)
    ops.compute(40)
    cursor_state[-1] = rr


def _emit_excursion(
    ops: TraceBuilder,
    rng: np.random.Generator,
    profile: AppProfile,
    sp: int,
    stack: AddressRange,
    heap: AddressRange,
    heap_span: int,
) -> None:
    """A call excursion: frames pushed, locals written, frames popped.

    All writes below the pre-excursion SP die when the excursion returns —
    they are the beyond-final-SP modifications of Section II-A (assuming
    the interval boundary does not land mid-excursion, which is rare since
    excursions are short).  Each frame also performs
    ``excursion_heap_ops`` heap accesses — the actual work the call chain
    exists to do — which keeps the global stack-op fraction on target.
    """
    lo, hi = profile.excursion_depth
    depth = int(rng.integers(lo, hi + 1))
    frame = profile.frame_bytes
    if sp - depth * frame < stack.start:
        depth = max(1, (sp - stack.start) // frame - 1)
    heap_words = max(1, heap_span // 8)
    cur = sp
    for _ in range(depth):
        ops.call(frame)
        cur -= frame
        for k in range(profile.excursion_writes):
            ops.write(cur + 8 + k * 8, 8)
        # A couple of reads of the caller frame (arguments).
        ops.read(cur + frame + 16, 8)
        if profile.excursion_heap_ops:
            offsets = rng.integers(0, heap_words, size=profile.excursion_heap_ops)
            is_write = rng.random(profile.excursion_heap_ops) < 0.45
            ops.extend(
                np.where(is_write, int(OpKind.WRITE), int(OpKind.READ)),
                heap.start + offsets * 8,
                8,
            )
    for _ in range(depth):
        ops.ret(frame)


def gapbs_pr(target_ops: int = 200_000, seed: int = 42) -> Trace:
    """PageRank from GAPBS (synthetic model)."""
    return app_workload("gapbs_pr", target_ops, seed=seed)


def g500_sssp(target_ops: int = 200_000, seed: int = 42) -> Trace:
    """SSSP from Graph500 (synthetic model)."""
    return app_workload("g500_sssp", target_ops, seed=seed)


def ycsb_mem(target_ops: int = 200_000, seed: int = 42) -> Trace:
    """Memcached under YCSB (synthetic model).

    The paper traces a workload-A *load* followed by a workload-B *run*;
    :func:`ycsb_mem_phased` exposes the two phases explicitly.  This
    convenience wrapper keeps the historical single-profile behaviour used
    by the calibrated experiments.
    """
    return app_workload("ycsb_mem", target_ops, seed=seed)


def ycsb_mem_phased(
    target_ops: int = 200_000,
    load_fraction: float = 0.3,
    stack: AddressRange = APP_STACK,
    heap: AddressRange = DEFAULT_HEAP,
    seed: int = 42,
) -> Trace:
    """Memcached under YCSB: workload-A load phase, then workload-B run.

    The *load* phase is insert-dominant (write-heavy heap traffic, deeper
    request-handling call chains as items are created); the *run* phase is
    YCSB-B's 95 %-read mix with shallower handlers.  Stack-side behaviour
    keeps the calibrated ~15 % stack-op share overall.
    """
    if not 0.0 < load_fraction < 1.0:
        raise ValueError("load_fraction must be in (0, 1)")
    base = APP_PROFILES["ycsb_mem"]
    load_profile = replace_profile(
        base,
        name="ycsb_mem",
        stack_write_fraction=0.70,
        excursion_depth=(8, 16),
        excursion_writes=12,
    )
    run_profile = replace_profile(
        base,
        name="ycsb_mem",
        stack_write_fraction=0.45,
        excursion_depth=(4, 10),
        excursion_writes=8,
    )
    load_ops = int(target_ops * load_fraction)
    load = app_workload(load_profile, load_ops, stack, heap, seed)
    run = app_workload(run_profile, target_ops - load_ops, stack, heap, seed + 1)
    # Concatenate: strip the load phase's trailing base-frame RET and the
    # run phase's leading base-frame CALL so the resident frame persists.
    arr = np.concatenate([load.array[:-1], run.array[1:]])
    return Trace(arr, stack, heap_range=heap, name="ycsb_mem_phased")


def replace_profile(profile: AppProfile, **changes) -> AppProfile:
    """Copy *profile* with the given fields changed (dataclasses.replace)."""
    from dataclasses import replace as _replace

    return _replace(profile, **changes)
