"""Tests for the evaluation-module helpers and remaining SSP behaviours."""

from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import Op, OpKind
from repro.experiments import evaluation
from repro.memory.address import AddressRange
from repro.persistence.ssp import SspPersistence

STACK = AddressRange(0x7000_0000, 0x7010_0000)


class TestMicroBenchmarkSet:
    def test_seven_table_iii_workloads(self):
        traces = evaluation.micro_benchmarks(scale=0.2)
        names = [t.name for t in traces]
        assert names == [
            "random", "stream", "sparse", "quicksort", "rec-8",
            "normal", "poisson",
        ]

    def test_scale_shrinks_traces(self):
        small = evaluation.micro_benchmarks(scale=0.2)
        large = evaluation.micro_benchmarks(scale=0.5)
        assert sum(len(t.ops) for t in small) < sum(len(t.ops) for t in large)

    def test_random_is_dense(self):
        """The Figure 10 Random workload must over-write its array several
        times per interval, the regime where Dirtybit beats Prosper."""
        random_trace = evaluation.micro_benchmarks(scale=0.5)[0]
        writes = sum(
            1 for op in random_trace.ops if op.kind == OpKind.WRITE
        )
        array_words = 16 * 1024 // 8
        assert writes > 2 * array_words


class TestStackMechanismRegistry:
    def test_six_mechanisms(self):
        factories = evaluation.stack_mechanisms()
        assert set(factories) == {
            "romulus", "dirtybit", "prosper",
            "ssp-10us", "ssp-100us", "ssp-1ms",
        }

    def test_factories_produce_fresh_instances(self):
        factories = evaluation.stack_mechanisms()
        a = factories["prosper"]()
        b = factories["prosper"]()
        assert a is not b

    def test_ssp_factories_bind_their_interval(self):
        factories = evaluation.stack_mechanisms()
        assert factories["ssp-10us"]().consolidation_interval_us == 10.0
        assert factories["ssp-1ms"]().consolidation_interval_us == 1000.0


class TestSspPageLifecycle:
    def test_active_page_not_merged(self):
        mech = SspPersistence(10)
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        # Continuous writes: the page is always written within the last
        # consolidation period (10us = 30k cycles), so it is never
        # considered inactive even though many passes run.
        ops = []
        for _ in range(200):
            ops.append(Op(OpKind.WRITE, STACK.start + 8, 8))
            ops.append(Op(OpKind.COMPUTE, size=2_000))
        engine.run(ops, interval_ops=len(ops))
        assert mech.consolidation_invocations > 0
        assert mech.consolidated_lines_total == 0

    def test_idle_page_merged(self):
        mech = SspPersistence(10)
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        ops = [Op(OpKind.WRITE, STACK.start + 8, 8)]
        # Long quiet period, then a read that triggers the due pass.
        ops.append(Op(OpKind.COMPUTE, size=500_000))
        ops.append(Op(OpKind.READ, STACK.start + 8, 8))
        engine.run(ops, interval_ops=len(ops))
        assert mech.consolidated_lines_total >= 1

    def test_interference_accounted_as_inline(self):
        mech = SspPersistence(10)
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        ops = []
        for _ in range(50):
            ops.append(Op(OpKind.WRITE, STACK.start + 8, 8))
            ops.append(Op(OpKind.COMPUTE, size=50_000))
        stats = engine.run(ops, interval_ops=len(ops))
        assert mech.interference_cycles_total > 0
        assert stats.inline_cycles >= mech.interference_cycles_total
