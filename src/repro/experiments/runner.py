"""Shared experiment driver.

Time scaling
------------
The paper checkpoints every 10 ms of wall-clock time over minutes-long
benchmark runs; a pure-Python timing model cannot execute billions of
operations.  We therefore scale the clock: each generated trace is defined
to span :data:`TRACE_PAPER_MS` milliseconds of "paper time", and a requested
interval of X paper-ms maps to ``vanilla_cycles * X / TRACE_PAPER_MS``
simulated cycles.  Ratios — normalized execution time, relative checkpoint
size/time, interval-sweep trends — are preserved; absolute cycle counts are
not meaningful and are never reported as such.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.config import SystemConfig, setup_i
from repro.cpu.engine import EngineStats, ExecutionEngine
from repro.cpu.engine_fast import BatchedExecutionEngine
from repro.persistence.base import PersistenceMechanism
from repro.persistence.none import NoPersistence
from repro.workloads.trace import Trace

#: Paper-time duration every generated trace is defined to span.
TRACE_PAPER_MS = 200.0


@dataclass
class RunResult:
    """One (trace, mechanism) run with its baseline for normalization."""

    trace_name: str
    mechanism_name: str
    stats: EngineStats
    vanilla_cycles: int

    @property
    def normalized_time(self) -> float:
        """Total execution time over the vanilla (no persistence) time."""
        return self.stats.total_cycles / self.vanilla_cycles

    @property
    def overhead_fraction(self) -> float:
        return self.normalized_time - 1.0


def engine_class(config: SystemConfig | None = None) -> type[ExecutionEngine]:
    """Engine implementation selected by config / ``REPRO_ENGINE``.

    The environment variable wins (it is how the CLI's ``--engine`` flag
    propagates into harness worker processes); otherwise the config's
    ``engine`` field decides.  Batched is the default everywhere.
    """
    mode = os.environ.get("REPRO_ENGINE", "").strip()
    if not mode:
        mode = getattr(config, "engine", None) or "batched"
    if mode == "scalar":
        return ExecutionEngine
    if mode == "batched":
        return BatchedExecutionEngine
    raise ValueError(
        f"unknown engine mode {mode!r} (expected 'batched' or 'scalar')"
    )


def make_engine(
    trace: Trace,
    mechanism: PersistenceMechanism | None = None,
    config: SystemConfig | None = None,
    heap_mechanism: PersistenceMechanism | None = None,
    fixed_cost_scale: float = 1.0,
) -> ExecutionEngine:
    """Build an engine matching *trace*'s address-space layout."""
    return engine_class(config)(
        config=config or setup_i(),
        stack_range=trace.stack_range,
        mechanism=mechanism or NoPersistence(),
        heap_range=trace.heap_range,
        heap_mechanism=heap_mechanism,
        fixed_cost_scale=fixed_cost_scale,
    )


def fixed_cost_scale_for(
    baseline_cycles: int,
    config: SystemConfig | None = None,
    trace_paper_ms: float = TRACE_PAPER_MS,
) -> float:
    """Compression factor of the trace clock relative to real time.

    A trace of ``baseline_cycles`` simulated cycles stands for
    *trace_paper_ms* of real execution (``trace_paper_ms/1000 * freq``
    real cycles); fixed per-wall-clock-event costs are scaled by this
    factor so that their share of an interval matches real hardware.
    """
    config = config or setup_i()
    real_cycles = trace_paper_ms * config.freq_hz / 1e3
    return min(1.0, baseline_cycles / real_cycles)


def vanilla_cycles(trace: Trace, config: SystemConfig | None = None) -> int:
    """Application cycles of *trace* with no persistence and no intervals."""
    engine = make_engine(trace, NoPersistence(), config)
    stats = engine.run(trace)
    return stats.app_cycles


def scaled_interval_cycles(
    baseline_cycles: int, paper_ms: float, trace_paper_ms: float = TRACE_PAPER_MS
) -> int:
    """Simulated cycles corresponding to *paper_ms* under the time scaling."""
    if paper_ms <= 0:
        raise ValueError("paper_ms must be positive")
    return max(1, round(baseline_cycles * paper_ms / trace_paper_ms))


def run_mechanism(
    trace: Trace,
    mechanism: PersistenceMechanism,
    interval_paper_ms: float = 10.0,
    config: SystemConfig | None = None,
    heap_mechanism: PersistenceMechanism | None = None,
    baseline_cycles: int | None = None,
    mechanism_label: str | None = None,
) -> RunResult:
    """Run *trace* under *mechanism* with a scaled checkpoint interval."""
    base = baseline_cycles or vanilla_cycles(trace, config)
    scale = fixed_cost_scale_for(base, config)
    engine = make_engine(
        trace, mechanism, config, heap_mechanism, fixed_cost_scale=scale
    )
    interval = scaled_interval_cycles(base, interval_paper_ms)
    stats = engine.run(trace, interval_cycles=interval)
    label = mechanism_label or getattr(mechanism, "variant_name", mechanism.name)
    return RunResult(trace.name, label, stats, base)
