"""Command-line interface: regenerate paper figures from the shell.

Usage::

    python -m repro list                 # what can be run
    python -m repro fig8                 # one figure's table to stdout
    python -m repro all --ops 50000      # every figure, sequentially
    python -m repro fig10 --out results/ # also write the table to a file
    python -m repro faults sweep         # crash-consistency sweep (fault injection)

Each command drives the corresponding entry point in
:mod:`repro.experiments` and prints the same plain-text table the
benchmark for that figure prints.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path
from typing import Callable

from repro.analysis.report import format_bytes, render_table
from repro.experiments import ablations, evaluation, extensions, motivation, overhead


def _fig1(ops: int) -> str:
    rows = motivation.fig1_stack_fraction(target_ops=ops)
    return render_table(
        "Figure 1: stack share of memory operations",
        ["workload", "stack op fraction", "stack write fraction"],
        [[r.workload, f"{r.stack_fraction:.3f}", f"{r.stack_write_fraction:.3f}"] for r in rows],
    )


def _fig2(ops: int) -> str:
    results = motivation.fig2_beyond_final_sp(num_intervals=100, target_ops=ops)
    return render_table(
        "Figure 2: stack writes beyond interval-final SP",
        ["workload", "stack writes", "beyond final SP", "fraction"],
        [[r.workload, r.total_writes, r.total_beyond, f"{r.beyond_fraction:.3f}"] for r in results],
    )


def _fig3(ops: int) -> str:
    cells = motivation.fig3_sp_awareness(target_ops=min(ops, 60_000))
    return render_table(
        "Figure 3: flush/undo/redo +/- SP awareness (normalized time)",
        ["workload", "mechanism", "SP aware", "normalized"],
        [[c.workload, c.mechanism, "yes" if c.sp_aware else "no", f"{c.normalized_time:.1f}x"] for c in cells],
    )


def _fig4(ops: int) -> str:
    rows = motivation.fig4_copy_size(target_ops=ops)
    return render_table(
        "Figure 4: copy size, page vs 8-byte tracking",
        ["workload", "page", "8-byte", "reduction"],
        [
            [r.workload, format_bytes(r.page_bytes_per_interval),
             format_bytes(r.byte_bytes_per_interval), f"{r.reduction_factor:.1f}x"]
            for r in rows
        ],
    )


def _fig8(ops: int) -> str:
    results = evaluation.fig8_stack_persistence(target_ops=ops)
    table = defaultdict(dict)
    for r in results:
        table[r.trace_name][r.mechanism_name] = r.normalized_time
    mechanisms = sorted({r.mechanism_name for r in results})
    return render_table(
        "Figure 8: stack persistence (normalized time)",
        ["workload"] + mechanisms,
        [[w] + [f"{table[w][m]:.2f}" for m in mechanisms] for w in sorted(table)],
    )


def _fig9(ops: int) -> str:
    cells = evaluation.fig9_memory_persistence(target_ops=ops)
    return render_table(
        "Figure 9: memory-state persistence (normalized time)",
        ["workload", "ssp interval (us)", "combination", "normalized"],
        [[c.workload, f"{c.ssp_interval_us:g}", c.combination, f"{c.normalized_time:.2f}"] for c in cells],
    )


def _fig10(ops: int) -> str:
    cells = evaluation.fig10_usage_patterns(scale=max(0.2, min(1.0, ops / 100_000)))
    return render_table(
        "Figure 10: usage patterns x granularity",
        ["workload", "granularity", "mean ckpt size", "time vs dirtybit"],
        [
            [c.workload, str(c.granularity), format_bytes(c.mean_checkpoint_bytes),
             f"{c.checkpoint_time_vs_dirtybit:.3f}"]
            for c in cells
        ],
    )


def _fig11(ops: int) -> str:
    cells = evaluation.fig11_interval_sweep()
    return render_table(
        "Figure 11: checkpoint size vs interval",
        ["workload", "interval (ms)", "mean ckpt size", "ns/byte"],
        [
            [c.workload, f"{c.interval_paper_ms:g}",
             format_bytes(c.mean_checkpoint_bytes), f"{c.ns_per_byte:.2f}"]
            for c in cells
        ],
    )


def _fig12(ops: int) -> str:
    cells = overhead.fig12_tracking_overhead(target_ops=ops)
    return render_table(
        "Figure 12: tracking overhead (user-IPC speedup)",
        ["workload", "granularity", "speedup", "overhead %"],
        [[c.workload, f"{c.granularity}B", f"{c.speedup:.4f}", f"{c.overhead_percent:.2f}"] for c in cells],
    )


def _fig13(ops: int) -> str:
    cells = overhead.fig13_watermark_sensitivity(target_ops=ops)
    return render_table(
        "Figure 13: HWM/LWM sensitivity (bitmap loads/stores)",
        ["workload", "HWM", "LWM", "loads", "stores"],
        [[c.workload, c.hwm, c.lwm, c.bitmap_loads, c.bitmap_stores] for c in cells],
    )


def _ctx(ops: int) -> str:
    result = overhead.context_switch_overhead()
    return render_table(
        "Context-switch overhead (paper: ~870 cycles)",
        ["switches", "mean prosper cycles"],
        [[result.switches, f"{result.mean_prosper_cycles:.0f}"]],
    )


def _energy(ops: int) -> str:
    report = overhead.energy_report(target_ops=min(ops, 60_000))
    return render_table(
        "Lookup-table energy (CACTI-P 7nm)",
        ["reads", "writes", "dynamic nJ", "leakage nJ", "area mm^2"],
        [[report.reads, report.writes, f"{report.dynamic_nj:.4f}",
          f"{report.leakage_nj:.4f}", report.area_mm2]],
    )


def _ablations_cmd(ops: int) -> str:
    parts = []
    policy = ablations.allocation_policy_ablation(target_ops=ops)
    parts.append(render_table(
        "Ablation: allocation policy (bitmap memory ops)",
        ["workload", "policy", "total ops"],
        [[c.workload, c.policy, c.memory_ops] for c in policy],
    ))
    bounding = ablations.active_region_bounding_ablation()
    parts.append(render_table(
        "Ablation: active-region bounding",
        ["workload", "speedup"],
        [[c.workload, f"{c.speedup:.2f}x"] for c in bounding],
    ))
    return "\n\n".join(parts)


def _endurance_cmd(ops: int) -> str:
    from repro.analysis.endurance import endurance_report
    from repro.experiments.runner import (
        fixed_cost_scale_for,
        make_engine,
        scaled_interval_cycles,
        vanilla_cycles,
    )
    from repro.persistence.dirtybit import DirtyBitPersistence
    from repro.persistence.logging import FlushPersistence
    from repro.persistence.prosper import ProsperPersistence
    from repro.workloads.apps import gapbs_pr

    trace = gapbs_pr(min(ops, 50_000))
    base = vanilla_cycles(trace)
    scale = fixed_cost_scale_for(base)
    interval = scaled_interval_cycles(base, 10.0)
    dirty = sum(trace.copy_sizes(1, 8))
    rows = []
    for mech, label in (
        (ProsperPersistence(), "prosper"),
        (DirtyBitPersistence(), "dirtybit"),
        (FlushPersistence(), "flush"),
    ):
        engine = make_engine(trace, mech, fixed_cost_scale=scale)
        engine.run(trace.ops, interval_cycles=interval)
        r = endurance_report(label, engine.hierarchy, dirty, round(base / scale))
        rows.append([label, r.nvm_write_bytes, f"{r.write_amplification:.1f}x"])
    return render_table(
        "NVM endurance: write traffic by mechanism (gapbs_pr)",
        ["mechanism", "NVM bytes written", "amplification"],
        rows,
    )


def _extensions_cmd(ops: int) -> str:
    parts = []
    heap = extensions.prosper_heap_experiment(target_ops=ops)
    parts.append(render_table(
        "Extension: Prosper on the heap (normalized time)",
        ["workload", "heap mechanism", "normalized"],
        [[c.workload, c.heap_mechanism, f"{c.normalized_time:.2f}"] for c in heap],
    ))
    adaptive = extensions.adaptive_granularity_experiment()
    parts.append(render_table(
        "Extension: adaptive granularity",
        ["workload", "mechanism", "normalized", "mean ckpt", "final granularity"],
        [
            [c.workload, c.mechanism, f"{c.normalized_time:.3f}",
             format_bytes(c.mean_checkpoint_bytes), c.final_granularity]
            for c in adaptive
        ],
    ))
    return "\n\n".join(parts)


#: Raw dataclass rows per command, for --csv export (figures with a
#: natural tabular form).
RAW_ROWS: dict[str, Callable[[int], list]] = {
    "fig1": lambda ops: motivation.fig1_stack_fraction(target_ops=ops),
    "fig4": lambda ops: motivation.fig4_copy_size(target_ops=ops),
    "fig8": lambda ops: [
        {
            "workload": r.trace_name,
            "mechanism": r.mechanism_name,
            "normalized_time": r.normalized_time,
        }
        for r in evaluation.fig8_stack_persistence(target_ops=ops)
    ],
    "fig9": lambda ops: evaluation.fig9_memory_persistence(target_ops=ops),
    "fig10": lambda ops: evaluation.fig10_usage_patterns(
        scale=max(0.2, min(1.0, ops / 100_000))
    ),
    "fig11": lambda ops: evaluation.fig11_interval_sweep(),
    "fig12": lambda ops: overhead.fig12_tracking_overhead(target_ops=ops),
    "fig13": lambda ops: overhead.fig13_watermark_sensitivity(target_ops=ops),
}


COMMANDS: dict[str, Callable[[int], str]] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "ctx-switch": _ctx,
    "energy": _energy,
    "ablations": _ablations_cmd,
    "extensions": _extensions_cmd,
    "endurance": _endurance_cmd,
    "report": lambda ops: __import__(
        "repro.experiments.report_gen", fromlist=["generate_report"]
    ).generate_report(ops=ops),
}


def build_faults_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Fault injection: crash-point sweep with verified "
        "recovery, NVM media-error demos.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sweep = sub.add_parser(
        "sweep",
        help="crash at every enumerated point, recover, verify the invariant",
    )
    sweep.add_argument("--seed", type=int, default=0, help="workload seed")
    sweep.add_argument("--threads", type=int, default=2)
    sweep.add_argument("--intervals", type=int, default=3)
    sweep.add_argument(
        "--writes", type=int, default=4, help="dirty clusters per thread per interval"
    )
    sweep.add_argument(
        "--transient-rate",
        type=float,
        default=0.0,
        help="transient NVM write-failure probability during the sweep",
    )
    sweep.add_argument(
        "--no-demos",
        action="store_true",
        help="skip the transient-retry and torn-metadata demos",
    )
    return parser


def _faults_main(argv: list[str]) -> int:
    from repro.faults.sweep import (
        CrashConsistencyChecker,
        torn_metadata_demo,
        transient_retry_demo,
    )

    args = build_faults_parser().parse_args(argv)
    try:
        checker = CrashConsistencyChecker(
            seed=args.seed,
            threads=args.threads,
            intervals=args.intervals,
            writes_per_interval=args.writes,
            transient_rate=args.transient_rate,
        )
    except ValueError as exc:
        print(f"repro faults sweep: error: {exc}", file=sys.stderr)
        return 2
    report = checker.run()
    order: list[str] = []
    per_point: dict[str, dict[str, int]] = {}
    for case in report.cases:
        if case.point not in per_point:
            per_point[case.point] = defaultdict(int)
            order.append(case.point)
        per_point[case.point][case.outcome] += 1
    print(render_table(
        f"Crash-consistency sweep (seed {report.seed}, "
        f"{report.threads} threads, {report.intervals} intervals)",
        ["crash point", "cases", "rolled fwd", "previous", "fresh", "violations"],
        [
            [
                point,
                sum(per_point[point].values()),
                per_point[point]["rolled_forward"],
                per_point[point]["previous"],
                per_point[point]["fresh_start"],
                per_point[point]["violation"],
            ]
            for point in order
        ],
    ))
    print(
        f"\n{len(report.cases)} cases over {report.points_swept} crash points: "
        f"{len(report.violations)} invariant violation(s)"
    )
    for case in report.violations:
        print(
            f"  VIOLATION at {case.point}#{case.occurrence} "
            f"(interval {case.crashed_in_interval}): {case.detail}"
        )

    failed = not report.ok
    if not args.no_demos:
        retry = transient_retry_demo(seed=args.seed, threads=args.threads)
        print(render_table(
            "Transient NVM write errors: retry with backoff, then recover",
            ["checkpoints", "write retries", "resumed from", "state verified"],
            [[retry.checkpoints, retry.retries, retry.resumed_from,
              "yes" if retry.state_ok else "NO"]],
        ))
        torn = torn_metadata_demo(seed=args.seed, threads=args.threads)
        print(render_table(
            "Torn metadata record: CRC detection, fall back to previous",
            ["resumed from", "staged discarded", "tear detected", "state verified"],
            [[torn.resumed_from, torn.discarded_staged,
              "yes" if torn.detected else "NO",
              "yes" if torn.state_ok else "NO"]],
        ))
        failed = failed or not retry.state_ok or not torn.state_ok or not torn.detected
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Prosper: Program Stack "
        "Persistence in Hybrid Memory Systems' (HPCA 2024).  "
        "Fault injection lives under the 'faults' subcommand "
        "(repro faults sweep --help).",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["all", "list"],
        help="figure to regenerate, 'all', or 'list'",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=60_000,
        help="approximate trace length per workload (default 60000)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write each table into (one .txt per figure)",
    )
    parser.add_argument(
        "--csv",
        type=Path,
        default=None,
        help="directory to write raw result rows as CSV (tabular figures only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "faults":
        return _faults_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(COMMANDS):
            print(name)
        print("faults (subcommands: sweep)")
        return 0
    names = sorted(COMMANDS) if args.command == "all" else [args.command]
    for name in names:
        text = COMMANDS[name](args.ops)
        print(text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
        if args.csv is not None and name in RAW_ROWS:
            from repro.analysis.export import export_experiment

            export_experiment(name, RAW_ROWS[name](args.ops), args.csv)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
