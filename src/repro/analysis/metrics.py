"""Numeric helpers for experiment results."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.persistence.base import MechanismStats


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; empty input yields 0.0, any zero yields 0.0."""
    vals = list(values)
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline: float, measured: float) -> float:
    """Baseline-over-measured ratio (>1 means *measured* is faster)."""
    if measured <= 0:
        raise ValueError("measured time must be positive")
    return baseline / measured


def normalized_times(
    results: Mapping[str, float], baseline_key: str
) -> dict[str, float]:
    """Normalize a {label: cycles} mapping to the baseline entry."""
    base = results[baseline_key]
    if base <= 0:
        raise ValueError("baseline time must be positive")
    return {k: v / base for k, v in results.items()}


@dataclass(frozen=True)
class CheckpointSummary:
    """Aggregate view of a mechanism's checkpoint activity."""

    intervals: int
    mean_bytes: float
    total_bytes: int
    mean_cycles: float
    total_cycles: int

    @property
    def ns_per_byte(self) -> float:
        """Per-byte checkpoint time at 3 GHz (the Figure 11 ratio)."""
        if self.total_bytes == 0:
            return float("inf") if self.total_cycles else 0.0
        return self.total_cycles / 3.0 / self.total_bytes  # cycles@3GHz -> ns


def summarize_checkpoints(stats: MechanismStats) -> CheckpointSummary:
    """Condense a mechanism's per-interval lists into a summary."""
    return CheckpointSummary(
        intervals=len(stats.checkpoint_bytes),
        mean_bytes=stats.mean_checkpoint_bytes,
        total_bytes=stats.total_checkpoint_bytes,
        mean_cycles=stats.mean_checkpoint_cycles,
        total_cycles=stats.total_checkpoint_cycles,
    )
