"""Figure 8 — stack persistence: Prosper vs Romulus, SSP, Dirtybit.

Runs each application under every mechanism with 10 ms checkpoint intervals
and reports execution time normalized to no-persistence execution.
Paper shape: Prosper lowest everywhere; Dirtybit close behind (Prosper up to
1.27x better); SSP overhead shrinking as the consolidation interval grows
from 10 us to 1 ms; Romulus worst across all workloads.
"""

from collections import defaultdict

from repro.analysis.report import render_table
from repro.experiments import evaluation


def test_fig8_stack_persistence(benchmark):
    results = benchmark.pedantic(
        evaluation.fig8_stack_persistence,
        kwargs={"target_ops": 80_000},
        rounds=1,
        iterations=1,
    )
    table = defaultdict(dict)
    for r in results:
        table[r.trace_name][r.mechanism_name] = r.normalized_time
    mechanisms = ["prosper", "dirtybit", "ssp-10us", "ssp-100us", "ssp-1ms", "romulus"]
    print()
    print(
        render_table(
            "Figure 8: normalized execution time (stack persistence)",
            ["workload"] + mechanisms,
            [
                [w] + [f"{table[w][m]:.2f}" for m in mechanisms]
                for w in sorted(table)
            ],
        )
    )
    for w, row in table.items():
        assert row["prosper"] == min(row.values()), f"prosper not best on {w}"
        assert row["romulus"] == max(row.values()), f"romulus not worst on {w}"
        assert row["ssp-10us"] >= row["ssp-1ms"] * 0.98
    # Paper: up to 3.6x reduction vs SSP-10us, 2.1x average.
    ratios = [row["ssp-10us"] / row["prosper"] for row in table.values()]
    assert max(ratios) > 1.5
