"""Property-based end-to-end invariants of the checkpoint pipeline.

These generate random op streams and check the system-level guarantees the
paper relies on:

* the Prosper tracker + OS checkpoint path captures *exactly* the granules
  the application dirtied, for any store pattern and any granularity;
* Prosper's checkpoint is never larger than Dirtybit's for the same trace;
* crash + recovery always lands on a committed checkpoint whose register
  state matches what was captured.
"""

from hypothesis import given, settings, strategies as st

from repro.config import PAGE_BYTES, TrackerConfig, setup_i
from repro.core.bitmap import DirtyBitmap
from repro.core.checkpoint import ProsperCheckpointEngine
from repro.core.tracker import ProsperTracker
from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import Op, OpKind
from repro.memory.address import AddressRange, span_granules, span_pages
from repro.memory.hierarchy import MemoryHierarchy
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.prosper import ProsperPersistence

REGION = AddressRange(0x7000_0000, 0x7000_0000 + 128 * 1024)

store_lists = st.lists(
    st.tuples(st.integers(0, 128 * 1024 - 64), st.sampled_from([1, 4, 8, 16, 64])),
    min_size=1,
    max_size=150,
)


class TestTrackerExactness:
    @settings(max_examples=40, deadline=None)
    @given(store_lists, st.sampled_from([8, 16, 64]))
    def test_checkpoint_copies_exactly_dirtied_granules(self, stores, granularity):
        tracker = ProsperTracker(
            TrackerConfig(granularity_bytes=granularity, lookup_table_entries=4)
        )
        bitmap = DirtyBitmap(REGION, granularity)
        tracker.configure(bitmap)
        engine = ProsperCheckpointEngine(
            tracker, bitmap, MemoryHierarchy(setup_i())
        )
        expected = set()
        for offset, size in stores:
            tracker.observe_store(REGION.start + offset, size)
            expected.update(span_granules(offset, size, granularity))
        result = engine.checkpoint(0)
        assert result.copied_bytes == len(expected) * granularity

    @settings(max_examples=25, deadline=None)
    @given(store_lists)
    def test_prosper_never_copies_more_than_dirtybit(self, stores):
        # One big live frame so the SP-aware copy keeps every write.
        ops = [Op(OpKind.CALL, size=REGION.size)] + [
            Op(OpKind.WRITE, REGION.start + off, size) for off, size in stores
        ]

        prosper = ProsperPersistence()
        ExecutionEngine(stack_range=REGION, mechanism=prosper).run(
            list(ops), interval_ops=len(ops)
        )
        dirtybit = DirtyBitPersistence()
        ExecutionEngine(stack_range=REGION, mechanism=dirtybit).run(
            list(ops), interval_ops=len(ops)
        )
        assert (
            prosper.stats.total_checkpoint_bytes
            <= dirtybit.stats.total_checkpoint_bytes
        )
        # Dirtybit's copy equals the page footprint exactly.
        pages = set()
        for off, size in stores:
            pages.update(span_pages(REGION.start + off, size))
        assert dirtybit.stats.total_checkpoint_bytes == len(pages) * PAGE_BYTES


class TestRecoveryInvariant:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(0, 64 * 1024 - 8), min_size=1, max_size=30),
        st.booleans(),
    )
    def test_recovery_always_lands_on_captured_state(self, offsets, crash_mid_commit):
        from repro.core.tracker import ProsperTracker as Tracker
        from repro.kernel.checkpoint_mgr import CheckpointManager
        from repro.kernel.process import Process
        from repro.kernel.restore import CrashSimulator

        proc = Process()
        thread = proc.spawn_thread(stack_bytes=128 * 1024, persistent=True)
        tracker = Tracker(proc.tracker_config)
        tracker.configure(thread.bitmap)
        mgr = CheckpointManager(proc, MemoryHierarchy(setup_i()), tracker)

        thread.registers.stack_pointer = thread.stack.start  # whole stack live
        for i, off in enumerate(offsets):
            tracker.observe_store(thread.stack.start + off, 8)
            thread.registers.op_index = i + 1
        mgr.checkpoint_process(crash_during_commit=crash_mid_commit)

        sim = CrashSimulator(proc, mgr)
        sim.crash()
        assert thread.registers.op_index == 0  # volatile state gone
        report = sim.recover()
        # Fully-staged checkpoints roll forward; either way we recover.
        assert report.recovered
        assert thread.registers.op_index == len(offsets)


class TestSpAwareCopy:
    @settings(max_examples=40, deadline=None)
    @given(
        store_lists,
        st.integers(0, 128 * 1024).map(lambda o: o // 8 * 8),
    )
    def test_copy_is_dirty_intersect_live_region(self, stores, sp_offset):
        """SP-aware checkpoints copy exactly the dirty granules at or above
        the final SP, and clear everything (no bits leak below it)."""
        granularity = 8
        tracker = ProsperTracker(TrackerConfig(lookup_table_entries=4))
        bitmap = DirtyBitmap(REGION, granularity)
        tracker.configure(bitmap)
        engine = ProsperCheckpointEngine(
            tracker, bitmap, MemoryHierarchy(setup_i())
        )
        final_sp = REGION.start + sp_offset
        dirty = set()
        for offset, size in stores:
            tracker.observe_store(REGION.start + offset, size)
            dirty.update(span_granules(offset, size, granularity))
        live = {
            g for g in dirty
            if REGION.start + (g + 1) * granularity > final_sp
        }
        # Conservative clipping: a granule straddling final_sp counts from
        # max(run.start, final_sp), so compute expected bytes per granule.
        expected = 0
        for g in sorted(live):
            lo = max(REGION.start + g * granularity, final_sp)
            hi = REGION.start + (g + 1) * granularity
            expected += hi - lo
        result = engine.checkpoint(
            0, active_low_hint=REGION.start, final_sp=final_sp
        )
        assert result.copied_bytes == expected
        # Every bit was cleared, dead or live.
        assert bitmap.dirty_granule_count() == 0
