"""Motivation experiments (Section II: Figures 1-4).

These are trace-level and replay studies:

* **Figure 1** — fraction of memory operations in the stack region for the
  three application models.
* **Figure 2** — per-interval stack writes vs writes beyond the final SP
  (Ycsb_mem, 100 intervals).
* **Figure 3** — execution time of flush/undo/redo with and without SP
  awareness, normalized to no-persistence; the stack lives in NVM for all
  six configurations.
* **Figure 4** — checkpoint copy size under page (4 KiB) vs 8-byte dirty
  tracking at 10 ms intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PAGE_BYTES
from repro.experiments.runner import make_engine, vanilla_cycles
from repro.persistence.logging import (
    FlushPersistence,
    RedoLogPersistence,
    UndoLogPersistence,
)
from repro.workloads.apps import g500_sssp, gapbs_pr, ycsb_mem
from repro.workloads.trace import Trace

#: Default workload size for the motivation studies.
DEFAULT_OPS = 120_000
#: Intervals used by the replay studies (paper: 100 x 10 ms).
DEFAULT_INTERVALS = 50


def _app_traces(target_ops: int = DEFAULT_OPS, seed: int = 42) -> list[Trace]:
    return [
        gapbs_pr(target_ops, seed),
        g500_sssp(target_ops, seed),
        ycsb_mem(target_ops, seed),
    ]


# --------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class StackFractionRow:
    workload: str
    stack_fraction: float
    stack_write_fraction: float


def fig1_stack_fraction(target_ops: int = DEFAULT_OPS, seed: int = 42) -> list[StackFractionRow]:
    """Fraction of memory operations hitting the stack, per workload."""
    rows = []
    for trace in _app_traces(target_ops, seed):
        stats = trace.stats
        rows.append(
            StackFractionRow(trace.name, stats.stack_fraction, stats.stack_write_fraction)
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class BeyondSpResult:
    workload: str
    per_interval: list[tuple[int, int]]  # (stack writes, beyond final SP)

    @property
    def total_writes(self) -> int:
        return sum(w for w, _ in self.per_interval)

    @property
    def total_beyond(self) -> int:
        return sum(b for _, b in self.per_interval)

    @property
    def beyond_fraction(self) -> float:
        return self.total_beyond / self.total_writes if self.total_writes else 0.0


def fig2_beyond_final_sp(
    workloads: list[Trace] | None = None,
    num_intervals: int = 100,
    target_ops: int = DEFAULT_OPS,
    seed: int = 42,
) -> list[BeyondSpResult]:
    """Stack writes beyond the interval-final SP (paper: Ycsb_mem ~36 %)."""
    traces = workloads or _app_traces(target_ops, seed)
    return [
        BeyondSpResult(t.name, t.writes_beyond_final_sp(num_intervals))
        for t in traces
    ]


# --------------------------------------------------------------------- #
# Figure 3
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SpAwarenessCell:
    workload: str
    mechanism: str
    sp_aware: bool
    normalized_time: float


def stack_only(trace: Trace) -> Trace:
    """Reduce a trace to its stack activity (memory ops + CALL/RET).

    Mirrors the paper's replay methodology: the custom program replays only
    the stack accesses of the trace, so the no-persistence baseline is the
    cost of those accesses with the stack in DRAM.
    """
    from repro.cpu.ops import OpKind

    arr = trace.array
    kinds = arr["kind"]
    addrs = arr["address"]
    stack = trace.stack_range
    keep = (
        (kinds == int(OpKind.CALL))
        | (kinds == int(OpKind.RET))
        | (
            (kinds <= int(OpKind.WRITE))
            & (addrs >= stack.start)
            & (addrs < stack.end)
        )
    )
    return Trace(
        arr[keep],
        trace.stack_range,
        heap_range=trace.heap_range,
        name=trace.name,
        initial_sp=trace.initial_sp,
    )


def fig3_sp_awareness(
    target_ops: int = 60_000,
    num_intervals: int = 20,
    seed: int = 42,
) -> list[SpAwarenessCell]:
    """flush/undo/redo +/- SP awareness, normalized execution time.

    Interval boundaries are positional (op-count) so the SP oracle —
    computed by a pre-pass over the trace — aligns exactly with the
    intervals the mechanisms see.  Traces are reduced to their stack
    activity, matching the paper's replay setup.
    """
    results: list[SpAwarenessCell] = []
    for full_trace in _app_traces(target_ops, seed):
        trace = stack_only(full_trace)
        base = vanilla_cycles(trace)
        interval_ops = max(1, len(trace.ops) // num_intervals)
        finals = trace.final_sp_per_interval(num_intervals)

        def oracle(i: int, _finals=finals) -> int:
            return _finals[min(i, len(_finals) - 1)]

        for factory in (FlushPersistence, UndoLogPersistence, RedoLogPersistence):
            for aware in (False, True):
                mechanism = factory(sp_oracle=oracle if aware else None)
                engine = make_engine(trace, mechanism)
                stats = engine.run(trace, interval_ops=interval_ops)
                results.append(
                    SpAwarenessCell(
                        trace.name,
                        mechanism.name,
                        aware,
                        stats.total_cycles / base,
                    )
                )
    return results


# --------------------------------------------------------------------- #
# Figure 4
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class GranularitySizeRow:
    workload: str
    page_bytes_per_interval: float
    byte_bytes_per_interval: float

    @property
    def reduction_factor(self) -> float:
        if self.byte_bytes_per_interval == 0:
            return float("inf")
        return self.page_bytes_per_interval / self.byte_bytes_per_interval


def fig4_copy_size(
    num_intervals: int = DEFAULT_INTERVALS,
    target_ops: int = DEFAULT_OPS,
    fine_granularity: int = 8,
    seed: int = 42,
) -> list[GranularitySizeRow]:
    """Copy size at page vs 8-byte dirty-tracking granularity."""
    rows = []
    for trace in _app_traces(target_ops, seed):
        page_sizes = trace.copy_sizes(num_intervals, PAGE_BYTES)
        fine_sizes = trace.copy_sizes(num_intervals, fine_granularity)
        rows.append(
            GranularitySizeRow(
                trace.name,
                sum(page_sizes) / len(page_sizes),
                sum(fine_sizes) / len(fine_sizes),
            )
        )
    return rows
