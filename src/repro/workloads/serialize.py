"""Trace serialization: save/load traces as compressed ``.npz`` files.

The paper's artifact ships memory traces as disk images; the equivalent
here is a compact on-disk format for generated traces, so expensive
workloads can be generated once and replayed across experiment runs:

* the op stream packs into the :data:`repro.cpu.ops.TRACE_DTYPE` structured
  array (one record per op),
* layout metadata (stack/heap ranges, name, initial SP) rides along as
  scalar arrays.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cpu.ops import TRACE_DTYPE
from repro.memory.address import AddressRange
from repro.workloads.trace import Trace

#: Format marker bumped on incompatible layout changes.
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write *trace* to *path* (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    heap = trace.heap_range
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        ops=trace.array,
        stack=np.array([trace.stack_range.start, trace.stack_range.end], dtype=np.int64),
        heap=np.array(
            [heap.start, heap.end] if heap is not None else [-1, -1],
            dtype=np.int64,
        ),
        name=np.bytes_(trace.name.encode()),
        initial_sp=np.int64(
            trace.initial_sp if trace.initial_sp is not None else -1
        ),
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trace format version {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        stack = AddressRange(int(data["stack"][0]), int(data["stack"][1]))
        heap_bounds = data["heap"]
        heap = (
            AddressRange(int(heap_bounds[0]), int(heap_bounds[1]))
            if int(heap_bounds[0]) >= 0
            else None
        )
        initial_sp = int(data["initial_sp"])
        ops = np.ascontiguousarray(data["ops"], dtype=TRACE_DTYPE)
        return Trace(
            ops=ops,
            stack_range=stack,
            heap_range=heap,
            name=bytes(data["name"]).decode(),
            initial_sp=initial_sp if initial_sp >= 0 else None,
        )
