"""Figure 9 — full memory-state persistence (heap + stack).

Runs each application with SSP protecting the heap and one of {SSP,
Dirtybit, Prosper} protecting the stack, across the three SSP
consolidation-thread invocation intervals.
Paper shape: SSP+Prosper best under every setting (up to 2.6x, ~2x average
vs SSP-everything at 10 us); all combinations improve as the consolidation
interval grows.
"""

from collections import defaultdict

from repro.analysis.report import render_table
from repro.experiments import evaluation


def test_fig9_memory_persistence(benchmark):
    cells = benchmark.pedantic(
        evaluation.fig9_memory_persistence,
        kwargs={"target_ops": 60_000},
        rounds=1,
        iterations=1,
    )
    table = defaultdict(dict)
    for c in cells:
        table[(c.workload, c.ssp_interval_us)][c.combination] = c.normalized_time
    combos = ["ssp", "ssp+dirtybit", "ssp+prosper"]
    print()
    print(
        render_table(
            "Figure 9: normalized execution time (memory-state persistence)",
            ["workload", "ssp interval"] + combos,
            [
                [w, f"{us:g}us"] + [f"{row[c]:.2f}" for c in combos]
                for (w, us), row in sorted(table.items())
            ],
        )
    )
    for row in table.values():
        assert row["ssp+prosper"] <= row["ssp+dirtybit"] * 1.001
        assert row["ssp+prosper"] <= row["ssp"] * 1.001
