"""Trace container and trace-level statistics.

A :class:`Trace` couples a list of micro-operations with the address-space
layout it was generated against (stack range, optional heap range) so an
experiment can build a matching engine without re-deriving layout.  The
statistics here power the motivation figures (stack-op fraction for Fig. 1,
writes beyond the final SP for Fig. 2, page- vs byte-granularity copy size
for Fig. 4) directly from a trace, without running the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.ops import Op, OpKind
from repro.memory.address import AddressRange, span_granules, span_pages


@dataclass
class TraceStats:
    """Counts derived from a trace (no timing involved)."""

    total_ops: int = 0
    memory_ops: int = 0
    stack_reads: int = 0
    stack_writes: int = 0
    other_reads: int = 0
    other_writes: int = 0

    @property
    def stack_ops(self) -> int:
        return self.stack_reads + self.stack_writes

    @property
    def stack_fraction(self) -> float:
        """Fraction of memory operations hitting the stack (Figure 1)."""
        return self.stack_ops / self.memory_ops if self.memory_ops else 0.0

    @property
    def stack_write_fraction(self) -> float:
        writes = self.stack_writes + self.other_writes
        return self.stack_writes / writes if writes else 0.0


@dataclass
class Trace:
    """A generated workload: operations plus the layout they assume."""

    ops: list[Op]
    stack_range: AddressRange
    heap_range: AddressRange | None = None
    name: str = "trace"
    #: Initial SP (top of stack); generators may start below the top.
    initial_sp: int | None = None
    _stats: TraceStats | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    @property
    def stats(self) -> TraceStats:
        if self._stats is None:
            self._stats = self._compute_stats()
        return self._stats

    def _compute_stats(self) -> TraceStats:
        stats = TraceStats(total_ops=len(self.ops))
        stack = self.stack_range
        for op in self.ops:
            if op.kind == OpKind.READ:
                stats.memory_ops += 1
                if stack.contains(op.address):
                    stats.stack_reads += 1
                else:
                    stats.other_reads += 1
            elif op.kind == OpKind.WRITE:
                stats.memory_ops += 1
                if stack.contains(op.address):
                    stats.stack_writes += 1
                else:
                    stats.other_writes += 1
        return stats

    # ------------------------------------------------------------------ #
    # Interval-based trace analysis (motivation experiments)
    # ------------------------------------------------------------------ #

    def split_intervals(self, num_intervals: int) -> list[list[Op]]:
        """Split ops into *num_intervals* equal chunks (trace-time intervals).

        The motivation studies operate on trace position rather than
        simulated cycles; equal op chunks approximate equal time slices for
        the steady-state workloads involved.
        """
        if num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        chunk = max(1, len(self.ops) // num_intervals)
        return [
            self.ops[i * chunk: (i + 1) * chunk]
            for i in range(num_intervals)
            if self.ops[i * chunk: (i + 1) * chunk]
        ]

    def writes_beyond_final_sp(self, num_intervals: int) -> list[tuple[int, int]]:
        """Per interval: (total stack writes, writes below the final SP).

        Replays SP movement through CALL/RET and, for every interval, counts
        stack writes whose address ends up below the interval-final SP —
        writes to frames already popped, the waste SP-unaware mechanisms do
        (Figure 2).
        """
        sp = self.initial_sp if self.initial_sp is not None else self.stack_range.end
        results: list[tuple[int, int]] = []
        for chunk in self.split_intervals(num_intervals):
            write_addresses: list[int] = []
            for op in chunk:
                if op.kind == OpKind.CALL:
                    sp -= op.size
                elif op.kind == OpKind.RET:
                    sp += op.size
                elif op.kind == OpKind.WRITE and self.stack_range.contains(op.address):
                    write_addresses.append(op.address)
            beyond = sum(1 for a in write_addresses if a < sp)
            results.append((len(write_addresses), beyond))
        return results

    def final_sp_per_interval(self, num_intervals: int) -> list[int]:
        """SP value at the end of each trace-time interval (the SP oracle)."""
        sp = self.initial_sp if self.initial_sp is not None else self.stack_range.end
        finals: list[int] = []
        for chunk in self.split_intervals(num_intervals):
            for op in chunk:
                if op.kind == OpKind.CALL:
                    sp -= op.size
                elif op.kind == OpKind.RET:
                    sp += op.size
            finals.append(sp)
        return finals

    def copy_sizes(
        self, num_intervals: int, granularity: int
    ) -> list[int]:
        """Checkpoint copy size per interval at the given dirty granularity.

        *granularity* may be a sub-page granule (8..128) or the page size —
        the same post-processing the paper applies for Figure 4.
        """
        sizes: list[int] = []
        for chunk in self.split_intervals(num_intervals):
            dirty: set[int] = set()
            for op in chunk:
                if op.kind == OpKind.WRITE and self.stack_range.contains(op.address):
                    if granularity >= 4096:
                        dirty.update(span_pages(op.address, op.size, granularity))
                    else:
                        dirty.update(span_granules(op.address, op.size, granularity))
            sizes.append(len(dirty) * granularity)
        return sizes
