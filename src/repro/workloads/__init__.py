"""Workload generators and trace utilities.

* :mod:`repro.workloads.trace` — the trace container and statistics.
* :mod:`repro.workloads.synthetic` — the access-pattern / access-intensity
  micro-benchmarks of Table III (Random, Stream, Sparse, Normal, Poisson).
* :mod:`repro.workloads.callstack` — the function-invocation micro-benchmarks
  (Quicksort, Recursive with parameterized depth).
* :mod:`repro.workloads.apps` — synthetic models of the three traced
  applications (Gapbs_pr, G500_sssp, Ycsb_mem) calibrated to the stack
  statistics the paper reports.
* :mod:`repro.workloads.spec` — synthetic stack models of the SPEC CPU 2017
  benchmarks used in the tracking-overhead study.
"""

from repro.workloads.trace import Trace, TraceStats
from repro.workloads.synthetic import (
    normal_workload,
    poisson_workload,
    random_workload,
    sparse_workload,
    stream_workload,
)
from repro.workloads.callstack import quicksort_workload, recursive_workload
from repro.workloads.apps import (
    APP_PROFILES,
    AppProfile,
    app_workload,
    gapbs_pr,
    g500_sssp,
    ycsb_mem,
    ycsb_mem_phased,
)
from repro.workloads.spec import SPEC_PROFILES, spec_workload
from repro.workloads.serialize import load_trace, save_trace

__all__ = [
    "Trace",
    "TraceStats",
    "random_workload",
    "stream_workload",
    "sparse_workload",
    "normal_workload",
    "poisson_workload",
    "quicksort_workload",
    "recursive_workload",
    "AppProfile",
    "APP_PROFILES",
    "app_workload",
    "gapbs_pr",
    "g500_sssp",
    "ycsb_mem",
    "ycsb_mem_phased",
    "SPEC_PROFILES",
    "spec_workload",
    "save_trace",
    "load_trace",
]
