"""Tests for the supervised experiment harness.

Covers the run-unit decomposition, the error taxonomy, the journal and
resume path, the shared result cache, and the worker pool's failure
modes: hangs (timeout + requeue), worker crashes (retry then harden),
deterministic workload errors (fail fast as Permanent), and
kill-then-resume byte-identical reassembly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness import cache as cache_mod
from repro.harness.errors import (
    PERMANENT,
    TIMEOUT,
    TRANSIENT,
    WORKER_CRASH,
    WORKLOAD_ERROR,
    backoff_delay,
    classify_event,
    should_retry,
)
from repro.harness.figures import (
    FIGURES,
    FigureOutput,
    FigureSpec,
    RunUnit,
    figure_names,
    register,
)
from repro.harness.journal import (
    ManifestMismatch,
    RunJournal,
    UnitRecord,
    load_manifest,
)
from repro.harness.pool import WorkerPool
from repro.harness.supervisor import (
    HarnessInterrupted,
    HarnessOptions,
    run_figures,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
CLI_ENV = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}


# --------------------------------------------------------------------- #
# Error taxonomy
# --------------------------------------------------------------------- #


class TestErrorTaxonomy:
    def test_timeouts_and_crashes_are_transient_events(self):
        assert classify_event(TIMEOUT, None) == TRANSIENT
        assert classify_event(WORKER_CRASH, None) == TRANSIENT

    def test_workload_errors_are_permanent_unless_listed(self):
        assert classify_event(WORKLOAD_ERROR, "RuntimeError") == PERMANENT
        assert classify_event(WORKLOAD_ERROR, "ValueError") == PERMANENT
        assert classify_event(WORKLOAD_ERROR, "MemoryError") == TRANSIENT
        assert classify_event(WORKLOAD_ERROR, "TransientWorkloadError") == TRANSIENT

    def test_retry_budget(self):
        assert should_retry(TIMEOUT, None, attempt=0, max_retries=2)
        assert should_retry(TIMEOUT, None, attempt=1, max_retries=2)
        assert not should_retry(TIMEOUT, None, attempt=2, max_retries=2)
        assert not should_retry(WORKLOAD_ERROR, "RuntimeError", 0, 2)

    def test_backoff_is_exponential_and_capped(self):
        assert backoff_delay(0, 0.5, 8.0) == 0.5
        assert backoff_delay(1, 0.5, 8.0) == 1.0
        assert backoff_delay(10, 0.5, 8.0) == 8.0


# --------------------------------------------------------------------- #
# Figure decomposition
# --------------------------------------------------------------------- #


class TestFigureRegistry:
    def test_every_cli_figure_is_registered(self):
        assert figure_names() == sorted(
            [
                "fig1", "fig2", "fig3", "fig4", "fig8", "fig9", "fig10",
                "fig11", "fig12", "fig13", "ctx-switch", "energy",
                "ablations", "extensions", "endurance", "report",
            ]
        )

    def test_unit_ids_are_stable_and_unique(self):
        for name, spec in FIGURES.items():
            units = spec.enumerate_units(2000)
            ids = [u.unit_id for u in units]
            assert len(ids) == len(set(ids)), f"{name}: duplicate unit ids"
            again = [u.unit_id for u in spec.enumerate_units(2000)]
            assert ids == again, f"{name}: unstable enumeration"

    def test_unit_params_are_json_serializable(self):
        for spec in FIGURES.values():
            for unit in spec.enumerate_units(2000):
                assert json.loads(json.dumps(unit.params)) == unit.params

    def test_fig8_decomposes_per_trace_and_mechanism(self):
        units = FIGURES["fig8"].enumerate_units(2000)
        assert len(units) == 3 * 6  # 3 apps x 6 mechanisms


# --------------------------------------------------------------------- #
# Journal
# --------------------------------------------------------------------- #


class TestJournal:
    def test_roundtrip_and_supersede(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.write_meta(2000, ["fig1"])
        journal.record_unit(
            UnitRecord("fig1", "u0", "failed", 3, 1.0, None, {"kind": TIMEOUT})
        )
        journal.record_unit(
            UnitRecord("fig1", "u0", "ok", 1, 0.5, {"rows": [{"x": 1}]})
        )
        journal.close()
        state = load_manifest(path)
        assert state.meta["ops"] == 2000
        assert state.records[("fig1", "u0")].ok  # later record wins
        assert state.completed()[("fig1", "u0")].payload == {"rows": [{"x": 1}]}

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.write_meta(2000, ["fig1"])
        journal.record_unit(UnitRecord("fig1", "u0", "ok", 1, 0.5, {"rows": []}))
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"type": "unit", "figure": "fig1", "unit_id": "u1"')
        state = load_manifest(path)
        assert ("fig1", "u0") in state.records
        assert ("fig1", "u1") not in state.records

    def test_meta_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.write_meta(2000, ["fig1"])
        journal.close()
        state = load_manifest(path)
        with pytest.raises(ManifestMismatch):
            RunJournal.check_meta(state, 4000, ["fig1"])
        with pytest.raises(ManifestMismatch):
            RunJournal.check_meta(state, 2000, ["fig1", "fig2"])
        RunJournal.check_meta(state, 2000, ["fig1"])  # exact match is fine


# --------------------------------------------------------------------- #
# Result cache
# --------------------------------------------------------------------- #


class TestResultCache:
    def test_vanilla_cycles_deduplicated(self):
        from repro.experiments.runner import vanilla_cycles
        from repro.workloads.apps import gapbs_pr

        trace = gapbs_pr(2000, 42)
        cache = cache_mod.ResultCache()
        cache_mod.activate(cache)
        try:
            first = cache_mod.vanilla_cycles_cached(trace)
            second = cache_mod.vanilla_cycles_cached(trace)
        finally:
            cache_mod.activate(None)
        assert first == second == vanilla_cycles(trace)
        assert cache.hits == 1 and cache.misses == 1

    def test_directory_layer_shared_between_instances(self, tmp_path):
        a = cache_mod.ResultCache(tmp_path)
        a.put("k", 123)
        b = cache_mod.ResultCache(tmp_path)
        assert b.get("k") == 123

    def test_fingerprint_distinguishes_traces(self):
        from repro.workloads.apps import g500_sssp, gapbs_pr

        f1 = cache_mod.trace_fingerprint(gapbs_pr(2000, 42))
        f2 = cache_mod.trace_fingerprint(g500_sssp(2000, 42))
        f3 = cache_mod.trace_fingerprint(gapbs_pr(2000, 7))
        assert len({f1, f2, f3}) == 3


# --------------------------------------------------------------------- #
# Worker-pool failure modes (chaos-injected)
# --------------------------------------------------------------------- #

TEST_FIGURE = "harness-test-fig"


def _test_units(ops: int) -> list[RunUnit]:
    return [RunUnit(TEST_FIGURE, f"u{i}", {"i": i}) for i in range(3)]


def _test_execute(params: dict) -> dict:
    return {"rows": [{"i": params["i"], "square": params["i"] ** 2}]}


def _test_assemble(ops, payloads, failed) -> FigureOutput:
    rows = [row for payload in payloads.values() for row in payload["rows"]]
    return FigureOutput("\n".join(f"{r['i']}:{r['square']}" for r in rows))


@pytest.fixture
def test_figure():
    """Register a tiny figure; forked workers inherit the registration."""
    spec = FigureSpec(TEST_FIGURE, _test_units, _test_execute, _test_assemble)
    register(spec)
    yield spec
    FIGURES.pop(TEST_FIGURE, None)


def _pool(**kwargs) -> WorkerPool:
    defaults = dict(
        jobs=2, timeout_s=None, max_retries=1, backoff_base_s=0.05, backoff_cap_s=0.1
    )
    defaults.update(kwargs)
    return WorkerPool(**defaults)


class TestWorkerPoolFailureModes:
    def test_all_units_succeed(self, test_figure):
        outcomes = _pool().run(_test_units(0))
        assert all(oc.ok for oc in outcomes)
        assert {oc.unit_id for oc in outcomes} == {"u0", "u1", "u2"}

    def test_hanging_unit_times_out_and_is_retried(self, test_figure, monkeypatch):
        monkeypatch.setenv(
            "REPRO_HARNESS_FAULTS", f"{TEST_FIGURE}/u1=hang:30"
        )
        start = time.monotonic()
        outcomes = _pool(timeout_s=0.8).run(_test_units(0))
        elapsed = time.monotonic() - start
        by_id = {oc.unit_id: oc for oc in outcomes}
        assert by_id["u0"].ok and by_id["u2"].ok
        failed = by_id["u1"]
        assert not failed.ok
        assert failed.failure.kind == TIMEOUT
        assert failed.failure.severity == PERMANENT  # hardened after retries
        assert failed.attempts == 2  # initial attempt + one retry
        assert elapsed < 30  # the hang was killed, not waited out

    def test_crashing_worker_is_retried_then_succeeds(self, test_figure, monkeypatch):
        # crash:1 -> os._exit(1) on attempt 0 only; the retry succeeds.
        monkeypatch.setenv(
            "REPRO_HARNESS_FAULTS", f"{TEST_FIGURE}/u2=crash:1"
        )
        outcomes = _pool().run(_test_units(0))
        by_id = {oc.unit_id: oc for oc in outcomes}
        assert by_id["u2"].ok
        assert by_id["u2"].attempts == 2

    def test_always_crashing_worker_hardens_to_permanent(
        self, test_figure, monkeypatch
    ):
        monkeypatch.setenv("REPRO_HARNESS_FAULTS", f"{TEST_FIGURE}/u0=crash")
        outcomes = _pool(max_retries=2).run(_test_units(0))
        failed = next(oc for oc in outcomes if oc.unit_id == "u0")
        assert failed.failure.kind == WORKER_CRASH
        assert failed.failure.severity == PERMANENT
        assert failed.attempts == 3

    def test_raising_worker_fails_fast_as_permanent(self, test_figure, monkeypatch):
        monkeypatch.setenv("REPRO_HARNESS_FAULTS", f"{TEST_FIGURE}/u1=raise")
        outcomes = _pool().run(_test_units(0))
        failed = next(oc for oc in outcomes if oc.unit_id == "u1")
        assert not failed.ok
        assert failed.failure.kind == WORKLOAD_ERROR
        assert failed.failure.severity == PERMANENT
        assert failed.attempts == 1  # deterministic errors are not retried
        assert "RuntimeError" in failed.failure.detail

    def test_transient_workload_error_is_retried(self, test_figure, monkeypatch):
        monkeypatch.setenv(
            "REPRO_HARNESS_FAULTS", f"{TEST_FIGURE}/u0=transient:1"
        )
        outcomes = _pool().run(_test_units(0))
        by_id = {oc.unit_id: oc for oc in outcomes}
        assert by_id["u0"].ok
        assert by_id["u0"].attempts == 2


# --------------------------------------------------------------------- #
# Supervisor: degradation, interrupts, resume
# --------------------------------------------------------------------- #


class TestSupervisor:
    def test_serial_and_parallel_fig1_identical(self):
        serial = run_figures(["fig1"], HarnessOptions(ops=2000, jobs=1))
        parallel = run_figures(["fig1"], HarnessOptions(ops=2000, jobs=2))
        assert serial[0].text == parallel[0].text

    def test_failed_unit_degrades_figure(self, monkeypatch):
        monkeypatch.setenv("REPRO_HARNESS_FAULTS", "fig1/gapbs_pr=raise")
        (outcome,) = run_figures(["fig1"], HarnessOptions(ops=2000))
        assert not outcome.ok
        assert "DEGRADED (1/3 runs failed" in outcome.text
        assert "gapbs_pr" in outcome.text  # named in the failure reason
        assert "ycsb_mem" in outcome.text  # surviving rows still rendered

    def test_interrupt_flushes_partial_figures(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_HARNESS_FAULTS", "fig4/ycsb_mem=interrupt")
        with pytest.raises(HarnessInterrupted) as excinfo:
            run_figures(["fig1", "fig4"], HarnessOptions(ops=2000))
        partial = excinfo.value.partial
        assert partial[0].name == "fig1" and partial[0].ok
        assert partial[1].name == "fig4"
        assert "INTERRUPTED (2/3 runs completed)" in partial[1].text

    def test_interrupted_run_resumes_byte_identical(self, monkeypatch, tmp_path):
        manifest = tmp_path / "run.jsonl"
        fresh = run_figures(["fig1", "fig4"], HarnessOptions(ops=2000))
        monkeypatch.setenv("REPRO_HARNESS_FAULTS", "fig4/g500_sssp=interrupt")
        with pytest.raises(HarnessInterrupted):
            run_figures(
                ["fig1", "fig4"],
                HarnessOptions(ops=2000, manifest_path=manifest),
            )
        monkeypatch.delenv("REPRO_HARNESS_FAULTS")
        resumed = run_figures(
            ["fig1", "fig4"],
            HarnessOptions(ops=2000, manifest_path=manifest, resume=True),
        )
        assert [oc.text for oc in resumed] == [oc.text for oc in fresh]
        # The journal shows fig1 was replayed, not re-run: all its units
        # were recorded before the interrupt and none after.
        records = [
            json.loads(line)
            for line in manifest.read_text().splitlines()
            if '"unit"' in line
        ]
        fig1_records = [r for r in records if r["figure"] == "fig1"]
        assert len(fig1_records) == 3

    def test_resume_refuses_ops_mismatch(self, tmp_path):
        manifest = tmp_path / "run.jsonl"
        run_figures(["fig1"], HarnessOptions(ops=2000, manifest_path=manifest))
        with pytest.raises(ManifestMismatch):
            run_figures(
                ["fig1"],
                HarnessOptions(ops=4000, manifest_path=manifest, resume=True),
            )


# --------------------------------------------------------------------- #
# CLI integration (exit codes, kill -9 + --resume)
# --------------------------------------------------------------------- #


class TestCliIntegration:
    def test_degraded_run_exits_nonzero(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_HARNESS_FAULTS", "fig1/gapbs_pr=raise")
        assert main(["fig1", "--ops", "2000"]) == 1
        out = capsys.readouterr().out
        assert "DEGRADED" in out

    def test_keyboard_interrupt_flushes_and_exits_130(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_HARNESS_FAULTS", "fig1/ycsb_mem=interrupt")
        code = main(["fig1", "--ops", "2000", "--out", str(tmp_path)])
        assert code == 130
        written = (tmp_path / "fig1.txt").read_text()
        assert "Figure 1" in written
        assert "INTERRUPTED (2/3 runs completed)" in written

    def test_resume_without_manifest_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["fig1", "--resume"]) == 2

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """Kill a parallel run with SIGKILL mid-flight, resume, compare."""
        manifest = tmp_path / "run.jsonl"
        base_cmd = [
            sys.executable, "-m", "repro", "fig8", "--ops", "3000",
            "--manifest", str(manifest),
        ]
        proc = subprocess.Popen(
            base_cmd + ["--jobs", "2"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=CLI_ENV,
            cwd=REPO_ROOT,
        )
        # Give it long enough to journal some units, then pull the plug.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if manifest.exists() and manifest.read_text().count('"unit"') >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.1)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        resumed = subprocess.run(
            base_cmd + ["--jobs", "2", "--resume"],
            capture_output=True,
            text=True,
            env=CLI_ENV,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        fresh = subprocess.run(
            [sys.executable, "-m", "repro", "fig8", "--ops", "3000"],
            capture_output=True,
            text=True,
            env=CLI_ENV,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert fresh.returncode == 0, fresh.stderr
        assert resumed.stdout == fresh.stdout
