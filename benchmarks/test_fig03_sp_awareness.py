"""Figure 3 — flush/undo/redo with and without SP awareness.

Replays the stack activity of each application with the three per-store
persistence primitives, with the stack resident in NVM, and compares
execution time with and without the SP oracle, normalized to stack-in-DRAM
execution with no persistence.
Paper shape: SP awareness improves all three mechanisms (~30 % on average),
yet even SP-aware variants stay >35x slower than no persistence.
"""

from repro.analysis.report import render_table
from repro.experiments import motivation


def test_fig3_sp_awareness(benchmark):
    cells = benchmark.pedantic(
        motivation.fig3_sp_awareness,
        kwargs={"target_ops": 60_000, "num_intervals": 20},
        rounds=1,
        iterations=1,
    )
    print()
    rows = []
    for cell in cells:
        rows.append(
            [
                cell.workload,
                cell.mechanism,
                "yes" if cell.sp_aware else "no",
                f"{cell.normalized_time:.1f}x",
            ]
        )
    print(
        render_table(
            "Figure 3: normalized execution time, stack persistence primitives",
            ["workload", "mechanism", "SP aware", "normalized time"],
            rows,
        )
    )
    # SP awareness helps every (workload, mechanism) pair.
    for workload in {c.workload for c in cells}:
        for mech in ("flush", "undo", "redo"):
            blind = next(
                c.normalized_time
                for c in cells
                if c.workload == workload and c.mechanism == mech and not c.sp_aware
            )
            aware = next(
                c.normalized_time
                for c in cells
                if c.workload == workload and c.mechanism == mech and c.sp_aware
            )
            assert aware <= blind
            assert aware > 2.0  # still far from free
