"""Result aggregation and rendering for the experiment harness."""

from repro.analysis.metrics import (
    geomean,
    normalized_times,
    speedup,
    summarize_checkpoints,
)
from repro.analysis.report import render_series, render_table
from repro.analysis.endurance import EnduranceReport, endurance_report
from repro.analysis.export import export_experiment, write_csv

__all__ = [
    "geomean",
    "speedup",
    "normalized_times",
    "summarize_checkpoints",
    "render_table",
    "render_series",
    "EnduranceReport",
    "endurance_report",
    "export_experiment",
    "write_csv",
]
