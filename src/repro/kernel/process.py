"""Processes and threads in the GemOS-like kernel.

A :class:`Process` owns an address-space layout, a page table, a heap, and
one or more :class:`Thread` objects.  Each thread has its own stack
(allocated top-down from the layout), its own register file, and — when the
process is persistent — its own dirty bitmap, persistent-stack NVM region,
and Prosper tracker state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config import TrackerConfig
from repro.core.bitmap import DirtyBitmap
from repro.core.tracker import TrackerState
from repro.cpu.registers import RegisterFile
from repro.kernel.layout import AddressSpaceLayout
from repro.kernel.vmem import PageTable
from repro.memory.address import AddressRange


@dataclass
class Thread:
    """One software thread: stack, registers, persistence metadata."""

    tid: int
    stack: AddressRange
    registers: RegisterFile
    #: DRAM bitmap area backing Prosper tracking for this thread.
    bitmap: DirtyBitmap | None = None
    #: NVM region holding the committed persistent stack image.
    persistent_stack: AddressRange | None = None
    #: Saved tracker state while the thread is descheduled.
    tracker_state: TrackerState | None = None

    @property
    def persistent(self) -> bool:
        return self.bitmap is not None


class Process:
    """A process with per-thread stacks over hybrid memory."""

    _next_pid = 1

    def __init__(
        self,
        layout: AddressSpaceLayout | None = None,
        tracker_config: TrackerConfig | None = None,
        name: str = "proc",
    ) -> None:
        self.pid = Process._next_pid
        Process._next_pid += 1
        self.name = name
        self.layout = layout or AddressSpaceLayout()
        self.tracker_config = tracker_config or TrackerConfig()
        self.page_table = PageTable()
        self.threads: dict[int, Thread] = {}
        self._next_tid = 1
        # Map the first megabyte of heap eagerly (heap demand paging is not
        # under study); stacks are demand-mapped in vmem.touch.
        self.page_table.map_range(
            AddressRange(self.layout.heap_base, self.layout.heap_base + (1 << 20))
        )

    # ------------------------------------------------------------------ #
    # Thread management
    # ------------------------------------------------------------------ #

    def spawn_thread(
        self,
        stack_bytes: int | None = None,
        persistent: bool = False,
    ) -> Thread:
        """Create a thread; when *persistent*, set up Prosper metadata."""
        stack = self.layout.allocate_stack(stack_bytes)
        registers = RegisterFile(stack_pointer=stack.end)
        thread = Thread(self._next_tid, stack, registers)
        self._next_tid += 1

        if persistent:
            granularity = self.tracker_config.granularity_bytes
            base = self.layout.allocate_bitmap_area(stack, granularity)
            thread.bitmap = DirtyBitmap(stack, granularity, base)
            thread.persistent_stack = self.layout.allocate_persistent_stack(stack)

        self.threads[thread.tid] = thread
        return thread

    def thread(self, tid: int) -> Thread:
        return self.threads[tid]

    def iter_threads(self) -> Iterator[Thread]:
        return iter(self.threads.values())

    @property
    def persistent_threads(self) -> list[Thread]:
        return [t for t in self.threads.values() if t.persistent]

    # ------------------------------------------------------------------ #
    # Inter-thread stack protection (Section III-C)
    # ------------------------------------------------------------------ #

    def build_thread_view(self, tid: int) -> PageTable:
        """Page-table view for *tid*: other threads' stacks read-only.

        A write fault through this view is the OS interposition point where
        cross-thread stack modifications get recorded into the victim
        thread's bitmap.
        """
        me = self.threads[tid]
        view = self.page_table
        for other in self.threads.values():
            if other.tid == tid:
                continue
            view = view.clone_view(read_only=other.stack)
        # Ensure the thread's own stack pages stay writable in the view.
        for page in me.stack.pages():
            entry = view.entries.get(page)
            if entry is not None:
                entry.writable = True
        return view

    def handle_cross_thread_write(self, writer_tid: int, address: int, size: int) -> bool:
        """OS fault handler for a write into another thread's stack.

        Records the dirtied granules in the *victim* thread's bitmap (so its
        next checkpoint captures the modification) and allows the write.
        Returns True when the address belonged to some other thread's stack.
        """
        for victim in self.threads.values():
            if victim.tid == writer_tid:
                continue
            if victim.stack.contains(address):
                if victim.bitmap is not None:
                    victim.bitmap.set_bits_for_access(address, size)
                return True
        return False
