"""Adaptive Prosper: per-interval granularity (and HWM) adjustment.

Implements the policy loop the paper sketches as future work: at every
checkpoint the OS inspects the interval's dirty profile and re-programs the
tracker — finer granularity for sparse writers, coarser for dense ones, and
a full fall-back to page-granularity Dirtybit tracking when sub-page
metadata stops paying for itself (the Stream case in Figure 10).

Granularity changes are realized exactly the way the hardware allows:
between intervals the OS writes the granularity and bitmap-base MSRs and
hands the tracker a freshly-sized bitmap area.
"""

from __future__ import annotations

from repro.config import PAGE_BYTES, TrackerConfig
from repro.core.adaptive import (
    PAGE_FALLBACK,
    GranularityController,
    IntervalProfile,
    WatermarkController,
)
from repro.core.bitmap import DirtyBitmap
from repro.core.checkpoint import ProsperCheckpointEngine
from repro.core.tracker import ProsperTracker
from repro.memory.address import AddressRange, page_index, span_pages
from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    PersistenceMechanism,
)
from repro.persistence.dirtybit import (
    CHECKPOINT_FIXED_CYCLES,
    PTE_CLEAR_CYCLES,
    PTE_INSPECT_CYCLES,
)


class AdaptiveProsperPersistence(PersistenceMechanism):
    """Prosper with OS-driven granularity (and optionally HWM) adaptation."""

    name = "prosper-adaptive"
    capabilities = Capabilities(
        achieves_process_persistence=True,
        works_without_compiler_support=True,
        stack_pointer_aware=True,
        allows_stack_in_dram=True,
    )
    region_in_nvm = False

    def __init__(
        self,
        tracker_config: TrackerConfig | None = None,
        granularity_controller: GranularityController | None = None,
        watermark_controller: WatermarkController | None = None,
        bitmap_base: int = 0x6000_0000,
        seed: int = 0xC0FFEE,
    ) -> None:
        super().__init__()
        self.tracker_config = tracker_config or TrackerConfig()
        self.controller = granularity_controller or GranularityController(
            initial=self.tracker_config.granularity_bytes
        )
        self.watermarks = watermark_controller
        self.bitmap_base = bitmap_base
        self.seed = seed
        self.tracker: ProsperTracker | None = None
        self.bitmap: DirtyBitmap | None = None
        self.checkpoint_engine: ProsperCheckpointEngine | None = None
        #: Per-interval page footprint, tracked for the density signal and
        #: for checkpointing while in page-fallback mode.
        self._dirty_pages: set[int] = set()
        self._stores_this_interval = 0
        self._ops_before_interval = 0
        self.granularity_history: list[int] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, engine, region: AddressRange) -> None:
        super().attach(engine, region)
        self._program_tracker(self.controller.granularity)

    def _program_tracker(self, granularity: int) -> None:
        """(Re)program the tracker for *granularity* (MSR writes + new bitmap)."""
        assert self.region is not None and self.engine is not None
        if granularity == PAGE_FALLBACK:
            if self.tracker is not None:
                self.tracker.disable()
            self.granularity_history.append(PAGE_FALLBACK)
            return
        config = self.tracker_config.with_granularity(granularity)
        if self.watermarks is not None:
            from dataclasses import replace

            config = replace(config, high_water_mark=self.watermarks.hwm)
        self.tracker = ProsperTracker(config, seed=self.seed)
        self.bitmap = DirtyBitmap(self.region, granularity, self.bitmap_base)
        self.tracker.configure(self.bitmap)
        self.checkpoint_engine = ProsperCheckpointEngine(
            self.tracker,
            self.bitmap,
            self.engine.hierarchy,
            fixed_scale=self.engine.fixed_cost_scale,
        )
        self.granularity_history.append(granularity)

    @property
    def in_page_fallback(self) -> bool:
        return self.controller.in_page_fallback

    @property
    def current_granularity(self) -> int:
        return self.controller.granularity

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        self._stores_this_interval += 1
        for page in span_pages(address, size):
            self._dirty_pages.add(page)
        if self.in_page_fallback or self.tracker is None:
            return 0
        cost = self.tracker.observe_store(address, size)
        if cost:
            self.stats.inline_overhead_cycles += cost
        return cost

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        final_page = page_index(max(ctx.final_sp, ctx.region.start))
        live_pages = sum(1 for p in self._dirty_pages if p >= final_page)
        page_footprint = live_pages * PAGE_BYTES

        if self.in_page_fallback:
            cycles, copied, runs = self._page_checkpoint(ctx, live_pages)
        else:
            assert self.checkpoint_engine is not None
            result = self.checkpoint_engine.checkpoint(
                ctx.interval_index,
                active_low_hint=ctx.min_sp,
                final_sp=ctx.final_sp,
            )
            cycles, copied, runs = result.cycles, result.copied_bytes, result.runs

        self.stats.checkpoint_bytes.append(copied)
        self.stats.checkpoint_cycles.append(cycles)

        # Adaptation step: feed the controllers, re-program on change.
        previous = self.controller.granularity
        profile = IntervalProfile(copied, runs, page_footprint)
        next_granularity = self.controller.observe(profile)
        if self.watermarks is not None and self.tracker is not None:
            self.watermarks.observe(
                self.tracker.interval_memory_ops, self._stores_this_interval
            )
        if next_granularity != previous:
            self._program_tracker(next_granularity)

        self._dirty_pages.clear()
        self._stores_this_interval = 0
        return cycles

    def _page_checkpoint(self, ctx: IntervalContext, live_pages: int) -> tuple[int, int, int]:
        """Dirtybit-style checkpoint used while in page-fallback mode."""
        cycles = round(CHECKPOINT_FIXED_CYCLES * self.fixed_scale)
        low_page = page_index(min(ctx.min_sp, ctx.final_sp))
        top_page = page_index(ctx.region.end - 1)
        cycles += max(0, top_page - low_page + 1) * PTE_INSPECT_CYCLES
        copied = live_pages * PAGE_BYTES
        cycles += len(self._dirty_pages) * PTE_CLEAR_CYCLES
        if copied:
            cycles += self.hierarchy.copy_dram_to_nvm(copied, self.fixed_scale)
        cycles += self.hierarchy.persist_barrier()
        return cycles, copied, live_pages

    def persisted_state(self) -> dict:
        return {
            "kind": "prosper-adaptive-checkpoint",
            "granularity_history": list(self.granularity_history),
        }
