"""Tests for repro.core.msr: the OS/hardware MSR interface."""

import pytest

from repro.core.msr import ControlBits, Msr, MsrBank
from repro.memory.address import AddressRange


class TestReadWrite:
    def test_stack_range_roundtrip(self):
        bank = MsrBank()
        bank.write(Msr.STACK_START, 0x1000)
        bank.write(Msr.STACK_END, 0x9000)
        assert bank.read(Msr.STACK_START) == 0x1000
        assert bank.stack_range == AddressRange(0x1000, 0x9000)

    def test_granularity_validation(self):
        bank = MsrBank()
        bank.write(Msr.GRANULARITY, 64)
        assert bank.granularity == 64
        with pytest.raises(ValueError):
            bank.write(Msr.GRANULARITY, 10)
        with pytest.raises(ValueError):
            bank.write(Msr.GRANULARITY, 0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            MsrBank().write(Msr.BITMAP_BASE, -1)

    def test_status_read_only(self):
        with pytest.raises(PermissionError):
            MsrBank().write(Msr.STATUS, 5)

    def test_status_reflects_outstanding_ops(self):
        bank = MsrBank()
        bank.outstanding_ops = 7
        assert bank.read(Msr.STATUS) == 7


class TestControl:
    def test_enable_flag(self):
        bank = MsrBank()
        assert not bank.enabled
        bank.write(Msr.CONTROL, int(ControlBits.ENABLE))
        assert bank.enabled

    def test_flush_flag_set_and_clear(self):
        bank = MsrBank()
        bank.write(Msr.CONTROL, int(ControlBits.ENABLE | ControlBits.FLUSH))
        assert bank.flush_requested
        bank.clear_flush()
        assert not bank.flush_requested
        assert bank.enabled  # clearing flush keeps enable


class TestSnapshot:
    def test_snapshot_copies_config(self):
        bank = MsrBank()
        bank.write(Msr.STACK_START, 0x4000)
        bank.write(Msr.GRANULARITY, 16)
        bank.outstanding_ops = 3
        snap = bank.snapshot()
        assert snap.stack_start == 0x4000
        assert snap.granularity == 16
        assert snap.outstanding_ops == 0  # in-flight ops are not state

    def test_snapshot_is_independent(self):
        bank = MsrBank()
        snap = bank.snapshot()
        bank.write(Msr.STACK_START, 0x8888)
        assert snap.stack_start == 0
