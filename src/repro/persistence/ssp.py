"""SSP — sub-page shadow paging at cache-line granularity (Section IV-A).

SSP keeps the protected region in NVM and maintains *two* physical pages for
each virtual page, distributing modified cache lines across them via
hardware-assisted cache-line remapping.  Dirty-line bitmaps live in an
extended TLB.  Two activities cost time:

* **interval commit** — at the end of each consistency interval the dirty
  lines are written back with ``clwb``, the updated per-page bitmaps are
  sent to the SSP cache, and the commit bitmap in NVM is updated;
* **page consolidation** — a background OS thread, invoked every 10 µs /
  100 µs / 1 ms (the paper sweeps this since the original leaves it
  unspecified), merges the two physical pages of *inactive* virtual pages
  (pages not written since the previous pass) by copying their
  unconsolidated lines.  The merging traffic interferes with application
  execution — the effect that makes SSP-10µs the costliest setting in
  Figure 8.

The consolidation thread is modeled inside the store path: whenever
application time crosses the next invocation deadline, the pass runs and its
cycles are charged as interference.
"""

from __future__ import annotations

from repro.config import CACHE_LINE_BYTES, PAGE_BYTES
from repro.memory.address import page_index, span_lines
from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    PersistenceMechanism,
)

#: Kernel cost of one consolidation-thread invocation before any merging
#: (wakeup, metadata scan).
CONSOLIDATION_WAKEUP_CYCLES = 2500
#: Metadata-scan cost per tracked virtual page per invocation (PTE plus
#: SSP per-page metadata).  At a 10 us invocation interval this scan is the
#: dominant consolidation cost and the reason SSP-10us trails SSP-1ms in
#: Figure 8.
SCAN_CYCLES_PER_PAGE = 40
#: Cycles to push one page's updated bitmap into the SSP cache at commit.
BITMAP_UPDATE_CYCLES = 20
#: Bytes of commit-bitmap written to NVM per dirty page at interval end.
COMMIT_BITMAP_BYTES = 8

LINES_PER_PAGE = PAGE_BYTES // CACHE_LINE_BYTES


class _PageState:
    """Shadow-paging state of one virtual page."""

    __slots__ = ("dirty_lines", "unconsolidated_lines", "last_write_now")

    def __init__(self) -> None:
        #: Lines modified in the current consistency interval.
        self.dirty_lines: set[int] = set()
        #: Lines split across the two physical copies, awaiting merge.
        self.unconsolidated_lines: set[int] = set()
        self.last_write_now = 0


class SspPersistence(PersistenceMechanism):
    """Sub-page shadow paging with a periodic consolidation thread."""

    name = "ssp"
    capabilities = Capabilities(
        achieves_process_persistence=False,
        works_without_compiler_support=True,
        stack_pointer_aware=False,
        allows_stack_in_dram=False,
    )
    region_in_nvm = True
    # Not batchable: every access probes consolidation deadlines against the
    # current cycle count (``_run_due_consolidations(now)``), so the inline
    # cost is now-dependent and deferred delivery would change timing.
    supports_batching = False

    def __init__(self, consolidation_interval_us: float = 10.0) -> None:
        super().__init__()
        if consolidation_interval_us <= 0:
            raise ValueError("consolidation interval must be positive")
        self.consolidation_interval_us = consolidation_interval_us
        self._consolidation_cycles = 0  # set at attach from engine freq
        self._next_consolidation = 0
        self._last_consolidation = 0
        self._pages: dict[int, _PageState] = {}
        self.consolidation_invocations = 0
        self.consolidated_lines_total = 0
        self.interference_cycles_total = 0

    @property
    def variant_name(self) -> str:
        iv = self.consolidation_interval_us
        label = f"{iv:g}us" if iv < 1000 else f"{iv / 1000:g}ms"
        return f"ssp-{label}"

    def attach(self, engine, region) -> None:
        super().attach(engine, region)
        # The invocation period follows the engine's (possibly compressed)
        # clock: under a fixed_cost_scale of s, s*N cycles represent N real
        # cycles, so the thread must fire every s*period to keep the same
        # invocations-per-interval ratio as real hardware.
        self._consolidation_cycles = max(
            1,
            round(
                self.consolidation_interval_us
                * engine.config.freq_hz
                / 1e6
                * engine.fixed_cost_scale
            ),
        )
        self._next_consolidation = self._consolidation_cycles

    # ------------------------------------------------------------------ #
    # Store path + background thread
    # ------------------------------------------------------------------ #

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        page = page_index(address)
        state = self._pages.get(page)
        if state is None:
            state = self._pages[page] = _PageState()
        for line in span_lines(address, size):
            state.dirty_lines.add(line)
            state.unconsolidated_lines.add(line)
        state.last_write_now = now
        # The line remap itself is hardware and free; the visible cost here
        # is any consolidation pass whose deadline we have crossed.
        return self._run_due_consolidations(now)

    def on_load(self, address: int, size: int, now: int) -> int:
        self.stats.loads_seen += 1
        return self._run_due_consolidations(now)

    def _run_due_consolidations(self, now: int) -> int:
        if now < self._next_consolidation:
            return 0
        # One pass per crossed deadline set: a consolidation thread whose
        # work exceeds its period simply runs back-to-back — missed
        # deadlines are skipped, never replayed.
        cost = self._consolidate(now)
        self._next_consolidation = max(
            self._next_consolidation + self._consolidation_cycles,
            now + cost,
        )
        self.interference_cycles_total += cost
        self.stats.inline_overhead_cycles += cost
        return cost

    def _consolidate(self, invocation_now: int) -> int:
        """One pass of the OS consolidation thread."""
        self.consolidation_invocations += 1
        scale = self.fixed_scale
        cycles = round(CONSOLIDATION_WAKEUP_CYCLES * scale)
        cycles += round(len(self._pages) * SCAN_CYCLES_PER_PAGE * scale)
        merged_bytes = 0
        inactive_before = invocation_now - self._consolidation_cycles
        for state in self._pages.values():
            if not state.unconsolidated_lines:
                continue
            if state.last_write_now >= inactive_before:
                # Page written within the last period — still active: skip,
                # merging it would just split again.
                continue
            merged = len(state.unconsolidated_lines)
            merged_bytes += merged * CACHE_LINE_BYTES
            self.consolidated_lines_total += merged
            state.unconsolidated_lines.clear()
        if merged_bytes:
            cycles += self.hierarchy.copy_nvm_to_nvm(merged_bytes, scale)
        self._last_consolidation = invocation_now
        return cycles

    # ------------------------------------------------------------------ #
    # Interval commit
    # ------------------------------------------------------------------ #

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        cycles = 0
        committed_bytes = 0
        for state in self._pages.values():
            if not state.dirty_lines:
                continue
            # clwb each modified line of the page; time advances through
            # the burst so write-buffer back-pressure is seen correctly.
            for line in state.dirty_lines:
                cycles += self.hierarchy.clwb(
                    line * CACHE_LINE_BYTES, CACHE_LINE_BYTES, now=ctx.now + cycles
                )
                committed_bytes += CACHE_LINE_BYTES
            # Push the extended-TLB bitmap to the SSP cache and update the
            # commit bitmap in NVM.
            cycles += BITMAP_UPDATE_CYCLES
            cycles += self.hierarchy.nvm.write(COMMIT_BITMAP_BYTES, ctx.now + cycles)
            state.dirty_lines = set()
        cycles += self.hierarchy.persist_barrier()
        self.stats.checkpoint_bytes.append(committed_bytes)
        self.stats.checkpoint_cycles.append(cycles)
        return cycles

    @property
    def tracked_pages(self) -> int:
        return len(self._pages)

    def persisted_state(self) -> dict:
        return {
            "kind": "shadow-paging-nvm",
            "intervals_committed": self.stats.intervals,
        }
