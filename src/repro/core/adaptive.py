"""Adaptive tracking policies — the paper's stated future directions.

Two adaptation loops the paper leaves open are implemented here:

* **Granularity adaptation** (Section V, "Prosper design allows changing
  tracking granularity based on the dirty behavior of an application or
  disabling it to use a page-level Dirtybit scheme"):
  :class:`GranularityController` watches each interval's dirty-run profile
  and moves the tracking granularity between 8 B and 128 B — or recommends
  falling back to page granularity outright — so dense writers (Stream)
  stop paying sub-page metadata costs while sparse writers keep the small
  copies.
* **Watermark adaptation** (Section V, "a dynamic scheme based on the
  access pattern is left as a future direction"):
  :class:`WatermarkController` hill-climbs the HWM against the observed
  bitmap-traffic-per-store rate, exploiting that the optimal direction
  differs per workload (SSSP improves with larger HWM, mcf with smaller).

Both controllers are deliberately stateless beyond a few scalars — they
model what OS-level policy code could cheaply do at each checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PAGE_BYTES

#: Granularity ladder the controller moves along.
GRANULARITY_LADDER = (8, 16, 32, 64, 128)
#: Sentinel "granularity" meaning: disable Prosper, use page Dirtybit.
PAGE_FALLBACK = PAGE_BYTES


@dataclass(frozen=True)
class IntervalProfile:
    """What the OS observed in one checkpoint interval."""

    copied_bytes: int
    runs: int
    #: Bytes that page-granularity tracking would have copied.
    page_footprint_bytes: int

    @property
    def density(self) -> float:
        """Fraction of the page footprint that was actually dirty."""
        if self.page_footprint_bytes == 0:
            return 0.0
        return min(1.0, self.copied_bytes / self.page_footprint_bytes)

    @property
    def mean_run_bytes(self) -> float:
        return self.copied_bytes / self.runs if self.runs else 0.0


class GranularityController:
    """Moves tracking granularity along the ladder from interval profiles.

    Policy: high density (most of every dirty page is dirty) means fine
    tracking buys little and costs metadata — coarsen; very low density
    means copies shrink a lot with finer bits — refine.  Sustained
    near-total density triggers the page-granularity fallback; a sparse
    interval while in fallback re-enables sub-page tracking.
    """

    def __init__(
        self,
        initial: int = 8,
        coarsen_density: float = 0.55,
        refine_density: float = 0.20,
        fallback_density: float = 0.85,
        fallback_patience: int = 2,
    ) -> None:
        if initial not in GRANULARITY_LADDER:
            raise ValueError(f"initial granularity {initial} not on the ladder")
        if not 0 <= refine_density < coarsen_density <= fallback_density <= 1:
            raise ValueError("density thresholds must be ordered in [0, 1]")
        self.granularity = initial
        self.coarsen_density = coarsen_density
        self.refine_density = refine_density
        self.fallback_density = fallback_density
        self.fallback_patience = fallback_patience
        self._dense_streak = 0
        self.transitions: list[int] = []

    @property
    def in_page_fallback(self) -> bool:
        return self.granularity == PAGE_FALLBACK

    def observe(self, profile: IntervalProfile) -> int:
        """Feed one interval's profile; returns the granularity to use next."""
        if profile.copied_bytes == 0:
            # Nothing to learn from an empty interval.
            return self.granularity

        density = profile.density
        if density >= self.fallback_density:
            self._dense_streak += 1
            if self._dense_streak >= self.fallback_patience:
                self._move_to(PAGE_FALLBACK)
                return self.granularity
        else:
            self._dense_streak = 0

        if self.in_page_fallback:
            if density < self.coarsen_density:
                self._move_to(GRANULARITY_LADDER[-1])
            return self.granularity

        index = GRANULARITY_LADDER.index(self.granularity)
        if density >= self.coarsen_density and index + 1 < len(GRANULARITY_LADDER):
            self._move_to(GRANULARITY_LADDER[index + 1])
        elif density <= self.refine_density and index > 0:
            self._move_to(GRANULARITY_LADDER[index - 1])
        return self.granularity

    def _move_to(self, granularity: int) -> None:
        if granularity != self.granularity:
            self.granularity = granularity
            self.transitions.append(granularity)


class WatermarkController:
    """Adapts the HWM threshold against bitmap traffic per store.

    Per-interval rates are noisy, so a naive hill-climb random-walks.
    Instead the controller keeps a running mean of the memory-ops-per-store
    rate for every HWM level it has tried; each interval it updates the
    current level's mean, then moves to the *neighbouring* level with the
    lowest mean (exploring unvisited neighbours first, upward before
    downward).  Bounded to [min_hwm, max_hwm] and quantized to *step* like
    the paper's sweep points.
    """

    def __init__(
        self,
        initial_hwm: int = 24,
        min_hwm: int = 8,
        max_hwm: int = 32,
        step: int = 4,
    ) -> None:
        if not min_hwm <= initial_hwm <= max_hwm:
            raise ValueError("initial HWM outside bounds")
        self.hwm = initial_hwm
        self.min_hwm = min_hwm
        self.max_hwm = max_hwm
        self.step = step
        #: hwm -> (sample count, mean rate)
        self._levels: dict[int, tuple[int, float]] = {}
        self.history: list[int] = [initial_hwm]

    def _mean(self, hwm: int) -> float | None:
        entry = self._levels.get(hwm)
        return entry[1] if entry else None

    def observe(self, memory_ops: int, stores: int) -> int:
        """Feed one interval's tracker counters; returns the next HWM."""
        if stores == 0:
            return self.hwm
        rate = memory_ops / stores
        count, mean = self._levels.get(self.hwm, (0, 0.0))
        self._levels[self.hwm] = (count + 1, mean + (rate - mean) / (count + 1))

        candidates = [
            hwm
            for hwm in (self.hwm + self.step, self.hwm - self.step, self.hwm)
            if self.min_hwm <= hwm <= self.max_hwm
        ]
        unvisited = [h for h in candidates if h not in self._levels]
        if unvisited:
            self.hwm = unvisited[0]
        else:
            self.hwm = min(candidates, key=lambda h: self._levels[h][1])
        self.history.append(self.hwm)
        return self.hwm
