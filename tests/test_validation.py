"""Tests for the seed-robustness validation module (single-seed, small)."""

from repro.experiments.validation import CheckResult, summarize, validate_shapes


class TestSummarize:
    def test_counts_passes_and_totals(self):
        results = [
            CheckResult("a", 1, True, ""),
            CheckResult("a", 2, False, ""),
            CheckResult("b", 1, True, ""),
        ]
        assert summarize(results) == {"a": (1, 2), "b": (1, 1)}

    def test_empty(self):
        assert summarize([]) == {}


class TestValidateShapes:
    def test_single_seed_run_passes(self):
        results = validate_shapes(seeds=(42,), target_ops=15_000)
        assert results, "no checks ran"
        names = {r.name for r in results}
        assert "fig8-prosper-best" in names
        assert "fig13-mcf-hwm-up" in names
        failed = [r for r in results if not r.passed]
        assert not failed, [f"{r.name}: {r.detail}" for r in failed]

    def test_detail_strings_are_informative(self):
        results = validate_shapes(seeds=(42,), target_ops=15_000)
        for r in results:
            assert r.detail  # every check explains itself
