"""Prosper exposed through the common persistence-mechanism interface.

This adapter wires the hardware tracker (:mod:`repro.core.tracker`), the
DRAM dirty bitmap (:mod:`repro.core.bitmap`), and the OS checkpoint engine
(:mod:`repro.core.checkpoint`) into the hook interface the execution engine
drives — letting Prosper be swept against the baselines and composed with a
heap mechanism (Figure 9).
"""

from __future__ import annotations

import numpy as np

from repro.config import TrackerConfig
from repro.core.bitmap import DirtyBitmap
from repro.core.checkpoint import ProsperCheckpointEngine
from repro.core.policies import AllocationPolicy
from repro.core.tracker import ProsperTracker
from repro.memory.address import AddressRange
from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    PersistenceMechanism,
)


class ProsperPersistence(PersistenceMechanism):
    """Sub-page byte-granularity checkpointing via the Prosper tracker."""

    name = "prosper"
    capabilities = Capabilities(
        achieves_process_persistence=True,
        works_without_compiler_support=True,
        stack_pointer_aware=True,
        allows_stack_in_dram=True,
    )
    region_in_nvm = False
    # Tracker interference is a per-op constant times a memory-op count that
    # depends only on store order, never on the cycle counter, so deferred
    # batch delivery charges exactly the same cycles as per-op hooks.
    supports_batching = True

    #: Worst-case tracker memory ops for recording one granule: a capacity
    #: eviction (load + store), a Load-and-Update allocation load, and an
    #: HWM write-out (load + store).
    _MAX_OPS_PER_GRANULE = 5

    def __init__(
        self,
        tracker_config: TrackerConfig | None = None,
        policy: AllocationPolicy = AllocationPolicy.ACCUMULATE_AND_APPLY,
        bitmap_base: int = 0x6000_0000,
        seed: int = 0xC0FFEE,
        content_reader=None,
        content_writer=None,
    ) -> None:
        super().__init__()
        self.tracker_config = tracker_config or TrackerConfig()
        self.policy = policy
        self.bitmap_base = bitmap_base
        self.tracker = ProsperTracker(self.tracker_config, policy, seed)
        self.bitmap: DirtyBitmap | None = None
        self.checkpoint_engine: ProsperCheckpointEngine | None = None
        #: Optional actual-contents hooks (see repro.core.checkpoint):
        #: when set, staged runs carry real checksummed payloads and
        #: commits apply them to a persistent image — the crash-schedule
        #: fuzzer's golden-image substrate.  None keeps the timing-only
        #: model every experiment uses.
        self.content_reader = content_reader
        self.content_writer = content_writer

    @property
    def granularity(self) -> int:
        return self.tracker_config.granularity_bytes

    @property
    def variant_name(self) -> str:
        return f"prosper-{self.granularity}B"

    def attach(self, engine, region: AddressRange) -> None:
        super().attach(engine, region)
        self.bitmap = DirtyBitmap(
            region, self.tracker_config.granularity_bytes, self.bitmap_base
        )
        self.tracker.configure(self.bitmap)
        self.checkpoint_engine = ProsperCheckpointEngine(
            self.tracker, self.bitmap, engine.hierarchy,
            fixed_scale=engine.fixed_cost_scale,
            injector=getattr(engine, "fault_injector", None),
            content_reader=self.content_reader,
            content_writer=self.content_writer,
        )

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        cost = self.tracker.observe_store(address, size)
        if cost:
            self.stats.inline_overhead_cycles += cost
        return cost

    def on_store_batch(self, addresses: np.ndarray, sizes: np.ndarray, now: int) -> int:
        self.stats.stores_seen += len(addresses)
        cost = self.tracker.observe_store_batch(addresses, sizes)
        if cost:
            self.stats.inline_overhead_cycles += cost
        return cost

    def store_cost_bound_array(self, addresses: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        granularity = self.tracker_config.granularity_bytes
        granules = (addresses % granularity + sizes - 1) // granularity + 1
        return granules * (
            self._MAX_OPS_PER_GRANULE * self.tracker.INTERFERENCE_CYCLES_PER_OP
        )

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        assert self.checkpoint_engine is not None, "not attached"
        result = self.checkpoint_engine.checkpoint(
            ctx.interval_index,
            active_low_hint=ctx.min_sp,
            final_sp=ctx.final_sp,
        )
        self.stats.checkpoint_bytes.append(result.copied_bytes)
        self.stats.checkpoint_cycles.append(result.cycles)
        return result.cycles

    def persisted_state(self) -> dict:
        committed = (
            self.checkpoint_engine.last_committed_interval
            if self.checkpoint_engine is not None
            else None
        )
        return {"kind": "prosper-checkpoint", "last_committed": committed}
