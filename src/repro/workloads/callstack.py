"""Function-invocation micro-benchmarks: Quicksort and Recursive (Table III).

These exercise the grow/shrink usage pattern that makes the stack special:

* **Quicksort** sorts a heap-allocated array; the trace is the real
  recursion tree of quicksort (frames pushed/popped, partition locals
  written on the stack, element reads/writes on the heap).  Its stack
  footprint revisits the same shallow frames over and over — the pattern
  the paper shows benefits from longer checkpoint intervals (Figure 11).
* **Recursive** performs repeated recursive descents to a parameterized
  depth (Rec-4/Rec-8/Rec-16), writing locals at each level.  New frames are
  dirtied on the way down with little re-use, so larger intervals *grow*
  its checkpoint size — the opposite trend.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.ops import TraceBuilder
from repro.memory.address import AddressRange
from repro.workloads.synthetic import DEFAULT_HEAP, DEFAULT_STACK
from repro.workloads.trace import Trace

#: Stack frame of one quicksort invocation: saved registers, lo/hi/pivot
#: locals, return address.
QSORT_FRAME_BYTES = 96
#: Locals written per quicksort invocation (within the frame).
QSORT_LOCAL_WRITES = 6

#: Frame size of one Recursive level.
RECURSIVE_FRAME_BYTES = 256


def quicksort_workload(
    elements: int = 2048,
    element_bytes: int = 8,
    repeats: int = 3,
    stack: AddressRange = DEFAULT_STACK,
    heap: AddressRange = DEFAULT_HEAP,
    seed: int = 7,
) -> Trace:
    """Trace of quicksort over random heap arrays, *repeats* times.

    Repeated sorts re-dirty the same shallow stack frames; a long
    checkpoint interval spanning several sorts therefore coalesces their
    modifications — the effect behind Quicksort's checkpoint size
    *shrinking* at 10 ms in Figure 11.
    """
    rng = np.random.default_rng(seed)
    heap_base = heap.start
    ops = TraceBuilder()
    sp = stack.end
    values = rng.integers(0, 1_000_000, size=elements).astype(np.int64)

    def element_addr(index: int) -> int:
        return heap_base + index * element_bytes

    def emit_frame_writes(frame_sp: int) -> None:
        for k in range(QSORT_LOCAL_WRITES):
            ops.write(frame_sp + 8 + k * 8, 8)

    def qsort(lo: int, hi: int) -> None:
        nonlocal sp
        if lo >= hi:
            return
        ops.call(QSORT_FRAME_BYTES)
        sp -= QSORT_FRAME_BYTES
        if sp < stack.start:
            raise RuntimeError("quicksort recursion exceeded the stack region")
        emit_frame_writes(sp)

        # Lomuto partition: read every element, swap when needed.
        pivot = values[hi]
        ops.read(element_addr(hi), element_bytes)
        i = lo - 1
        for j in range(lo, hi):
            ops.read(element_addr(j), element_bytes)
            if values[j] <= pivot:
                i += 1
                if i != j:
                    values[i], values[j] = values[j], values[i]
                    ops.write(element_addr(i), element_bytes)
                    ops.write(element_addr(j), element_bytes)
        values[i + 1], values[hi] = values[hi], values[i + 1]
        ops.write(element_addr(i + 1), element_bytes)
        ops.write(element_addr(hi), element_bytes)
        p = i + 1

        qsort(lo, p - 1)
        qsort(p + 1, hi)

        ops.ret(QSORT_FRAME_BYTES)
        sp += QSORT_FRAME_BYTES

    for round_index in range(max(1, repeats)):
        values = rng.integers(0, 1_000_000, size=elements).astype(np.int64)
        qsort(0, elements - 1)
        assert np.all(values[:-1] <= values[1:]), "quicksort trace did not sort"
        ops.compute(200)
    return Trace(ops.to_array(), stack, heap_range=heap, name="quicksort")


def recursive_workload(
    depth: int = 8,
    descents: int = 400,
    writes_per_level: int = 8,
    frame_bytes: int = RECURSIVE_FRAME_BYTES,
    compute_gap_cycles: int = 20_000,
    stack: AddressRange = DEFAULT_STACK,
    seed: int = 7,
) -> Trace:
    """Steadily deepening recursion (Rec-4 / Rec-8 / Rec-16 in the paper).

    Each cycle descends *depth* levels writing locals, then unwinds only
    ``depth - 1`` levels before the next descent: the stack deepens by one
    frame per cycle and **never shrinks back** within a checkpoint
    interval (the paper's stated Recursive behaviour) — so every dirtied
    frame is still live at the interval end, checkpoint size grows with
    the interval, and nothing coalesces.  Compute gaps between cycles make
    very short checkpoint intervals land on intervals with no stack
    modification, reproducing the paper's per-byte-cost note.
    """
    if depth * frame_bytes > stack.size:
        raise ValueError("recursion does not fit in the stack region")
    max_cycles = stack.size // frame_bytes - depth - 1
    if descents > max_cycles:
        raise ValueError(
            f"{descents} deepening cycles of {frame_bytes}B frames exceed "
            f"the stack region (max {max_cycles})"
        )
    ops = TraceBuilder()
    sp = stack.end
    net_depth = 0
    for _ in range(descents):
        for _level in range(depth):
            ops.call(frame_bytes)
            sp -= frame_bytes
            for k in range(writes_per_level):
                ops.write(sp + 8 + k * 8, 8)
        for _level in range(depth - 1):
            ops.ret(frame_bytes)
            sp += frame_bytes
        net_depth += 1
        ops.compute(compute_gap_cycles)
    for _ in range(net_depth):
        ops.ret(frame_bytes)
    return Trace(ops.to_array(), stack, name=f"rec-{depth}")
