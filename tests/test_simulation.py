"""Tests for the multithreaded end-to-end simulation."""

import numpy as np
import pytest

from repro.cpu.ops import Op, OpKind
from repro.kernel.simulation import MultiThreadSimulation


def make_thread_ops(stack_size=512 * 1024, writes=600, seed=0):
    """Random stack writes within a frame the thread pushes first."""
    rng = np.random.default_rng(seed)
    ops = [Op(OpKind.CALL, size=stack_size // 2)]
    # Thread stacks are assigned at spawn; addresses are resolved relative
    # to each thread's own stack by the generator below.
    return ops, rng, writes


def build_sim(num_threads=2, writes=600, **kwargs):
    """Create a simulation whose traces write within each thread's stack."""
    sim = MultiThreadSimulation(
        [[Op(OpKind.COMPUTE, size=1)] for _ in range(num_threads)], **kwargs
    )
    # Rebuild each stream with addresses inside the spawned thread's stack.
    streams = []
    for i, (thread, _, _) in enumerate(sim._streams):
        rng = np.random.default_rng(i)
        frame = thread.stack.size // 2
        ops = [Op(OpKind.CALL, size=frame)]
        base = thread.stack.end - frame
        offsets = rng.integers(0, frame // 8, size=writes) * 8
        for off in offsets:
            ops.append(Op(OpKind.WRITE, base + int(off), 8))
        # The frame stays live (no trailing RET): SP-aware checkpoints copy
        # only live frames, and the tests assert that data was captured.
        streams.append((thread, ops, 0))
    sim._streams = streams
    return sim


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MultiThreadSimulation([])

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            MultiThreadSimulation([[Op(OpKind.COMPUTE, size=1)]], quantum_ops=0)

    def test_threads_spawned_persistent(self):
        sim = build_sim(3)
        assert len(sim.process.threads) == 3
        assert all(t.persistent for t in sim.process.iter_threads())


class TestExecution:
    def test_all_ops_execute(self):
        sim = build_sim(2, writes=300, quantum_ops=100)
        stats = sim.run()
        assert stats.ops_executed == 2 * 301  # CALL + writes each
        assert stats.switches > 2  # interleaved, not one slice each

    def test_checkpoints_happen(self):
        sim = build_sim(2, writes=300, quantum_ops=50, checkpoint_every_quanta=4)
        stats = sim.run()
        assert stats.checkpoints >= 2
        assert stats.checkpoint_cycles > 0

    def test_both_threads_dirty_data_captured(self):
        sim = build_sim(2, writes=200, quantum_ops=64)
        sim.run()
        last = sim.manager.last_committed
        assert last is not None
        # Both threads contributed stack data to some checkpoint.
        copied_by_tid = {t.tid: 0 for t in sim.process.iter_threads()}
        for record in sim.manager.checkpoints:
            for snap in record.threads:
                copied_by_tid[snap.tid] += snap.copied_bytes
        assert all(v > 0 for v in copied_by_tid.values())

    def test_scheduler_saves_tracker_state(self):
        sim = build_sim(2, writes=200, quantum_ops=50)
        sim.run()
        assert sim.scheduler.stats.prosper_cycles > 0


class TestCrashRecovery:
    def test_crash_and_recover_multithreaded(self):
        sim = build_sim(2, writes=300, quantum_ops=64, checkpoint_every_quanta=3)
        sim.run()
        expected = {
            t.tid: t.registers.op_index for t in sim.process.iter_threads()
        }
        sim.crash()
        report = sim.recover()
        assert report.recovered
        # Every thread resumes at its last-checkpointed op index; the final
        # checkpoint ran after all ops completed, so indices match exactly.
        for tid, op_index in expected.items():
            assert sim.process.thread(tid).registers.op_index == op_index


class TestCrashResumeContinue:
    """Crash mid-run, recover, resume — final state must equal an
    uninterrupted run (the paper's kill-gem5-and-restart validation)."""

    def test_resumed_run_matches_uninterrupted(self):
        baseline = build_sim(2, writes=400, quantum_ops=50, checkpoint_every_quanta=3)
        baseline.run()
        expected_ops = {
            t.tid: t.registers.op_index for t in baseline.process.iter_threads()
        }
        expected_images = {
            tid: img.snapshot() for tid, img in baseline.dram_images.items()
        }

        crashed = build_sim(2, writes=400, quantum_ops=50, checkpoint_every_quanta=3)
        crashed.run(stop_after_quanta=7)  # die mid-run, past one checkpoint
        crashed.crash()
        report = crashed.recover()
        assert report.recovered
        # Threads rewound to the checkpointed op indices (some work lost).
        assert all(
            t.registers.op_index <= expected_ops[t.tid]
            for t in crashed.process.iter_threads()
        )
        crashed.resume()

        for thread in crashed.process.iter_threads():
            assert thread.registers.op_index == expected_ops[thread.tid]
            frame = thread.stack.size // 2
            from repro.memory.address import AddressRange

            live = AddressRange(thread.stack.end - frame, thread.stack.end)
            assert crashed.dram_images[thread.tid].equals_in_range(
                expected_images[thread.tid], live
            )

    def test_resume_without_checkpoint_replays_everything(self):
        sim = build_sim(1, writes=100, quantum_ops=50, checkpoint_every_quanta=1000)
        sim.run(stop_after_quanta=1)  # no checkpoint yet
        sim.crash()
        report = sim.recover()
        assert not report.recovered  # nothing committed: restart from zero
        # Manual restart from scratch still completes.
        sim.resume()
        assert sim.process.thread(1).registers.op_index == 101
