"""Energy and area of the Prosper lookup table (Section V).

Accumulates lookup-table read/write access counts over a gapbs_pr run and
converts them to energy with the paper's CACTI-P 7 nm numbers.
Paper reference values: 0.000773194 nJ/read, 0.000128375 nJ/write,
0.01067596 mW leakage, 0.000704786 mm^2 area.
"""

import pytest

from repro.experiments import overhead


def test_energy_report(benchmark):
    report = benchmark.pedantic(
        overhead.energy_report,
        kwargs={"target_ops": 60_000},
        rounds=1,
        iterations=1,
    )
    print()
    print("Prosper lookup-table energy (CACTI-P 7nm)")
    print("=========================================")
    print(f"table reads:          {report.reads}")
    print(f"table writes:         {report.writes}")
    print(f"dynamic read energy:  {report.dynamic_read_nj:.4f} nJ")
    print(f"dynamic write energy: {report.dynamic_write_nj:.4f} nJ")
    print(f"leakage energy:       {report.leakage_nj:.4f} nJ")
    print(f"total energy:         {report.total_nj:.4f} nJ")
    print(f"area:                 {report.area_mm2} mm^2")
    assert report.area_mm2 == pytest.approx(0.000704786)
    assert report.total_nj > 0
