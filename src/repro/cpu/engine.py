"""Trace-driven execution engine.

The engine is the simulator's main loop.  It consumes a sequence of
micro-operations (:mod:`repro.cpu.ops`), charges each op its latency from the
memory hierarchy, maintains the stack pointer through CALL/RET, routes
accesses to the persistence mechanisms protecting each region, and fires
interval hooks every *interval_cycles* of application progress — the
consistency-interval boundaries at which checkpoint mechanisms do their work.

Time accounting distinguishes:

* ``app_cycles`` — progress of the application itself (memory latency plus
  compute), what "execution time without persistence" measures;
* ``inline_cycles`` — extra critical-path cycles a mechanism adds to loads
  and stores (clwb, log appends, page faults, tracker interference);
* ``interval_cycles`` — cycles spent inside interval-boundary work
  (metadata inspection, copying, commits).

Normalized execution time as plotted in the paper (Figures 3, 8, 9) is then
``(app + inline + interval) / app``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.config import SystemConfig, setup_i
from repro.cpu.ops import TRACE_DTYPE, Op, OpKind, ops_to_array
from repro.cpu.registers import RegisterFile
from repro.memory.address import AddressRange
from repro.memory.hierarchy import MemoryHierarchy
from repro.persistence.base import IntervalContext, PersistenceMechanism


class IntervalWriteLog:
    """Bounded-memory log of stack-write addresses within one interval.

    Replaces the historical unbounded ``list[int]``: addresses live in a
    compact ``array('Q')`` (8 bytes each) plus, for the batched engine,
    zero-copy numpy chunks sliced straight out of the trace.  The only
    query the engine needs — how many logged writes landed below the
    interval-final SP — is answered with vectorized comparisons.
    """

    __slots__ = ("_scalar", "_chunks", "_chunk_count")

    def __init__(self) -> None:
        self._scalar = array("Q")
        self._chunks: list[np.ndarray] = []
        self._chunk_count = 0

    def __len__(self) -> int:
        return len(self._scalar) + self._chunk_count

    def append(self, address: int) -> None:
        self._scalar.append(address)

    def extend_array(self, addresses: np.ndarray) -> None:
        if len(addresses):
            self._chunks.append(addresses)
            self._chunk_count += len(addresses)

    def count_below(self, sp: int) -> int:
        """Number of logged addresses strictly below *sp*."""
        if sp <= 0:
            return 0
        total = 0
        if self._scalar:
            scalar = np.frombuffer(self._scalar, dtype=np.uint64)
            total += int(np.count_nonzero(scalar < np.uint64(sp)))
        for chunk in self._chunks:
            total += int(np.count_nonzero(chunk < sp))
        return total

    def clear(self) -> None:
        del self._scalar[:]
        self._chunks = []
        self._chunk_count = 0


def trace_array(ops) -> np.ndarray:
    """Coerce an op stream (Trace, TRACE_DTYPE array, or Op sequence) to
    the canonical ``TRACE_DTYPE`` array form."""
    arr = getattr(ops, "array", None)
    if arr is not None and isinstance(arr, np.ndarray):
        return arr
    if isinstance(ops, np.ndarray):
        if ops.dtype != TRACE_DTYPE:
            raise TypeError(f"expected TRACE_DTYPE array, got {ops.dtype}")
        return ops
    return ops_to_array(list(ops))


@dataclass
class IntervalRecord:
    """Per-interval statistics the engine gathers for the analysis layer."""

    index: int
    end_cycle: int
    final_sp: int
    min_sp: int
    stack_writes: int
    stack_writes_beyond_final_sp: int
    checkpoint_cycles: int


@dataclass
class EngineStats:
    """Aggregate statistics of one run."""

    ops_executed: int = 0
    app_cycles: int = 0
    inline_cycles: int = 0
    interval_cycles: int = 0
    stack_reads: int = 0
    stack_writes: int = 0
    other_reads: int = 0
    other_writes: int = 0
    intervals: list[IntervalRecord] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.app_cycles + self.inline_cycles + self.interval_cycles

    @property
    def normalized_time(self) -> float:
        """Execution time normalized to the no-persistence application time."""
        return self.total_cycles / self.app_cycles if self.app_cycles else 1.0

    @property
    def user_ipc(self) -> float:
        """Ops per application-visible cycle (inline overhead included).

        Mirrors the paper's user-space IPC metric for the tracking-overhead
        study (Figure 12): interval-boundary kernel work is excluded, but
        any slowdown the tracker imposes on user instructions is not.
        """
        user_cycles = self.app_cycles + self.inline_cycles
        return self.ops_executed / user_cycles if user_cycles else 0.0


class ExecutionEngine:
    """Runs one thread's trace against a machine model.

    Parameters
    ----------
    config:
        Machine configuration; defaults to the paper's Setup-I.
    stack_range:
        Virtual address range of the thread's stack.  The initial SP is the
        top of this range (stacks grow down).
    mechanism:
        Persistence mechanism protecting the stack region (may be
        :class:`~repro.persistence.none.NoPersistence`).
    heap_range / heap_mechanism:
        Optional second protected region, used by the full-memory-state
        experiments (Figure 9).
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector`.  Attached
        mechanisms pick it up for their named crash points, and the run
        loop polls its cycle deadline after every op so power can fail at
        an arbitrary cycle offset, not only at protocol steps.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        stack_range: AddressRange | None = None,
        mechanism: PersistenceMechanism | None = None,
        heap_range: AddressRange | None = None,
        heap_mechanism: PersistenceMechanism | None = None,
        fixed_cost_scale: float = 1.0,
        fault_injector=None,
    ) -> None:
        from repro.persistence.none import NoPersistence

        self.config = config or setup_i()
        #: Scale applied by mechanisms to fixed per-wall-clock-event costs
        #: (copy latencies, checkpoint setup, background-thread wakeups) so
        #: they stay consistent with the runner's compressed clock; 1.0
        #: means real hardware latencies.  See repro.experiments.runner.
        self.fixed_cost_scale = fixed_cost_scale
        self.stack_range = stack_range or AddressRange(0x7000_0000, 0x7010_0000)
        self.heap_range = heap_range
        self.mechanism = mechanism or NoPersistence()
        self.heap_mechanism = heap_mechanism
        #: Set before attach so mechanisms can thread it into their
        #: checkpoint pipelines (named crash points).
        self.fault_injector = fault_injector

        nvm_regions: list[AddressRange] = []
        if self.mechanism.region_in_nvm:
            nvm_regions.append(self.stack_range)
        if heap_mechanism is not None and heap_mechanism.region_in_nvm:
            assert heap_range is not None
            nvm_regions.append(heap_range)
        self.hierarchy = MemoryHierarchy(
            self.config,
            nvm_resident=(
                (lambda addr: any(r.contains(addr) for r in nvm_regions))
                if nvm_regions
                else None
            ),
        )

        self.registers = RegisterFile(stack_pointer=self.stack_range.end)
        self.now = 0
        self.stats = EngineStats()

        # Optional TLB/page-table-walker timing (SystemConfig.tlb).
        if self.config.tlb is not None:
            from repro.memory.tlb import Tlb

            self.tlb: "Tlb | None" = Tlb(self.config.tlb)
        else:
            self.tlb = None

        self.mechanism.attach(self, self.stack_range)
        if heap_mechanism is not None:
            if heap_range is None:
                raise ValueError("heap_mechanism requires heap_range")
            heap_mechanism.attach(self, heap_range)

        # Interval bookkeeping.
        self._interval_index = 0
        self._interval_min_sp = self.registers.stack_pointer
        self._interval_writes = IntervalWriteLog()

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        ops: Iterable[Op] | Sequence[Op],
        interval_cycles: int = 0,
        interval_ops: int | None = None,
        final_checkpoint: bool = True,
    ) -> EngineStats:
        """Execute *ops*; fire interval hooks periodically.

        Interval boundaries are either wall-clock (*interval_cycles* of
        simulated time, like the paper's 10 ms timer) or positional
        (*interval_ops* operations, used by the replay studies that need an
        SP oracle aligned with trace position).  ``interval_cycles == 0``
        with no *interval_ops* disables checkpointing (the vanilla
        baseline).  When *final_checkpoint* is set, a trailing partial
        interval is still committed, so every run ends in a consistent
        persisted state.
        """
        if interval_cycles < 0:
            raise ValueError("interval_cycles must be non-negative")
        if interval_ops is not None and interval_ops <= 0:
            raise ValueError("interval_ops must be positive")
        periodic = bool(interval_cycles) or interval_ops is not None
        next_boundary = self.now + interval_cycles if interval_cycles else None
        ops_in_interval = 0
        if periodic:
            self._start_interval()

        injector = self.fault_injector
        for op in ops:
            self._execute(op)
            if injector is not None:
                injector.check_cycle(self.now)
            ops_in_interval += 1
            boundary = False
            if interval_ops is not None:
                boundary = ops_in_interval >= interval_ops
            elif next_boundary is not None:
                boundary = self.now >= next_boundary
            if boundary:
                self._end_interval()
                if next_boundary is not None:
                    next_boundary = self.now + interval_cycles
                ops_in_interval = 0
                self._start_interval()

        # Commit the trailing partial interval, unless the last op landed
        # exactly on a boundary (nothing ran since the last checkpoint).
        if periodic and final_checkpoint and ops_in_interval > 0:
            self._end_interval()
        return self.stats

    def _execute(self, op: Op) -> None:
        self.stats.ops_executed += 1
        self.registers.op_index += 1
        kind = op.kind

        if kind == OpKind.COMPUTE:
            self._advance(op.size)
            return

        if kind == OpKind.CALL:
            sp = self.registers.push_frame(op.size)
            if sp < self._interval_min_sp:
                self._interval_min_sp = sp
            if sp < self.stack_range.start:
                raise RuntimeError(
                    f"stack overflow: SP {sp:#x} below {self.stack_range.start:#x}"
                )
            self._advance(1)
            return

        if kind == OpKind.RET:
            self.registers.pop_frame(op.size)
            self._advance(1)
            return

        # Memory operation.
        is_write = kind == OpKind.WRITE
        if self.tlb is not None:
            self._advance(self.tlb.translate(op.address, is_write))
        result = self.hierarchy.access(op.address, op.size, is_write)
        self._advance(result.latency_cycles)

        in_stack = self.stack_range.contains(op.address)
        if in_stack:
            if is_write:
                self.stats.stack_writes += 1
                self._interval_writes.append(op.address)
            else:
                self.stats.stack_reads += 1
            extra = (
                self.mechanism.on_store(op.address, op.size, self.now)
                if is_write
                else self.mechanism.on_load(op.address, op.size, self.now)
            )
            self._charge_inline(extra)
        elif self.heap_range is not None and self.heap_range.contains(op.address):
            if is_write:
                self.stats.other_writes += 1
            else:
                self.stats.other_reads += 1
            if self.heap_mechanism is not None:
                extra = (
                    self.heap_mechanism.on_store(op.address, op.size, self.now)
                    if is_write
                    else self.heap_mechanism.on_load(op.address, op.size, self.now)
                )
                self._charge_inline(extra)
        else:
            if is_write:
                self.stats.other_writes += 1
            else:
                self.stats.other_reads += 1

    def _advance(self, cycles: int) -> None:
        self.now += cycles
        self.stats.app_cycles += cycles
        self.hierarchy.now = self.now

    def _charge_inline(self, cycles: int) -> None:
        if cycles:
            self.now += cycles
            self.stats.inline_cycles += cycles
            self.hierarchy.now = self.now

    # ------------------------------------------------------------------ #
    # Interval boundaries
    # ------------------------------------------------------------------ #

    def _context(self) -> IntervalContext:
        return IntervalContext(
            interval_index=self._interval_index,
            now=self.now,
            final_sp=self.registers.stack_pointer,
            min_sp=self._interval_min_sp,
            region=self.stack_range,
        )

    def _heap_context(self) -> IntervalContext:
        """Interval context for the heap region.

        The heap has no stack pointer: ``final_sp``/``min_sp`` are pinned
        to the region base so SP-aware trimming keeps everything live.
        """
        assert self.heap_range is not None
        return IntervalContext(
            interval_index=self._interval_index,
            now=self.now,
            final_sp=self.heap_range.start,
            min_sp=self.heap_range.start,
            region=self.heap_range,
        )

    def _start_interval(self) -> None:
        spent = self.mechanism.on_interval_start(self._context())
        if self.heap_mechanism is not None:
            spent += self.heap_mechanism.on_interval_start(self._heap_context())
        self._charge_interval(spent)
        self._interval_min_sp = self.registers.stack_pointer
        self._interval_writes.clear()

    def _end_interval(self) -> None:
        spent = self.mechanism.on_interval_end(self._context())
        if self.heap_mechanism is not None:
            spent += self.heap_mechanism.on_interval_end(self._heap_context())
        self._charge_interval(spent)

        final_sp = self.registers.stack_pointer
        self.stats.intervals.append(
            IntervalRecord(
                index=self._interval_index,
                end_cycle=self.now,
                final_sp=final_sp,
                min_sp=self._interval_min_sp,
                stack_writes=len(self._interval_writes),
                stack_writes_beyond_final_sp=self._interval_writes.count_below(
                    final_sp
                ),
                checkpoint_cycles=spent,
            )
        )
        self._interval_index += 1

    def _charge_interval(self, cycles: int) -> None:
        if cycles:
            self.now += cycles
            self.stats.interval_cycles += cycles
            self.hierarchy.now = self.now
