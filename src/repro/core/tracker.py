"""The per-core Prosper dirty-tracker hardware (Sections III-B, III-D).

The tracker sits beside L1D.  For every demand store it compares the virtual
address against the stack range in the MSRs (the comparator circuit); stores
of interest (SOIs) have their covered granules recorded through the
coalescing lookup table into the DRAM dirty bitmap — *off the critical path*
of the store itself.  The only cost the application perceives is memory-
bandwidth interference from tracker-generated bitmap loads/stores, which the
engine charges as a small per-operation penalty.

The tracker also:

* maintains the lowest dirtied stack address of the interval, shared with
  the OS so bitmap inspection can be limited to the active stack region;
* implements the two-step quiescence protocol — the OS requests a flush,
  then polls the outstanding-operation counter before consuming the bitmap;
* supports save/restore of its architectural state on context switches
  (Section III-C), costing roughly the ~870 cycles the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import TrackerConfig
from repro.core.bitmap import WORD_BITS, DirtyBitmap
from repro.core.lookup_table import LookupTable, TableStats
from repro.core.msr import ControlBits, Msr, MsrBank
from repro.core.policies import AllocationPolicy


@dataclass
class TrackerState:
    """Architectural state saved/restored across context switches."""

    msrs: MsrBank
    table_entries: list[tuple[int, int]]
    min_dirty_address: int


class ProsperTracker:
    """Hardware dirty tracker for one logical CPU."""

    #: Cycles of bandwidth interference one tracker memory op imposes on the
    #: demand stream.  Tracker traffic is off the critical path; this models
    #: its residual footprint in the memory hierarchy.
    INTERFERENCE_CYCLES_PER_OP = 1

    #: Cycles to save or load the tracker MSR/table state on a context
    #: switch (four MSR writes plus the 16-entry table contents), before
    #: flush-drain waiting.  Calibrated so the measured save+restore
    #: overhead lands near the paper's ~870 cycles.
    STATE_SWAP_CYCLES = 400

    def __init__(
        self,
        config: TrackerConfig,
        policy: AllocationPolicy = AllocationPolicy.ACCUMULATE_AND_APPLY,
        seed: int = 0xC0FFEE,
    ) -> None:
        self.config = config
        self.policy = policy
        self.msrs = MsrBank(granularity=config.granularity_bytes)
        self.table = LookupTable(config, policy, seed)
        self.bitmap: DirtyBitmap | None = None
        self._min_dirty_address: int | None = None
        #: Memory ops issued in the current interval (for stats/energy).
        self.interval_memory_ops = 0
        #: Lookup-table accesses (reads+writes) for the energy model.
        self.table_reads = 0
        self.table_writes = 0

    # ------------------------------------------------------------------ #
    # OS-facing configuration (via MSRs)
    # ------------------------------------------------------------------ #

    def configure(self, bitmap: DirtyBitmap) -> None:
        """Program the tracker for a stack region described by *bitmap*.

        In hardware this is a series of WRMSRs; the bitmap object carries
        the stack range, granularity, and bitmap base address together.
        """
        self.msrs.write(Msr.STACK_START, bitmap.region.start)
        self.msrs.write(Msr.STACK_END, bitmap.region.end)
        self.msrs.write(Msr.GRANULARITY, bitmap.granularity)
        self.msrs.write(Msr.BITMAP_BASE, bitmap.base_address)
        self.msrs.write(Msr.CONTROL, int(ControlBits.ENABLE))
        self.bitmap = bitmap
        self._min_dirty_address = None
        self.interval_memory_ops = 0

    def disable(self) -> None:
        """Disarm tracking (stack no longer persistent, or tracker handed off)."""
        self.msrs.write(Msr.CONTROL, 0)

    # ------------------------------------------------------------------ #
    # Demand-store path
    # ------------------------------------------------------------------ #

    def observe_store(self, address: int, size: int = 8) -> int:
        """Inspect one demand store; returns interference cycles.

        The comparator filters SOIs; non-stack stores cost nothing.  For an
        SOI, every covered granule is recorded via the lookup table, and any
        bitmap loads/stores the table issues are charged as interference.
        """
        if not self.msrs.enabled or self.bitmap is None:
            return 0
        if size <= 0:
            return 0
        msrs = self.msrs
        if not (msrs.stack_start <= address and address + size <= msrs.stack_end):
            # Partial overlaps with the stack range are clamped; entirely
            # outside means not an SOI.
            if address >= msrs.stack_end or address + size <= msrs.stack_start:
                return 0
            lo = max(address, msrs.stack_start)
            hi = min(address + size, msrs.stack_end)
            address, size = lo, hi - lo

        min_dirty = self._min_dirty_address
        if min_dirty is None or address < min_dirty:
            self._min_dirty_address = address
            msrs.min_dirty_address = address

        bitmap = self.bitmap
        region_start = bitmap.region.start
        granularity = bitmap.granularity
        if region_start <= address and address + size <= bitmap.region.end:
            first = (address - region_start) // granularity
            last = (address + size - 1 - region_start) // granularity
        else:
            # Out-of-region addresses keep the historical diagnostics.
            first = bitmap.granule_of(address)
            last = bitmap.granule_of(address + size - 1)
        if first == last:
            # Common case: the store dirties a single granule.
            self.table_reads += 1  # parallel search
            self.table_writes += 1  # value update / allocation
            memory_ops = self.table.record(
                first // WORD_BITS, first % WORD_BITS, bitmap
            )
        else:
            memory_ops = 0
            for granule in range(first, last + 1):
                self.table_reads += 1  # parallel search
                self.table_writes += 1  # value update / allocation
                memory_ops += self.table.record(
                    granule // WORD_BITS, granule % WORD_BITS, bitmap
                )
        self.interval_memory_ops += memory_ops
        return memory_ops * self.INTERFERENCE_CYCLES_PER_OP

    def observe_store_batch(self, addresses: np.ndarray, sizes: np.ndarray) -> int:
        """Inspect a run of demand stores at once; returns interference cycles.

        Semantically identical to calling :meth:`observe_store` for each
        (address, size) pair in order — same stats, same bitmap contents,
        same lowest-dirty-address, same total interference — but the SOI
        filtering, clamping and granule expansion happen as array
        operations, and the lookup-table updates go through
        :meth:`LookupTable.record_batch`.  Callers must pass addresses whose
        clamped extents lie inside the configured bitmap region (true
        whenever the MSRs were programmed by :meth:`configure`).
        """
        if not self.msrs.enabled or self.bitmap is None or len(addresses) == 0:
            return 0
        msrs = self.msrs
        lo = np.maximum(addresses, msrs.stack_start)
        hi = np.minimum(addresses + sizes, msrs.stack_end)
        valid = hi > lo
        if not valid.all():
            lo = lo[valid]
            hi = hi[valid]
            if len(lo) == 0:
                return 0

        batch_min = int(lo.min())
        min_dirty = self._min_dirty_address
        if min_dirty is None or batch_min < min_dirty:
            self._min_dirty_address = batch_min
            msrs.min_dirty_address = batch_min

        bitmap = self.bitmap
        region_start = bitmap.region.start
        granularity = bitmap.granularity
        first = (lo - region_start) // granularity
        last = (hi - 1 - region_start) // granularity
        counts = last - first + 1
        total = int(counts.sum())
        self.table_reads += total  # parallel search per granule
        self.table_writes += total  # value update / allocation per granule
        if total == len(first):
            granules = first
        else:
            # Expand [first, last] spans, preserving per-store order and the
            # ascending granule order within each store.
            group_starts = np.repeat(np.cumsum(counts) - counts, counts)
            granules = np.repeat(first, counts) + (
                np.arange(total, dtype=np.int64) - group_starts
            )
        memory_ops = self.table.record_batch(
            granules // WORD_BITS, granules % WORD_BITS, bitmap
        )
        self.interval_memory_ops += memory_ops
        return memory_ops * self.INTERFERENCE_CYCLES_PER_OP

    # ------------------------------------------------------------------ #
    # Quiescence protocol (Section III-A two-step process)
    # ------------------------------------------------------------------ #

    def request_flush(self) -> None:
        """Step one: the OS sets the FLUSH control bit.

        The hardware begins evicting lookup-table entries; outstanding
        operation counters become non-zero until the drain completes.
        """
        if self.bitmap is None:
            return
        self.msrs.write(
            Msr.CONTROL, self.msrs.control | int(ControlBits.FLUSH)
        )
        # Model: the flush drains synchronously but the op count is exposed
        # through the STATUS MSR so the OS still performs its polling step.
        ops = self.table.flush(self.bitmap)
        self.interval_memory_ops += ops
        self.msrs.outstanding_ops = ops

    def poll_quiescent(self) -> bool:
        """Step two: the OS polls STATUS until all in-flight ops complete."""
        if not self.msrs.flush_requested:
            return True
        # All ops retired between the two steps in this model.
        self.msrs.outstanding_ops = 0
        self.msrs.clear_flush()
        return True

    @property
    def min_dirty_address(self) -> int | None:
        """Lowest stack address dirtied this interval (None: no SOIs yet)."""
        return self._min_dirty_address

    def begin_interval(self) -> None:
        """Reset per-interval tracking state (OS cleared the bitmap)."""
        self._min_dirty_address = None
        self.msrs.min_dirty_address = 0
        self.interval_memory_ops = 0

    # ------------------------------------------------------------------ #
    # Context-switch support (Section III-C)
    # ------------------------------------------------------------------ #

    def save_state(self) -> tuple[TrackerState, int]:
        """Flush + capture state for the outgoing context.

        Returns the saved state and the cycles the switch path spends
        (flush-induced memory ops plus the MSR/table save).
        """
        cycles = self.STATE_SWAP_CYCLES
        if self.bitmap is not None:
            self.request_flush()
            cycles += self.msrs.outstanding_ops * self.INTERFERENCE_CYCLES_PER_OP
            self.poll_quiescent()
        state = TrackerState(
            msrs=self.msrs.snapshot(),
            table_entries=self.table.entries_snapshot(),
            min_dirty_address=self._min_dirty_address or 0,
        )
        return state, cycles

    def restore_state(self, state: TrackerState, bitmap: DirtyBitmap | None) -> int:
        """Load the incoming context's tracker state; returns cycles spent."""
        self.msrs = state.msrs.snapshot()
        self.bitmap = bitmap
        self._min_dirty_address = state.min_dirty_address or None
        return self.STATE_SWAP_CYCLES

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> TableStats:
        return self.table.stats
