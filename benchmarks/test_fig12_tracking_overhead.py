"""Figure 12 — dirty-tracking overhead of the Prosper hardware.

Runs the SPEC CPU 2017 models, the graph workloads and Stream under the
Prosper tracker at 8/64/128-byte granularity (Setup-II, DRAM-only demand
path) and reports user-IPC speedup relative to no tracking.
Paper shape: less than 1 % average overhead, about 3 % worst case
(G500_sssp), roughly flat across granularities.
"""

from collections import defaultdict

from repro.analysis.report import render_table
from repro.experiments import overhead


def test_fig12_tracking_overhead(benchmark):
    cells = benchmark.pedantic(
        overhead.fig12_tracking_overhead,
        kwargs={"target_ops": 80_000},
        rounds=1,
        iterations=1,
    )
    table = defaultdict(dict)
    for c in cells:
        table[c.workload][c.granularity] = c.speedup
    grans = [8, 64, 128]
    print()
    print(
        render_table(
            "Figure 12: speedup with tracking vs no tracking (user IPC)",
            ["workload"] + [f"{g}B" for g in grans],
            [
                [w] + [f"{table[w][g]:.4f}" for g in grans]
                for w in sorted(table)
            ],
        )
    )
    overheads = [1.0 - s for row in table.values() for s in row.values()]
    mean_overhead = sum(overheads) / len(overheads)
    print(f"mean overhead: {mean_overhead * 100:.2f}%  "
          f"max overhead: {max(overheads) * 100:.2f}%")
    assert mean_overhead < 0.02  # paper: <1 % average
    assert max(overheads) < 0.08  # paper: ~3 % worst case
