"""Figure 4 — checkpoint copy size: page (4 KiB) vs 8-byte dirty tracking.

Post-processes each application trace at 10 ms intervals and compares the
data that would be copied under page-granularity vs byte-granularity dirty
tracking of the stack region.
Paper shape: large reductions (300x Gapbs_pr, 56x G500_sssp, 33x Ycsb_mem),
ordered gapbs > g500 > ycsb.
"""

from repro.analysis.report import format_bytes, render_table
from repro.experiments import motivation


def test_fig4_copy_size(benchmark):
    rows = benchmark.pedantic(
        motivation.fig4_copy_size,
        kwargs={"num_intervals": 50, "target_ops": 120_000},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            "Figure 4: mean copy size per 10ms interval, page vs 8-byte tracking",
            ["workload", "page (4KiB)", "8-byte", "reduction"],
            [
                [
                    r.workload,
                    format_bytes(r.page_bytes_per_interval),
                    format_bytes(r.byte_bytes_per_interval),
                    f"{r.reduction_factor:.1f}x",
                ]
                for r in rows
            ],
        )
    )
    by_name = {r.workload: r.reduction_factor for r in rows}
    assert by_name["gapbs_pr"] > by_name["g500_sssp"] > by_name["ycsb_mem"] > 1
    assert by_name["gapbs_pr"] > 20
