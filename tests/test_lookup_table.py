"""Tests for repro.core.lookup_table: coalescing, HWM/LWM, eviction."""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import TrackerConfig
from repro.core.bitmap import DirtyBitmap
from repro.core.bitops import popcount_int, popcount_u32
from repro.core.lookup_table import LookupTable, TableStats, popcount
from repro.core.policies import AllocationPolicy
from repro.memory.address import AddressRange

REGION = AddressRange(0, 1 << 20)


def make(entries=4, hwm=24, lwm=8, policy=AllocationPolicy.ACCUMULATE_AND_APPLY):
    cfg = TrackerConfig(
        lookup_table_entries=entries, high_water_mark=hwm, low_water_mark=lwm
    )
    return LookupTable(cfg, policy), DirtyBitmap(REGION, 8)


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0xFFFF_FFFF) == 32
        assert popcount(0b1010) == 2

    def test_wrapper_matches_lut_helper(self):
        for value in (0, 1, 0xFFFF, 0x1_0000, 0xDEAD_BEEF, (1 << 64) - 1):
            assert popcount(value) == popcount_int(value) == bin(value).count("1")

    def test_u32_array_helper(self):
        words = np.array([0, 1, 0xFFFF_FFFF, 0x8000_0001, 0xA5A5_A5A5], dtype=np.uint32)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount_u32(words).tolist() == expected


class TestCoalescing:
    def test_hit_coalesces_without_memory_ops(self):
        table, bm = make()
        ops = table.record(0, 0, bm)
        ops += table.record(0, 1, bm)
        ops += table.record(0, 2, bm)
        assert ops == 0  # accumulate-and-apply: no loads until write-out
        assert table.stats.hits == 2
        assert table.stats.misses == 1
        assert len(table) == 1

    def test_flush_applies_accumulated_bits(self):
        table, bm = make()
        table.record(0, 3, bm)
        table.record(0, 5, bm)
        ops = table.flush(bm)
        assert ops == 2  # one load + one store
        assert bm.load_word(0) == (1 << 3) | (1 << 5)
        assert len(table) == 0

    def test_flush_elides_store_when_bits_already_set(self):
        table, bm = make()
        bm.store_word(0, 1 << 4)
        table.record(0, 4, bm)
        ops = table.flush(bm)
        assert ops == 1  # load only; store elided
        assert table.stats.elided_stores == 1

    def test_repeated_same_bit_is_single_bit(self):
        table, bm = make()
        for _ in range(10):
            table.record(2, 7, bm)
        table.flush(bm)
        assert bm.load_word(2) == 1 << 7


class TestHighWaterMark:
    def test_hwm_triggers_writeout(self):
        table, bm = make(hwm=4)
        ops = 0
        for bit in range(4):
            ops += table.record(0, bit, bm)
        assert table.stats.hwm_writeouts == 1
        assert len(table) == 0  # entry freed after write-out
        assert popcount(bm.load_word(0)) == 4

    def test_below_hwm_no_writeout(self):
        table, bm = make(hwm=4)
        for bit in range(3):
            table.record(0, bit, bm)
        assert table.stats.hwm_writeouts == 0
        assert len(table) == 1


class TestEviction:
    def test_lwm_prefers_sparse_victims(self):
        table, bm = make(entries=2, hwm=32, lwm=8)
        # Entry for word 0: 5 bits (sparse); word 1: 7 bits (denser).
        for bit in range(5):
            table.record(0, bit, bm)
        for bit in range(7):
            table.record(1, bit, bm)
        # Table full; new word forces eviction of the sparsest (word 0).
        table.record(2, 0, bm)
        assert table.stats.lwm_evictions == 1
        assert popcount(bm.load_word(0)) == 5
        assert bm.load_word(1) == 0  # denser entry survived

    def test_random_eviction_when_no_lwm_candidates(self):
        table, bm = make(entries=2, hwm=32, lwm=2)
        for bit in range(10):
            table.record(0, bit, bm)
        for bit in range(10):
            table.record(1, bit, bm)
        table.record(2, 0, bm)
        assert table.stats.random_evictions == 1
        assert table.stats.lwm_evictions == 0

    def test_occupancy_never_exceeds_capacity(self):
        table, bm = make(entries=3, hwm=32, lwm=32)
        for word in range(50):
            table.record(word, word % 32, bm)
        assert len(table) <= 3


class TestLoadAndUpdatePolicy:
    def test_allocation_issues_load(self):
        table, bm = make(policy=AllocationPolicy.LOAD_AND_UPDATE)
        bm.store_word(0, 1 << 31)
        ops = table.record(0, 0, bm)
        assert ops == 1
        assert table.stats.bitmap_loads == 1

    def test_writeout_is_store_only(self):
        table, bm = make(policy=AllocationPolicy.LOAD_AND_UPDATE)
        bm.store_word(0, 1 << 31)
        table.record(0, 0, bm)
        ops = table.flush(bm)
        assert ops == 1  # store only: value already merged in the table
        assert bm.load_word(0) == (1 << 31) | 1

    def test_policy_properties(self):
        assert AllocationPolicy.ACCUMULATE_AND_APPLY.loads_on_writeout
        assert not AllocationPolicy.ACCUMULATE_AND_APPLY.loads_on_allocation
        assert AllocationPolicy.LOAD_AND_UPDATE.loads_on_allocation
        assert not AllocationPolicy.LOAD_AND_UPDATE.loads_on_writeout


def _full_state(table: LookupTable, bm: DirtyBitmap) -> dict:
    """Everything observable about a table + bitmap pair."""
    return {
        "stats": dataclasses.asdict(table.stats),
        "entries": sorted(table.entries_snapshot()),
        "occupancy": len(table),
        "words": bm.snapshot_words().tolist(),
    }


def _as_arrays(pairs):
    words = np.array([w for w, _ in pairs], dtype=np.int64)
    bits = np.array([b for _, b in pairs], dtype=np.int64)
    return words, bits


class TestRecordBatchCounters:
    """Exact counter values through the columnar batch path — both the
    array fast path and the order-exact sequential fallbacks."""

    def test_fast_path_counts_hits_and_misses(self):
        table, bm = make(entries=4, hwm=24)
        words, bits = _as_arrays([(0, 0), (1, 3), (0, 1), (2, 9), (1, 3)])
        ops = table.record_batch(words, bits, bm)
        assert ops == 0  # accumulate-and-apply, nothing written out
        s = table.stats
        assert (s.misses, s.hits) == (3, 2)
        assert s.hwm_writeouts == s.lwm_evictions == s.random_evictions == 0
        assert len(table) == 3
        assert bm.dirty_granule_count() == 0  # still coalescing

    def test_fast_path_load_and_update_charges_allocation_loads(self):
        table, bm = make(entries=4, policy=AllocationPolicy.LOAD_AND_UPDATE)
        bm.store_word(1, 1 << 30)
        words, bits = _as_arrays([(0, 0), (1, 2), (1, 4)])
        ops = table.record_batch(words, bits, bm)
        assert ops == 2  # one load per newly allocated word
        assert table.stats.bitmap_loads == 2
        # The pre-existing bit was merged at allocation time.
        assert sorted(table.entries_snapshot()) == [
            (0, 1),
            (1, (1 << 30) | (1 << 2) | (1 << 4)),
        ]

    def test_hwm_crossing_falls_back_with_exact_counter(self):
        table, bm = make(entries=4, hwm=4)
        words, bits = _as_arrays([(0, b) for b in range(5)])
        table.record_batch(words, bits, bm)
        s = table.stats
        # Sequential replay: the 4th bit crosses HWM and writes out, the
        # 5th bit re-allocates the freed entry.
        assert s.hwm_writeouts == 1
        assert (s.misses, s.hits) == (2, 3)
        assert popcount(bm.load_word(0)) == 4
        assert sorted(table.entries_snapshot()) == [(0, 1 << 4)]

    def test_overflow_falls_back_to_lwm_eviction(self):
        table, bm = make(entries=2, hwm=32, lwm=8)
        pairs = [(0, b) for b in range(5)] + [(1, b) for b in range(7)] + [(2, 0)]
        table.record_batch(*_as_arrays(pairs), bm)
        s = table.stats
        assert s.lwm_evictions == 1
        assert s.random_evictions == 0
        assert popcount(bm.load_word(0)) == 5  # sparsest entry was evicted
        assert bm.load_word(1) == 0

    def test_overflow_falls_back_to_random_eviction(self):
        table, bm = make(entries=2, hwm=32, lwm=2)
        pairs = (
            [(0, b) for b in range(10)]
            + [(1, b) for b in range(10)]
            + [(2, 0)]
        )
        table.record_batch(*_as_arrays(pairs), bm)
        s = table.stats
        assert s.random_evictions == 1
        assert s.lwm_evictions == 0

    def test_last_use_ordering_matches_sequential(self):
        # After a batch, LWM eviction must pick the same stale victim a
        # sequential history would — last_use is per final touch in the run.
        pairs = [(0, 0), (1, 0), (0, 1)]  # word 1 now staler than word 0
        table, bm = make(entries=2, hwm=32, lwm=8)
        table.record_batch(*_as_arrays(pairs), bm)
        table.record(2, 0, bm)  # forces an eviction: both entries are sparse
        assert table.stats.lwm_evictions == 1
        assert popcount(bm.load_word(1)) == 1  # word 1 (least recent) went
        assert bm.load_word(0) == 0

    def test_empty_batch_is_noop(self):
        table, bm = make()
        empty = np.empty(0, dtype=np.int64)
        assert table.record_batch(empty, empty, bm) == 0
        assert dataclasses.asdict(table.stats) == dataclasses.asdict(TableStats())


class TestRecordBatchDifferential:
    """record_batch must be indistinguishable from per-op record — stats,
    entries, memory-op counts, and bitmap words — under table pressure."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 31)),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from(list(AllocationPolicy)),
    )
    def test_batch_matches_sequential(self, records, policy):
        seq_table, seq_bm = make(entries=4, hwm=6, lwm=3, policy=policy)
        seq_ops = 0
        for word, bit in records:
            seq_ops += seq_table.record(word, bit, seq_bm)

        bat_table, bat_bm = make(entries=4, hwm=6, lwm=3, policy=policy)
        bat_ops = bat_table.record_batch(*_as_arrays(records), bat_bm)

        assert bat_ops == seq_ops
        assert _full_state(bat_table, bat_bm) == _full_state(seq_table, seq_bm)
        assert bat_table.flush(bat_bm) == seq_table.flush(seq_bm)
        assert _full_state(bat_table, bat_bm) == _full_state(seq_table, seq_bm)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 31)),
            min_size=1,
            max_size=120,
        ),
        st.integers(1, 17),
        st.sampled_from(list(AllocationPolicy)),
    )
    def test_chunked_batches_match_one_batch(self, records, chunk, policy):
        # Splitting a run across several record_batch calls (as the engine
        # does at interval boundaries) must not change anything either.
        whole_table, whole_bm = make(entries=4, hwm=6, lwm=3, policy=policy)
        whole_ops = whole_table.record_batch(*_as_arrays(records), whole_bm)

        split_table, split_bm = make(entries=4, hwm=6, lwm=3, policy=policy)
        split_ops = 0
        for start in range(0, len(records), chunk):
            piece = records[start : start + chunk]
            split_ops += split_table.record_batch(*_as_arrays(piece), split_bm)

        assert split_ops == whole_ops
        assert _full_state(split_table, split_bm) == _full_state(
            whole_table, whole_bm
        )


class TestInvariants:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 31)),
            min_size=1,
            max_size=400,
        ),
        st.sampled_from(list(AllocationPolicy)),
    )
    def test_flush_leaves_bitmap_equal_to_reference(self, records, policy):
        """After a flush, the bitmap holds exactly the union of recorded bits
        regardless of HWM/LWM pressure or the allocation policy."""
        table, bm = make(entries=4, hwm=6, lwm=3, policy=policy)
        reference: dict[int, int] = {}
        for word, bit in records:
            table.record(word, bit, bm)
            reference[word] = reference.get(word, 0) | (1 << bit)
        table.flush(bm)
        for word, value in reference.items():
            assert bm.load_word(word) == value

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 31)), max_size=300
        )
    )
    def test_stats_accounting_consistent(self, records):
        table, bm = make(entries=4)
        for word, bit in records:
            table.record(word, bit, bm)
        table.flush(bm)
        s = table.stats
        assert s.hits + s.misses == len(records)
        writeouts = (
            s.hwm_writeouts + s.lwm_evictions + s.random_evictions + s.flush_writeouts
        )
        # Accumulate-and-apply: every write-out issues exactly one load.
        assert s.bitmap_loads == writeouts
        assert s.bitmap_stores + s.elided_stores == writeouts
