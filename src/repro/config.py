"""System configurations for the two experimental setups of the paper.

The paper (Table II) evaluates on gem5 with two configurations:

* **Setup-I** — hybrid memory (3 GB DRAM + 2 GB NVM/PCM), used for the
  end-to-end checkpoint-performance experiments (Figures 8-11 and the
  context-switch study) with a GemOS-like kernel.
* **Setup-II** — DRAM-only 32 GB, used for the dirty-tracking-overhead
  experiments (Figures 12-13) with a modified Linux kernel.

Both setups share the core and cache parameters.  This module encodes those
parameters as frozen dataclasses so every component of the simulator draws
its timing from a single place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tlb uses config)
    from repro.memory.tlb import TlbConfig

#: CPU clock frequency used in both setups (Table II).
CPU_FREQ_HZ = 3_000_000_000

#: Cache line size in bytes for every level of the hierarchy (Table II).
CACHE_LINE_BYTES = 64

#: OS page size; the paper's page-granularity baselines track at 4 KiB.
PAGE_BYTES = 4096


def ns_to_cycles(ns: float, freq_hz: int = CPU_FREQ_HZ) -> int:
    """Convert a duration in nanoseconds to (rounded) CPU cycles."""
    return max(0, round(ns * freq_hz / 1e9))


def cycles_to_ns(cycles: float, freq_hz: int = CPU_FREQ_HZ) -> float:
    """Convert CPU cycles to nanoseconds."""
    return cycles * 1e9 / freq_hz


def ms_to_cycles(ms: float, freq_hz: int = CPU_FREQ_HZ) -> int:
    """Convert a duration in milliseconds to CPU cycles."""
    return round(ms * freq_hz / 1e3)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    latency_cycles: int
    mshrs: int
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class DramConfig:
    """DDR4-2400-like DRAM timing (simplified closed-page model)."""

    read_latency_ns: float = 60.0
    write_latency_ns: float = 60.0
    #: Peak per-channel bandwidth used to charge bulk copies (GB/s).
    bandwidth_gbps: float = 19.2

    @property
    def read_latency_cycles(self) -> int:
        return ns_to_cycles(self.read_latency_ns)

    @property
    def write_latency_cycles(self) -> int:
        return ns_to_cycles(self.write_latency_ns)


@dataclass(frozen=True)
class NvmConfig:
    """PCM-like NVM timing.

    Read/write latencies follow the PCM parameters the paper adopts from the
    literature (reads a few times slower than DRAM, writes substantially
    slower still).  The device has separate read/write buffers whose
    occupancy creates back-pressure on bursts (Table II: 64 read entries /
    48 write entries).
    """

    read_latency_ns: float = 150.0
    write_latency_ns: float = 450.0
    read_buffer_entries: int = 64
    write_buffer_entries: int = 48
    bandwidth_gbps: float = 9.6
    #: Independent write banks draining the write buffer in parallel; the
    #: sustained write throughput is banks/write_latency lines per cycle.
    write_banks: int = 4

    @property
    def read_latency_cycles(self) -> int:
        return ns_to_cycles(self.read_latency_ns)

    @property
    def write_latency_cycles(self) -> int:
        return ns_to_cycles(self.write_latency_ns)


@dataclass(frozen=True)
class TrackerConfig:
    """Prosper dirty-tracker hardware parameters (Section III-D defaults)."""

    lookup_table_entries: int = 16
    high_water_mark: int = 24
    low_water_mark: int = 8
    granularity_bytes: int = 8
    #: Bits in the bitmap value of one lookup-table entry (Figure 7).
    bitmap_word_bits: int = 32

    def __post_init__(self) -> None:
        if self.granularity_bytes % 8 != 0 or self.granularity_bytes <= 0:
            raise ValueError(
                "tracking granularity must be a positive multiple of 8 bytes, "
                f"got {self.granularity_bytes}"
            )
        if not 0 <= self.low_water_mark <= self.bitmap_word_bits:
            raise ValueError(f"LWM out of range: {self.low_water_mark}")
        if not 0 < self.high_water_mark <= self.bitmap_word_bits:
            raise ValueError(f"HWM out of range: {self.high_water_mark}")
        if self.lookup_table_entries <= 0:
            raise ValueError("lookup table needs at least one entry")

    def with_granularity(self, granularity_bytes: int) -> "TrackerConfig":
        """Return a copy of this config with a different tracking granularity."""
        return replace(self, granularity_bytes=granularity_bytes)


@dataclass(frozen=True)
class SystemConfig:
    """A full machine configuration (one of the paper's two setups).

    ``tlb`` optionally enables the TLB/page-table-walker timing model
    (:mod:`repro.memory.tlb`); the calibrated paper experiments run without
    it since normalized results divide the translation costs out.
    """

    name: str
    freq_hz: int = CPU_FREQ_HZ
    tlb: "TlbConfig | None" = None
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 3, 16)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 16, 12, 32)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 16, 20, 32)
    )
    dram: DramConfig = field(default_factory=DramConfig)
    nvm: NvmConfig | None = field(default_factory=NvmConfig)
    dram_capacity_bytes: int = 3 * 1024**3
    nvm_capacity_bytes: int = 2 * 1024**3
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    #: Execution-engine implementation: "batched" (vectorized fast path,
    #: the default) or "scalar" (the per-op reference).  Both produce
    #: identical results; the ``REPRO_ENGINE`` environment variable
    #: overrides this at run time.  See docs/PERFORMANCE.md.
    engine: str = "batched"

    @property
    def has_nvm(self) -> bool:
        return self.nvm is not None


def setup_i() -> SystemConfig:
    """Setup-I: hybrid 3 GB DRAM + 2 GB PCM NVM (checkpoint performance)."""
    return SystemConfig(name="setup-I")


def setup_ii() -> SystemConfig:
    """Setup-II: 32 GB DRAM-only (dirty-tracking overhead studies).

    NVM timing is still instantiated so checkpoint copies can be charged;
    the paper's Setup-II machine stores checkpoints through the same
    interface.
    """
    return SystemConfig(
        name="setup-II",
        dram_capacity_bytes=32 * 1024**3,
        nvm_capacity_bytes=2 * 1024**3,
    )
