"""Crash-schedule fuzzer: randomized crashes judged by a golden image.

The sweep (:mod:`repro.faults.sweep`) enumerates the *named* crash points
of the kernel checkpoint pipeline under the neat everything-landed model.
This module generalizes both axes at once:

* **when** power fails — at an arbitrary *cycle* offset mid-interval
  (:meth:`FaultInjector.arm_cycle`) or at any named protocol point, chosen
  per schedule from a seeded RNG;
* **what** survives — a :class:`~repro.faults.order.PersistPlan` sampled
  from the persist-order oracle decides which writes still pending behind
  the last barrier actually landed, with an optional torn tail.

Every schedule is verified against a **golden image**: the execution
engine's persistence mechanism is wrapped in a recorder that assigns each
store a unique value into a DRAM :class:`~repro.memory.image.ByteImage`
and snapshots that image at every interval boundary.  After the crash the
DRAM image is discarded (power loss), recovery runs, and the durable NVM
image must equal the snapshot of the checkpoint recovery claims to have
resumed from — word for word, with no ghost words from a newer epoch.  A
violation is shrunk to a minimal failing persist plan and reported with
the exact command line that reproduces it.

Mechanism coverage:

* ``prosper`` and ``dirtybit`` stage real checksummed contents through
  their two-step protocols — the full golden-image oracle applies;
* ``ssp`` / ``flush`` / ``undo`` / ``redo`` persist in place with no
  staged protocol; for them the fuzzer checks the weaker bookkeeping
  oracle (interval-commit records are exactly-once and recovery resumes
  from the newest durable one).

Both engines are covered: arming a fault injector (or attaching the order
oracle) forces :class:`~repro.cpu.engine_fast.BatchedExecutionEngine`
through the exact scalar path, so a batched schedule is bit-identical to
its scalar twin by construction — which is itself asserted by the tier-1
tests.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.cpu.engine import ExecutionEngine
from repro.cpu.engine_fast import BatchedExecutionEngine
from repro.cpu.ops import Op, TraceBuilder, array_to_ops
from repro.faults.injector import CrashInjected, FaultInjector, is_cycle_point
from repro.faults.order import CrashOutcome, PersistOrderOracle, PersistPlan
from repro.memory.address import AddressRange
from repro.memory.image import WORD_BYTES, ByteImage
from repro.persistence.base import IntervalContext, PersistenceMechanism
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.logging import (
    FlushPersistence,
    RedoLogPersistence,
    UndoLogPersistence,
)
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.ssp import SspPersistence

#: Mechanisms with a staged-content checkpoint protocol: the full
#: golden-image oracle (content equality + ghost-word detection) applies.
CONTENT_MECHANISMS = ("prosper", "dirtybit")
#: In-place mechanisms verified by the bookkeeping oracle only.
INTERVAL_MECHANISMS = ("ssp", "flush", "undo", "redo")
MECHANISMS = CONTENT_MECHANISMS + INTERVAL_MECHANISMS
ENGINES = ("scalar", "batched")

#: The workload keeps every store inside a window at the top of the stack
#: while the SP (pushed below it by one large entry frame) wiggles
#: underneath — so no store is ever clipped by SP awareness or popped,
#: and the golden image covers the whole window at every snapshot.
WINDOW_BYTES = 16 * 1024
ENTRY_FRAME_BYTES = WINDOW_BYTES + 2048

_STACK_RANGE = AddressRange(0x7000_0000, 0x7010_0000)


def build_trace(seed: int, ops: int = 1200) -> list[Op]:
    """Deterministic fuzz workload: window stores/loads, CALL/RET wiggle,
    compute gaps.  Same (seed, ops) -> same trace, on any platform."""
    rng = random.Random(f"fuzz-trace:{seed}")
    tb = TraceBuilder()
    window_base = _STACK_RANGE.end - WINDOW_BYTES
    window_words = WINDOW_BYTES // WORD_BYTES
    frames: list[int] = []
    tb.call(ENTRY_FRAME_BYTES)
    for _ in range(max(0, ops - 1)):
        r = rng.random()
        if r < 0.45:
            tb.write(window_base + WORD_BYTES * rng.randrange(window_words))
        elif r < 0.60:
            tb.read(window_base + WORD_BYTES * rng.randrange(window_words))
        elif r < 0.72 and len(frames) < 8:
            frame = rng.choice((64, 128, 256))
            frames.append(frame)
            tb.call(frame)
        elif r < 0.84 and frames:
            tb.ret(frames.pop())
        else:
            tb.compute(rng.randrange(1, 30))
    return array_to_ops(tb.to_array())


# ---------------------------------------------------------------------- #
# Golden-image recorder
# ---------------------------------------------------------------------- #


@dataclass
class IntervalSnapshot:
    """The golden image at one interval boundary: what a checkpoint of
    that interval must reproduce after recovery."""

    image: ByteImage
    final_sp: int


class RecordingMechanism(PersistenceMechanism):
    """Transparent wrapper that maintains the golden image.

    Every store is assigned the next value of a monotonic counter and
    written into the shared DRAM image *before* the inner mechanism's hook
    runs; every interval boundary snapshots the image (before the inner
    checkpoint reads it, which sees identical contents — no stores happen
    in between).  Batching is disabled so store order and values are
    exact; the fuzzer always runs the scalar path anyway.
    """

    def __init__(self, inner: PersistenceMechanism, dram: ByteImage) -> None:
        super().__init__()
        self.inner = inner
        self.dram = dram
        self.name = inner.name
        self.region_in_nvm = inner.region_in_nvm
        self.supports_batching = False
        self.snapshots: list[IntervalSnapshot] = []
        self._counter = 0

    def attach(self, engine, region: AddressRange) -> None:
        super().attach(engine, region)
        self.inner.attach(engine, region)

    def on_load(self, address: int, size: int, now: int) -> int:
        return self.inner.on_load(address, size, now)

    def on_store(self, address: int, size: int, now: int) -> int:
        self._counter += 1
        self.dram.write(address, self._counter)
        return self.inner.on_store(address, size, now)

    def on_interval_start(self, ctx: IntervalContext) -> int:
        return self.inner.on_interval_start(ctx)

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.snapshots.append(IntervalSnapshot(self.dram.snapshot(), ctx.final_sp))
        return self.inner.on_interval_end(ctx)

    def persisted_state(self) -> dict:
        return self.inner.persisted_state()


class IntervalCommitRecorder(RecordingMechanism):
    """Recorder for in-place mechanisms with no staged protocol of their
    own: models "interval k is durable" as one commit record per interval,
    registered with the persist-order oracle *after* the inner mechanism's
    end-of-interval barrier — so it stays pending (losable) until the next
    interval's barrier retires it, exactly like a commit marker."""

    def __init__(
        self,
        inner: PersistenceMechanism,
        dram: ByteImage,
        oracle: PersistOrderOracle,
    ) -> None:
        super().__init__(inner, dram)
        self.oracle = oracle
        self.commits: list[int] = []

    def on_interval_end(self, ctx: IntervalContext) -> int:
        cycles = super().on_interval_end(ctx)
        index = len(self.snapshots) - 1
        self.commits.append(index)
        self.oracle.record(
            f"interval[{index}].commit",
            undo=self._lose_commit(index),
            size=8,
        )
        return cycles

    def _lose_commit(self, index: int):
        def undo() -> None:
            if index in self.commits:
                self.commits.remove(index)

        return undo

    def recover(self) -> int | None:
        """Newest interval whose commit record survived."""
        return self.commits[-1] if self.commits else None


# ---------------------------------------------------------------------- #
# Scenario assembly
# ---------------------------------------------------------------------- #


@dataclass
class _FuzzSetup:
    """One fully wired machine, ready to run a schedule."""

    mechanism: str
    engine_name: str
    engine: ExecutionEngine
    injector: FaultInjector
    oracle: PersistOrderOracle
    recorder: RecordingMechanism
    inner: PersistenceMechanism
    dram: ByteImage
    durable: ByteImage | None  # persistent NVM contents (content mechs)

    def recover(self) -> int | None:
        if self.mechanism == "prosper":
            return self.inner.checkpoint_engine.recover_staged()
        if self.mechanism == "dirtybit":
            return self.inner.recover_staged()
        return self.recorder.recover()

    def staged_checkpoint(self):
        if self.mechanism == "prosper":
            return self.inner.checkpoint_engine.staged
        if self.mechanism == "dirtybit":
            return self.inner.staged
        return None


def build_setup(
    mechanism: str, engine_name: str, weaken: bool = False
) -> _FuzzSetup:
    """Wire one (mechanism, engine) machine with recorder, injector and
    persist-order oracle attached.  *weaken* enables the test-only
    trust-completeness recovery mutant (prosper only)."""
    if mechanism not in MECHANISMS:
        raise ValueError(f"unknown mechanism {mechanism!r}")
    if engine_name not in ENGINES:
        raise ValueError(f"unknown engine {engine_name!r}")
    if weaken and mechanism != "prosper":
        raise ValueError("the weakened recovery mutant is prosper-only")

    dram = ByteImage()
    durable: ByteImage | None = None
    oracle = PersistOrderOracle()
    if mechanism in CONTENT_MECHANISMS:
        durable = ByteImage()

        def reader(run):
            return dram.words_in_range(AddressRange(run.start, run.end))

        def writer(staged_run):
            durable.replace_range(
                AddressRange(staged_run.run.start, staged_run.run.end),
                staged_run.payload,
            )

        if mechanism == "prosper":
            inner: PersistenceMechanism = ProsperPersistence(
                content_reader=reader, content_writer=writer
            )
        else:
            inner = DirtyBitPersistence(
                content_reader=reader, content_writer=writer
            )
        recorder = RecordingMechanism(inner, dram)
    else:
        inner = {
            "ssp": SspPersistence,
            "flush": FlushPersistence,
            "undo": UndoLogPersistence,
            "redo": RedoLogPersistence,
        }[mechanism]()
        recorder = IntervalCommitRecorder(inner, dram, oracle)

    injector = FaultInjector()
    engine_cls = ExecutionEngine if engine_name == "scalar" else BatchedExecutionEngine
    engine = engine_cls(
        stack_range=_STACK_RANGE, mechanism=recorder, fault_injector=injector
    )
    nvm = engine.hierarchy.nvm
    if nvm is None:
        raise RuntimeError("fuzzing requires a machine with an NVM device")
    nvm.order_oracle = oracle
    if weaken:
        inner.checkpoint_engine.unsafe_trust_completeness = True
    return _FuzzSetup(
        mechanism, engine_name, engine, injector, oracle, recorder, inner,
        dram, durable,
    )


# ---------------------------------------------------------------------- #
# Schedules
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class CrashSpec:
    """Where one schedule loses power: a cycle deadline or the N-th
    occurrence of a named protocol point."""

    kind: str  # "cycle" | "point"
    cycle: int = 0
    point: str = ""
    occurrence: int = 0

    def to_dict(self) -> dict:
        if self.kind == "cycle":
            return {"kind": "cycle", "cycle": self.cycle}
        return {"kind": "point", "point": self.point, "occurrence": self.occurrence}

    @classmethod
    def from_dict(cls, data: dict) -> "CrashSpec":
        if data["kind"] == "cycle":
            return cls("cycle", cycle=data["cycle"])
        return cls("point", point=data["point"], occurrence=data.get("occurrence", 0))


@dataclass
class ScheduleOutcome:
    """Everything one schedule did and whether it satisfied the oracle."""

    index: int
    mechanism: str
    engine: str
    spec: CrashSpec
    crashed: bool
    crash_point: str | None
    plan: PersistPlan | None
    applied: CrashOutcome | None
    snapshots: int
    resumed: int | None
    expected: tuple
    ok: bool
    detail: str

    @property
    def classification(self) -> str:
        if not self.crashed:
            return "no_crash"
        if not self.ok:
            return "violation"
        if self.resumed is None:
            return "fresh_start"
        if self.resumed == self.snapshots - 1:
            return "rolled_forward"
        return "previous"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "mechanism": self.mechanism,
            "engine": self.engine,
            "crash": self.spec.to_dict(),
            "crashed": self.crashed,
            "crash_point": self.crash_point,
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "applied": self.applied.to_dict() if self.applied is not None else None,
            "snapshots": self.snapshots,
            "resumed": self.resumed,
            "expected": list(self.expected),
            "classification": self.classification,
            "ok": self.ok,
            "detail": self.detail,
        }


def _legal_indices(snapshots: int, *candidates: int) -> tuple:
    """Map candidate checkpoint indices to legal resume values; indices
    below zero mean "nothing committed yet" and collapse to None."""
    legal = []
    for candidate in candidates:
        value = candidate if candidate >= 0 else None
        if value not in legal:
            legal.append(value)
    return tuple(legal)


def run_schedule(
    mechanism: str,
    engine_name: str,
    trace: list[Op],
    interval_ops: int,
    spec: CrashSpec,
    index: int = 0,
    plan_rng: random.Random | None = None,
    forced_plan: PersistPlan | None = None,
    weaken: bool = False,
) -> ScheduleOutcome:
    """Run one crash schedule end-to-end: execute, crash, resolve the
    persist plan, recover, verify against the golden image."""
    setup = build_setup(mechanism, engine_name, weaken=weaken)
    if spec.kind == "cycle":
        setup.injector.arm_cycle(spec.cycle)
    else:
        setup.injector.arm(spec.point, spec.occurrence)

    crash: CrashInjected | None = None
    try:
        setup.engine.run(trace, interval_ops=interval_ops)
    except CrashInjected as exc:
        crash = exc

    snapshots = len(setup.recorder.snapshots)
    if crash is None:
        return ScheduleOutcome(
            index, mechanism, engine_name, spec,
            crashed=False, crash_point=None, plan=None, applied=None,
            snapshots=snapshots, resumed=None, expected=(),
            ok=True, detail="crash never fired (deadline past end of trace)",
        )

    # Power fails now: resolve which pending writes landed, drop all
    # volatile state, then recover from what is durably left.
    if forced_plan is not None:
        plan = forced_plan
    else:
        plan = setup.oracle.sample_plan(plan_rng or random.Random(0))
    applied = setup.oracle.apply_plan(plan)
    setup.injector.disarm()
    setup.dram.clear()
    resumed = setup.recover()

    ok, expected, detail = _verify(setup, crash, resumed, snapshots)
    return ScheduleOutcome(
        index, mechanism, engine_name, spec,
        crashed=True, crash_point=crash.point, plan=plan, applied=applied,
        snapshots=snapshots, resumed=resumed, expected=expected,
        ok=ok, detail=detail,
    )


def _verify(
    setup: _FuzzSetup,
    crash: CrashInjected,
    resumed: int | None,
    snapshots: int,
) -> tuple[bool, tuple, str]:
    """Judge one recovered machine.  Returns (ok, legal resumes, detail)."""
    content = setup.mechanism in CONTENT_MECHANISMS
    mid_interval = is_cycle_point(crash.point)

    # Legality of the resume index.  The recorder snapshots *before* the
    # inner checkpoint runs, so during checkpoint S-1's pipeline there are
    # S snapshots: a named-point crash may resolve to S-1 (staging rolled
    # forward) or S-2 (staging discarded).  A mid-interval crash over a
    # staged protocol always resolves to S-1 — a dropped commit marker is
    # masked by replaying the durable staging buffer.  Interval-commit
    # mechanisms have no replay: their newest commit record stays
    # droppable until the next barrier, so S-2 stays legal mid-interval.
    if content and mid_interval:
        expected = _legal_indices(snapshots, snapshots - 1)
    else:
        expected = _legal_indices(snapshots, snapshots - 1, snapshots - 2)

    problems: list[str] = []
    if resumed not in expected:
        problems.append(
            f"resumed from {resumed}, legal: {list(expected)}"
        )

    if content:
        problems.extend(_verify_content(setup, resumed))
        staged = setup.staged_checkpoint()
        if (
            staged is not None
            and staged.committed
            and staged.interval_index != resumed
        ):
            problems.append(
                f"committed staging buffer says interval "
                f"{staged.interval_index}, recovery says {resumed}"
            )
    else:
        commits = setup.recorder.commits
        if any(b <= a for a, b in zip(commits, commits[1:])):
            problems.append(f"commit records not strictly increasing: {commits}")
        if commits and resumed != commits[-1]:
            problems.append(
                f"resumed {resumed} but newest durable commit is {commits[-1]}"
            )

    if problems:
        return False, expected, "; ".join(problems)
    return True, expected, "recovered state matches the golden image"


def _verify_content(setup: _FuzzSetup, resumed: int | None) -> list[str]:
    """Golden-image comparison: the durable NVM contents must equal the
    snapshot of the recovered checkpoint — no lost words, no ghosts."""
    durable = setup.durable
    assert durable is not None
    if resumed is None:
        stray = sum(1 for _ in durable.iter_words())
        if stray:
            return [
                f"no checkpoint committed but durable image holds {stray} words"
            ]
        return []

    snap = setup.recorder.snapshots[resumed]
    problems: list[str] = []
    golden = dict(snap.image.iter_words())
    for address, value in sorted(golden.items()):
        if address < snap.final_sp:
            continue  # dead frames: legitimately dropped by SP awareness
        got = durable.read(address, -1)
        if got != value:
            problems.append(
                f"word {address:#x}: durable {got} != checkpointed {value}"
            )
            break
    for address, value in sorted(durable.iter_words()):
        if address >= snap.final_sp and address not in golden:
            problems.append(
                f"ghost word {address:#x}={value} in durable image "
                f"(epoch blending)"
            )
            break
    return problems


# ---------------------------------------------------------------------- #
# Shrinking
# ---------------------------------------------------------------------- #


def shrink_plan(
    mechanism: str,
    engine_name: str,
    trace: list[Op],
    interval_ops: int,
    spec: CrashSpec,
    plan: PersistPlan,
    weaken: bool = False,
) -> PersistPlan:
    """Greedy ddmin-style reduction of a failing persist plan: drop the
    torn tail, then each dropped write, keeping only what is needed for
    the schedule to still violate the oracle.  Every candidate replays the
    full schedule deterministically with the candidate plan forced."""

    def still_fails(candidate: PersistPlan) -> bool:
        outcome = run_schedule(
            mechanism, engine_name, trace, interval_ops, spec,
            forced_plan=candidate, weaken=weaken,
        )
        return outcome.crashed and not outcome.ok

    current = plan
    changed = True
    while changed:
        changed = False
        if current.torn is not None:
            candidate = PersistPlan(current.dropped, None)
            if still_fails(candidate):
                current = candidate
                changed = True
                continue
        for label in sorted(current.dropped):
            candidate = PersistPlan(current.dropped - {label}, current.torn)
            if still_fails(candidate):
                current = candidate
                changed = True
                break
    return current


# ---------------------------------------------------------------------- #
# Campaigns
# ---------------------------------------------------------------------- #


@dataclass
class FuzzConfig:
    """One fuzzing campaign: *budget* schedules split evenly across the
    (mechanism, engine) grid, all derived from *seed*."""

    seed: int = 0
    budget: int = 256
    mechanisms: tuple[str, ...] = CONTENT_MECHANISMS
    engines: tuple[str, ...] = ENGINES
    ops: int = 1200
    intervals: int = 4
    weaken: bool = False  # test-only recovery mutant (prosper)
    shrink: bool = True
    only_schedule: int | None = None  # replay a single schedule index


def _probe(
    mechanism: str, engine_name: str, trace: list[Op], interval_ops: int
) -> tuple[int, list[str]]:
    """Dry run with the injector attached but unarmed: yields the total
    cycle count (the cycle-crash sample space) and every named point that
    fired, in order (the point-crash sample space)."""
    setup = build_setup(mechanism, engine_name)
    setup.engine.run(trace, interval_ops=interval_ops)
    return setup.engine.now, list(setup.injector.fired)


def _point_family(point: str) -> str:
    """Protocol-step family of a named point (``stage_run_copy[17]`` ->
    ``stage_run_copy``)."""
    return point.split("[", 1)[0]


def _sample_spec(
    rng: random.Random, total_cycles: int, fired: list[str]
) -> CrashSpec:
    """Pick where this schedule crashes: 50/50 between an arbitrary cycle
    offset and a named protocol point (when the mechanism has any).

    Point crashes sample the protocol-step *family* uniformly first, then
    an occurrence within it — otherwise the many ``stage_run_copy[i]``
    firings would drown out the rare steps (``stage_complete``,
    ``persist_barrier``) where the most interesting pending sets live.
    """
    if fired and rng.random() < 0.5:
        families = sorted({_point_family(p) for p in fired})
        family = rng.choice(families)
        members = [i for i, p in enumerate(fired) if _point_family(p) == family]
        pick = rng.choice(members)
        point = fired[pick]
        occurrence = fired[:pick].count(point)
        return CrashSpec("point", point=point, occurrence=occurrence)
    return CrashSpec("cycle", cycle=rng.randint(1, max(1, total_cycles)))


def _schedule_rng(config: FuzzConfig, mechanism: str, engine: str, index: int):
    return random.Random(f"{config.seed}:{mechanism}:{engine}:{index}")


def _plan_rng(config: FuzzConfig, mechanism: str, engine: str, index: int):
    return random.Random(f"{config.seed}:{mechanism}:{engine}:{index}:plan")


def repro_command(config: FuzzConfig, mechanism: str, engine: str, index: int) -> str:
    """Exact CLI line that replays one schedule (see docs/FAULTS.md)."""
    line = (
        f"repro faults fuzz --seed {config.seed} --mechanism {mechanism} "
        f"--engine {engine} --ops {config.ops} --intervals {config.intervals} "
        f"--schedule {index}"
    )
    if config.weaken:
        line += " --weaken"
    return line


def run_campaign(config: FuzzConfig) -> dict:
    """Run the full campaign; returns the JSON-ready report."""
    for mechanism in config.mechanisms:
        if mechanism not in MECHANISMS:
            raise ValueError(f"unknown mechanism {mechanism!r}")
    for engine in config.engines:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
    if config.budget <= 0:
        raise ValueError("budget must be positive")
    if config.intervals <= 0:
        raise ValueError("intervals must be positive")

    trace = build_trace(config.seed, config.ops)
    interval_ops = max(1, config.ops // config.intervals)
    combos = [(m, e) for m in config.mechanisms for e in config.engines]
    per_combo = max(1, config.budget // len(combos))

    combo_reports: list[dict] = []
    violations: list[dict] = []
    total = 0
    for mechanism, engine in combos:
        total_cycles, fired = _probe(mechanism, engine, trace, interval_ops)
        classifications: Counter[str] = Counter()
        crash_kinds: Counter[str] = Counter()
        plan_kinds: Counter[str] = Counter()
        indices = (
            range(per_combo)
            if config.only_schedule is None
            else [config.only_schedule]
        )
        for index in indices:
            rng = _schedule_rng(config, mechanism, engine, index)
            spec = _sample_spec(rng, total_cycles, fired)
            outcome = run_schedule(
                mechanism, engine, trace, interval_ops, spec,
                index=index,
                plan_rng=_plan_rng(config, mechanism, engine, index),
                weaken=config.weaken,
            )
            total += 1
            classifications[outcome.classification] += 1
            if outcome.crashed:
                crash_kinds[spec.kind] += 1
                if outcome.plan is not None:
                    if outcome.plan.is_neat:
                        plan_kinds["neat"] += 1
                    else:
                        if outcome.plan.dropped:
                            plan_kinds["dropped"] += 1
                        if outcome.plan.torn is not None:
                            plan_kinds["torn"] += 1
            if outcome.crashed and not outcome.ok:
                entry = outcome.to_dict()
                if config.shrink and outcome.plan is not None:
                    shrunk = shrink_plan(
                        mechanism, engine, trace, interval_ops, spec,
                        outcome.plan, weaken=config.weaken,
                    )
                    entry["shrunk_plan"] = shrunk.to_dict()
                else:
                    entry["shrunk_plan"] = None
                entry["repro"] = repro_command(config, mechanism, engine, index)
                violations.append(entry)
        combo_reports.append(
            {
                "mechanism": mechanism,
                "engine": engine,
                "schedules": len(list(indices)) if config.only_schedule is not None else per_combo,
                "probe_cycles": total_cycles,
                "named_points": len(fired),
                "classifications": dict(classifications),
                "crash_kinds": dict(crash_kinds),
                "plan_kinds": dict(plan_kinds),
            }
        )

    return {
        "seed": config.seed,
        "budget": config.budget,
        "ops": config.ops,
        "intervals": config.intervals,
        "weakened": config.weaken,
        "schedules": total,
        "combos": combo_reports,
        "violations": violations,
        "ok": not violations,
    }
