"""Virtual memory: page tables with dirty / write-protect bits.

Implements the substrate both page-granularity baselines depend on
(Section II-B): PTEs carry *present*, *writable*, *dirty* and *accessed*
bits; the hardware walker sets the dirty bit on a write, while the
write-protection scheme clears the writable bit and takes a fault on the
first store.  The stack region grows on demand — a touch below the mapped
low-water mark maps new pages, the way Linux (and GemOS) service stack
growth.

Also hosts the per-thread stack-permission scheme Prosper uses for
inter-thread stack writes (Section III-C): each thread's view maps its own
stack writable and other threads' stacks read-only, so a cross-thread write
faults into the OS, which records the dirty bits on the victim thread's
bitmap before allowing the write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PAGE_BYTES
from repro.memory.address import AddressRange, page_index, span_pages


@dataclass
class PageTableEntry:
    """One PTE's software-visible state."""

    present: bool = True
    writable: bool = True
    dirty: bool = False
    accessed: bool = False


@dataclass
class FaultRecord:
    """One page fault taken by the process (for statistics/tests)."""

    address: int
    kind: str  # "demand-map", "write-protect", "cross-thread"


class PageTable:
    """Sparse page table for one address space (or one thread's view)."""

    def __init__(self, page_bytes: int = PAGE_BYTES) -> None:
        self.page_bytes = page_bytes
        self.entries: dict[int, PageTableEntry] = {}
        self.faults: list[FaultRecord] = []

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def map_range(self, rng: AddressRange, writable: bool = True) -> int:
        """Map every page overlapping *rng*; returns pages newly mapped."""
        added = 0
        for page in rng.pages(self.page_bytes):
            if page not in self.entries:
                self.entries[page] = PageTableEntry(writable=writable)
                added += 1
        return added

    def unmap_range(self, rng: AddressRange) -> int:
        """Unmap every fully-covered page; returns pages removed."""
        removed = 0
        for page in rng.pages(self.page_bytes):
            if self.entries.pop(page, None) is not None:
                removed += 1
        return removed

    def is_mapped(self, address: int) -> bool:
        return page_index(address, self.page_bytes) in self.entries

    @property
    def mapped_pages(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------ #
    # Access path (what the hardware walker + fault handler do)
    # ------------------------------------------------------------------ #

    def touch(
        self,
        address: int,
        size: int,
        is_write: bool,
        stack_region: AddressRange | None = None,
    ) -> int:
        """Apply one access to the page table; returns faults taken.

        Unmapped pages inside *stack_region* are demand-mapped (on-demand
        stack growth); unmapped pages elsewhere raise.  A write to a
        write-protected page records a fault and sets the page writable and
        dirty — the software dirty-tracking path.
        """
        faults = 0
        for page in span_pages(address, size, self.page_bytes):
            entry = self.entries.get(page)
            if entry is None:
                base = page * self.page_bytes
                if stack_region is not None and stack_region.contains(base):
                    entry = self.entries[page] = PageTableEntry()
                    self.faults.append(FaultRecord(address, "demand-map"))
                    faults += 1
                else:
                    raise MemoryError(
                        f"access to unmapped page at {address:#x}"
                    )
            entry.accessed = True
            if is_write:
                if not entry.writable:
                    self.faults.append(FaultRecord(address, "write-protect"))
                    faults += 1
                    entry.writable = True
                entry.dirty = True
        return faults

    # ------------------------------------------------------------------ #
    # Dirty-tracking services (Section II-B baselines)
    # ------------------------------------------------------------------ #

    def collect_and_clear_dirty(self, rng: AddressRange | None = None) -> list[int]:
        """Return dirty page indices (optionally limited to *rng*), clearing them.

        This is the OS walk at the end of a Dirtybit tracking interval.
        """
        pages = (
            rng.pages(self.page_bytes) if rng is not None else list(self.entries)
        )
        dirty: list[int] = []
        for page in pages:
            entry = self.entries.get(page)
            if entry is not None and entry.dirty:
                dirty.append(page)
                entry.dirty = False
        return dirty

    def write_protect(self, rng: AddressRange | None = None) -> int:
        """Remove write permission (soft-dirty arm); returns PTEs changed."""
        pages = (
            rng.pages(self.page_bytes) if rng is not None else list(self.entries)
        )
        changed = 0
        for page in pages:
            entry = self.entries.get(page)
            if entry is not None and entry.writable:
                entry.writable = False
                changed += 1
        return changed

    def clone_view(self, read_only: AddressRange) -> "PageTable":
        """Per-thread view with *read_only* mapped without write permission.

        Used for the inter-thread stack-write scheme: a thread's view maps
        every other thread's stack read-only.
        """
        view = PageTable(self.page_bytes)
        ro_pages = set(read_only.pages(self.page_bytes))
        for page, entry in self.entries.items():
            view.entries[page] = PageTableEntry(
                present=entry.present,
                writable=entry.writable and page not in ro_pages,
                dirty=entry.dirty,
                accessed=entry.accessed,
            )
        return view
