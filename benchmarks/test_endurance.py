"""NVM endurance comparison across stack-persistence mechanisms.

Not a paper figure, but the quantification of the paper's motivation that
"maintaining the stack in NVM leads to performance and endurance issues":
the per-store mechanisms (flush, Romulus, SSP) push every stack write plus
metadata into NVM, while the checkpoint mechanisms (Dirtybit, Prosper) hit
NVM only with the coalesced dirty bytes once per interval.
"""

from repro.analysis.endurance import endurance_report
from repro.analysis.report import format_bytes, render_table
from repro.experiments.runner import make_engine, vanilla_cycles, fixed_cost_scale_for, scaled_interval_cycles
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.logging import FlushPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.romulus import RomulusPersistence
from repro.persistence.ssp import SspPersistence
from repro.workloads.apps import gapbs_pr


def run_endurance_comparison(target_ops=50_000):
    trace = gapbs_pr(target_ops)
    base = vanilla_cycles(trace)
    scale = fixed_cost_scale_for(base)
    interval = scaled_interval_cycles(base, 10.0)
    # Unique dirty footprint of the stack at byte granularity.
    dirty = sum(trace.copy_sizes(1, 8))

    reports = []
    for mech, label in (
        (ProsperPersistence(), "prosper"),
        (DirtyBitPersistence(), "dirtybit"),
        (SspPersistence(1000.0), "ssp-1ms"),
        (RomulusPersistence(), "romulus"),
        (FlushPersistence(), "flush"),
    ):
        engine = make_engine(trace, mech, fixed_cost_scale=scale)
        engine.run(trace.ops, interval_cycles=interval)
        # Wear is compared per unit of *application progress*: every
        # mechanism gets the same vanilla-execution denominator (converted
        # back to paper time), so a slow mechanism cannot claim longevity
        # merely by stalling the application.
        paper_cycles = round(base / scale)
        reports.append(
            endurance_report(label, engine.hierarchy, dirty, paper_cycles)
        )
    return reports


def test_endurance(benchmark):
    reports = benchmark.pedantic(run_endurance_comparison, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "NVM write traffic and endurance by mechanism (gapbs_pr)",
            ["mechanism", "NVM writes", "NVM bytes", "amplification", "lifetime (yr, 64KiB hot)"],
            [
                [
                    r.mechanism,
                    r.nvm_writes,
                    format_bytes(r.nvm_write_bytes),
                    f"{r.write_amplification:.2f}x",
                    f"{r.lifetime_years():.1f}",
                ]
                for r in reports
            ],
        )
    )
    by_name = {r.mechanism: r for r in reports}
    # Checkpoint mechanisms write far less NVM than per-store mechanisms.
    assert by_name["prosper"].nvm_write_bytes < by_name["flush"].nvm_write_bytes
    assert by_name["prosper"].nvm_write_bytes < by_name["romulus"].nvm_write_bytes
    # Prosper's sub-page tracking also beats page-granularity checkpoints.
    assert by_name["prosper"].nvm_write_bytes < by_name["dirtybit"].nvm_write_bytes
    # Endurance translation: prosper's projected lifetime is the longest.
    assert by_name["prosper"].lifetime_years() >= by_name["flush"].lifetime_years()