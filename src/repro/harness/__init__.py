"""Supervised experiment-execution harness.

Decomposes every figure into independent run units, executes them on a
supervised worker pool with per-unit wall-clock timeouts and bounded
retry, journals progress to a resumable JSONL manifest, and assembles
figure tables that degrade gracefully when units fail.  See
``docs/HARNESS.md`` for the run-unit model, the error taxonomy, the
manifest format, and resume semantics.
"""

from repro.harness.errors import (
    PERMANENT,
    TIMEOUT,
    TRANSIENT,
    WORKER_CRASH,
    WORKLOAD_ERROR,
    TransientWorkloadError,
    UnitFailure,
)
from repro.harness.figures import FIGURES, FigureSpec, RunUnit, figure_names
from repro.harness.journal import ManifestMismatch, RunJournal, load_manifest
from repro.harness.pool import UnitOutcome, WorkerPool
from repro.harness.supervisor import (
    FigureOutcome,
    HarnessInterrupted,
    HarnessOptions,
    run_figures,
)

__all__ = [
    "FIGURES",
    "PERMANENT",
    "TIMEOUT",
    "TRANSIENT",
    "WORKER_CRASH",
    "WORKLOAD_ERROR",
    "FigureOutcome",
    "FigureSpec",
    "HarnessInterrupted",
    "HarnessOptions",
    "ManifestMismatch",
    "RunJournal",
    "RunUnit",
    "TransientWorkloadError",
    "UnitFailure",
    "UnitOutcome",
    "WorkerPool",
    "figure_names",
    "load_manifest",
    "run_figures",
]
