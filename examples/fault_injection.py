#!/usr/bin/env python3
"""Fault injection: sweep every crash point, then catch a torn write.

Extends examples/crash_recovery.py from two hand-picked crashes to
systematic validation (docs/FAULTS.md):

1. a seeded crash-point sweep runs a deterministic two-thread checkpoint
   workload, crashes at *every* point of the staging/commit protocol —
   metadata write, each per-run staging copy, commit flag, persist
   barrier, bitmap clear — recovers, and checks that the restored state
   (registers and stack bytes) is exactly one whole checkpoint, never a
   blend;
2. a torn-write demo silently corrupts a checkpoint's metadata record,
   crashes mid-commit, and shows the CRC32 check discarding the staged
   data instead of trusting its completeness.

Run:  python examples/fault_injection.py
"""

from repro.faults.sweep import (
    CrashConsistencyChecker,
    torn_metadata_demo,
    transient_retry_demo,
)


def main() -> None:
    # --- 1. the sweep: crash everywhere, recover everywhere -------------
    checker = CrashConsistencyChecker(
        seed=0, threads=2, intervals=3, writes_per_interval=4
    )
    report = checker.run()
    counts = report.outcome_counts()
    print(
        f"sweep: {len(report.cases)} crashes over {report.points_swept} "
        f"distinct points, {len(report.violations)} invariant violations"
    )
    for outcome in ("rolled_forward", "previous", "fresh_start"):
        print(f"  {outcome:>14}: {counts.get(outcome, 0)} recoveries")
    assert report.ok, report.violations

    # --- 2. transient NVM write errors: retry, recover, account --------
    retry = transient_retry_demo(seed=0)
    print(
        f"\ntransient errors: {retry.checkpoints} checkpoints took "
        f"{retry.retries} NVM write retries (backoff charged to cycles); "
        f"recovery restored checkpoint {retry.resumed_from} exactly"
    )
    assert retry.retries > 0 and retry.state_ok

    # --- 3. a torn metadata record, caught by its checksum --------------
    torn = torn_metadata_demo(seed=0)
    print(
        f"\ntorn metadata: staging was complete but the record's CRC failed "
        f"at recovery; {torn.discarded_staged} staged buffers discarded, "
        f"fell back to committed checkpoint {torn.resumed_from}"
    )
    assert torn.detected and torn.state_ok

    print(
        "\nEvery crash point recovers to one whole checkpoint, and torn "
        "records are detected rather than rolled forward."
    )


if __name__ == "__main__":
    main()
