"""Tests for repro.core.checkpoint: the Prosper OS-side checkpoint engine."""

from repro.config import TrackerConfig, setup_i
from repro.core.bitmap import DirtyBitmap
from repro.core.checkpoint import ProsperCheckpointEngine
from repro.core.tracker import ProsperTracker
from repro.memory.address import AddressRange
from repro.memory.hierarchy import MemoryHierarchy

REGION = AddressRange(0x7000_0000, 0x7001_0000)


def engine() -> tuple[ProsperCheckpointEngine, ProsperTracker, DirtyBitmap]:
    tracker = ProsperTracker(TrackerConfig())
    bitmap = DirtyBitmap(REGION, 8)
    tracker.configure(bitmap)
    hierarchy = MemoryHierarchy(setup_i())
    return ProsperCheckpointEngine(tracker, bitmap, hierarchy), tracker, bitmap


class TestCheckpoint:
    def test_empty_checkpoint(self):
        ck, _, _ = engine()
        result = ck.checkpoint(0)
        assert result.copied_bytes == 0
        assert result.runs == 0
        assert result.committed
        assert ck.last_committed_interval == 0

    def test_copies_exactly_dirty_bytes(self):
        ck, tracker, _ = engine()
        tracker.observe_store(REGION.start + 64, 8)
        tracker.observe_store(REGION.start + 72, 8)
        result = ck.checkpoint(0)
        assert result.copied_bytes == 16
        assert result.runs == 1  # contiguous granules coalesce

    def test_bitmap_cleared_after_checkpoint(self):
        ck, tracker, bitmap = engine()
        tracker.observe_store(REGION.start + 64, 8)
        ck.checkpoint(0)
        assert bitmap.dirty_granule_count() == 0
        # Next interval starts from a clean tracker.
        assert tracker.min_dirty_address is None

    def test_active_low_hint_bounds_inspection(self):
        ck, tracker, _ = engine()
        tracker.observe_store(REGION.end - 64, 8)
        near_top = ck.checkpoint(0, active_low_hint=REGION.end - 4096)
        ck2, tracker2, _ = engine()
        tracker2.observe_store(REGION.end - 64, 8)
        # Force a full walk by hinting the region base.
        full = ck2.checkpoint(0, active_low_hint=REGION.start)
        assert near_top.words_inspected < full.words_inspected
        assert near_top.copied_bytes == full.copied_bytes

    def test_sequential_intervals_accumulate_results(self):
        ck, tracker, _ = engine()
        for i in range(3):
            tracker.observe_store(REGION.start + i * 1024, 8)
            ck.checkpoint(i)
        assert [r.interval_index for r in ck.results] == [0, 1, 2]
        assert ck.last_committed_interval == 2

    def test_checkpoint_time_grows_with_dirty_data(self):
        ck, tracker, _ = engine()
        tracker.observe_store(REGION.start, 8)
        small = ck.checkpoint(0)
        for i in range(512):
            tracker.observe_store(REGION.start + i * 8, 8)
        large = ck.checkpoint(1)
        assert large.cycles > small.cycles
        assert large.copied_bytes > small.copied_bytes


class TestCrashConsistency:
    def test_crash_after_stage_leaves_uncommitted(self):
        ck, tracker, _ = engine()
        tracker.observe_store(REGION.start, 8)
        result = ck.checkpoint(0, crash_after_stage=True)
        assert not result.committed
        assert ck.last_committed_interval is None
        assert ck.staged is not None and not ck.staged.committed

    def test_recover_staged_completes_commit(self):
        ck, tracker, _ = engine()
        tracker.observe_store(REGION.start, 8)
        ck.checkpoint(0, crash_after_stage=True)
        recovered = ck.recover_staged()
        assert recovered == 0
        assert ck.staged.committed

    def test_recover_without_staged_returns_last_committed(self):
        ck, tracker, _ = engine()
        tracker.observe_store(REGION.start, 8)
        ck.checkpoint(0)
        assert ck.recover_staged() == 0

    def test_crash_then_next_checkpoint_still_consistent(self):
        ck, tracker, _ = engine()
        tracker.observe_store(REGION.start, 8)
        ck.checkpoint(0, crash_after_stage=True)
        ck.recover_staged()
        tracker.observe_store(REGION.start + 4096, 8)
        # Note: after a crash-recovery, the OS restarts the interval.
        result = ck.checkpoint(1)
        assert result.committed
        assert ck.last_committed_interval == 1


class TestFixedScale:
    def test_scale_reduces_fixed_costs(self):
        ck_full, tr1, _ = engine()
        tr1.observe_store(REGION.start, 8)
        full = ck_full.checkpoint(0)

        tracker = ProsperTracker(TrackerConfig())
        bitmap = DirtyBitmap(REGION, 8)
        tracker.configure(bitmap)
        ck_scaled = ProsperCheckpointEngine(
            tracker, bitmap, MemoryHierarchy(setup_i()), fixed_scale=0.01
        )
        tracker.observe_store(REGION.start, 8)
        scaled = ck_scaled.checkpoint(0)
        assert scaled.cycles < full.cycles
