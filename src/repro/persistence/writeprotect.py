"""Write-protection-based page dirty tracking (soft-dirty style).

The second standard page-granularity technique of Section II-B: at the start
of every tracking interval the OS removes write permission from all mapped
stack PTEs; the *first* write to each page then traps into the kernel, which
records the page dirty and restores write access.  Subsequent writes to the
page proceed at full speed.

Compared to the Dirtybit approach this adds a page-fault cost per
first-touch page per interval — the overhead LDT (and the paper) call out —
while the checkpoint itself is identical page-granularity copying.
"""

from __future__ import annotations

from repro.config import PAGE_BYTES
from repro.memory.address import page_index, span_pages
from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    PersistenceMechanism,
)
from repro.persistence.dirtybit import (
    CHECKPOINT_FIXED_CYCLES,
    PTE_CLEAR_CYCLES,
    PTE_INSPECT_CYCLES,
)

#: Round-trip cost of a write-protection fault: trap, kernel entry, record
#: dirty, restore permission, TLB invalidate, return.  Of the order of a
#: few thousand cycles on real hardware.
WP_FAULT_CYCLES = 2500
#: Cycles to re-arm write protection on one PTE at interval start.
PTE_PROTECT_CYCLES = 3


class WriteProtectPersistence(PersistenceMechanism):
    """Stack checkpointing with write-protection fault dirty tracking."""

    name = "writeprotect"
    capabilities = Capabilities(
        achieves_process_persistence=True,
        works_without_compiler_support=True,
        stack_pointer_aware=True,
        allows_stack_in_dram=True,
    )
    region_in_nvm = False

    def __init__(self, page_bytes: int = PAGE_BYTES) -> None:
        super().__init__()
        self.page_bytes = page_bytes
        self._dirty_pages: set[int] = set()
        self._mapped_pages: set[int] = set()
        self.faults = 0

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        cost = 0
        for page in span_pages(address, size, self.page_bytes):
            self._mapped_pages.add(page)
            if page not in self._dirty_pages:
                # First store to a protected page this interval: fault.
                self._dirty_pages.add(page)
                self.faults += 1
                cost += WP_FAULT_CYCLES
        self.stats.inline_overhead_cycles += cost
        return cost

    def on_interval_start(self, ctx: IntervalContext) -> int:
        # Re-arm write protection across mapped stack pages.
        return len(self._mapped_pages) * PTE_PROTECT_CYCLES

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        cycles = round(CHECKPOINT_FIXED_CYCLES * self.fixed_scale)

        low_page = page_index(min(ctx.min_sp, ctx.final_sp), self.page_bytes)
        top_page = page_index(ctx.region.end - 1, self.page_bytes)
        cycles += max(0, top_page - low_page + 1) * PTE_INSPECT_CYCLES

        # SP awareness at page granularity, as for the Dirtybit scheme.
        final_page = page_index(ctx.final_sp, self.page_bytes)
        live_pages = sum(1 for p in self._dirty_pages if p >= final_page)
        copied = live_pages * self.page_bytes
        cycles += len(self._dirty_pages) * PTE_CLEAR_CYCLES
        if copied:
            cycles += self.hierarchy.copy_dram_to_nvm(copied, self.fixed_scale)
        cycles += self.hierarchy.persist_barrier()

        self.stats.checkpoint_bytes.append(copied)
        self.stats.checkpoint_cycles.append(cycles)
        self._dirty_pages.clear()
        return cycles

    def persisted_state(self) -> dict:
        return {
            "kind": "page-checkpoint",
            "intervals_committed": self.stats.intervals,
        }
