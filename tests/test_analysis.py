"""Tests for repro.analysis: metrics and report rendering."""

import math

import pytest

from repro.analysis.metrics import (
    geomean,
    normalized_times,
    speedup,
    summarize_checkpoints,
)
from repro.analysis.report import format_bytes, render_series, render_table
from repro.persistence.base import MechanismStats


class TestMetrics:
    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0, 4]) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_normalized_times(self):
        out = normalized_times({"a": 10.0, "b": 20.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ValueError):
            normalized_times({"a": 0.0}, "a")

    def test_summarize_checkpoints(self):
        stats = MechanismStats()
        stats.checkpoint_bytes = [100, 300]
        stats.checkpoint_cycles = [3000, 9000]
        s = summarize_checkpoints(stats)
        assert s.intervals == 2
        assert s.mean_bytes == 200
        assert s.total_cycles == 12000
        # cycles at 3GHz -> ns: 12000/3 = 4000 ns over 400 bytes.
        assert s.ns_per_byte == pytest.approx(10.0)

    def test_ns_per_byte_empty_checkpoints(self):
        stats = MechanismStats()
        stats.checkpoint_bytes = [0]
        stats.checkpoint_cycles = [500]
        assert math.isinf(summarize_checkpoints(stats).ns_per_byte)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table("T", ["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert "bbbb" in lines[-1]
        # All data rows have consistent column positions.
        assert lines[-1].index("22") == lines[-2].index("1")

    def test_render_series(self):
        text = render_series("S", {"a": {"x": 1.5}})
        assert "[a]" in text
        assert "x: 1.500" in text

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(4096) == "4.00KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.00MiB"
