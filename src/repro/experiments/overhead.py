"""Tracking-overhead experiments (Section V, Setup-II: Figures 12-13),
plus the context-switch and energy/area studies.

* **Figure 12** — application speedup (user IPC with tracking over user IPC
  without) under Prosper at 8/64/128-byte granularity; the paper reports
  less than 1 % average overhead, ~3 % worst case.
* **Figure 13** — bitmap loads and stores issued by the tracker as HWM is
  swept (LWM fixed at 4) and as LWM is swept (HWM fixed at 24), for mcf
  (scattered stack temporaries) and SSSP (tight frame reuse).
* **Context switch** — the ~870-cycle Prosper save/restore overhead,
  measured with a two-thread micro-benchmark.
* **Energy** — lookup-table dynamic/leakage energy from the CACTI-P numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TrackerConfig, setup_ii
from repro.core.bitmap import DirtyBitmap
from repro.core.energy import EnergyModel, EnergyReport
from repro.core.tracker import ProsperTracker
from repro.cpu.ops import OpKind
from repro.experiments.runner import run_mechanism, vanilla_cycles
from repro.kernel.process import Process
from repro.kernel.scheduler import Scheduler
from repro.persistence.prosper import ProsperPersistence
from repro.workloads.apps import g500_sssp, gapbs_pr
from repro.workloads.spec import SPEC_PROFILES, spec_workload
from repro.workloads.synthetic import stream_workload
from repro.workloads.trace import Trace

DEFAULT_OPS = 100_000

#: Granularities of the Figure 12 sweep (bytes).
FIG12_GRANULARITIES = (8, 64, 128)


def overhead_workloads(target_ops: int = DEFAULT_OPS, seed: int = 42) -> list[Trace]:
    """The Figure 12 workload set: SPEC + graphs + Stream."""
    traces = [
        spec_workload(name, target_ops, seed=seed) for name in sorted(SPEC_PROFILES)
    ]
    traces.append(g500_sssp(target_ops, seed))
    traces.append(gapbs_pr(target_ops, seed))
    traces.append(stream_workload(array_bytes=128 * 1024, passes=2, seed=seed))
    return traces


# --------------------------------------------------------------------- #
# Figure 12 — tracking overhead
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class TrackingOverheadCell:
    workload: str
    granularity: int
    speedup: float  # IPC with tracking / IPC without (<= 1.0 expected)

    @property
    def overhead_percent(self) -> float:
        return (1.0 - self.speedup) * 100.0


def fig12_tracking_overhead(
    target_ops: int = DEFAULT_OPS,
    granularities: tuple[int, ...] = FIG12_GRANULARITIES,
    interval_paper_ms: float = 10.0,
    seed: int = 42,
) -> list[TrackingOverheadCell]:
    """User-IPC speedup with Prosper tracking vs no tracking (Setup-II)."""
    config = setup_ii()
    cells: list[TrackingOverheadCell] = []
    for trace in overhead_workloads(target_ops, seed):
        base = vanilla_cycles(trace, config)
        base_ipc = None
        for granularity in granularities:
            mech = ProsperPersistence(TrackerConfig().with_granularity(granularity))
            result = run_mechanism(
                trace,
                mech,
                interval_paper_ms,
                config=config,
                baseline_cycles=base,
            )
            if base_ipc is None:
                # User IPC of the untracked run: app cycles only.
                base_ipc = result.stats.ops_executed / base
            cells.append(
                TrackingOverheadCell(
                    trace.name, granularity, result.stats.user_ipc / base_ipc
                )
            )
    return cells


# --------------------------------------------------------------------- #
# Figure 13 — HWM / LWM sensitivity
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class WatermarkCell:
    workload: str
    hwm: int
    lwm: int
    bitmap_loads: int
    bitmap_stores: int

    @property
    def memory_ops(self) -> int:
        return self.bitmap_loads + self.bitmap_stores


def _replay_tracker(trace: Trace, config: TrackerConfig, num_intervals: int = 20) -> tuple[int, int]:
    """Drive a bare tracker with the trace's stack stores.

    Timing-independent: Figure 13 counts tracker-issued bitmap loads and
    stores, which depend only on the store stream and the table parameters.
    The lookup table is flushed at interval boundaries as the OS would.
    """
    bitmap = DirtyBitmap(trace.stack_range, config.granularity_bytes)
    tracker = ProsperTracker(config)
    tracker.configure(bitmap)
    boundary = max(1, len(trace.ops) // num_intervals)
    for i, op in enumerate(trace.ops):
        if op.kind == OpKind.WRITE and trace.stack_range.contains(op.address):
            tracker.observe_store(op.address, op.size)
        if (i + 1) % boundary == 0:
            tracker.request_flush()
            tracker.poll_quiescent()
            bitmap.clear()
            tracker.begin_interval()
    tracker.request_flush()
    tracker.poll_quiescent()
    return tracker.stats.bitmap_loads, tracker.stats.bitmap_stores


def fig13_watermark_sensitivity(
    target_ops: int = DEFAULT_OPS,
    hwm_values: tuple[int, ...] = (8, 16, 24, 32),
    lwm_values: tuple[int, ...] = (2, 4, 8, 16),
    fixed_lwm: int = 4,
    fixed_hwm: int = 24,
    seed: int = 42,
) -> list[WatermarkCell]:
    """Bitmap loads/stores vs HWM (LWM=4) and vs LWM (HWM=24)."""
    traces = [
        spec_workload("605.mcf_s", target_ops, seed=seed),
        g500_sssp(target_ops, seed),
    ]
    cells: list[WatermarkCell] = []
    for trace in traces:
        for hwm in hwm_values:
            cfg = TrackerConfig(high_water_mark=hwm, low_water_mark=fixed_lwm)
            loads, stores = _replay_tracker(trace, cfg)
            cells.append(WatermarkCell(trace.name, hwm, fixed_lwm, loads, stores))
        for lwm in lwm_values:
            cfg = TrackerConfig(high_water_mark=fixed_hwm, low_water_mark=lwm)
            loads, stores = _replay_tracker(trace, cfg)
            cells.append(WatermarkCell(trace.name, fixed_hwm, lwm, loads, stores))
    return cells


# --------------------------------------------------------------------- #
# Context-switch overhead
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ContextSwitchResult:
    switches: int
    mean_prosper_cycles: float
    total_prosper_cycles: int


def context_switch_overhead(
    switches: int = 200,
    writes_per_slice: int = 400,
    seed: int = 3,
) -> ContextSwitchResult:
    """Two persistent threads alternating on one CPU (Section V study).

    Each thread performs random writes to its own stack between switches;
    the measured quantity is the extra save/restore work the scheduler does
    for the Prosper tracker state.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    process = Process()
    t1 = process.spawn_thread(stack_bytes=256 * 1024, persistent=True)
    t2 = process.spawn_thread(stack_bytes=256 * 1024, persistent=True)
    tracker = ProsperTracker(process.tracker_config)
    scheduler = Scheduler(tracker)

    threads = (t1, t2)
    for i in range(switches):
        incoming = threads[i % 2]
        scheduler.switch_to(incoming)
        span = incoming.stack.size - 64
        offsets = rng.integers(0, span // 8, size=writes_per_slice) * 8
        for off in offsets:
            tracker.observe_store(incoming.stack.start + int(off), 8)

    stats = scheduler.stats
    return ContextSwitchResult(
        stats.switches, stats.mean_prosper_overhead, stats.prosper_cycles
    )


# --------------------------------------------------------------------- #
# Energy / area
# --------------------------------------------------------------------- #

def energy_report(target_ops: int = 50_000, seed: int = 42) -> EnergyReport:
    """Lookup-table energy for a gapbs_pr run (CACTI-P numbers)."""
    trace = gapbs_pr(target_ops, seed)
    config = TrackerConfig()
    bitmap = DirtyBitmap(trace.stack_range, config.granularity_bytes)
    tracker = ProsperTracker(config)
    tracker.configure(bitmap)
    cycles = 0
    for op in trace.ops:
        if op.kind == OpKind.WRITE and trace.stack_range.contains(op.address):
            tracker.observe_store(op.address, op.size)
        cycles += 4  # nominal per-op cycle cost for the leakage window
    tracker.request_flush()
    tracker.poll_quiescent()
    return EnergyModel().report_for_tracker(tracker, cycles)
