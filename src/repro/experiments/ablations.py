"""Ablations of Prosper's design choices.

The paper argues for several design decisions without always quantifying
them; these studies do:

* **Allocation policy** (Section III-B, design question i) —
  Accumulate-and-Apply (chosen) vs Load-and-Update: bitmap memory traffic
  for both, across workloads.
* **Lookup-table size** — the 16-entry table vs smaller/larger tables:
  how much coalescing a few entries buy.
* **Active-region bounding** (Section III-A) — the tracker sharing the
  maximum active stack address with the OS: checkpoint cycles with and
  without the bound (without it, the OS walks the whole bitmap).
* **Page-granularity tracking flavour** (Section II-B) — PTE dirty bits
  (LDT-style) vs write-protection faults: same checkpoint contents,
  different tracking overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TrackerConfig, setup_i
from repro.core.bitmap import DirtyBitmap
from repro.core.checkpoint import ProsperCheckpointEngine
from repro.core.policies import AllocationPolicy
from repro.core.tracker import ProsperTracker
from repro.cpu.ops import OpKind
from repro.experiments.runner import run_mechanism, vanilla_cycles
from repro.memory.hierarchy import MemoryHierarchy
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.writeprotect import WriteProtectPersistence
from repro.workloads.apps import g500_sssp, gapbs_pr, ycsb_mem
from repro.workloads.spec import spec_workload
from repro.workloads.trace import Trace

DEFAULT_OPS = 60_000


def _replay(trace: Trace, config: TrackerConfig, policy: AllocationPolicy,
            num_intervals: int = 20) -> tuple[int, int]:
    """Drive a bare tracker over the trace's stack stores; (loads, stores)."""
    bitmap = DirtyBitmap(trace.stack_range, config.granularity_bytes)
    tracker = ProsperTracker(config, policy)
    tracker.configure(bitmap)
    boundary = max(1, len(trace.ops) // num_intervals)
    for i, op in enumerate(trace.ops):
        if op.kind == OpKind.WRITE and trace.stack_range.contains(op.address):
            tracker.observe_store(op.address, op.size)
        if (i + 1) % boundary == 0:
            tracker.request_flush()
            tracker.poll_quiescent()
            bitmap.clear()
            tracker.begin_interval()
    tracker.request_flush()
    tracker.poll_quiescent()
    return tracker.stats.bitmap_loads, tracker.stats.bitmap_stores


# --------------------------------------------------------------------- #
# Allocation policy
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class PolicyCell:
    workload: str
    policy: str
    bitmap_loads: int
    bitmap_stores: int

    @property
    def memory_ops(self) -> int:
        return self.bitmap_loads + self.bitmap_stores


def allocation_policy_ablation(target_ops: int = DEFAULT_OPS, seed: int = 42) -> list[PolicyCell]:
    """Accumulate-and-Apply vs Load-and-Update bitmap traffic."""
    traces = [
        gapbs_pr(target_ops, seed),
        g500_sssp(target_ops, seed),
        spec_workload("605.mcf_s", target_ops, seed=seed),
    ]
    cells = []
    for trace in traces:
        for policy in AllocationPolicy:
            loads, stores = _replay(trace, TrackerConfig(), policy)
            cells.append(PolicyCell(trace.name, policy.value, loads, stores))
    return cells


# --------------------------------------------------------------------- #
# Lookup-table size
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class TableSizeCell:
    workload: str
    entries: int
    memory_ops: int


def table_size_ablation(
    sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
    target_ops: int = DEFAULT_OPS,
    seed: int = 42,
) -> list[TableSizeCell]:
    """Bitmap traffic as the lookup table shrinks or grows around 16."""
    traces = [gapbs_pr(target_ops, seed), spec_workload("605.mcf_s", target_ops, seed=seed)]
    cells = []
    for trace in traces:
        for entries in sizes:
            cfg = TrackerConfig(lookup_table_entries=entries)
            loads, stores = _replay(trace, cfg, AllocationPolicy.ACCUMULATE_AND_APPLY)
            cells.append(TableSizeCell(trace.name, entries, loads + stores))
    return cells


# --------------------------------------------------------------------- #
# Active-region bounding
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class BoundingCell:
    workload: str
    bounded_cycles: float
    unbounded_cycles: float

    @property
    def speedup(self) -> float:
        return self.unbounded_cycles / self.bounded_cycles


def active_region_bounding_ablation(
    target_ops: int = 30_000, seed: int = 42
) -> list[BoundingCell]:
    """Checkpoint cycles with vs without the tracker's active-region hint.

    Without the hint the OS must inspect (and clear) the bitmap for the
    entire stack reservation — exactly the walk Section III-A avoids.
    """
    cells = []
    for trace in (gapbs_pr(target_ops, seed), ycsb_mem(target_ops, seed)):
        results = []
        for bounded in (True, False):
            tracker = ProsperTracker(TrackerConfig())
            bitmap = DirtyBitmap(trace.stack_range, 8)
            tracker.configure(bitmap)
            engine = ProsperCheckpointEngine(
                tracker, bitmap, MemoryHierarchy(setup_i())
            )
            boundary = max(1, len(trace.ops) // 20)
            sp = trace.stack_range.end
            min_sp = sp
            interval = 0
            cycles = 0
            for i, op in enumerate(trace.ops):
                if op.kind == OpKind.CALL:
                    sp -= op.size
                    min_sp = min(min_sp, sp)
                elif op.kind == OpKind.RET:
                    sp += op.size
                elif op.kind == OpKind.WRITE and trace.stack_range.contains(op.address):
                    tracker.observe_store(op.address, op.size)
                if (i + 1) % boundary == 0:
                    hint = min_sp if bounded else trace.stack_range.start
                    result = engine.checkpoint(interval, active_low_hint=hint)
                    cycles += result.cycles
                    interval += 1
                    min_sp = sp
            results.append(cycles / max(1, interval))
        cells.append(BoundingCell(trace.name, results[0], results[1]))
    return cells


# --------------------------------------------------------------------- #
# Dirty-bit vs write-protection page tracking
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class PageTrackingCell:
    workload: str
    mechanism: str
    normalized_time: float
    faults: int


def page_tracking_ablation(target_ops: int = DEFAULT_OPS, seed: int = 42) -> list[PageTrackingCell]:
    """LDT-style dirty bits vs soft-dirty write-protection faults."""
    cells = []
    for trace in (gapbs_pr(target_ops, seed), ycsb_mem(target_ops, seed)):
        base = vanilla_cycles(trace)
        for mech in (DirtyBitPersistence(), WriteProtectPersistence()):
            result = run_mechanism(trace, mech, 10.0, baseline_cycles=base)
            cells.append(
                PageTrackingCell(
                    trace.name,
                    mech.name,
                    result.normalized_time,
                    getattr(mech, "faults", 0),
                )
            )
    return cells
