"""Multi-core execution: per-core Prosper trackers, parallel threads.

Section III-C: "Prosper's per hardware thread dirty tracker can track the
stack modifications of software threads and set bit(s) in the dedicated
bitmap areas."  This module runs N software threads across M cores, each
core with its own :class:`~repro.core.tracker.ProsperTracker` and
scheduler; wall-clock time advances as the maximum over cores between
checkpoint barriers (checkpoints are process-wide and synchronize all
cores, like a stop-the-world OS checkpoint).

The single-core path lives in :mod:`repro.kernel.simulation`; this class
generalizes it and reuses the same checkpoint manager and crash/recovery
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig, setup_i
from repro.core.tracker import ProsperTracker
from repro.cpu.ops import Op, OpKind
from repro.faults.injector import BARRIER_QUIESCE, FaultInjector
from repro.kernel.checkpoint_mgr import CheckpointManager
from repro.kernel.process import Process, Thread
from repro.kernel.restore import CrashSimulator, RecoveryReport
from repro.kernel.scheduler import Scheduler
from repro.memory.hierarchy import MemoryHierarchy


@dataclass
class CoreState:
    """One logical CPU: its tracker, scheduler, run queue, and clock."""

    index: int
    tracker: ProsperTracker
    scheduler: Scheduler
    hierarchy: MemoryHierarchy
    #: (thread, ops, cursor) tuples assigned to this core.
    queue: list[tuple[Thread, list[Op], int]] = field(default_factory=list)
    clock: int = 0

    def has_work(self) -> bool:
        return any(cursor < len(ops) for _, ops, cursor in self.queue)


@dataclass
class MultiCoreStats:
    ops_executed: int = 0
    #: Wall-clock cycles: max core clock at every barrier, summed.
    wall_cycles: int = 0
    #: Sum of all cores' busy cycles (for utilization).
    busy_cycles: int = 0
    checkpoints: int = 0
    switches: int = 0

    @property
    def utilization(self) -> float:
        if self.wall_cycles == 0:
            return 0.0
        return self.busy_cycles / self.wall_cycles


class MultiCoreSimulation:
    """Threads distributed round-robin over cores, checkpointed globally."""

    def __init__(
        self,
        thread_ops: list[list[Op]],
        num_cores: int = 2,
        stack_bytes: int = 512 * 1024,
        quantum_ops: int = 500,
        checkpoint_every_rounds: int = 5,
        config: SystemConfig | None = None,
        injector: FaultInjector | None = None,
        dram_images: dict | None = None,
        nvm_images: dict | None = None,
    ) -> None:
        if not thread_ops:
            raise ValueError("need at least one thread")
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.config = config or setup_i()
        self.process = Process(name="mc-sim")
        self.quantum_ops = quantum_ops
        self.checkpoint_every_rounds = checkpoint_every_rounds
        self.injector = injector
        self.stats = MultiCoreStats()

        # Shared memory-side state: checkpoints target one NVM device; for
        # simplicity each core gets its own hierarchy front-end (private
        # caches) but the checkpoint manager uses core 0's.
        self.cores: list[CoreState] = []
        for index in range(num_cores):
            tracker = ProsperTracker(self.process.tracker_config)
            self.cores.append(
                CoreState(
                    index=index,
                    tracker=tracker,
                    scheduler=Scheduler(tracker, injector=injector),
                    hierarchy=MemoryHierarchy(self.config),
                )
            )
        self.manager = CheckpointManager(
            self.process,
            self.cores[0].hierarchy,
            self.cores[0].tracker,
            injector=injector,
            dram_images=dram_images,
            nvm_images=nvm_images,
        )
        self.crash_sim = CrashSimulator(
            self.process,
            self.manager,
            dram_images=dram_images,
            nvm_images=nvm_images,
        )

        for i, ops in enumerate(thread_ops):
            thread = self.process.spawn_thread(stack_bytes, persistent=True)
            self.cores[i % num_cores].queue.append((thread, ops, 0))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> MultiCoreStats:
        rounds = 0
        while any(core.has_work() for core in self.cores):
            for core in self.cores:
                self._run_round(core)
            rounds += 1
            # Barrier: wall clock advances to the slowest core.
            barrier = max(core.clock for core in self.cores)
            for core in self.cores:
                self.stats.busy_cycles += core.clock
                core.clock = 0
            self.stats.wall_cycles += barrier
            if rounds % self.checkpoint_every_rounds == 0:
                self._checkpoint()
        self._checkpoint()
        return self.stats

    def _run_round(self, core: CoreState) -> None:
        """Give each runnable thread on *core* one quantum."""
        for slot, (thread, ops, cursor) in enumerate(core.queue):
            if cursor >= len(ops):
                continue
            core.clock += core.scheduler.switch_to(thread)
            self.stats.switches += 1
            end = min(cursor + self.quantum_ops, len(ops))
            core.clock += self._execute(core, thread, ops[cursor:end])
            core.queue[slot] = (thread, ops, end)

    def _execute(self, core: CoreState, thread: Thread, ops: list[Op]) -> int:
        cycles = 0
        regs = thread.registers
        for op in ops:
            kind = op.kind
            if kind == OpKind.COMPUTE:
                cycles += op.size
            elif kind == OpKind.CALL:
                regs.push_frame(op.size)
                cycles += 1
            elif kind == OpKind.RET:
                regs.pop_frame(op.size)
                cycles += 1
            else:
                result = core.hierarchy.access(
                    op.address, op.size, kind == OpKind.WRITE
                )
                cycles += result.latency_cycles
                if kind == OpKind.WRITE and thread.stack.contains(op.address):
                    cycles += core.tracker.observe_store(op.address, op.size)
            regs.op_index += 1
            self.stats.ops_executed += 1
        return cycles

    def _checkpoint(self) -> None:
        """Stop-the-world checkpoint: quiesce every core's tracker first."""
        for core in self.cores:
            current = core.scheduler.current
            if current is not None and current.persistent:
                if self.injector is not None:
                    self.injector.reached(BARRIER_QUIESCE)
                core.tracker.request_flush()
                core.tracker.poll_quiescent()
        _, cycles = self.manager.checkpoint_process()
        self.stats.checkpoints += 1
        self.stats.wall_cycles += cycles

    # ------------------------------------------------------------------ #
    # Crash / recovery passthrough
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        self.crash_sim.crash()

    def recover(self) -> RecoveryReport:
        return self.crash_sim.recover()
