"""The tracker's coalescing lookup table (Section III-B, Figure 7).

A small fully-associative structure whose entries are tuples of
``<bitmap word address, accumulated 32-bit bitmap value>``.  Its job is to
absorb the burst of bitmap updates that stack writes would otherwise
generate, issuing a *bitmap store* to memory only when:

1. an entry's popcount reaches the **high-water mark (HWM)** — eager
   write-out of dense entries;
2. an entry is **evicted** for capacity — victims are chosen among entries
   whose popcount is below the **low-water mark (LWM)** (momentarily-touched
   call/return frames), falling back to a random victim when none qualify;
3. the OS requests a **flush** at the end of a checkpoint interval or on a
   context switch.

Under the Accumulate-and-Apply policy each write-out first issues a load of
the old bitmap word, merges, and stores back only if the word changed; under
Load-and-Update the load happens at allocation instead.

The table counts its bitmap loads and stores — exactly the quantities
Figure 13 sweeps against HWM and LWM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.config import TrackerConfig
from repro.core.bitmap import DirtyBitmap
from repro.core.policies import AllocationPolicy


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    return bin(value).count("1")


@dataclass
class TableStats:
    """Event counters for one tracking interval (or lifetime)."""

    hits: int = 0
    misses: int = 0
    bitmap_loads: int = 0
    bitmap_stores: int = 0
    elided_stores: int = 0
    hwm_writeouts: int = 0
    lwm_evictions: int = 0
    random_evictions: int = 0
    flush_writeouts: int = 0

    @property
    def memory_ops(self) -> int:
        """Total tracker-generated memory operations."""
        return self.bitmap_loads + self.bitmap_stores

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


@dataclass
class _Entry:
    """One lookup-table entry: accumulated bits for a bitmap word."""

    word_index: int
    value: int = 0
    pops: int = field(default=0, repr=False)  # cached popcount of value
    #: Sequence number of the last update (pseudo-LRU for eviction).
    last_use: int = field(default=0, repr=False)


class LookupTable:
    """Coalescing cache between the SOI filter and the bitmap area."""

    def __init__(
        self,
        config: TrackerConfig,
        policy: AllocationPolicy = AllocationPolicy.ACCUMULATE_AND_APPLY,
        seed: int = 0xC0FFEE,
    ) -> None:
        self.config = config
        self.policy = policy
        self.stats = TableStats()
        self._entries: dict[int, _Entry] = {}
        self._rng = random.Random(seed)
        self._seq = 0  # monotonic update counter for pseudo-LRU

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.config.lookup_table_entries

    # ------------------------------------------------------------------ #
    # Front side: record one dirty granule
    # ------------------------------------------------------------------ #

    def record(self, word_index: int, bit: int, bitmap: DirtyBitmap) -> int:
        """Set *bit* of bitmap word *word_index*; returns memory ops issued.

        This is the per-SOI path of Figure 7: parallel search of the table,
        update on hit, allocation (with possible eviction) on miss, and an
        eager write-out when the entry crosses HWM.
        """
        ops = 0
        entry = self._entries.get(word_index)
        if entry is not None:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            if self.is_full:
                ops += self._evict_one(bitmap)
            entry = _Entry(word_index)
            if self.policy.loads_on_allocation:
                # Load-and-Update: fetch the old word now.
                entry.value = bitmap.load_word(word_index)
                entry.pops = popcount(entry.value)
                self.stats.bitmap_loads += 1
                ops += 1
            self._entries[word_index] = entry

        mask = 1 << bit
        if not entry.value & mask:
            entry.value |= mask
            entry.pops += 1
        self._seq += 1
        entry.last_use = self._seq

        if entry.pops >= self.config.high_water_mark:
            ops += self._write_out(entry, bitmap, reason="hwm")
        return ops

    # ------------------------------------------------------------------ #
    # Back side: write-outs, evictions, flush
    # ------------------------------------------------------------------ #

    def _write_out(self, entry: _Entry, bitmap: DirtyBitmap, reason: str) -> int:
        """Push *entry*'s accumulated bits to the bitmap area; free the entry.

        Returns the number of memory operations issued (loads + stores).
        """
        ops = 0
        if self.policy.loads_on_writeout:
            # Accumulate-and-Apply: load old, merge, store back if changed.
            self.stats.bitmap_loads += 1
            ops += 1
            changed = bitmap.merge_word(entry.word_index, entry.value)
            if changed:
                self.stats.bitmap_stores += 1
                ops += 1
            else:
                self.stats.elided_stores += 1
        else:
            # Load-and-Update: the entry already holds the merged word.
            bitmap.store_word(entry.word_index, entry.value)
            self.stats.bitmap_stores += 1
            ops += 1

        if reason == "hwm":
            self.stats.hwm_writeouts += 1
        elif reason == "lwm":
            self.stats.lwm_evictions += 1
        elif reason == "random":
            self.stats.random_evictions += 1
        else:
            self.stats.flush_writeouts += 1
        del self._entries[entry.word_index]
        return ops

    def _evict_one(self, bitmap: DirtyBitmap) -> int:
        """Make room for a new entry using the LWM policy (Section III-B iii)."""
        lwm = self.config.low_water_mark
        candidates = [e for e in self._entries.values() if e.pops < lwm]
        if candidates:
            # Among LWM-qualifying entries, evict the least-recently-updated:
            # momentary call/return touches leave sparse, stale entries that
            # deserve to go first, while a sparse entry that was updated a
            # moment ago is likely a run still being filled.
            victim = min(candidates, key=lambda e: e.last_use)
            return self._write_out(victim, bitmap, reason="lwm")
        victim = self._rng.choice(list(self._entries.values()))
        return self._write_out(victim, bitmap, reason="random")

    def flush(self, bitmap: DirtyBitmap) -> int:
        """Evict every entry (interval end / context switch); returns mem ops."""
        ops = 0
        for entry in list(self._entries.values()):
            ops += self._write_out(entry, bitmap, reason="flush")
        return ops

    def entries_snapshot(self) -> list[tuple[int, int]]:
        """(word_index, value) pairs, for context-switch state save."""
        return [(e.word_index, e.value) for e in self._entries.values()]
