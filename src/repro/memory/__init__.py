"""Hybrid-memory substrate: addresses, devices, caches, and the hierarchy.

This subpackage models the memory system of Table II in the paper: a cache
hierarchy (L1D/L2/L3, 64-byte lines) in front of a DRAM device and a PCM-like
NVM device.  Timing is a simple but consistent latency/bandwidth model —
sufficient for the paper's metrics, which are ratios of event counts times
latencies rather than cycle-accurate pipeline behaviour.
"""

from repro.memory.address import (
    AddressRange,
    align_down,
    align_up,
    granule_index,
    line_index,
    page_index,
    span_granules,
    span_lines,
    span_pages,
)
from repro.memory.devices import DramDevice, MemoryDevice, NvmDevice
from repro.memory.cache import Cache
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.image import ByteImage
from repro.memory.tlb import Tlb, TlbConfig

__all__ = [
    "AddressRange",
    "align_down",
    "align_up",
    "granule_index",
    "line_index",
    "page_index",
    "span_granules",
    "span_lines",
    "span_pages",
    "MemoryDevice",
    "DramDevice",
    "NvmDevice",
    "Cache",
    "AccessResult",
    "MemoryHierarchy",
    "ByteImage",
    "Tlb",
    "TlbConfig",
]
