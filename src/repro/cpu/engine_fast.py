"""Batched execution engine: the vectorized fast path of the simulator.

:class:`BatchedExecutionEngine` executes the same machine model as the
scalar :class:`~repro.cpu.engine.ExecutionEngine` — cycle for cycle, stat
for stat — but consumes the trace in its native ``TRACE_DTYPE`` array form
and eliminates the per-op Python object overhead that dominates the scalar
loop:

* the op stream is processed in chunks; per chunk, op classification
  (kind, read/write, stack/heap containment), cache-line indices,
  single-line detection, and the full SP trajectory (cumulative CALL/RET
  deltas) are computed as numpy arrays up front;
* the remaining per-op loop touches plain Python ints from ``tolist()``'d
  columns and handles only the inherently sequential residue: cache tag
  state, device write-buffer timing, and mechanism hooks;
* the overwhelmingly common case — a single-line access that hits in L1 —
  is handled inline against the cache's columnar arrays (dict probe, tick
  stamp, dirty bit) without a single method call;
* aggregate statistics (op counts, stack/other read/write counters, the
  interval write log, the interval-minimum SP) are accumulated as numpy
  reductions over chunk slices instead of per-op updates.

What cannot be vectorized is not approximated: cache hit/miss sequences,
NVM write-buffer stalls (which depend on the access's exact cycle), and
mechanism inline costs all flow through the same code paths as the scalar
engine, with ``hierarchy.now`` kept in sync at every stateful call.  The
scalar engine remains the differential oracle; see
``tests/test_engine_equivalence.py`` and ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import numpy as np

from repro.config import CACHE_LINE_BYTES
from repro.cpu.engine import EngineStats, ExecutionEngine, trace_array
from repro.cpu.ops import OpKind
from repro.persistence.none import NoPersistence

_READ = int(OpKind.READ)
_WRITE = int(OpKind.WRITE)
_CALL = int(OpKind.CALL)
_RET = int(OpKind.RET)
_COMPUTE = int(OpKind.COMPUTE)

#: Ops per vectorization chunk.  Large enough to amortize the numpy
#: precompute, small enough to keep the per-chunk arrays cache-resident.
CHUNK_OPS = 4096


class BatchedExecutionEngine(ExecutionEngine):
    """Drop-in engine producing identical results to the scalar reference.

    Construction, configuration, and the :meth:`run` contract are inherited
    unchanged; only the execution strategy differs.  ``run`` accepts a
    :class:`~repro.workloads.trace.Trace`, a ``TRACE_DTYPE`` array, or any
    op sequence (converted once up front).
    """

    def run(
        self,
        ops,
        interval_cycles: int = 0,
        interval_ops: int | None = None,
        final_checkpoint: bool = True,
    ) -> EngineStats:
        if interval_cycles < 0:
            raise ValueError("interval_cycles must be non-negative")
        if interval_ops is not None and interval_ops <= 0:
            raise ValueError("interval_ops must be positive")
        arr = trace_array(ops)
        periodic = bool(interval_cycles) or interval_ops is not None
        next_boundary = self.now + interval_cycles if interval_cycles else None
        ops_in_interval = 0
        if periodic:
            self._start_interval()

        total = len(arr)
        start = 0
        while start < total:
            stop = min(total, start + CHUNK_OPS)
            next_boundary, ops_in_interval = self._run_chunk(
                arr[start:stop],
                interval_cycles,
                interval_ops,
                next_boundary,
                ops_in_interval,
            )
            start = stop

        if periodic and final_checkpoint and ops_in_interval > 0:
            self._end_interval()
        return self.stats

    def _run_chunk(
        self,
        chunk: np.ndarray,
        interval_cycles: int,
        interval_ops: int | None,
        next_boundary: int | None,
        ops_in_interval: int,
    ) -> tuple[int | None, int]:
        n = len(chunk)
        kinds_np = chunk["kind"]
        addrs_np = chunk["address"].astype(np.int64)
        sizes_np = chunk["size"].astype(np.int64)

        stack_start = self.stack_range.start
        stack_end = self.stack_range.end
        line_bytes = CACHE_LINE_BYTES

        # Vectorized classification.  READ/WRITE are the two lowest kinds,
        # so one comparison yields the memory-op mask.
        is_write_np = kinds_np == _WRITE
        mem_np = kinds_np <= _WRITE
        stack_np = mem_np & (addrs_np >= stack_start) & (addrs_np < stack_end)
        stack_write_np = stack_np & is_write_np
        single_np = mem_np & (sizes_np > 0) & (
            addrs_np % line_bytes + sizes_np <= line_bytes
        )
        lines_np = addrs_np // line_bytes

        heap_mech = self.heap_mechanism
        heap_np = None
        if heap_mech is not None:
            heap_range = self.heap_range
            heap_np = (
                mem_np
                & ~stack_np
                & (addrs_np >= heap_range.start)
                & (addrs_np < heap_range.end)
            )

        # SP trajectory: value of the stack pointer after each op.
        delta_np = np.where(
            kinds_np == _CALL,
            -sizes_np,
            np.where(kinds_np == _RET, sizes_np, 0),
        )
        sp_np = self.registers.stack_pointer + np.cumsum(delta_np)

        # A CALL that pushes SP below the stack base raises mid-run; find
        # the first offender (if any) and truncate the loop there.
        overflow_at = -1
        if int(sp_np.min(initial=stack_start)) < stack_start:
            violations = np.nonzero((kinds_np == _CALL) & (sp_np < stack_start))[0]
            if len(violations):
                overflow_at = int(violations[0])

        # Python-int columns for the residual loop.
        kinds = kinds_np.tolist()
        addrs = addrs_np.tolist()
        sizes = sizes_np.tolist()
        stack_flags = stack_np.tolist()
        single_flags = single_np.tolist()
        lines = lines_np.tolist()
        sps = sp_np.tolist()
        heap_flags = heap_np.tolist() if heap_np is not None else None

        # Hot-loop locals.
        hierarchy = self.hierarchy
        l1 = hierarchy.l1
        l1_index_get = l1._index.get
        l1_age = l1._age
        l1_dirty = l1._dirty
        l1_latency = self.config.l1d.latency_cycles
        access_line = hierarchy._access_line
        full_access = hierarchy.access
        tlb = self.tlb
        mechanism = self.mechanism
        mech_trivial = type(mechanism) is NoPersistence
        mech_load = mechanism.on_load
        mech_store = mechanism.on_store
        heap_trivial = heap_mech is None or type(heap_mech) is NoPersistence
        heap_load = heap_mech.on_load if heap_mech is not None else None
        heap_store = heap_mech.on_store if heap_mech is not None else None
        ops_mode = interval_ops is not None
        cycles_mode = next_boundary is not None

        now = self.now
        app = 0
        inline = 0
        l1_hits = 0
        seg = 0  # start of the unflushed segment [seg, i)

        def flush(end: int) -> None:
            """Commit aggregates for ops [seg, end) and sync engine state."""
            nonlocal app, inline, l1_hits, seg
            stats = self.stats
            if end > seg:
                seg_slice = slice(seg, end)
                seg_stack = stack_np[seg_slice]
                seg_write = is_write_np[seg_slice]
                seg_mem = mem_np[seg_slice]
                sw = seg_stack & seg_write
                stack_writes = int(np.count_nonzero(sw))
                stack_reads = int(np.count_nonzero(seg_stack)) - stack_writes
                writes = int(np.count_nonzero(seg_write))
                mem_ops = int(np.count_nonzero(seg_mem))
                stats.stack_writes += stack_writes
                stats.stack_reads += stack_reads
                stats.other_writes += writes - stack_writes
                stats.other_reads += (
                    mem_ops - writes - stack_reads
                )
                if stack_writes:
                    self._interval_writes.extend_array(addrs_np[seg_slice][sw])
                seg_min = int(sp_np[seg_slice].min())
                if seg_min < self._interval_min_sp:
                    self._interval_min_sp = seg_min
                if mech_trivial:
                    mechanism.stats.stores_seen += stack_writes
                    mechanism.stats.loads_seen += stack_reads
                if heap_mech is not None and heap_trivial and heap_np is not None:
                    seg_heap = heap_np[seg_slice]
                    hw = int(np.count_nonzero(seg_heap & seg_write))
                    heap_mech.stats.stores_seen += hw
                    heap_mech.stats.loads_seen += (
                        int(np.count_nonzero(seg_heap)) - hw
                    )
                stats.ops_executed += end - seg
                self.registers.op_index += end - seg
                self.registers.stack_pointer = sps[end - 1]
                seg = end
            stats.app_cycles += app
            stats.inline_cycles += inline
            app = 0
            inline = 0
            if l1_hits:
                l1.stats.hits += l1_hits
                l1_hits = 0
            self.now = now
            hierarchy.now = now

        loop_end = overflow_at if overflow_at >= 0 else n
        i = 0
        while i < loop_end:
            k = kinds[i]
            if k <= _WRITE:
                address = addrs[i]
                size = sizes[i]
                is_write = k == _WRITE
                if tlb is not None:
                    cost = tlb.translate(address, is_write)
                    now += cost
                    app += cost
                if single_flags[i]:
                    slot = l1_index_get(lines[i])
                    if slot is not None:
                        # Inline L1 hit: the dominant case.
                        l1_hits += 1
                        tick = l1._tick + 1
                        l1._tick = tick
                        l1_age[slot] = tick
                        if is_write:
                            l1_dirty[slot] = 1
                        latency = l1_latency
                    else:
                        hierarchy.now = now
                        latency = access_line(
                            lines[i], address, is_write
                        ).latency_cycles
                else:
                    hierarchy.now = now
                    latency = full_access(address, size, is_write).latency_cycles
                now += latency
                app += latency
                if stack_flags[i]:
                    if not mech_trivial:
                        hierarchy.now = now
                        extra = (
                            mech_store(address, size, now)
                            if is_write
                            else mech_load(address, size, now)
                        )
                        if extra:
                            now += extra
                            inline += extra
                elif heap_flags is not None and heap_flags[i]:
                    if not heap_trivial:
                        hierarchy.now = now
                        extra = (
                            heap_store(address, size, now)
                            if is_write
                            else heap_load(address, size, now)
                        )
                        if extra:
                            now += extra
                            inline += extra
            elif k == _COMPUTE:
                cost = sizes[i]
                now += cost
                app += cost
            else:  # CALL / RET (overflowing CALLs were truncated out above)
                now += 1
                app += 1

            if ops_mode:
                ops_in_interval += 1
                if ops_in_interval >= interval_ops:
                    flush(i + 1)
                    self._end_interval()
                    ops_in_interval = 0
                    self._start_interval()
                    now = self.now
            elif cycles_mode:
                # The count still matters here: a trailing partial interval
                # is only committed when ops ran since the last boundary.
                ops_in_interval += 1
                if now >= next_boundary:
                    flush(i + 1)
                    self._end_interval()
                    next_boundary = self.now + interval_cycles
                    ops_in_interval = 0
                    self._start_interval()
                    now = self.now
            i += 1

        if overflow_at >= 0:
            # Replicate the scalar engine exactly: the faulting CALL counts
            # as executed, moves SP (and the interval minimum), charges no
            # cycles, and raises.
            flush(overflow_at + 1)
            sp = sps[overflow_at]
            raise RuntimeError(
                f"stack overflow: SP {sp:#x} below {stack_start:#x}"
            )
        flush(n)
        return next_boundary, ops_in_interval
