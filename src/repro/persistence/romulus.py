"""Romulus adapted to the stack, as the paper implements it (Section IV-A).

Romulus keeps *twin copies* of the protected data in NVM — a *main* copy the
application works on and a *backup* copy that always holds the last
consistent state.  The original is a user-space library; because the stack
is compiler-managed, the paper re-casts it as a hardware-software co-design:

* a hardware component logs ``<address, size>`` for every stack
  modification (a log append per store — into NVM so the log survives);
* at the end of each consistency interval, software walks the log and
  copies each logged range from main to backup.

Crucially the paper notes their implementation performs **no coalescing**:
the software "may copy overlapping addresses" repeatedly, which — combined
with the stack living in NVM — is why Romulus shows the largest overheads in
Figure 8.
"""

from __future__ import annotations

from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    PersistenceMechanism,
)

#: Bytes per hardware log record (<address, size> plus sequencing).
LOG_RECORD_BYTES = 16
#: Software cycles to decode one log record during the copy pass.
LOG_DECODE_CYCLES = 8


class RomulusPersistence(PersistenceMechanism):
    """Twin-copy persistence with a hardware modification log."""

    name = "romulus"
    capabilities = Capabilities(
        achieves_process_persistence=False,
        works_without_compiler_support=True,  # via the hardware interposer
        stack_pointer_aware=False,
        allows_stack_in_dram=False,
    )
    region_in_nvm = True

    def __init__(self) -> None:
        super().__init__()
        #: The per-interval hardware log: (address, size) records in order.
        self._log: list[tuple[int, int]] = []
        self.log_records_total = 0
        self.copied_bytes_total = 0

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        self._log.append((address, size))
        self.log_records_total += 1
        # Hardware appends the record to the NVM-resident log.  The append
        # shares the store's path; charge the NVM write of the record.
        cost = self.hierarchy.nvm.write(LOG_RECORD_BYTES, now)
        self.stats.inline_overhead_cycles += cost
        return cost

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        cycles = 0
        copied = 0
        # Software pass: copy every logged range main -> backup, in log
        # order, without coalescing or de-duplication (per the paper).  Each
        # record is a dependent small NVM read followed by an NVM write —
        # the per-record latency cannot be pipelined away, which is exactly
        # the inefficiency the paper attributes to its Romulus adaptation
        # and why it shows the largest overheads in Figure 8.
        nvm = self.hierarchy.nvm
        for _address, size in self._log:
            cycles += LOG_DECODE_CYCLES
            cycles += nvm.read(size)
            cycles += nvm.write(size, ctx.now + cycles)
            copied += size
        cycles += self.hierarchy.persist_barrier()
        self.copied_bytes_total += copied
        self.stats.checkpoint_bytes.append(copied)
        self.stats.checkpoint_cycles.append(cycles)
        self._log.clear()
        return cycles

    @property
    def pending_log_records(self) -> int:
        return len(self._log)

    def persisted_state(self) -> dict:
        return {
            "kind": "twin-copy-nvm",
            "intervals_committed": self.stats.intervals,
        }
