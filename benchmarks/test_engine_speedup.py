"""Execution-engine speedup matrix — scalar reference vs batched fast path.

Runs the reference trace (quicksort, the call-dense stack workload at the
heart of the paper's stack-persistence studies) through both engine
implementations under every mechanism family and records wall-clock times
plus the speedup ratios:

* **vanilla** (no persistence) and **prosper** are the gated rows: vanilla
  is the exact shape of the ``vanilla_cycles`` baseline every figure
  computes, and Prosper is the paper's headline mechanism, whose per-store
  hooks now ride the batched delivery path.  Both must be at least
  ``MIN_SPEEDUP`` faster batched than scalar.
* the remaining mechanisms (dirtybit, ssp, flush, undo, redo) are
  informational: ssp and the logging family are deliberately *not*
  batch-eligible (their store costs are cycle-dependent), so their rows
  document what the fallback path costs.

Timing uses the **minimum over ``reps`` repetitions** on both sides of
each gated ratio — the minimum is the standard noise-robust estimator for
CI runners with unpredictable scheduling jitter.

Every row must produce identical engine stats between the two engines —
the fast path is only allowed to change *how fast* the simulation runs,
never what it computes (the exhaustive check lives in
``tests/test_engine_equivalence.py``).

The full matrix is exported as one JSON document
(``results/engine_speedup.json`` by default, override with
``REPRO_BENCH_OUT``) so CI can archive it.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.analysis.export import write_json
from repro.cpu.engine import ExecutionEngine
from repro.cpu.engine_fast import BatchedExecutionEngine
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.logging import (
    FlushPersistence,
    RedoLogPersistence,
    UndoLogPersistence,
)
from repro.persistence.none import NoPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.ssp import SspPersistence
from repro.workloads.callstack import quicksort_workload

INTERVAL_CYCLES = 60_000
#: Acceptance floor for the batched engine on the gated rows.
MIN_SPEEDUP = 6.0
#: Repetitions per (mechanism, engine) cell on gated rows; the reported
#: time is the minimum, which shrugs off scheduler noise.
GATED_REPS = 3

MECHANISMS = {
    "vanilla": NoPersistence,
    "prosper": ProsperPersistence,
    "dirtybit": DirtyBitPersistence,
    "ssp": SspPersistence,
    "flush": FlushPersistence,
    "undo": UndoLogPersistence,
    "redo": RedoLogPersistence,
}
#: Rows whose speedup is asserted against MIN_SPEEDUP.
GATED = ("vanilla", "prosper")

_TRACE = None


def _reference_trace():
    """Build the reference trace once; reused by every matrix row."""
    global _TRACE
    if _TRACE is None:
        _TRACE = quicksort_workload(elements=4096, repeats=6, seed=42)
    return _TRACE


def _run_once(engine_cls, mechanism_factory, trace) -> tuple[float, dict]:
    engine = engine_cls(
        stack_range=trace.stack_range,
        mechanism=mechanism_factory(),
        heap_range=trace.heap_range,
    )
    start = time.perf_counter()
    result = engine.run(trace, interval_cycles=INTERVAL_CYCLES)
    return time.perf_counter() - start, dataclasses.asdict(result)


def _time_row(name: str, mechanism_factory) -> dict:
    trace = _reference_trace()
    reps = GATED_REPS if name in GATED else 1
    best = {}
    stats = {}
    for engine_cls in (ExecutionEngine, BatchedExecutionEngine):
        times = []
        for _ in range(reps):
            elapsed, result = _run_once(engine_cls, mechanism_factory, trace)
            times.append(elapsed)
        best[engine_cls] = min(times)
        stats[engine_cls] = result
    identical = stats[BatchedExecutionEngine] == stats[ExecutionEngine]
    assert identical, f"{name}: batched stats diverged from scalar"
    scalar_s = best[ExecutionEngine]
    batched_s = best[BatchedExecutionEngine]
    ops = stats[ExecutionEngine]["ops_executed"]
    return {
        "ops": ops,
        "reps": reps,
        "scalar_s": round(scalar_s, 4),
        "batched_s": round(batched_s, 4),
        "scalar_us_per_op": round(scalar_s / ops * 1e6, 4),
        "batched_us_per_op": round(batched_s / ops * 1e6, 4),
        "speedup": round(scalar_s / batched_s, 2) if batched_s else float("inf"),
        "stats_identical": identical,
        "gated": name in GATED,
    }


def test_engine_speedup_matrix():
    matrix = {name: _time_row(name, factory) for name, factory in MECHANISMS.items()}

    report = {
        "trace": "quicksort",
        "interval_cycles": INTERVAL_CYCLES,
        "min_speedup": MIN_SPEEDUP,
        "gated": list(GATED),
        "mechanisms": matrix,
    }
    out = os.environ.get("REPRO_BENCH_OUT", "results/engine_speedup.json")
    path = write_json(report, out)

    summary = ", ".join(
        f"{name} {row['speedup']:.1f}x" for name, row in matrix.items()
    )
    print(f"\nengine speedup (quicksort): {summary} (report: {path})")

    for name, row in matrix.items():
        assert row["stats_identical"], f"{name}: stats diverged"
    for name in GATED:
        row = matrix[name]
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{name}: batched engine only {row['speedup']:.2f}x faster "
            f"(need {MIN_SPEEDUP}x): scalar {row['scalar_s']:.3f}s "
            f"vs batched {row['batched_s']:.3f}s"
        )
