"""Tests for the persistence base interface, motivation helpers, and
miscellaneous uncovered paths."""

import pytest

from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import Op, OpKind
from repro.experiments.motivation import stack_only
from repro.kernel.layout import AddressSpaceLayout
from repro.kernel.vmem import PageTable
from repro.memory.address import AddressRange
from repro.persistence.base import (
    Capabilities,
    MechanismStats,
    PersistenceMechanism,
)
from repro.workloads.apps import ycsb_mem

STACK = AddressRange(0x7000_0000, 0x7010_0000)


class TestCapabilities:
    def test_as_row_marks(self):
        caps = Capabilities(True, False, True, False)
        assert caps.as_row() == ("yes", "no", "yes", "no")


class TestMechanismStats:
    def test_mean_properties_empty(self):
        stats = MechanismStats()
        assert stats.mean_checkpoint_bytes == 0.0
        assert stats.mean_checkpoint_cycles == 0.0
        assert stats.total_checkpoint_bytes == 0

    def test_mean_properties(self):
        stats = MechanismStats()
        stats.checkpoint_bytes = [10, 30]
        stats.checkpoint_cycles = [100, 200]
        assert stats.mean_checkpoint_bytes == 20
        assert stats.mean_checkpoint_cycles == 150


class TestBaseMechanism:
    def test_hooks_count_events(self):
        mech = PersistenceMechanism()
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        ops = [
            Op(OpKind.WRITE, STACK.start + 8, 8),
            Op(OpKind.READ, STACK.start + 8, 8),
        ]
        engine.run(ops, interval_ops=2)
        assert mech.stats.stores_seen == 1
        assert mech.stats.loads_seen == 1
        assert mech.stats.intervals == 1

    def test_unattached_hierarchy_raises(self):
        with pytest.raises(RuntimeError):
            PersistenceMechanism().hierarchy

    def test_fixed_scale_defaults_to_one(self):
        assert PersistenceMechanism().fixed_scale == 1.0

    def test_persisted_state_empty(self):
        assert PersistenceMechanism().persisted_state() == {}


class TestStackOnly:
    def test_keeps_only_stack_activity(self):
        full = ycsb_mem(target_ops=5_000)
        reduced = stack_only(full)
        assert len(reduced.ops) < len(full.ops)
        for op in reduced.ops:
            if op.is_memory:
                assert full.stack_range.contains(op.address)
            else:
                assert op.kind in (OpKind.CALL, OpKind.RET)

    def test_preserves_sp_balance(self):
        full = ycsb_mem(target_ops=5_000)
        reduced = stack_only(full)
        sp = reduced.stack_range.end
        for op in reduced.ops:
            if op.kind == OpKind.CALL:
                sp -= op.size
            elif op.kind == OpKind.RET:
                sp += op.size
        assert sp == reduced.stack_range.end


class TestEngineProperties:
    def test_user_ipc_excludes_interval_work(self):
        class Expensive(PersistenceMechanism):
            def on_interval_end(self, ctx):
                return 1_000_000

        mech = Expensive()
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        stats = engine.run([Op(OpKind.COMPUTE, size=10)] * 10, interval_ops=5)
        with_interval = stats.ops_executed / stats.total_cycles
        assert stats.user_ipc > with_interval * 100

    def test_user_ipc_zero_when_empty(self):
        engine = ExecutionEngine(stack_range=STACK)
        assert engine.run([]).user_ipc == 0.0


class TestVmemExtras:
    def test_unmap_range(self):
        pt = PageTable()
        pt.map_range(AddressRange(0, 4 * 4096))
        removed = pt.unmap_range(AddressRange(4096, 3 * 4096))
        assert removed == 2
        assert pt.mapped_pages == 2
        assert not pt.is_mapped(4096)

    def test_map_range_idempotent(self):
        pt = PageTable()
        assert pt.map_range(AddressRange(0, 8192)) == 2
        assert pt.map_range(AddressRange(0, 8192)) == 0


class TestLayoutExtras:
    def test_staging_buffer_in_nvm(self):
        layout = AddressSpaceLayout()
        staging = layout.allocate_staging_buffer(64 * 1024)
        assert layout.is_nvm_address(staging.start)
        assert staging.size == 64 * 1024

    def test_nvm_allocations_disjoint(self):
        layout = AddressSpaceLayout()
        stack = layout.allocate_stack(1 << 20)
        pstack = layout.allocate_persistent_stack(stack)
        staging = layout.allocate_staging_buffer(4096)
        assert not pstack.overlaps(staging)
