"""NVM media error model: transient write failures, torn writes, bad blocks.

PCM-like media fails in ways DRAM does not, and resilient checkpoint
systems treat that as first-class (cf. *High Performance Data Persistence
in NVM for Resilient HPC*): writes can fail transiently (resistance drift,
program-verify misses — a retry succeeds), a cache-line write interrupted
by power loss can be **torn** (the device reports success but the stored
bits are garbage, detectable only by a checksum on read-back), and cells
wear out into **sticky bad blocks** that must be remapped onto spares.

:class:`NvmErrorModel` is a seeded, deterministic oracle the
:class:`repro.memory.devices.NvmDevice` consults on each checkpoint write.
The device's reliable-write path retries transient failures with bounded
exponential backoff, remaps sticky bad blocks onto a finite spare pool
(graceful degradation), and surfaces :class:`NvmMediaError` when either
budget is exhausted.  Torn writes are *silent* here — detection belongs to
the CRC32 checksums the checkpoint layer stores alongside staged runs and
metadata records.
"""

from __future__ import annotations

import random

#: Write outcome kinds drawn by the model.
WRITE_OK = "ok"
WRITE_TRANSIENT = "transient"
WRITE_TORN = "torn"
WRITE_BAD_BLOCK = "bad_block"


class NvmMediaError(RuntimeError):
    """Unrecoverable NVM media failure.

    Raised when a write's retry budget is spent on persistent transient
    failures, or when a sticky bad block cannot be remapped because the
    spare-block pool is exhausted.
    """


class NvmErrorModel:
    """Deterministic, seed-driven fault oracle for one NVM device.

    Parameters
    ----------
    seed:
        Seeds the internal RNG; identical seeds reproduce identical fault
        sequences for identical write streams.
    transient_write_rate / torn_write_rate / bad_block_rate:
        Per-write probabilities of each failure class (disjoint draws).
    device_blocks:
        Pseudo-block address space writes are attributed to; small values
        make sticky bad blocks recur quickly.
    spare_blocks:
        Spare pool available for bad-block remapping.
    max_retries:
        Retry budget per write for transient failures and remapped blocks.
    backoff_base_cycles:
        First retry waits this long; each further retry doubles it.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_write_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        bad_block_rate: float = 0.0,
        device_blocks: int = 1024,
        spare_blocks: int = 8,
        max_retries: int = 4,
        backoff_base_cycles: int = 64,
    ) -> None:
        for name, rate in (
            ("transient_write_rate", transient_write_rate),
            ("torn_write_rate", torn_write_rate),
            ("bad_block_rate", bad_block_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if transient_write_rate + torn_write_rate + bad_block_rate > 1.0:
            raise ValueError("failure rates must sum to at most 1")
        self.seed = seed
        self.transient_write_rate = transient_write_rate
        self.torn_write_rate = torn_write_rate
        self.bad_block_rate = bad_block_rate
        self.device_blocks = device_blocks
        self.spare_blocks = spare_blocks
        self.max_retries = max_retries
        self.backoff_base_cycles = backoff_base_cycles
        self._rng = random.Random(seed)
        #: Blocks that have gone sticky-bad (fail every write until remapped).
        self.bad_blocks: set[int] = set()
        #: bad block -> spare block it was remapped onto.
        self.remap_table: dict[int, int] = {}
        self._spares_used = 0

    # ------------------------------------------------------------------ #
    # Fault draws
    # ------------------------------------------------------------------ #

    def draw_write(self) -> tuple[str, int | None]:
        """Classify one write; returns ``(outcome, block)``.

        *block* is only meaningful for :data:`WRITE_BAD_BLOCK` — the sticky
        block the write landed on, which the caller must remap (or fail).
        """
        block = self._rng.randrange(self.device_blocks)
        if block in self.bad_blocks:
            if block not in self.remap_table:
                # Sticky: the block fails every write until remapped.
                return WRITE_BAD_BLOCK, block
            block = self.remap_table[block]  # healthy spare
        draw = self._rng.random()
        if draw < self.bad_block_rate:
            self.bad_blocks.add(block)
            return WRITE_BAD_BLOCK, block
        draw -= self.bad_block_rate
        if draw < self.transient_write_rate:
            return WRITE_TRANSIENT, None
        draw -= self.transient_write_rate
        if draw < self.torn_write_rate:
            return WRITE_TORN, None
        return WRITE_OK, None

    # ------------------------------------------------------------------ #
    # Bad-block management
    # ------------------------------------------------------------------ #

    def mark_bad(self, block: int) -> None:
        """Force *block* sticky-bad (used by tests and wear-out studies)."""
        self.bad_blocks.add(block)

    def remap(self, block: int) -> int:
        """Remap a sticky bad *block* onto a spare; returns the spare id.

        Raises :class:`NvmMediaError` once the spare pool is exhausted —
        the device has degraded past the point of graceful remapping.
        """
        existing = self.remap_table.get(block)
        if existing is not None:
            return existing
        if self._spares_used >= self.spare_blocks:
            raise NvmMediaError(
                f"bad-block remap failed: all {self.spare_blocks} spare "
                f"blocks consumed (block {block})"
            )
        self._spares_used += 1
        spare = self.device_blocks + self._spares_used
        self.remap_table[block] = spare
        return spare

    @property
    def spares_remaining(self) -> int:
        return self.spare_blocks - self._spares_used

    def backoff_cycles(self, attempt: int) -> int:
        """Exponential backoff before retry *attempt* (1-based)."""
        return self.backoff_base_cycles * (2 ** (attempt - 1))
