"""Tests for trace serialization (save/load roundtrip)."""

import numpy as np
import pytest

from repro.workloads.callstack import quicksort_workload
from repro.workloads.serialize import FORMAT_VERSION, load_trace, save_trace
from repro.workloads.synthetic import random_workload


class TestRoundtrip:
    def test_ops_and_layout_preserved(self, tmp_path):
        trace = random_workload(num_writes=500, seed=9)
        path = save_trace(trace, tmp_path / "t")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert loaded.ops == trace.ops
        assert loaded.stack_range == trace.stack_range
        assert loaded.name == trace.name

    def test_heap_range_preserved(self, tmp_path):
        trace = quicksort_workload(elements=64)
        loaded = load_trace(save_trace(trace, tmp_path / "qs.npz"))
        assert loaded.heap_range == trace.heap_range

    def test_missing_heap_roundtrips_as_none(self, tmp_path):
        trace = random_workload(num_writes=10)
        assert trace.heap_range is None
        loaded = load_trace(save_trace(trace, tmp_path / "nh"))
        assert loaded.heap_range is None

    def test_stats_identical_after_reload(self, tmp_path):
        trace = quicksort_workload(elements=128)
        loaded = load_trace(save_trace(trace, tmp_path / "qs2"))
        assert loaded.stats.stack_fraction == trace.stats.stack_fraction
        assert loaded.stats.memory_ops == trace.stats.memory_ops

    def test_version_check(self, tmp_path):
        trace = random_workload(num_writes=10)
        path = save_trace(trace, tmp_path / "v")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(FORMAT_VERSION + 1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)
