"""Tests for repro.faults.nvm_errors and the device reliable-write path:
seeded determinism, retry/backoff accounting, bad-block remapping, torn
writes."""

import pytest

from repro.faults.nvm_errors import (
    WRITE_BAD_BLOCK,
    WRITE_OK,
    WRITE_TORN,
    WRITE_TRANSIENT,
    NvmErrorModel,
    NvmMediaError,
)
from repro.memory.devices import NvmDevice


class ScriptedModel(NvmErrorModel):
    """Error model that replays a fixed outcome script, then succeeds."""

    def __init__(self, outcomes, **kwargs):
        super().__init__(**kwargs)
        self._script = list(outcomes)

    def draw_write(self):
        if self._script:
            return self._script.pop(0)
        return WRITE_OK, None


def clean_write_cycles(size: int) -> int:
    """Cycles one bulk write costs on a pristine device (no error model)."""
    return NvmDevice().bulk_write(size)


class TestErrorModel:
    def test_same_seed_same_fault_sequence(self):
        a = NvmErrorModel(seed=7, transient_write_rate=0.3, torn_write_rate=0.1)
        b = NvmErrorModel(seed=7, transient_write_rate=0.3, torn_write_rate=0.1)
        assert [a.draw_write() for _ in range(64)] == [
            b.draw_write() for _ in range(64)
        ]

    def test_different_seed_different_sequence(self):
        a = NvmErrorModel(seed=0, transient_write_rate=0.5)
        b = NvmErrorModel(seed=1, transient_write_rate=0.5)
        assert [a.draw_write() for _ in range(64)] != [
            b.draw_write() for _ in range(64)
        ]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            NvmErrorModel(transient_write_rate=-0.1)
        with pytest.raises(ValueError):
            NvmErrorModel(transient_write_rate=0.7, torn_write_rate=0.5)

    def test_perfect_media_never_fails(self):
        model = NvmErrorModel(seed=3)
        assert all(model.draw_write() == (WRITE_OK, None) for _ in range(256))

    def test_sticky_bad_block_recurs_until_remapped(self):
        model = NvmErrorModel(seed=0, device_blocks=1)
        model.mark_bad(0)
        assert model.draw_write() == (WRITE_BAD_BLOCK, 0)
        assert model.draw_write() == (WRITE_BAD_BLOCK, 0)  # sticky
        model.remap(0)
        outcome, _ = model.draw_write()  # lands on the healthy spare
        assert outcome == WRITE_OK

    def test_remap_is_idempotent_and_bounded(self):
        model = NvmErrorModel(spare_blocks=2)
        spare = model.remap(11)
        assert model.remap(11) == spare  # same block, same spare
        model.remap(12)
        assert model.spares_remaining == 0
        with pytest.raises(NvmMediaError):
            model.remap(13)

    def test_backoff_doubles_per_attempt(self):
        model = NvmErrorModel(backoff_base_cycles=64)
        assert [model.backoff_cycles(a) for a in (1, 2, 3, 4)] == [
            64,
            128,
            256,
            512,
        ]


class TestReliableWritePath:
    def test_no_model_matches_plain_bulk_write(self):
        device = NvmDevice()
        size = 4096
        expected = clean_write_cycles(size)
        result = device.reliable_bulk_write(size)
        assert result.cycles == expected
        assert result.retries == 0 and not result.torn

    def test_transient_failure_retries_with_backoff_in_cycles(self):
        model = ScriptedModel([(WRITE_TRANSIENT, None), (WRITE_OK, None)])
        device = NvmDevice(error_model=model)
        size = 4096
        result = device.reliable_bulk_write(size)
        # One failed write + one successful retry, plus the first backoff.
        assert result.retries == 1
        assert result.cycles == 2 * clean_write_cycles(size) + model.backoff_cycles(1)
        assert device.retry_count_total == 1
        # Retried traffic is real wear: both writes hit the statistics.
        assert device.stats.writes == 2
        assert device.stats.write_bytes == 2 * size

    def test_retry_budget_exhaustion_raises(self):
        model = ScriptedModel(
            [(WRITE_TRANSIENT, None)] * 10, max_retries=3
        )
        device = NvmDevice(error_model=model)
        with pytest.raises(NvmMediaError):
            device.reliable_bulk_write(4096)
        assert device.retry_count_total == model.max_retries

    def test_bad_block_remapped_then_write_succeeds(self):
        model = ScriptedModel([(WRITE_BAD_BLOCK, 5), (WRITE_OK, None)])
        device = NvmDevice(error_model=model)
        result = device.reliable_bulk_write(4096)
        assert result.remapped_blocks == 1
        assert 5 in model.remap_table
        assert device.remapped_blocks_total == 1

    def test_remap_exhaustion_surfaces_media_error(self):
        model = ScriptedModel([(WRITE_BAD_BLOCK, 7)], spare_blocks=0)
        device = NvmDevice(error_model=model)
        with pytest.raises(NvmMediaError):
            device.reliable_bulk_write(4096)

    def test_torn_write_is_silent_success_with_flag(self):
        model = ScriptedModel([(WRITE_TORN, None)])
        device = NvmDevice(error_model=model)
        size = 4096
        result = device.reliable_bulk_write(size)
        # The device believes the write succeeded: no retries, plain cost.
        assert result.torn
        assert result.retries == 0
        assert result.cycles == clean_write_cycles(size)
        assert device.torn_writes_total == 1
