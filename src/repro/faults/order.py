"""Persist-order oracle: which durable writes actually survive a crash.

The named-crash-point model (:mod:`repro.faults.injector`) assumes that
everything written before the crash point landed in NVM — the neat
"program order is persist order" view.  Real NVM does not work that way:
writes queue in controller buffers and only an explicit flush/commit
barrier (``sfence`` + drain) guarantees durability.  Between barriers, a
power failure may persist **any subset** of the queued writes, and the
write in flight when power drops may additionally land **torn**.

:class:`PersistOrderOracle` layers that model over the checkpoint path as
a small state machine:

* every checkpoint-protocol write that matters for recovery (staging
  descriptor, staged runs, commit markers, metadata records) is
  :meth:`record`-ed into a *pending* set, carrying an ``undo`` callback
  that erases its durable effect and, when the write has byte contents,
  a ``tear`` callback that silently corrupts it;
* a persist barrier (:meth:`barrier` — wired into
  :meth:`repro.memory.devices.NvmDevice.persist_barrier`) retires the
  pending set to *guaranteed durable*; retired writes can never be lost;
* at crash time the fuzzer samples a :class:`PersistPlan` — a subset of
  pending writes to drop plus an optional torn tail on the last surviving
  tearable write — and :meth:`apply_plan` executes it before recovery
  runs.

Because every tracked write targets its own NVM location and barriers
partition writes into epochs, "any subset, in any barrier-respecting
order" collapses to subset sampling: two surviving writes to different
locations are observationally order-free, and a write can never persist
after a barrier that follows it.  The torn tail models the one
order-sensitive residue — the line cut mid-flight.

Import constraints: this module must stay importable from
:mod:`repro.memory.devices` (which the rest of the simulator sits on), so
it depends on nothing above the standard library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class PendingWrite:
    """One durable write issued but not yet retired by a barrier.

    ``undo`` erases the write's durable effect (it never landed); a write
    recorded without an ``undo`` is informational — the oracle counts it
    but never samples it away.  ``tear`` corrupts the write's contents
    silently, the way a line cut mid-flight lands half-old/half-new; only
    the checkpoint layer's checksums can catch it afterwards.
    """

    label: str
    size: int = 0
    undo: Callable[[], None] | None = None
    tear: Callable[[], None] | None = None


@dataclass(frozen=True)
class PersistPlan:
    """A sampled crash outcome over the pending set.

    *dropped* names pending writes that never reached the media; *torn*
    names the one surviving write whose tail was cut.  Plans are
    serializable (:meth:`to_dict`) so a failing schedule can be replayed
    and shrunk deterministically.
    """

    dropped: frozenset[str] = frozenset()
    torn: str | None = None

    @property
    def is_neat(self) -> bool:
        """True for the legacy model: everything written so far landed."""
        return not self.dropped and self.torn is None

    def to_dict(self) -> dict:
        return {"dropped": sorted(self.dropped), "torn": self.torn}

    @classmethod
    def from_dict(cls, data: dict) -> "PersistPlan":
        return cls(frozenset(data.get("dropped", ())), data.get("torn"))


@dataclass
class CrashOutcome:
    """What :meth:`PersistOrderOracle.apply_plan` actually did."""

    pending: list[str] = field(default_factory=list)
    dropped: list[str] = field(default_factory=list)
    torn: str | None = None

    def to_dict(self) -> dict:
        return {
            "pending": self.pending,
            "dropped": self.dropped,
            "torn": self.torn,
        }


#: Per-schedule drop probabilities the fuzzer samples between; 0.0 keeps
#: the legacy neat model in the mix so it stays covered too.
DROP_PROBABILITIES = (0.0, 0.25, 0.5, 0.9)
#: Probability that the last surviving tearable pending write lands torn.
TEAR_PROBABILITY = 0.3


class PersistOrderOracle:
    """Pending/durable state machine over NVM checkpoint writes."""

    def __init__(self) -> None:
        self.pending: list[PendingWrite] = []
        #: Lifetime accounting (for reports, not behaviour).
        self.recorded_total = 0
        self.retired_total = 0
        self.barriers = 0
        #: Anonymous device writes noted for statistics only (demand
        #: traffic, cache writebacks) — not sampled, not undoable.
        self.writes_noted = 0
        self.bytes_noted = 0

    # ------------------------------------------------------------------ #
    # Producer side (checkpoint path)
    # ------------------------------------------------------------------ #

    def record(
        self,
        label: str,
        *,
        undo: Callable[[], None] | None = None,
        tear: Callable[[], None] | None = None,
        size: int = 0,
    ) -> None:
        """Enter one recovery-relevant write into the pending set.

        *label* must be unique within the current barrier epoch — the
        checkpoint layers namespace labels by checkpoint index, and a
        staging buffer is never reused without a barrier first.
        """
        if any(write.label == label for write in self.pending):
            raise ValueError(f"duplicate pending write label: {label}")
        self.pending.append(PendingWrite(label, size, undo, tear))
        self.recorded_total += 1

    def note_write(self, size: int) -> None:
        """Count an anonymous device write (statistics only)."""
        self.writes_noted += 1
        self.bytes_noted += size

    def barrier(self) -> None:
        """Retire the pending set: everything in it is now guaranteed
        durable and can no longer be dropped or torn."""
        self.barriers += 1
        self.retired_total += len(self.pending)
        self.pending.clear()

    def pending_labels(self) -> list[str]:
        return [write.label for write in self.pending]

    # ------------------------------------------------------------------ #
    # Crash side (fuzzer)
    # ------------------------------------------------------------------ #

    def sample_plan(self, rng) -> PersistPlan:
        """Sample one legal crash outcome over the current pending set.

        Each undo-capable pending write is dropped independently with a
        per-schedule probability drawn from :data:`DROP_PROBABILITIES`;
        with probability :data:`TEAR_PROBABILITY` the last surviving
        tearable write lands torn.
        """
        if not self.pending:
            return PersistPlan()
        drop_p = rng.choice(DROP_PROBABILITIES)
        dropped = frozenset(
            write.label
            for write in self.pending
            if write.undo is not None and rng.random() < drop_p
        )
        torn = None
        tearable = [
            write.label
            for write in self.pending
            if write.label not in dropped and write.tear is not None
        ]
        if tearable and rng.random() < TEAR_PROBABILITY:
            torn = tearable[-1]
        return PersistPlan(dropped, torn)

    def apply_plan(self, plan: PersistPlan) -> CrashOutcome:
        """Execute *plan* against the pending set (the power actually
        fails now): dropped writes are undone, the torn write corrupted.
        Returns what happened; the pending set is cleared — after a crash
        there is nothing left in flight.
        """
        outcome = CrashOutcome(pending=self.pending_labels())
        for write in self.pending:
            if write.label in plan.dropped:
                if write.undo is None:
                    raise ValueError(
                        f"pending write {write.label!r} cannot be dropped"
                    )
                write.undo()
                outcome.dropped.append(write.label)
            elif write.label == plan.torn:
                if write.tear is None:
                    raise ValueError(
                        f"pending write {write.label!r} cannot be torn"
                    )
                write.tear()
                outcome.torn = write.label
        self.pending.clear()
        return outcome
