"""Lookup-table entry-allocation policies (Section III-B, design question i).

When a store of interest misses in the lookup table, the tracker must create
an entry for the target bitmap word.  The paper weighs two designs:

* **Accumulate-and-Apply** (chosen): allocate an empty entry instantly and
  accumulate set bits in it; only when the entry is written out (HWM,
  eviction, or flush) is a *load* of the old bitmap value issued, the
  accumulated bits merged in, and the word stored back *if it changed*.
  Allocation never waits on memory.
* **Load-and-Update**: issue the load at allocation time so the entry always
  holds the latest full word; write-out is a plain store.  Saves repeated
  loads when the same word is evicted multiple times in an interval, at the
  cost of delaying allocation (an entry sits "not ready" while its load is
  in flight, and stores to it must queue).

Both are implemented so the design choice can be evaluated as an ablation.
"""

from __future__ import annotations

import enum


class AllocationPolicy(enum.Enum):
    """Which entry-allocation design the lookup table uses."""

    ACCUMULATE_AND_APPLY = "accumulate-and-apply"
    LOAD_AND_UPDATE = "load-and-update"

    @property
    def loads_on_allocation(self) -> bool:
        """True when a miss issues an immediate load of the old word."""
        return self is AllocationPolicy.LOAD_AND_UPDATE

    @property
    def loads_on_writeout(self) -> bool:
        """True when write-out must first fetch the old word to merge."""
        return self is AllocationPolicy.ACCUMULATE_AND_APPLY
