"""Result export: CSV files for downstream plotting.

The paper's artifact emits parsed result files that its plots are built
from; this module provides the equivalent: any list of dataclass rows (the
experiment entry points all return such lists) can be written to CSV with
one call, and a whole experiment sweep can be dumped into a directory.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Iterable, Sequence


def rows_to_dicts(rows: Sequence[object]) -> list[dict]:
    """Convert dataclass instances (or dicts) to plain dicts."""
    out: list[dict] = []
    for row in rows:
        if dataclasses.is_dataclass(row) and not isinstance(row, type):
            out.append(dataclasses.asdict(row))
        elif isinstance(row, dict):
            out.append(dict(row))
        else:
            raise TypeError(
                f"cannot export row of type {type(row).__name__}; "
                "expected a dataclass instance or dict"
            )
    return out


def write_csv(rows: Sequence[object], path: str | Path) -> Path:
    """Write experiment *rows* to *path* as CSV; returns the path written.

    Column order follows the first row's field order.  Non-scalar values
    (lists, tuples) are serialized with ';' separators so the file stays
    one-row-per-record.
    """
    dicts = rows_to_dicts(rows)
    if not dicts:
        raise ValueError("no rows to export")
    path = Path(path)
    if path.suffix != ".csv":
        path = path.with_suffix(path.suffix + ".csv")
    path.parent.mkdir(parents=True, exist_ok=True)

    fieldnames = list(dicts[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in dicts:
            writer.writerow({k: _serialize(v) for k, v in record.items()})
    return path


def _serialize(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return ";".join(str(v) for v in value)
    return value


def export_experiment(
    name: str, rows: Iterable[object], out_dir: str | Path = "results"
) -> Path:
    """Write one experiment's rows to ``<out_dir>/<name>.csv``."""
    return write_csv(list(rows), Path(out_dir) / name)


def write_json(payload: object, path: str | Path) -> Path:
    """Write a JSON result document (benchmark reports, harness summaries).

    The companion to :func:`write_csv` for results that are not flat
    tables — nested timing reports, per-figure failure summaries.  Keys
    are written sorted so diffs between runs stay readable.
    """
    import json

    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(path.suffix + ".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
