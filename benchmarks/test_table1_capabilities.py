"""Table I — capability matrix of the memory-persistence mechanisms.

Regenerates the comparison table from each mechanism's declared
capabilities: process persistence, compiler independence, SP awareness,
and whether the stack may stay in DRAM.
"""

from repro.analysis.report import render_table
from repro.persistence import (
    DirtyBitPersistence,
    FlushPersistence,
    ProsperPersistence,
    RedoLogPersistence,
    RomulusPersistence,
    SspPersistence,
    UndoLogPersistence,
    WriteProtectPersistence,
)

MECHANISMS = [
    FlushPersistence,
    UndoLogPersistence,
    RedoLogPersistence,
    RomulusPersistence,
    SspPersistence,
    WriteProtectPersistence,
    DirtyBitPersistence,
    ProsperPersistence,
]


def build_matrix():
    rows = []
    for cls in MECHANISMS:
        rows.append([cls.name] + list(cls.capabilities.as_row()))
    return rows


def test_table1_capabilities(benchmark):
    rows = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Table I: mechanism capability matrix",
            [
                "mechanism",
                "process persistence",
                "no compiler support",
                "SP aware",
                "stack in DRAM",
            ],
            rows,
        )
    )
    by_name = {r[0]: tuple(r[1:]) for r in rows}
    # Prosper is the only row with every capability.
    assert by_name["prosper"] == ("yes", "yes", "yes", "yes")
    # The checkpoint family allows the stack in DRAM; NVM-resident ones don't.
    assert by_name["dirtybit"][3] == "yes"
    assert by_name["ssp"][3] == "no"
    assert by_name["flush"][3] == "no"
