"""Experiment supervisor: figures -> run units -> supervised execution.

This is the orchestration layer between the CLI and the run units
declared in :mod:`repro.harness.figures`:

* decompose the requested figures into their units;
* replay units already journaled ``ok`` when resuming (``--resume``);
* execute the rest — inline for ``--jobs 1`` (the legacy serial path,
  byte-identical output), or on the supervised
  :class:`~repro.harness.pool.WorkerPool` for ``--jobs N``;
* journal every terminal unit outcome to the run manifest;
* assemble each figure's table as soon as all of its units are
  accounted for, and hand finished figures to the caller **in figure
  order** regardless of unit completion order.

Failure handling is graceful degradation: a figure whose units partially
failed still renders its completed rows, followed by a
``DEGRADED (k/n runs failed: ...)`` annotation.  A ``KeyboardInterrupt``
surfaces as :class:`HarnessInterrupted` carrying partially assembled
figures (annotated ``INTERRUPTED``) so the CLI can flush partial
artifacts before exiting.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.harness import cache as cache_mod
from repro.harness.errors import (
    PERMANENT,
    WORKLOAD_ERROR,
    UnitFailure,
    backoff_delay,
    should_retry,
)
from repro.harness.figures import FIGURES, RunUnit, execute_unit
from repro.harness.journal import RunJournal, UnitRecord, load_manifest
from repro.harness.pool import UnitOutcome, WorkerPool


@dataclass
class HarnessOptions:
    """Execution knobs shared by the CLI flags and the test harness."""

    ops: int = 60_000
    jobs: int = 1
    timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 8.0
    manifest_path: Path | None = None
    resume: bool = False
    cache_dir: str | None = None
    progress: Callable[[str], None] = lambda _msg: None


@dataclass
class FigureOutcome:
    """One fully accounted figure: its text plus failure bookkeeping."""

    name: str
    text: str
    raw_rows: list | None
    failures: list[UnitFailure] = field(default_factory=list)
    units_total: int = 0
    units_completed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures and self.units_completed == self.units_total


class HarnessInterrupted(Exception):
    """Raised on ctrl-C; carries partially assembled figures."""

    def __init__(self, partial: list[FigureOutcome]) -> None:
        super().__init__("interrupted")
        self.partial = partial


def run_figures(
    names: list[str],
    opts: HarnessOptions,
    on_figure: Callable[[FigureOutcome], None] | None = None,
) -> list[FigureOutcome]:
    """Run *names* under *opts*; figures are delivered in list order.

    ``on_figure`` (when given) is invoked once per figure as soon as the
    figure is complete *and* every figure before it in *names* has been
    delivered, so streaming output matches the serial ordering exactly.
    """
    for name in names:
        if name not in FIGURES:
            raise KeyError(f"unknown figure {name!r}")
    units_by_figure: dict[str, list[RunUnit]] = {
        name: FIGURES[name].enumerate_units(opts.ops) for name in names
    }

    journal, replayed = _open_journal(names, opts)
    results: dict[tuple[str, str], UnitOutcome] = dict(replayed)
    to_run = [
        unit
        for name in names
        for unit in units_by_figure[name]
        if (name, unit.unit_id) not in results
    ]

    outcomes: list[FigureOutcome] = []
    emitted = 0  # figures delivered so far (prefix of *names*)

    def emit_ready(interrupted: bool = False) -> None:
        nonlocal emitted
        while emitted < len(names):
            name = names[emitted]
            units = units_by_figure[name]
            done = sum(1 for u in units if (name, u.unit_id) in results)
            if done < len(units) and not interrupted:
                return
            if interrupted and done == 0:
                return  # nothing of this figure ran; nothing to flush
            outcome = _assemble_figure(
                name, units, results, opts.ops, interrupted=interrupted
            )
            outcomes.append(outcome)
            emitted += 1
            if on_figure is not None:
                on_figure(outcome)

    def record(outcome: UnitOutcome) -> None:
        results[(outcome.figure, outcome.unit_id)] = outcome
        if journal is not None:
            journal.record_unit(
                UnitRecord(
                    figure=outcome.figure,
                    unit_id=outcome.unit_id,
                    status="ok" if outcome.ok else "failed",
                    attempts=outcome.attempts,
                    elapsed_s=outcome.elapsed_s,
                    payload=outcome.payload,
                    failure=outcome.failure.to_json() if outcome.failure else None,
                )
            )
        emit_ready()

    temp_cache = None
    try:
        cache_dir = opts.cache_dir
        if cache_dir is None and opts.manifest_path is not None:
            cache_dir = str(opts.manifest_path) + ".cache"
        if cache_dir is None and opts.jobs > 1:
            temp_cache = tempfile.TemporaryDirectory(prefix="repro-harness-cache-")
            cache_dir = temp_cache.name
        cache_mod.activate(cache_mod.ResultCache(cache_dir))

        try:
            if opts.jobs == 1:
                for unit in to_run:
                    record(_run_unit_inline(unit, opts))
            else:
                pool = WorkerPool(
                    jobs=opts.jobs,
                    timeout_s=opts.timeout_s,
                    max_retries=opts.max_retries,
                    backoff_base_s=opts.backoff_base_s,
                    backoff_cap_s=opts.backoff_cap_s,
                    cache_dir=cache_dir,
                    on_outcome=record,
                    progress=opts.progress,
                )
                pool.run(to_run)
            emit_ready()  # everything replayed, nothing to run
        except KeyboardInterrupt:
            emit_ready(interrupted=True)
            raise HarnessInterrupted(outcomes) from None
    finally:
        cache_mod.activate(None)
        if journal is not None:
            journal.close()
        if temp_cache is not None:
            temp_cache.cleanup()
    return outcomes


# --------------------------------------------------------------------- #


def _open_journal(
    names: list[str], opts: HarnessOptions
) -> tuple[RunJournal | None, dict[tuple[str, str], UnitOutcome]]:
    """Open the manifest journal and collect replayable unit outcomes."""
    if opts.manifest_path is None:
        return None, {}
    path = Path(opts.manifest_path)
    replayed: dict[tuple[str, str], UnitOutcome] = {}
    had_meta = False
    if opts.resume:
        state = load_manifest(path)
        if state.meta is not None:
            RunJournal.check_meta(state, opts.ops, names)
            had_meta = True
            # Units journaled ok replay from their stored payloads;
            # failed and missing units re-execute.
            for (figure, unit_id), rec in state.completed().items():
                replayed[(figure, unit_id)] = UnitOutcome(
                    figure=figure,
                    unit_id=unit_id,
                    payload=rec.payload,
                    failure=None,
                    attempts=rec.attempts,
                    elapsed_s=rec.elapsed_s,
                )
    else:
        path.unlink(missing_ok=True)
    journal = RunJournal(path)
    if not had_meta:
        journal.write_meta(opts.ops, names)
    return journal, replayed


def _run_unit_inline(unit: RunUnit, opts: HarnessOptions) -> UnitOutcome:
    """The serial (``--jobs 1``) path: run a unit in-process with retries.

    Wall-clock timeouts require a supervising process and so apply only
    to ``--jobs >= 2``; the inline path keeps the legacy serial behavior
    (and its byte-identical output) while still classifying and retrying
    workload errors.
    """
    started = time.monotonic()
    attempt = 0
    while True:
        try:
            payload = execute_unit(
                unit.figure, unit.params, attempt=attempt, unit_id=unit.unit_id
            )
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            exc_type = type(exc).__name__
            if should_retry(WORKLOAD_ERROR, exc_type, attempt, opts.max_retries):
                delay = backoff_delay(
                    attempt, opts.backoff_base_s, opts.backoff_cap_s
                )
                opts.progress(
                    f"{unit.figure}/{unit.unit_id} {exc_type}: {exc} — "
                    f"retry {attempt + 1}/{opts.max_retries} in {delay:.1f}s"
                )
                time.sleep(delay)
                attempt += 1
                continue
            failure = UnitFailure(
                figure=unit.figure,
                unit_id=unit.unit_id,
                kind=WORKLOAD_ERROR,
                severity=PERMANENT,
                detail=f"{exc_type}: {exc}",
                attempts=attempt + 1,
            )
            return UnitOutcome(
                figure=unit.figure,
                unit_id=unit.unit_id,
                payload=None,
                failure=failure,
                attempts=attempt + 1,
                elapsed_s=time.monotonic() - started,
            )
        return UnitOutcome(
            figure=unit.figure,
            unit_id=unit.unit_id,
            payload=payload,
            failure=None,
            attempts=attempt + 1,
            elapsed_s=time.monotonic() - started,
        )


def _assemble_figure(
    name: str,
    units: list[RunUnit],
    results: dict[tuple[str, str], UnitOutcome],
    ops: int,
    interrupted: bool = False,
) -> FigureOutcome:
    """Fold unit payloads (in enumeration order) into the figure's text."""
    payloads: dict[str, dict] = {}
    failures: list[UnitFailure] = []
    for unit in units:
        outcome = results.get((name, unit.unit_id))
        if outcome is None:
            continue  # interrupted before this unit ran
        if outcome.ok:
            payloads[unit.unit_id] = outcome.payload or {}
        elif outcome.failure is not None:
            failures.append(outcome.failure)
    output = FIGURES[name].assemble(
        ops, payloads, [f.reason for f in failures]
    )
    text = output.text
    if failures:
        reasons = "; ".join(f.reason for f in failures)
        text += (
            f"\nDEGRADED ({len(failures)}/{len(units)} runs failed: {reasons})"
        )
    accounted = len(payloads) + len(failures)
    if interrupted and accounted < len(units):
        text += f"\nINTERRUPTED ({accounted}/{len(units)} runs completed)"
    return FigureOutcome(
        name=name,
        text=text,
        raw_rows=output.raw_rows,
        failures=failures,
        units_total=len(units),
        units_completed=len(payloads),
    )
