#!/usr/bin/env python3
"""Multi-core persistence: per-core trackers, process-wide checkpoints.

Runs four persistent threads across one and two cores.  Each core has its
own Prosper dirty tracker (the paper's per-hardware-thread design); a
process-wide checkpoint quiesces every core's tracker, captures every
thread's registers and dirty stack data, and the whole process survives a
crash regardless of where each thread ran.

Run:  python examples/multicore_processes.py
"""

import numpy as np

from repro.cpu.ops import Op, OpKind
from repro.kernel.multicore import MultiCoreSimulation


def build(num_cores: int) -> MultiCoreSimulation:
    sim = MultiCoreSimulation(
        [[Op(OpKind.COMPUTE, size=1)] for _ in range(4)],
        num_cores=num_cores,
        quantum_ops=128,
        checkpoint_every_rounds=3,
    )
    for core in sim.cores:
        for slot, (thread, _, _) in enumerate(core.queue):
            rng = np.random.default_rng(thread.tid)
            frame = thread.stack.size // 2
            ops = [Op(OpKind.CALL, size=frame)]
            base = thread.stack.end - frame
            for off in (rng.integers(0, frame // 8, size=500) * 8):
                ops.append(Op(OpKind.WRITE, base + int(off), 8))
            core.queue[slot] = (thread, ops, 0)
    return sim


def main() -> None:
    single = build(num_cores=1)
    s1 = single.run()
    dual = build(num_cores=2)
    s2 = dual.run()

    print("four persistent threads, 500 stack writes each")
    print(f"1 core : wall={s1.wall_cycles:>9} cycles  "
          f"checkpoints={s1.checkpoints}  switches={s1.switches}")
    print(f"2 cores: wall={s2.wall_cycles:>9} cycles  "
          f"checkpoints={s2.checkpoints}  switches={s2.switches}")
    print(f"speedup from the second core: {s1.wall_cycles / s2.wall_cycles:.2f}x")

    # Crash the dual-core run and recover everything.
    expected = {t.tid: t.registers.op_index for t in dual.process.iter_threads()}
    dual.crash()
    report = dual.recover()
    restored = {t.tid: t.registers.op_index for t in dual.process.iter_threads()}
    print(f"\ncrash + recovery: resumed from checkpoint "
          f"{report.resumed_from_sequence}")
    for tid in sorted(expected):
        marker = "ok" if expected[tid] == restored[tid] else "MISMATCH"
        print(f"  thread {tid}: op {restored[tid]} / {expected[tid]} [{marker}]")
    assert expected == restored


if __name__ == "__main__":
    main()
