"""Tests for the NVM endurance analysis."""

import math

import pytest

from repro.analysis.endurance import EnduranceReport, endurance_report
from repro.config import setup_i
from repro.memory.hierarchy import MemoryHierarchy


def report(nvm_bytes=1000, writes=10, dirty=100, cycles=3_000_000_000):
    return EnduranceReport(
        mechanism="x",
        nvm_write_bytes=nvm_bytes,
        nvm_writes=writes,
        app_dirty_bytes=dirty,
        elapsed_cycles=cycles,
    )


class TestEnduranceReport:
    def test_write_amplification(self):
        assert report(nvm_bytes=500, dirty=100).write_amplification == 5.0

    def test_amplification_with_no_dirty_data(self):
        assert report(nvm_bytes=0, dirty=0).write_amplification == 0.0
        assert math.isinf(report(nvm_bytes=10, dirty=0).write_amplification)

    def test_bandwidth(self):
        # 1e6 bytes over one second at 3 GHz = 1 MB/s.
        r = report(nvm_bytes=1_000_000, cycles=3_000_000_000)
        assert r.write_bandwidth_mbps == pytest.approx(1.0)

    def test_zero_cycles(self):
        assert report(cycles=0).write_bandwidth_mbps == 0.0
        assert math.isinf(report(nvm_bytes=0, cycles=0).lifetime_years())

    def test_lifetime_monotone_in_write_volume(self):
        light = report(nvm_bytes=1_000)
        heavy = report(nvm_bytes=1_000_000)
        assert light.lifetime_years() > heavy.lifetime_years()

    def test_lifetime_scales_with_endurance(self):
        base = report()
        tougher = EnduranceReport(
            "x", base.nvm_write_bytes, base.nvm_writes, base.app_dirty_bytes,
            base.elapsed_cycles, cell_endurance=base.cell_endurance * 10
        )
        assert tougher.lifetime_years() == pytest.approx(
            base.lifetime_years() * 10
        )

    def test_no_writes_lives_forever(self):
        assert math.isinf(report(nvm_bytes=0).lifetime_years())


class TestFromHierarchy:
    def test_reads_device_counters(self):
        h = MemoryHierarchy(setup_i())
        h.nvm.write(64)
        h.nvm.write(64)
        r = endurance_report("m", h, app_dirty_bytes=64, elapsed_cycles=100)
        assert r.nvm_writes == 2
        assert r.nvm_write_bytes == 128
        assert r.mechanism == "m"

    def test_no_nvm_machine(self):
        h = MemoryHierarchy(setup_i())
        h.nvm = None
        r = endurance_report("m", h, 0, 0)
        assert r.nvm_write_bytes == 0
