"""Common interface for all memory-persistence mechanisms.

The execution engine drives a mechanism through four hooks:

* :meth:`PersistenceMechanism.on_load` / :meth:`~PersistenceMechanism.on_store`
  — called for every demand access to the region the mechanism covers;
  returns extra cycles charged to the application (critical-path cost such
  as a clwb, a log append, or tracker interference).
* :meth:`~PersistenceMechanism.on_interval_start` /
  :meth:`~PersistenceMechanism.on_interval_end` — called at consistency /
  checkpoint interval boundaries with an :class:`IntervalContext`; returns
  cycles spent (dirty-metadata preparation and the checkpoint itself).

Mechanisms also declare whether the region they protect must live in NVM
(``region_in_nvm``): Romulus, SSP and the logging primitives keep the
protected data in NVM, while checkpoint mechanisms (Dirtybit, Prosper) leave
it in DRAM — one of the paper's central arguments (Table I, "Allows stack in
DRAM").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.memory.address import AddressRange

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.engine import ExecutionEngine


@dataclass(frozen=True)
class Capabilities:
    """Table I capability matrix for one mechanism."""

    achieves_process_persistence: bool
    works_without_compiler_support: bool
    stack_pointer_aware: bool
    allows_stack_in_dram: bool

    def as_row(self) -> tuple[str, str, str, str]:
        """Render as check/cross marks like Table I."""
        mark = lambda b: "yes" if b else "no"  # noqa: E731 - tiny local helper
        return (
            mark(self.achieves_process_persistence),
            mark(self.works_without_compiler_support),
            mark(self.stack_pointer_aware),
            mark(self.allows_stack_in_dram),
        )


@dataclass
class IntervalContext:
    """Everything a mechanism may need at an interval boundary."""

    interval_index: int
    now: int
    #: SP value at the moment the interval ends (stack grows down).
    final_sp: int
    #: Lowest SP observed during the interval — the maximum active stack
    #: extent, which Prosper hardware tracks and shares with the OS.
    min_sp: int
    region: AddressRange


@dataclass
class MechanismStats:
    """Counters shared by all mechanisms; subclasses may extend."""

    stores_seen: int = 0
    loads_seen: int = 0
    intervals: int = 0
    #: Bytes copied to NVM at checkpoints (checkpoint "size").
    checkpoint_bytes: list[int] = field(default_factory=list)
    #: Cycles spent inside on_interval_end (checkpoint "time").
    checkpoint_cycles: list[int] = field(default_factory=list)
    #: Cycles added on the critical path by on_load/on_store.
    inline_overhead_cycles: int = 0

    @property
    def total_checkpoint_bytes(self) -> int:
        return sum(self.checkpoint_bytes)

    @property
    def total_checkpoint_cycles(self) -> int:
        return sum(self.checkpoint_cycles)

    @property
    def mean_checkpoint_bytes(self) -> float:
        return (
            self.total_checkpoint_bytes / len(self.checkpoint_bytes)
            if self.checkpoint_bytes
            else 0.0
        )

    @property
    def mean_checkpoint_cycles(self) -> float:
        return (
            self.total_checkpoint_cycles / len(self.checkpoint_cycles)
            if self.checkpoint_cycles
            else 0.0
        )


class PersistenceMechanism:
    """Base class: a no-op mechanism that only counts events.

    Subclasses override the hooks they need and must set :attr:`name` and
    :attr:`capabilities`.
    """

    name = "base"
    capabilities = Capabilities(
        achieves_process_persistence=False,
        works_without_compiler_support=True,
        stack_pointer_aware=False,
        allows_stack_in_dram=True,
    )
    #: True when the protected region must be allocated in NVM.
    region_in_nvm = False
    #: True when the mechanism supports the batched hook protocol below:
    #: the engine may then deliver whole runs of consecutive demand accesses
    #: through :meth:`on_store_batch` / :meth:`on_load_batch` instead of one
    #: hook call per access.  A mechanism may only opt in when its hooks are
    #: *now-independent* — the inline cost of each access must not depend on
    #: the cycle count at which the hook is invoked (no deadlines, no NVM
    #: write-buffer drains keyed on ``now``) — so that deferring the hook to
    #: the end of a run charges exactly the same cycles.  Order within a
    #: batch is preserved, and the engine never reorders stores relative to
    #: each other; loads are delivered as aggregate counts and must not
    #: influence store-side behavior.
    supports_batching = False

    def __init__(self) -> None:
        self.stats = MechanismStats()
        self.engine: "ExecutionEngine | None" = None
        self.region: AddressRange | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, engine: "ExecutionEngine", region: AddressRange) -> None:
        """Bind the mechanism to an engine and the region it protects."""
        self.engine = engine
        self.region = region

    @property
    def hierarchy(self):
        if self.engine is None:
            raise RuntimeError(f"{self.name} is not attached to an engine")
        return self.engine.hierarchy

    @property
    def fixed_scale(self) -> float:
        """Scale for fixed per-wall-clock-event costs (see ExecutionEngine)."""
        return self.engine.fixed_cost_scale if self.engine is not None else 1.0

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def on_load(self, address: int, size: int, now: int) -> int:
        """Demand load inside the region; returns extra critical-path cycles."""
        self.stats.loads_seen += 1
        return 0

    def on_store(self, address: int, size: int, now: int) -> int:
        """Demand store inside the region; returns extra critical-path cycles."""
        self.stats.stores_seen += 1
        return 0

    def on_load_batch(self, addresses: np.ndarray, sizes: np.ndarray, now: int) -> int:
        """Batched form of :meth:`on_load` for a run of consecutive loads.

        Must behave exactly like calling ``on_load`` once per (address,
        size) pair in order, with *now* being the cycle count at delivery
        (the end of the run).  Only invoked when :attr:`supports_batching`
        is True.  Returns the summed extra critical-path cycles.
        """
        self.stats.loads_seen += len(addresses)
        return 0

    def on_store_batch(self, addresses: np.ndarray, sizes: np.ndarray, now: int) -> int:
        """Batched form of :meth:`on_store` for a run of consecutive stores.

        Same contract as :meth:`on_load_batch`, for stores.
        """
        self.stats.stores_seen += len(addresses)
        return 0

    def store_cost_bound_array(self, addresses: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Per-store upper bound on the cycles :meth:`on_store` could return.

        The engine uses these bounds to decide how long it may keep
        deferring hook delivery without risking a missed interval boundary:
        it flushes the pending batch as soon as the accumulated bound could
        reach the next boundary.  Bounds must dominate the true per-store
        cost in *every* reachable mechanism state.  The base mechanism
        charges nothing inline, so the bound is zero.
        """
        return np.zeros(len(addresses), dtype=np.int64)

    def on_interval_start(self, ctx: IntervalContext) -> int:
        """Prepare for a new tracking interval; returns cycles spent."""
        return 0

    def on_interval_end(self, ctx: IntervalContext) -> int:
        """Commit/checkpoint the interval; returns cycles spent."""
        self.stats.intervals += 1
        return 0

    # ------------------------------------------------------------------ #
    # Recovery interface
    # ------------------------------------------------------------------ #

    def persisted_state(self) -> dict:
        """Opaque description of what survives a crash (for recovery tests).

        Checkpoint mechanisms return their last committed snapshot metadata;
        in-place NVM mechanisms return the live region.  The base class has
        nothing persistent.
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
