"""The tracker's coalescing lookup table (Section III-B, Figure 7).

A small fully-associative structure whose entries are tuples of
``<bitmap word address, accumulated 32-bit bitmap value>``.  Its job is to
absorb the burst of bitmap updates that stack writes would otherwise
generate, issuing a *bitmap store* to memory only when:

1. an entry's popcount reaches the **high-water mark (HWM)** — eager
   write-out of dense entries;
2. an entry is **evicted** for capacity — victims are chosen among entries
   whose popcount is below the **low-water mark (LWM)** (momentarily-touched
   call/return frames), falling back to a random victim when none qualify;
3. the OS requests a **flush** at the end of a checkpoint interval or on a
   context switch.

Under the Accumulate-and-Apply policy each write-out first issues a load of
the old bitmap word, merges, and stores back only if the word changed; under
Load-and-Update the load happens at allocation instead.

The table counts its bitmap loads and stores — exactly the quantities
Figure 13 sweeps against HWM and LWM.

Storage is columnar: entry fields live in flat numpy arrays
(``word``/``value``/``pops``/``last_use``) indexed by slot, with a
word→slot dict for the associative probe.  That keeps the per-record path
free of per-entry object allocation and lets :meth:`LookupTable.record_batch`
and :meth:`LookupTable.flush` process whole runs of updates as array
operations.  All observable behavior — stats, eviction choices, the RNG
stream of random evictions, bitmap contents — is identical to the
historical per-``_Entry``-dataclass implementation.
"""

from __future__ import annotations

import random

import numpy as np

from repro.config import TrackerConfig
from repro.core.bitmap import DirtyBitmap
from repro.core.bitops import popcount_int, popcount_u32
from repro.core.policies import AllocationPolicy

from dataclasses import dataclass


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer.

    Thin wrapper over the shared 16-bit-LUT helper
    (:func:`repro.core.bitops.popcount_int`), kept for API compatibility.
    """
    return popcount_int(value)


@dataclass
class TableStats:
    """Event counters for one tracking interval (or lifetime)."""

    hits: int = 0
    misses: int = 0
    bitmap_loads: int = 0
    bitmap_stores: int = 0
    elided_stores: int = 0
    hwm_writeouts: int = 0
    lwm_evictions: int = 0
    random_evictions: int = 0
    flush_writeouts: int = 0

    @property
    def memory_ops(self) -> int:
        """Total tracker-generated memory operations."""
        return self.bitmap_loads + self.bitmap_stores

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class LookupTable:
    """Coalescing cache between the SOI filter and the bitmap area."""

    def __init__(
        self,
        config: TrackerConfig,
        policy: AllocationPolicy = AllocationPolicy.ACCUMULATE_AND_APPLY,
        seed: int = 0xC0FFEE,
    ) -> None:
        self.config = config
        self.policy = policy
        self.stats = TableStats()
        capacity = config.lookup_table_entries
        # Columnar entry storage, indexed by slot.  ``_slot_of`` preserves
        # entry *insertion order* (dict ordering), which the eviction paths
        # rely on to match the historical implementation exactly.
        self._word = np.zeros(capacity, dtype=np.int64)
        self._value = np.zeros(capacity, dtype=np.int64)
        self._pops = np.zeros(capacity, dtype=np.int64)
        self._last_use = np.zeros(capacity, dtype=np.int64)
        self._slot_of: dict[int, int] = {}
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._rng = random.Random(seed)
        self._seq = 0  # monotonic update counter for pseudo-LRU

    def __len__(self) -> int:
        return len(self._slot_of)

    @property
    def is_full(self) -> bool:
        return len(self._slot_of) >= self.config.lookup_table_entries

    # ------------------------------------------------------------------ #
    # Front side: record dirty granules
    # ------------------------------------------------------------------ #

    def record(self, word_index: int, bit: int, bitmap: DirtyBitmap) -> int:
        """Set *bit* of bitmap word *word_index*; returns memory ops issued.

        This is the per-SOI path of Figure 7: parallel search of the table,
        update on hit, allocation (with possible eviction) on miss, and an
        eager write-out when the entry crosses HWM.
        """
        ops = 0
        stats = self.stats
        slot = self._slot_of.get(word_index)
        if slot is not None:
            stats.hits += 1
        else:
            stats.misses += 1
            if self.is_full:
                ops += self._evict_one(bitmap)
            slot = self._free.pop()
            value = 0
            pops = 0
            if self.policy.loads_on_allocation:
                # Load-and-Update: fetch the old word now.
                value = bitmap.load_word(word_index)
                pops = popcount_int(value)
                stats.bitmap_loads += 1
                ops += 1
            self._slot_of[word_index] = slot
            self._word[slot] = word_index
            self._value[slot] = value
            self._pops[slot] = pops

        value = int(self._value[slot])
        mask = 1 << bit
        if not value & mask:
            self._value[slot] = value | mask
            self._pops[slot] += 1
        self._seq += 1
        self._last_use[slot] = self._seq

        if self._pops[slot] >= self.config.high_water_mark:
            ops += self._write_out(slot, bitmap, reason="hwm")
        return ops

    def record_batch(
        self, word_indices: np.ndarray, bits: np.ndarray, bitmap: DirtyBitmap
    ) -> int:
        """Record a whole run of (word, bit) updates; returns memory ops.

        Semantically identical to calling :meth:`record` once per pair in
        order.  The common case — no entry crossing HWM even after all the
        new bits, and enough free slots that no eviction can occur — commits
        as a handful of array operations: hits/misses are counted per first
        occurrence, absent words allocate in first-touch order (preserving
        the dict insertion order and free-slot sequence of the sequential
        path), and each entry's value/popcount/last-use lands in one fancy
        assignment.  Runs that could write out or evict fall back to the
        exact sequential path.
        """
        n = len(word_indices)
        if n == 0:
            return 0
        uniq, inverse = np.unique(word_indices, return_inverse=True)
        slot_of = self._slot_of
        uniq_list = uniq.tolist()
        n_uniq = len(uniq_list)
        slots = [slot_of.get(w) for w in uniq_list]
        missing = [j for j, s in enumerate(slots) if s is None]
        if missing and (
            len(slot_of) + len(missing) > self.config.lookup_table_entries
        ):
            # The table would overflow mid-run: evictions (and their RNG
            # draws / LRU scans) are order-sensitive — replay sequentially.
            return self._record_seq(word_indices, bits, bitmap)

        acc = np.zeros(n_uniq, dtype=np.int64)
        np.bitwise_or.at(acc, inverse, np.int64(1) << bits)
        if missing:
            loads_on_alloc = self.policy.loads_on_allocation
            base = np.empty(n_uniq, dtype=np.int64)
            for j, s in enumerate(slots):
                if s is not None:
                    base[j] = self._value[s]
                elif loads_on_alloc:
                    # Peek only — charged below iff the fast path commits.
                    base[j] = bitmap.load_word(uniq_list[j])
                else:
                    base[j] = 0
            new_values = base | acc
        else:
            new_values = self._value[np.asarray(slots, dtype=np.int64)] | acc
        new_pops = popcount_u32(new_values)
        if int(new_pops.max()) >= self.config.high_water_mark:
            # An entry would cross HWM somewhere inside the run; the eager
            # write-out (and what follows it) is order-sensitive.
            return self._record_seq(word_indices, bits, bitmap)

        stats = self.stats
        ops = 0
        if missing:
            # Allocate absent words in order of their first occurrence, so
            # dict insertion order and the free-slot pop sequence match the
            # sequential path exactly.
            if len(missing) > 1:
                first_pos = np.full(n_uniq, n, dtype=np.int64)
                np.minimum.at(first_pos, inverse, np.arange(n, dtype=np.int64))
                missing.sort(key=lambda j: first_pos[j])
            for j in missing:
                slot = self._free.pop()
                word = uniq_list[j]
                slot_of[word] = slot
                self._word[slot] = word
                slots[j] = slot
            if self.policy.loads_on_allocation:
                stats.bitmap_loads += len(missing)
                ops = len(missing)
            stats.misses += len(missing)
            stats.hits += n - len(missing)
        else:
            stats.hits += n
        slots_arr = np.asarray(slots, dtype=np.int64)
        # Each entry's last_use becomes the sequence number of its final
        # touch in the run.
        self._value[slots_arr] = new_values
        self._pops[slots_arr] = new_pops
        last_pos = np.empty(n_uniq, dtype=np.int64)
        last_pos[inverse] = np.arange(n, dtype=np.int64)
        self._last_use[slots_arr] = self._seq + last_pos + 1
        self._seq += n
        return ops

    def _record_seq(
        self, word_indices: np.ndarray, bits: np.ndarray, bitmap: DirtyBitmap
    ) -> int:
        """Order-exact fallback: one :meth:`record` call per pair."""
        ops = 0
        rec = self.record
        for word, bit in zip(word_indices.tolist(), bits.tolist()):
            ops += rec(word, bit, bitmap)
        return ops

    # ------------------------------------------------------------------ #
    # Back side: write-outs, evictions, flush
    # ------------------------------------------------------------------ #

    def _write_out(self, slot: int, bitmap: DirtyBitmap, reason: str) -> int:
        """Push one slot's accumulated bits to the bitmap area; free the slot.

        Returns the number of memory operations issued (loads + stores).
        """
        ops = 0
        stats = self.stats
        word_index = int(self._word[slot])
        if self.policy.loads_on_writeout:
            # Accumulate-and-Apply: load old, merge, store back if changed.
            stats.bitmap_loads += 1
            ops += 1
            changed = bitmap.merge_word(word_index, int(self._value[slot]))
            if changed:
                stats.bitmap_stores += 1
                ops += 1
            else:
                stats.elided_stores += 1
        else:
            # Load-and-Update: the entry already holds the merged word.
            bitmap.store_word(word_index, int(self._value[slot]))
            stats.bitmap_stores += 1
            ops += 1

        if reason == "hwm":
            stats.hwm_writeouts += 1
        elif reason == "lwm":
            stats.lwm_evictions += 1
        elif reason == "random":
            stats.random_evictions += 1
        else:
            stats.flush_writeouts += 1
        del self._slot_of[word_index]
        self._free.append(slot)
        return ops

    def _evict_one(self, bitmap: DirtyBitmap) -> int:
        """Make room for a new entry using the LWM policy (Section III-B iii)."""
        lwm = self.config.low_water_mark
        # Among LWM-qualifying entries, evict the least-recently-updated:
        # momentary call/return touches leave sparse, stale entries that
        # deserve to go first, while a sparse entry that was updated a
        # moment ago is likely a run still being filled.
        victim_slot = -1
        victim_use = -1
        for slot in self._slot_of.values():
            if self._pops[slot] < lwm:
                use = int(self._last_use[slot])
                if victim_slot < 0 or use < victim_use:
                    victim_slot = slot
                    victim_use = use
        if victim_slot >= 0:
            return self._write_out(victim_slot, bitmap, reason="lwm")
        # Same draw as the historical ``rng.choice(list(entries.values()))``:
        # one index into the insertion-ordered entry list.
        victim_slot = self._rng.choice(list(self._slot_of.values()))
        return self._write_out(victim_slot, bitmap, reason="random")

    def flush(self, bitmap: DirtyBitmap) -> int:
        """Evict every entry (interval end / context switch); returns mem ops.

        All resident entries merge into the bitmap in one vectorized pass;
        entries hold distinct words, so the write-outs are independent and
        the per-entry changed/elided accounting reduces to array compares.
        """
        n = len(self._slot_of)
        if n == 0:
            return 0
        stats = self.stats
        slots = np.fromiter(self._slot_of.values(), dtype=np.int64, count=n)
        words = self._word[slots]
        values = self._value[slots]
        if self.policy.loads_on_writeout:
            changed = bitmap.merge_words(words, values)
            stats.bitmap_loads += n
            stats.bitmap_stores += changed
            stats.elided_stores += n - changed
            ops = n + changed
        else:
            bitmap.store_words(words, values)
            stats.bitmap_stores += n
            ops = n
        stats.flush_writeouts += n
        self._slot_of.clear()
        capacity = self.config.lookup_table_entries
        self._free = list(range(capacity - 1, -1, -1))
        return ops

    def entries_snapshot(self) -> list[tuple[int, int]]:
        """(word_index, value) pairs, for context-switch state save."""
        return [
            (int(self._word[slot]), int(self._value[slot]))
            for slot in self._slot_of.values()
        ]
