"""Tests for repro.memory.devices: DRAM/NVM timing and write buffering."""

import pytest

from repro.config import DramConfig, NvmConfig
from repro.memory.devices import DramDevice, NvmDevice


class TestDram:
    def test_read_latency(self):
        dram = DramDevice()
        assert dram.read(64) == DramConfig().read_latency_cycles

    def test_stats_accumulate(self):
        dram = DramDevice()
        dram.read(64)
        dram.read(64)
        dram.write(64)
        assert dram.stats.reads == 2
        assert dram.stats.writes == 1
        assert dram.stats.read_bytes == 128

    def test_bulk_read_scales_with_size(self):
        dram = DramDevice()
        small = dram.bulk_read(64)
        large = dram.bulk_read(64 * 1024)
        assert large > small

    def test_bulk_zero_is_free(self):
        dram = DramDevice()
        assert dram.bulk_read(0) == 0
        assert dram.bulk_write(0) == 0

    def test_bulk_latency_scale(self):
        dram = DramDevice()
        full = dram.bulk_read(4096, latency_scale=1.0)
        scaled = dram.bulk_read(4096, latency_scale=0.0)
        assert full - scaled == dram.read_latency_cycles

    def test_stream_cycles_linear(self):
        dram = DramDevice()
        assert dram.stream_cycles(2048) == pytest.approx(
            2 * dram.stream_cycles(1024), abs=1
        )

    def test_stats_reset(self):
        dram = DramDevice()
        dram.read(64)
        dram.stats.reset()
        assert dram.stats.reads == 0


class TestNvm:
    def test_slower_than_dram(self):
        nvm, dram = NvmDevice(), DramDevice()
        assert nvm.read_latency_cycles > dram.read_latency_cycles
        assert nvm.write_latency_cycles > nvm.read_latency_cycles

    def test_buffered_write_is_cheap_when_empty(self):
        nvm = NvmDevice()
        # First write enters the buffer: admission cost only.
        assert nvm.write(64, now=0) < nvm.write_latency_cycles

    def test_write_buffer_backpressure(self):
        nvm = NvmDevice()
        costs = [nvm.write(64, now=0) for _ in range(100)]
        # Once the 48-entry buffer fills, stalls appear.
        assert max(costs[50:]) > costs[0]
        assert nvm.write_buffer_stalls > 0

    def test_drain_relieves_backpressure(self):
        nvm = NvmDevice()
        for _ in range(60):
            nvm.write(64, now=0)
        stalled = nvm.write(64, now=0)
        # Much later, the buffer has drained.
        relaxed = nvm.write(64, now=10_000_000)
        assert relaxed < stalled

    def test_persist_barrier_waits_for_occupancy(self):
        nvm = NvmDevice()
        assert nvm.persist_barrier(now=0) == 0
        nvm.write(64, now=0)
        wait = nvm.persist_barrier(now=0)
        assert wait > 0
        # After the barrier the buffer is empty again.
        assert nvm.persist_barrier(now=0) == 0

    def test_bulk_write_bandwidth_below_dram(self):
        nvm, dram = NvmDevice(), DramDevice()
        assert nvm.bulk_write(1 << 20) > dram.bulk_write(1 << 20)

    def test_custom_config(self):
        cfg = NvmConfig(write_latency_ns=900.0)
        nvm = NvmDevice(cfg)
        assert nvm.write_latency_cycles == 2700
