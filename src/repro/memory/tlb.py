"""TLB and page-table-walker timing model.

Dirty tracking in contemporary systems "depends upon the information
gathered during virtual to physical address translation" (Section II-B):
the hardware page-table walker (PTW) sets accessed/dirty bits as a side
effect of translation.  This model supplies that substrate:

* a set-associative **TLB** over page numbers with LRU replacement;
* a fixed **PTW cost** charged on TLB misses;
* the **dirty-bit write-back**: the first store to a page whose PTE dirty
  bit is clear makes the PTW re-walk with a locked read-modify-write of
  the PTE — the (small) hardware cost behind the Dirtybit scheme, which
  recurs once per page per tracking interval after the OS clears the bits.

The TLB is optional on the execution engine (``SystemConfig.tlb``); the
unit tests and the TLB ablation exercise it, while the calibrated paper
experiments run without it (the paper's normalized results divide it out).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.config import PAGE_BYTES


@dataclass(frozen=True)
class TlbConfig:
    """Geometry and latencies of the TLB/PTW model."""

    entries: int = 64
    associativity: int = 4
    #: Cycles of a full page-table walk on a TLB miss.
    walk_cycles: int = 30
    #: Extra cycles for the PTW's locked PTE update when it must set the
    #: dirty bit (first write to a clean page).
    dirty_update_cycles: int = 12
    page_bytes: int = PAGE_BYTES

    @property
    def num_sets(self) -> int:
        return max(1, self.entries // self.associativity)


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    dirty_updates: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class _TlbEntry:
    """Cached translation: tracks the PTE dirty bit to elide PTW updates."""

    dirty: bool = False


class Tlb:
    """Set-associative TLB with LRU replacement and dirty-bit semantics."""

    def __init__(self, config: TlbConfig | None = None) -> None:
        self.config = config or TlbConfig()
        self.stats = TlbStats()
        self._sets: list[OrderedDict[int, _TlbEntry]] = [
            OrderedDict() for _ in range(self.config.num_sets)
        ]

    def _set_for(self, page: int) -> OrderedDict[int, _TlbEntry]:
        return self._sets[page % self.config.num_sets]

    def translate(self, address: int, is_write: bool) -> int:
        """Translate one access; returns the cycles charged.

        A hit with matching dirty state is free (overlapped with the L1
        access); a miss pays the walk; a store to a page whose cached PTE
        dirty bit is clear pays the dirty update.
        """
        page = address // self.config.page_bytes
        tlb_set = self._set_for(page)
        entry = tlb_set.get(page)
        cycles = 0
        if entry is None:
            self.stats.misses += 1
            cycles += self.config.walk_cycles
            if len(tlb_set) >= self.config.associativity:
                tlb_set.popitem(last=False)
            entry = _TlbEntry()
            tlb_set[page] = entry
        else:
            self.stats.hits += 1
            tlb_set.move_to_end(page)
        if is_write and not entry.dirty:
            entry.dirty = True
            self.stats.dirty_updates += 1
            cycles += self.config.dirty_update_cycles
        return cycles

    def clear_dirty_bits(self) -> int:
        """OS cleared PTE dirty bits (new tracking interval): drop cached
        dirty state so the next store per page pays the PTW update again.
        Returns the number of entries touched."""
        touched = 0
        for tlb_set in self._sets:
            for entry in tlb_set.values():
                if entry.dirty:
                    entry.dirty = False
                    touched += 1
        return touched

    def flush(self) -> None:
        """Full TLB invalidation (address-space switch)."""
        for tlb_set in self._sets:
            tlb_set.clear()

    @property
    def resident_entries(self) -> int:
        return sum(len(s) for s in self._sets)
