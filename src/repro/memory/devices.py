"""Backing-store device models: DRAM and PCM-like NVM.

The paper's hybrid machine (Setup-I) keeps application state in DRAM and
checkpoints in NVM.  The NVM model captures the two properties that matter
for the evaluation:

* **asymmetric latency** — reads a few times slower than DRAM, writes far
  slower still, so mechanisms that keep the stack in NVM (Romulus, SSP,
  flush/undo/redo) pay dearly for the stack's write intensity;
* **limited write buffering** — a 48-entry write buffer absorbs bursts but
  back-pressures when full, so bursty persist traffic degrades further.

Both devices account simple statistics (access counts, bytes moved) used by
the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CACHE_LINE_BYTES, DramConfig, NvmConfig
from repro.faults.nvm_errors import (
    WRITE_BAD_BLOCK,
    WRITE_OK,
    WRITE_TORN,
    NvmErrorModel,
    NvmMediaError,
)


@dataclass
class DeviceStats:
    """Counters accumulated by a memory device."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0


@dataclass(frozen=True)
class ReliableWriteResult:
    """Outcome of one checkpoint write through the reliable-write path.

    *cycles* includes every retried write and its exponential backoff, so
    media errors show up in the reported checkpoint cost.  *torn* flags a
    silently corrupted write — the device reported success, and only the
    checkpoint layer's checksums can catch it at recovery.
    """

    cycles: int
    retries: int = 0
    torn: bool = False
    remapped_blocks: int = 0


class MemoryDevice:
    """Base class for timing models of a memory device.

    Subclasses provide fixed per-access latencies; :meth:`read` / :meth:`write`
    return the latency in CPU cycles for an access of the given size and
    update statistics.  Bulk transfers (checkpoint copies) should use
    :meth:`bulk_read` / :meth:`bulk_write`, which charge a bandwidth-based
    cost instead of a per-line latency chain.
    """

    name = "memory"

    def __init__(
        self,
        read_latency_cycles: int,
        write_latency_cycles: int,
        bandwidth_gbps: float,
        freq_hz: int = 3_000_000_000,
    ) -> None:
        self.read_latency_cycles = read_latency_cycles
        self.write_latency_cycles = write_latency_cycles
        self.bandwidth_gbps = bandwidth_gbps
        self.freq_hz = freq_hz
        self.stats = DeviceStats()
        # Cycles needed to stream one byte at peak bandwidth.
        self._cycles_per_byte = freq_hz / (bandwidth_gbps * 1e9)

    def read(self, size: int = CACHE_LINE_BYTES) -> int:
        """Latency in cycles of a demand read of *size* bytes."""
        self.stats.reads += 1
        self.stats.read_bytes += size
        return self.read_latency_cycles

    def write(self, size: int = CACHE_LINE_BYTES) -> int:
        """Latency in cycles of a demand write of *size* bytes."""
        self.stats.writes += 1
        self.stats.write_bytes += size
        return self.write_latency_cycles

    def stream_cycles(self, size: int) -> int:
        """Bandwidth-limited cycles to stream *size* bytes (no latency part)."""
        if size <= 0:
            return 0
        return round(size * self._cycles_per_byte)

    def bulk_read(self, size: int, latency_scale: float = 1.0) -> int:
        """Cycles to stream *size* bytes out of the device.

        Charged as one access latency plus bandwidth-limited streaming; this
        models the OS copying a coalesced dirty run during a checkpoint.
        *latency_scale* rescales the fixed latency portion — the experiment
        runner uses it to keep fixed per-event costs consistent with its
        compressed wall clock (see repro.experiments.runner).
        """
        if size <= 0:
            return 0
        self.stats.reads += 1
        self.stats.read_bytes += size
        return round(self.read_latency_cycles * latency_scale) + self.stream_cycles(size)

    def bulk_write(self, size: int, latency_scale: float = 1.0) -> int:
        """Cycles to stream *size* bytes into the device."""
        if size <= 0:
            return 0
        self.stats.writes += 1
        self.stats.write_bytes += size
        return round(self.write_latency_cycles * latency_scale) + self.stream_cycles(size)


class DramDevice(MemoryDevice):
    """DDR4-2400-like volatile memory (Table II)."""

    name = "dram"

    def __init__(self, config: DramConfig | None = None, freq_hz: int = 3_000_000_000):
        config = config or DramConfig()
        super().__init__(
            config.read_latency_cycles,
            config.write_latency_cycles,
            config.bandwidth_gbps,
            freq_hz,
        )
        self.config = config


@dataclass
class _WriteBuffer:
    """Drain-rate model of the NVM write buffer.

    Writes enter the buffer instantly while it has space; the device drains
    one entry per write latency.  When the buffer is full an incoming write
    stalls until an entry drains, which is how bursty persist traffic (e.g.
    per-store clwb in the flush baseline) sees far worse latency than the
    nominal device write time.
    """

    entries: int
    drain_cycles: int
    occupancy: int = 0
    next_drain_at: int = 0
    stall_cycles_total: int = 0

    def push(self, now: int) -> int:
        """Admit one write at cycle *now*; return the stall cycles incurred."""
        # Drain completed entries since we last looked.
        if self.occupancy and now >= self.next_drain_at:
            drained = 1 + (now - self.next_drain_at) // self.drain_cycles
            self.occupancy = max(0, self.occupancy - drained)
            self.next_drain_at = now + self.drain_cycles
        stall = 0
        if self.occupancy >= self.entries:
            # Wait for the oldest entry to drain.
            stall = max(0, self.next_drain_at - now)
            self.occupancy -= 1
            self.next_drain_at += self.drain_cycles
        if self.occupancy == 0:
            self.next_drain_at = now + stall + self.drain_cycles
        self.occupancy += 1
        self.stall_cycles_total += stall
        return stall


class NvmDevice(MemoryDevice):
    """PCM-like byte-addressable NVM with read/write buffering (Table II)."""

    name = "nvm"

    def __init__(
        self,
        config: NvmConfig | None = None,
        freq_hz: int = 3_000_000_000,
        error_model: NvmErrorModel | None = None,
    ):
        config = config or NvmConfig()
        super().__init__(
            config.read_latency_cycles,
            config.write_latency_cycles,
            config.bandwidth_gbps,
            freq_hz,
        )
        self.config = config
        self._write_buffer = _WriteBuffer(
            entries=config.write_buffer_entries,
            drain_cycles=max(1, config.write_latency_cycles // config.write_banks),
        )
        #: Optional media fault oracle; None = perfect media (the default,
        #: preserving the timing behaviour every experiment was built on).
        self.error_model = error_model
        #: Optional persist-order oracle (:mod:`repro.faults.order`); when
        #: attached, demand writes are noted for accounting and every
        #: persist barrier retires the oracle's pending set to
        #: guaranteed-durable.  None (the default) changes nothing.
        self.order_oracle = None
        #: Lifetime accounting of the reliable-write path.
        self.retry_count_total = 0
        self.torn_writes_total = 0
        self.remapped_blocks_total = 0

    def write(self, size: int = CACHE_LINE_BYTES, now: int = 0) -> int:
        """Latency of a persist write, including write-buffer back-pressure.

        *now* is the current simulation cycle; callers that do not track
        global time may leave it at 0, degrading gracefully to a
        buffer-occupancy-only model.
        """
        self.stats.writes += 1
        self.stats.write_bytes += size
        if self.order_oracle is not None:
            self.order_oracle.note_write(size)
        stall = self._write_buffer.push(now)
        # Entering the buffer is fast; the visible cost is buffer admission
        # plus any stall.  A small constant admission cost stands in for the
        # on-DIMM controller path.
        admission = max(4, self.write_latency_cycles // 8)
        return admission + stall

    def persist_barrier(self, now: int = 0) -> int:
        """Cycles to drain the write buffer (sfence + pending persists).

        A barrier is also the durability point of the persist-order model:
        an attached order oracle retires its pending writes here, whether
        or not the timing-level write buffer happens to be occupied.
        """
        if self.order_oracle is not None:
            self.order_oracle.barrier()
        buf = self._write_buffer
        if buf.occupancy == 0:
            return 0
        done_at = buf.next_drain_at + (buf.occupancy - 1) * buf.drain_cycles
        wait = max(0, done_at - now)
        buf.occupancy = 0
        return wait

    def reliable_bulk_write(
        self, size: int, latency_scale: float = 1.0
    ) -> ReliableWriteResult:
        """Checkpoint-path bulk write with media-error handling.

        With no :attr:`error_model` attached this is exactly
        :meth:`bulk_write` (same cycles, same statistics).  With one, each
        write is classified by the model:

        * **transient** failures are retried with bounded exponential
          backoff; the retried traffic and backoff cycles are charged (and
          do show up in NVM endurance accounting — retries are real writes);
        * **sticky bad blocks** are remapped onto the spare pool and the
          write retried; spare exhaustion raises :class:`NvmMediaError`;
        * **torn** writes succeed as far as the device can tell — the
          result's ``torn`` flag models corruption the checkpoint layer
          must catch via its checksums;
        * spending the whole retry budget raises :class:`NvmMediaError`.
        """
        if size <= 0:
            return ReliableWriteResult(0)
        cycles = self.bulk_write(size, latency_scale)
        model = self.error_model
        if model is None:
            return ReliableWriteResult(cycles)
        retries = 0
        remapped = 0
        torn = False
        attempt = 0
        while True:
            outcome, block = model.draw_write()
            if outcome == WRITE_OK:
                break
            if outcome == WRITE_TORN:
                torn = True
                self.torn_writes_total += 1
                break
            if outcome == WRITE_BAD_BLOCK:
                model.remap(block)  # NvmMediaError once spares run out
                remapped += 1
                self.remapped_blocks_total += 1
            attempt += 1
            if attempt > model.max_retries:
                raise NvmMediaError(
                    f"NVM write of {size} bytes still failing after "
                    f"{model.max_retries} retries"
                )
            retries += 1
            self.retry_count_total += 1
            cycles += model.backoff_cycles(attempt)
            cycles += self.bulk_write(size, latency_scale)
        return ReliableWriteResult(cycles, retries, torn, remapped)

    @property
    def write_buffer_stalls(self) -> int:
        return self._write_buffer.stall_cycles_total
