#!/usr/bin/env python3
"""Quickstart: persist a program stack with Prosper.

Builds a synthetic PageRank-like workload, runs it under the Prosper
checkpoint mechanism with 10 ms consistency intervals, and prints the
headline numbers: execution-time overhead, checkpoint sizes, and what the
hardware tracker did.

Run:  python examples/quickstart.py
"""

from repro import ProsperPersistence, run_mechanism
from repro.analysis.report import format_bytes
from repro.workloads import gapbs_pr


def main() -> None:
    # 1. A workload: a synthetic model of GAPBS PageRank's memory trace
    #    (~70 % of memory operations hit the stack).
    trace = gapbs_pr(target_ops=60_000)
    print(f"workload: {trace.name}, {len(trace)} operations, "
          f"{trace.stats.stack_fraction:.0%} stack ops")

    # 2. The mechanism: Prosper's hardware dirty tracker + OS checkpoints.
    mechanism = ProsperPersistence()

    # 3. Run with periodic checkpoints every 10 (paper-)milliseconds.
    result = run_mechanism(trace, mechanism, interval_paper_ms=10.0)

    print(f"\nexecution time vs no persistence: {result.normalized_time:.3f}x")
    print(f"checkpoints taken:                {mechanism.stats.intervals}")
    print(f"mean checkpoint size:             "
          f"{format_bytes(mechanism.stats.mean_checkpoint_bytes)}")
    print(f"total data persisted:             "
          f"{format_bytes(mechanism.stats.total_checkpoint_bytes)}")

    tracker = mechanism.tracker.stats
    print("\nProsper hardware tracker activity:")
    print(f"  lookup-table hits / misses:     {tracker.hits} / {tracker.misses}")
    print(f"  bitmap loads / stores:          "
          f"{tracker.bitmap_loads} / {tracker.bitmap_stores}")
    print(f"  HWM write-outs:                 {tracker.hwm_writeouts}")
    print(f"  LWM / random evictions:         "
          f"{tracker.lwm_evictions} / {tracker.random_evictions}")


if __name__ == "__main__":
    main()
