"""Figure 13 — lookup-table sensitivity to the HWM and LWM thresholds.

Replays the mcf and SSSP stack store streams through the bare tracker,
sweeping the high-water mark (LWM fixed at 4) and the low-water mark
(HWM fixed at 24), and counts tracker-issued bitmap loads and stores.
Paper shape: SSSP (spatial locality) issues fewer ops as HWM grows and is
insensitive to LWM; mcf (scattered temporaries) issues more ops as HWM
grows and benefits from a larger LWM.
"""

from collections import defaultdict

from repro.analysis.report import render_table
from repro.experiments import overhead


def test_fig13_watermarks(benchmark):
    cells = benchmark.pedantic(
        overhead.fig13_watermark_sensitivity,
        kwargs={"target_ops": 80_000},
        rounds=1,
        iterations=1,
    )
    hwm_rows = defaultdict(dict)
    lwm_rows = defaultdict(dict)
    for c in cells:
        if c.lwm == 4:
            hwm_rows[c.workload][c.hwm] = (c.bitmap_loads, c.bitmap_stores)
        if c.hwm == 24:
            lwm_rows[c.workload][c.lwm] = (c.bitmap_loads, c.bitmap_stores)

    print()
    for title, rows, key in (
        ("Figure 13a/c: bitmap ops vs HWM (LWM=4)", hwm_rows, "HWM"),
        ("Figure 13b/d: bitmap ops vs LWM (HWM=24)", lwm_rows, "LWM"),
    ):
        table = []
        for workload in sorted(rows):
            for threshold in sorted(rows[workload]):
                loads, stores = rows[workload][threshold]
                table.append([workload, threshold, loads, stores])
        print(render_table(title, ["workload", key, "loads", "stores"], table))
        print()

    sssp = {h: sum(v) for h, v in hwm_rows["g500_sssp"].items()}
    mcf = {h: sum(v) for h, v in hwm_rows["605.mcf_s"].items()}
    assert sssp[max(sssp)] < sssp[min(sssp)], "SSSP should improve with HWM"
    assert mcf[max(mcf)] > mcf[min(mcf)] * 0.95, "mcf should not improve with HWM"

    mcf_lwm = {lwm: sum(v) for lwm, v in lwm_rows["605.mcf_s"].items()}
    assert mcf_lwm[max(mcf_lwm)] <= mcf_lwm[min(mcf_lwm)] * 1.05
