"""Composition of per-region persistence mechanisms (Figure 9).

The paper's full-memory-state experiment runs one mechanism on the heap and
another on the stack — e.g. SSP for the heap with Prosper for the stack.
The execution engine already routes hooks by region (stack vs heap), so this
module mostly provides a convenient factory plus a synthetic "combined"
statistics view for the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.persistence.base import PersistenceMechanism


@dataclass(frozen=True)
class CombinedStats:
    """Merged view over a stack mechanism and a heap mechanism."""

    stack_checkpoint_bytes: int
    heap_checkpoint_bytes: int
    stack_inline_cycles: int
    heap_inline_cycles: int

    @property
    def total_checkpoint_bytes(self) -> int:
        return self.stack_checkpoint_bytes + self.heap_checkpoint_bytes


class CombinedPersistence:
    """A (heap mechanism, stack mechanism) pair with a shared label.

    The pair is handed to the experiment runner, which attaches each
    mechanism to its region.  Instances are intentionally lightweight — the
    engine drives the two mechanisms directly.
    """

    def __init__(
        self,
        stack: PersistenceMechanism,
        heap: PersistenceMechanism,
        name: str | None = None,
    ) -> None:
        self.stack = stack
        self.heap = heap
        stack_label = getattr(stack, "variant_name", stack.name)
        heap_label = getattr(heap, "variant_name", heap.name)
        self.name = name or f"{heap_label}+{stack_label}"

    def stats(self) -> CombinedStats:
        return CombinedStats(
            stack_checkpoint_bytes=self.stack.stats.total_checkpoint_bytes,
            heap_checkpoint_bytes=self.heap.stats.total_checkpoint_bytes,
            stack_inline_cycles=self.stack.stats.inline_overhead_cycles,
            heap_inline_cycles=self.heap.stats.inline_overhead_cycles,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CombinedPersistence {self.name}>"
