"""Micro-operation vocabulary for the trace-driven engine.

A workload is a sequence of :class:`Op` records.  The vocabulary is
deliberately small — it matches what the paper's trace-based analysis needs:

* ``READ`` / ``WRITE`` — data accesses with an address, a size, and a flag
  for whether the address falls in the stack segment (precomputed by the
  workload generators for speed; the engine re-derives it when absent).
* ``CALL`` / ``RET`` — stack-pointer movement.  A ``CALL`` pushes a frame of
  ``size`` bytes (SP moves down); a ``RET`` pops it (SP moves up).  The
  engine uses these to track the *active stack region*, the quantity behind
  SP awareness (Section II-A).
* ``COMPUTE`` — ``size`` ALU cycles with no memory traffic, used by the
  Normal/Poisson micro-benchmarks whose compute blocks increment a register
  a thousand times between bursts of stack writes.

Traces can also be represented in bulk as numpy structured arrays
(see :mod:`repro.workloads.trace`), with this module defining the dtype.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class OpKind(enum.IntEnum):
    """Discriminator for trace records."""

    READ = 0
    WRITE = 1
    CALL = 2
    RET = 3
    COMPUTE = 4


@dataclass(frozen=True)
class Op:
    """One micro-operation.

    ``address`` is meaningful for READ/WRITE; ``size`` is bytes for memory
    ops, frame bytes for CALL/RET, and ALU cycles for COMPUTE.
    """

    kind: OpKind
    address: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"op size must be non-negative, got {self.size}")

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.READ, OpKind.WRITE)


#: Numpy dtype for bulk trace storage: (kind, address, size).
TRACE_DTYPE = np.dtype(
    [("kind", np.uint8), ("address", np.uint64), ("size", np.uint32)]
)


def ops_to_array(ops: list[Op]) -> np.ndarray:
    """Pack a list of :class:`Op` into a ``TRACE_DTYPE`` array."""
    arr = np.empty(len(ops), dtype=TRACE_DTYPE)
    arr["kind"] = [op.kind for op in ops]
    arr["address"] = [op.address for op in ops]
    arr["size"] = [op.size for op in ops]
    return arr


_OP_KINDS = tuple(OpKind)


def array_to_ops(arr: np.ndarray) -> list[Op]:
    """Unpack a ``TRACE_DTYPE`` array into :class:`Op` records."""
    kinds = _OP_KINDS
    return [
        Op(kinds[k], a, s)
        for k, a, s in zip(
            arr["kind"].tolist(), arr["address"].tolist(), arr["size"].tolist()
        )
    ]


class TraceBuilder:
    """Columnar accumulator for generating ``TRACE_DTYPE`` trace arrays.

    Workload generators historically built ``list[Op]``; this builder keeps
    the same append-style interface but stores plain integer columns and
    whole numpy chunks, so a trace is materialized directly as a structured
    array without ever constructing per-op objects.
    """

    __slots__ = ("_chunks", "_kinds", "_addrs", "_sizes", "_count")

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._kinds: list[int] = []
        self._addrs: list[int] = []
        self._sizes: list[int] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def append(self, kind: int, address: int = 0, size: int = 8) -> None:
        """Append one op (kind may be an :class:`OpKind` or its int value)."""
        if size < 0:
            raise ValueError(f"op size must be non-negative, got {size}")
        self._kinds.append(kind)
        self._addrs.append(address)
        self._sizes.append(size)
        self._count += 1

    # Convenience wrappers mirroring the op vocabulary.
    def read(self, address: int, size: int = 8) -> None:
        self.append(_READ, address, size)

    def write(self, address: int, size: int = 8) -> None:
        self.append(_WRITE, address, size)

    def call(self, frame_bytes: int) -> None:
        self.append(_CALL, 0, frame_bytes)

    def ret(self, frame_bytes: int) -> None:
        self.append(_RET, 0, frame_bytes)

    def compute(self, cycles: int) -> None:
        self.append(_COMPUTE, 0, cycles)

    def _flush_pending(self) -> None:
        if not self._kinds:
            return
        chunk = np.empty(len(self._kinds), dtype=TRACE_DTYPE)
        chunk["kind"] = self._kinds
        chunk["address"] = self._addrs
        chunk["size"] = self._sizes
        self._chunks.append(chunk)
        self._kinds = []
        self._addrs = []
        self._sizes = []

    def extend(self, kinds, addresses, sizes) -> None:
        """Append a vector of ops; each column may be an array or a scalar."""
        n = max(
            np.size(kinds), np.size(addresses), np.size(sizes)
        )
        if n == 0:
            return
        self._flush_pending()
        chunk = np.empty(n, dtype=TRACE_DTYPE)
        chunk["kind"] = kinds
        chunk["address"] = addresses
        chunk["size"] = sizes
        self._chunks.append(chunk)
        self._count += n

    def extend_array(self, chunk: np.ndarray) -> None:
        """Append a pre-built ``TRACE_DTYPE`` chunk (kept by reference)."""
        if chunk.dtype != TRACE_DTYPE:
            raise TypeError(f"expected TRACE_DTYPE chunk, got {chunk.dtype}")
        if len(chunk) == 0:
            return
        self._flush_pending()
        self._chunks.append(chunk)
        self._count += len(chunk)

    def to_array(self) -> np.ndarray:
        """Materialize the accumulated ops as one ``TRACE_DTYPE`` array."""
        self._flush_pending()
        if not self._chunks:
            return np.empty(0, dtype=TRACE_DTYPE)
        if len(self._chunks) == 1:
            return self._chunks[0]
        return np.concatenate(self._chunks)


_READ = int(OpKind.READ)
_WRITE = int(OpKind.WRITE)
_CALL = int(OpKind.CALL)
_RET = int(OpKind.RET)
_COMPUTE = int(OpKind.COMPUTE)
