"""Tests for the adaptive extensions: granularity and watermark controllers,
and the adaptive Prosper mechanism."""

import pytest

from repro.config import PAGE_BYTES
from repro.core.adaptive import (
    GRANULARITY_LADDER,
    PAGE_FALLBACK,
    GranularityController,
    IntervalProfile,
    WatermarkController,
)
from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import Op, OpKind
from repro.memory.address import AddressRange
from repro.persistence.adaptive import AdaptiveProsperPersistence

STACK = AddressRange(0x7000_0000, 0x7010_0000)


class TestIntervalProfile:
    def test_density(self):
        p = IntervalProfile(copied_bytes=2048, runs=4, page_footprint_bytes=4096)
        assert p.density == 0.5
        assert p.mean_run_bytes == 512

    def test_empty_profile(self):
        p = IntervalProfile(0, 0, 0)
        assert p.density == 0.0
        assert p.mean_run_bytes == 0.0


class TestGranularityController:
    def test_rejects_off_ladder_initial(self):
        with pytest.raises(ValueError):
            GranularityController(initial=24)

    def test_rejects_unordered_thresholds(self):
        with pytest.raises(ValueError):
            GranularityController(coarsen_density=0.1, refine_density=0.5)

    def test_coarsens_on_dense_intervals(self):
        c = GranularityController(initial=8)
        c.observe(IntervalProfile(3000, 10, 4096))  # density 0.73
        assert c.granularity == 16

    def test_refines_on_sparse_intervals(self):
        c = GranularityController(initial=64)
        c.observe(IntervalProfile(100, 5, 8192))  # density ~0.012
        assert c.granularity == 32

    def test_stays_put_in_the_middle(self):
        c = GranularityController(initial=16)
        c.observe(IntervalProfile(1500, 5, 4096))  # density ~0.37
        assert c.granularity == 16

    def test_empty_interval_is_ignored(self):
        c = GranularityController(initial=8)
        c.observe(IntervalProfile(0, 0, 0))
        assert c.granularity == 8

    def test_fallback_after_sustained_density(self):
        c = GranularityController(initial=128, fallback_patience=2)
        dense = IntervalProfile(4000, 1, 4096)  # density ~0.98
        c.observe(dense)
        assert not c.in_page_fallback  # patience not yet exhausted
        c.observe(dense)
        assert c.in_page_fallback
        assert c.granularity == PAGE_FALLBACK

    def test_fallback_recovers_on_sparse(self):
        c = GranularityController(initial=128, fallback_patience=1)
        c.observe(IntervalProfile(4000, 1, 4096))
        assert c.in_page_fallback
        c.observe(IntervalProfile(64, 4, 8192))
        assert c.granularity == GRANULARITY_LADDER[-1]

    def test_never_leaves_ladder(self):
        c = GranularityController(initial=8)
        for _ in range(10):
            c.observe(IntervalProfile(10, 2, 40960))  # very sparse
        assert c.granularity == 8  # clamped at the fine end


class TestWatermarkController:
    def test_bounds_respected(self):
        c = WatermarkController(initial_hwm=8, min_hwm=8, max_hwm=32)
        for _ in range(40):
            c.observe(memory_ops=100, stores=100)
        assert all(8 <= h <= 32 for h in c.history)

    def test_explores_unvisited_neighbours_first(self):
        c = WatermarkController(initial_hwm=20)
        c.observe(100, 100)
        assert c.hwm == 24  # upward neighbour explored first
        c.observe(100, 100)
        assert c.hwm in (28, 16, 20)

    def test_converges_down_when_low_hwm_is_cheaper(self):
        c = WatermarkController(initial_hwm=20, min_hwm=8, max_hwm=32)
        for _ in range(60):
            # Cost grows with HWM: the controller should walk to the floor.
            c.observe(memory_ops=c.history[-1] * 10, stores=100)
        assert c.hwm == 8

    def test_converges_up_when_high_hwm_is_cheaper(self):
        c = WatermarkController(initial_hwm=20, min_hwm=8, max_hwm=32)
        for _ in range(60):
            c.observe(memory_ops=(40 - c.history[-1]) * 10, stores=100)
        assert c.hwm == 32

    def test_zero_stores_noop(self):
        c = WatermarkController()
        assert c.observe(0, 0) == c.hwm

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            WatermarkController(initial_hwm=40)


class TestAdaptiveProsper:
    def _run(self, mech, ops, interval_ops):
        engine = ExecutionEngine(stack_range=STACK, mechanism=mech)
        frame = Op(OpKind.CALL, size=STACK.size)
        engine.run([frame] + ops, interval_ops=interval_ops)
        return engine

    def test_streaming_triggers_coarsening(self):
        mech = AdaptiveProsperPersistence()
        # Dense sequential writes over whole pages, many intervals.
        ops = [
            Op(OpKind.WRITE, STACK.start + (i * 8) % (16 * PAGE_BYTES), 8)
            for i in range(40_000)
        ]
        self._run(mech, ops, interval_ops=4000)
        assert mech.current_granularity > 8
        assert len(mech.controller.transitions) >= 1

    def test_sparse_stays_fine(self):
        mech = AdaptiveProsperPersistence()
        ops = [
            Op(OpKind.WRITE, STACK.start + (i % 32) * PAGE_BYTES + 64, 8)
            for i in range(2000)
        ]
        self._run(mech, ops, interval_ops=200)
        assert mech.current_granularity == 8

    def test_page_fallback_checkpoints_pages(self):
        mech = AdaptiveProsperPersistence()
        # Hammer density until the controller falls back, then keep going.
        ops = [
            Op(OpKind.WRITE, STACK.start + (i * 8) % (4 * PAGE_BYTES), 8)
            for i in range(60_000)
        ]
        self._run(mech, ops, interval_ops=5000)
        assert mech.in_page_fallback
        # In fallback mode checkpoints are page-sized multiples.
        last = mech.stats.checkpoint_bytes[-1]
        assert last % PAGE_BYTES == 0 and last > 0

    def test_granularity_history_recorded(self):
        mech = AdaptiveProsperPersistence()
        ops = [Op(OpKind.WRITE, STACK.start + 8, 8)] * 100
        self._run(mech, ops, interval_ops=50)
        assert mech.granularity_history[0] == 8
        state = mech.persisted_state()
        assert state["kind"] == "prosper-adaptive-checkpoint"
