"""Trace-driven execution substrate.

A :class:`~repro.cpu.engine.ExecutionEngine` consumes a stream of
micro-operations (loads, stores, call/return stack adjustments, compute
blocks), charges each its latency from the memory hierarchy, maintains the
stack pointer, and fires interval hooks — the point where checkpoint
mechanisms and the Prosper tracker attach.
"""

from repro.cpu.ops import Op, OpKind
from repro.cpu.registers import RegisterFile
from repro.cpu.engine import EngineStats, ExecutionEngine

__all__ = ["Op", "OpKind", "RegisterFile", "EngineStats", "ExecutionEngine"]
