"""Tests for repro.core.bitmap: the DRAM-resident dirty bitmap."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitmap import WORD_BITS, WORD_BYTES, DirtyBitmap, DirtyRun
from repro.memory.address import AddressRange

REGION = AddressRange(0x10000, 0x10000 + 64 * 1024)  # 64 KiB stack


def bitmap(granularity: int = 8) -> DirtyBitmap:
    return DirtyBitmap(REGION, granularity, base_address=0x6000_0000)


class TestGeometry:
    def test_granule_count(self):
        b = bitmap(8)
        assert b.num_granules == 64 * 1024 // 8
        assert b.num_words == b.num_granules // WORD_BITS

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            DirtyBitmap(REGION, 12)
        with pytest.raises(ValueError):
            DirtyBitmap(REGION, 0)

    def test_granule_of(self):
        b = bitmap(8)
        assert b.granule_of(REGION.start) == 0
        assert b.granule_of(REGION.start + 8) == 1
        assert b.granule_of(REGION.end - 1) == b.num_granules - 1

    def test_granule_of_outside_raises(self):
        with pytest.raises(ValueError):
            bitmap().granule_of(REGION.end)

    def test_word_address_layout(self):
        b = bitmap(8)
        assert b.word_address(0) == 0x6000_0000
        assert b.word_address(WORD_BITS) == 0x6000_0000 + WORD_BYTES
        assert b.bit_position(33) == 1


class TestMarking:
    def test_set_and_query(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start + 16, 8)
        assert b.is_dirty(REGION.start + 16)
        assert not b.is_dirty(REGION.start + 8)
        assert b.dirty_granule_count() == 1

    def test_access_spanning_granules(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start + 4, 8)  # crosses granule boundary
        assert b.dirty_granule_count() == 2

    def test_zero_size_noop(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start, 0)
        assert b.dirty_granule_count() == 0

    def test_merge_word_reports_change(self):
        b = bitmap(8)
        assert b.merge_word(0, 0b101) is True
        assert b.merge_word(0, 0b001) is False  # already set: store elided
        assert b.merge_word(0, 0b111) is True
        assert b.load_word(0) == 0b111

    def test_store_word_overwrites(self):
        b = bitmap(8)
        b.store_word(3, 0xFFFF_FFFF)
        assert b.load_word(3) == 0xFFFF_FFFF


class TestRuns:
    def test_single_run(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start + 64, 24)
        runs = list(b.iter_dirty_runs())
        assert runs == [DirtyRun(REGION.start + 64, REGION.start + 88)]

    def test_adjacent_bits_coalesce(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start, 8)
        b.set_bits_for_access(REGION.start + 8, 8)
        runs = list(b.iter_dirty_runs())
        assert len(runs) == 1
        assert runs[0].size == 16

    def test_separated_bits_two_runs(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start, 8)
        b.set_bits_for_access(REGION.start + 64, 8)
        assert len(list(b.iter_dirty_runs())) == 2

    def test_runs_respect_active_low_bound(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start, 8)
        b.set_bits_for_access(REGION.end - 8, 8)
        runs = list(b.iter_dirty_runs(active_low=REGION.start + 1024))
        assert len(runs) == 1
        assert runs[0].start == REGION.end - 8

    def test_empty_bitmap_yields_nothing(self):
        assert list(bitmap().iter_dirty_runs()) == []

    def test_coarse_granularity_run_sizes(self):
        b = bitmap(64)
        b.set_bits_for_access(REGION.start + 1, 1)
        runs = list(b.iter_dirty_runs())
        assert runs[0].size == 64  # a whole granule is dirty

    @given(
        st.lists(
            st.tuples(st.integers(0, 64 * 1024 - 16), st.integers(1, 16)),
            max_size=60,
        )
    )
    def test_runs_cover_exactly_the_dirty_granules(self, accesses):
        b = bitmap(8)
        expected = set()
        for offset, size in accesses:
            b.set_bits_for_access(REGION.start + offset, size)
            first = offset // 8
            last = (offset + size - 1) // 8
            expected.update(range(first, last + 1))
        covered = set()
        for run in b.iter_dirty_runs():
            for g in range((run.start - REGION.start) // 8, (run.end - REGION.start) // 8):
                covered.add(g)
        assert covered == expected


class TestMaintenance:
    def test_words_touched_bounded_by_active_low(self):
        b = bitmap(8)
        assert b.words_touched() == b.num_words
        half = REGION.start + REGION.size // 2
        assert b.words_touched(half) == b.num_words // 2

    def test_clear_full(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start, 64)
        assert b.clear() > 0
        assert b.dirty_granule_count() == 0

    def test_clear_partial_preserves_below(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start, 8)
        b.set_bits_for_access(REGION.end - 8, 8)
        b.clear(active_low=REGION.start + REGION.size // 2)
        assert b.is_dirty(REGION.start)
        assert not b.is_dirty(REGION.end - 8)

    def test_snapshot_restore_roundtrip(self):
        b = bitmap(8)
        b.set_bits_for_access(REGION.start + 40, 16)
        snap = b.snapshot_words()
        b.clear()
        b.restore_words(snap)
        assert b.is_dirty(REGION.start + 40)

    def test_restore_shape_mismatch(self):
        b = bitmap(8)
        with pytest.raises(ValueError):
            b.restore_words(np.zeros(3, dtype=np.uint32))
