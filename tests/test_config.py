"""Tests for repro.config: system configurations and unit conversions."""

import pytest

from repro.config import (
    CACHE_LINE_BYTES,
    CPU_FREQ_HZ,
    PAGE_BYTES,
    CacheConfig,
    DramConfig,
    NvmConfig,
    TrackerConfig,
    cycles_to_ns,
    ms_to_cycles,
    ns_to_cycles,
    setup_i,
    setup_ii,
)


class TestUnitConversions:
    def test_ns_to_cycles_at_3ghz(self):
        assert ns_to_cycles(1.0) == 3
        assert ns_to_cycles(100.0) == 300

    def test_ns_to_cycles_rounds(self):
        assert ns_to_cycles(0.5) == 2  # 1.5 cycles rounds to 2

    def test_ns_to_cycles_never_negative(self):
        assert ns_to_cycles(0.0) == 0

    def test_cycles_to_ns_roundtrip(self):
        assert cycles_to_ns(ns_to_cycles(60.0)) == pytest.approx(60.0)

    def test_ms_to_cycles(self):
        assert ms_to_cycles(10.0) == 30_000_000

    def test_custom_frequency(self):
        assert ns_to_cycles(10.0, freq_hz=1_000_000_000) == 10


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(32 * 1024, 8, 3, 16)
        assert cfg.num_sets == 64  # 32KiB / (8 ways * 64B)

    def test_l2_geometry(self):
        cfg = setup_i().l2
        assert cfg.num_sets * cfg.associativity * cfg.line_bytes == 512 * 1024


class TestDeviceConfigs:
    def test_dram_latency_cycles(self):
        cfg = DramConfig(read_latency_ns=60.0)
        assert cfg.read_latency_cycles == 180

    def test_nvm_write_slower_than_read(self):
        cfg = NvmConfig()
        assert cfg.write_latency_cycles > cfg.read_latency_cycles

    def test_nvm_buffers_match_table_ii(self):
        cfg = NvmConfig()
        assert cfg.read_buffer_entries == 64
        assert cfg.write_buffer_entries == 48


class TestTrackerConfig:
    def test_defaults_match_paper(self):
        cfg = TrackerConfig()
        assert cfg.lookup_table_entries == 16
        assert cfg.high_water_mark == 24
        assert cfg.low_water_mark == 8
        assert cfg.granularity_bytes == 8

    def test_rejects_non_multiple_of_8_granularity(self):
        with pytest.raises(ValueError):
            TrackerConfig(granularity_bytes=12)

    def test_rejects_zero_granularity(self):
        with pytest.raises(ValueError):
            TrackerConfig(granularity_bytes=0)

    def test_rejects_out_of_range_hwm(self):
        with pytest.raises(ValueError):
            TrackerConfig(high_water_mark=0)
        with pytest.raises(ValueError):
            TrackerConfig(high_water_mark=33)

    def test_rejects_negative_lwm(self):
        with pytest.raises(ValueError):
            TrackerConfig(low_water_mark=-1)

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            TrackerConfig(lookup_table_entries=0)

    def test_with_granularity_returns_new_config(self):
        base = TrackerConfig()
        wide = base.with_granularity(64)
        assert wide.granularity_bytes == 64
        assert base.granularity_bytes == 8
        assert wide.high_water_mark == base.high_water_mark


class TestSetups:
    def test_setup_i_is_hybrid(self):
        cfg = setup_i()
        assert cfg.has_nvm
        assert cfg.dram_capacity_bytes == 3 * 1024**3
        assert cfg.nvm_capacity_bytes == 2 * 1024**3

    def test_setup_ii_has_32g_dram(self):
        cfg = setup_ii()
        assert cfg.dram_capacity_bytes == 32 * 1024**3

    def test_shared_cache_parameters(self):
        for cfg in (setup_i(), setup_ii()):
            assert cfg.l1d.latency_cycles == 3
            assert cfg.l2.latency_cycles == 12
            assert cfg.l3.latency_cycles == 20
            assert cfg.freq_hz == CPU_FREQ_HZ

    def test_constants(self):
        assert CACHE_LINE_BYTES == 64
        assert PAGE_BYTES == 4096
