"""Journaled run manifest: one JSONL record per completed run unit.

The manifest is the harness's write-ahead record of evaluation progress.
Every time a unit finishes — successfully or after exhausting its retries
— one line is appended and flushed to disk, so a ``repro all`` that is
killed (power loss, OOM kill, ctrl-C) can be resumed with ``--resume``:
units journaled as ``ok`` are replayed from their stored payloads, failed
and missing units are re-executed, and the assembled figure text is
byte-identical to an uninterrupted run.

Record types::

    {"type": "meta", "version": 1, "ops": N, "figures": [...]}
    {"type": "unit", "figure": ..., "unit_id": ..., "status": "ok"|"failed",
     "attempts": n, "elapsed_s": t, "payload": {...} | null,
     "failure": {"kind", "severity", "detail", "attempts"} | null}

Later records for the same (figure, unit_id) supersede earlier ones, so a
resumed run simply appends; the journal never needs rewriting in place.
A meta mismatch (different ``--ops`` or figure set) aborts the resume
rather than silently blending incompatible results.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

JOURNAL_VERSION = 1


class ManifestMismatch(RuntimeError):
    """The manifest on disk was written by an incompatible invocation."""


@dataclass
class UnitRecord:
    """One journaled unit outcome."""

    figure: str
    unit_id: str
    status: str  # "ok" | "failed"
    attempts: int
    elapsed_s: float
    payload: dict | None = None
    failure: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        return {
            "type": "unit",
            "figure": self.figure,
            "unit_id": self.unit_id,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 6),
            "payload": self.payload,
            "failure": self.failure,
        }


@dataclass
class ManifestState:
    """Parsed journal: meta plus the latest record per unit."""

    meta: dict | None
    records: dict[tuple[str, str], UnitRecord]

    def completed(self) -> dict[tuple[str, str], UnitRecord]:
        return {key: rec for key, rec in self.records.items() if rec.ok}

    def failed(self) -> dict[tuple[str, str], UnitRecord]:
        return {key: rec for key, rec in self.records.items() if not rec.ok}


def load_manifest(path: str | Path) -> ManifestState:
    """Parse a manifest; tolerates a torn final line (killed mid-append)."""
    meta: dict | None = None
    records: dict[tuple[str, str], UnitRecord] = {}
    try:
        text = Path(path).read_text()
    except OSError:
        return ManifestState(None, {})
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue  # torn tail write: the unit it described just re-runs
        if obj.get("type") == "meta":
            meta = obj
        elif obj.get("type") == "unit":
            record = UnitRecord(
                figure=obj["figure"],
                unit_id=obj["unit_id"],
                status=obj["status"],
                attempts=obj.get("attempts", 1),
                elapsed_s=obj.get("elapsed_s", 0.0),
                payload=obj.get("payload"),
                failure=obj.get("failure"),
            )
            records[(record.figure, record.unit_id)] = record
    return ManifestState(meta, records)


class RunJournal:
    """Append-only JSONL writer for the run manifest."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a")

    def _append(self, obj: dict) -> None:
        self._handle.write(json.dumps(obj) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write_meta(self, ops: int, figures: list[str]) -> None:
        self._append(
            {
                "type": "meta",
                "version": JOURNAL_VERSION,
                "ops": ops,
                "figures": list(figures),
            }
        )

    def record_unit(self, record: UnitRecord) -> None:
        self._append(record.to_json())

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    @staticmethod
    def check_meta(state: ManifestState, ops: int, figures: list[str]) -> None:
        """Refuse to resume against a manifest from a different invocation."""
        if state.meta is None:
            raise ManifestMismatch(
                "manifest has no meta record; cannot --resume from it"
            )
        if state.meta.get("ops") != ops:
            raise ManifestMismatch(
                f"manifest was written with --ops {state.meta.get('ops')}, "
                f"this run uses --ops {ops}"
            )
        if state.meta.get("figures") != list(figures):
            raise ManifestMismatch(
                "manifest covers a different figure set "
                f"({state.meta.get('figures')} vs {list(figures)})"
            )
