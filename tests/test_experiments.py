"""Integration tests: small-scale versions of every paper experiment.

These exercise the full pipeline (workload -> engine -> mechanism ->
analysis) and assert the *shape* of each figure's result, at sizes small
enough for the unit-test suite.  The full-scale numbers live in the
benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import evaluation, motivation, overhead


OPS = 25_000  # small but big enough for stable shapes


@pytest.fixture(scope="module")
def fig1_rows():
    return motivation.fig1_stack_fraction(target_ops=OPS)


class TestFig1:
    def test_three_workloads(self, fig1_rows):
        assert [r.workload for r in fig1_rows] == [
            "gapbs_pr",
            "g500_sssp",
            "ycsb_mem",
        ]

    def test_gapbs_is_stack_heavy(self, fig1_rows):
        by_name = {r.workload: r for r in fig1_rows}
        assert by_name["gapbs_pr"].stack_fraction > 0.6
        assert by_name["ycsb_mem"].stack_fraction < 0.3
        assert (
            by_name["gapbs_pr"].stack_fraction
            > by_name["g500_sssp"].stack_fraction
            > by_name["ycsb_mem"].stack_fraction
        )


class TestFig2:
    def test_ycsb_has_substantial_beyond_sp_writes(self):
        results = motivation.fig2_beyond_final_sp(
            num_intervals=50, target_ops=OPS
        )
        ycsb = next(r for r in results if r.workload == "ycsb_mem")
        assert 0.1 < ycsb.beyond_fraction < 0.8
        for r in results:
            assert r.total_beyond <= r.total_writes


class TestFig3:
    @pytest.fixture(scope="class")
    def cells(self):
        return motivation.fig3_sp_awareness(target_ops=12_000, num_intervals=10)

    def test_all_cells_present(self, cells):
        assert len(cells) == 3 * 3 * 2  # workloads x mechanisms x awareness

    def test_sp_awareness_always_helps(self, cells):
        for workload in {c.workload for c in cells}:
            for mech in ("flush", "undo", "redo"):
                blind = next(
                    c for c in cells
                    if c.workload == workload and c.mechanism == mech and not c.sp_aware
                )
                aware = next(
                    c for c in cells
                    if c.workload == workload and c.mechanism == mech and c.sp_aware
                )
                assert aware.normalized_time <= blind.normalized_time

    def test_overhead_significant_even_with_awareness(self, cells):
        # Paper: >35x slowdown across all benchmarks even SP-aware.
        aware = [c for c in cells if c.sp_aware]
        assert all(c.normalized_time > 2.0 for c in aware)


class TestFig4:
    def test_page_tracking_amplifies_copy_size(self):
        rows = motivation.fig4_copy_size(num_intervals=20, target_ops=OPS)
        for row in rows:
            assert row.reduction_factor > 5.0
        by_name = {r.workload: r for r in rows}
        # Gapbs shows the largest reduction, ycsb the smallest (paper order).
        assert (
            by_name["gapbs_pr"].reduction_factor
            > by_name["ycsb_mem"].reduction_factor
        )


class TestFig8:
    @pytest.fixture(scope="class")
    def results(self):
        return evaluation.fig8_stack_persistence(target_ops=OPS)

    def test_prosper_wins_everywhere(self, results):
        for workload in {r.trace_name for r in results}:
            rows = {r.mechanism_name: r.normalized_time for r in results
                    if r.trace_name == workload}
            prosper = rows["prosper"]
            for name, value in rows.items():
                if name != "prosper":
                    assert prosper <= value, f"{name} beat prosper on {workload}"

    def test_ssp_improves_with_longer_consolidation(self, results):
        for workload in {r.trace_name for r in results}:
            rows = {r.mechanism_name: r.normalized_time for r in results
                    if r.trace_name == workload}
            assert rows["ssp-10us"] >= rows["ssp-1ms"] * 0.98

    def test_romulus_is_worst(self, results):
        for workload in {r.trace_name for r in results}:
            rows = {r.mechanism_name: r.normalized_time for r in results
                    if r.trace_name == workload}
            assert rows["romulus"] == max(rows.values())


class TestFig9:
    def test_prosper_combination_wins(self):
        cells = evaluation.fig9_memory_persistence(
            target_ops=OPS, ssp_intervals_us=(10.0,)
        )
        for workload in {c.workload for c in cells}:
            rows = {c.combination: c.normalized_time for c in cells
                    if c.workload == workload}
            assert rows["ssp+prosper"] <= rows["ssp+dirtybit"]
            assert rows["ssp+prosper"] <= rows["ssp"]


class TestFig10:
    @pytest.fixture(scope="class")
    def cells(self):
        return evaluation.fig10_usage_patterns(scale=0.3, granularities=(8, 64))

    def test_sparse_gets_huge_reduction(self, cells):
        sparse8 = next(
            c for c in cells if c.workload == "sparse" and c.granularity == 8
        )
        sparse_page = next(
            c for c in cells if c.workload == "sparse" and c.granularity == "page"
        )
        assert sparse8.mean_checkpoint_bytes < sparse_page.mean_checkpoint_bytes / 50
        assert sparse8.checkpoint_time_vs_dirtybit < 1.0

    def test_stream_gets_no_size_benefit(self, cells):
        stream8 = next(
            c for c in cells if c.workload == "stream" and c.granularity == 8
        )
        stream_page = next(
            c for c in cells if c.workload == "stream" and c.granularity == "page"
        )
        # Stream dirties everything: fine tracking saves at most the
        # page-rounding slack at the interval's edges (compare sparse's
        # 50x+ reduction).
        assert (
            stream8.mean_checkpoint_bytes
            > stream_page.mean_checkpoint_bytes / 3
        )

    def test_coarser_granularity_never_smaller_checkpoint(self, cells):
        for workload in {c.workload for c in cells}:
            fine = next(c for c in cells if c.workload == workload and c.granularity == 8)
            coarse = next(c for c in cells if c.workload == workload and c.granularity == 64)
            assert coarse.mean_checkpoint_bytes >= fine.mean_checkpoint_bytes * 0.99


class TestFig11:
    @pytest.fixture(scope="class")
    def cells(self):
        return evaluation.fig11_interval_sweep(depths=(4, 16))

    def test_recursive_checkpoint_grows_with_interval(self, cells):
        for name in ("rec-4", "rec-16"):
            sizes = {c.interval_paper_ms: c.mean_checkpoint_bytes
                     for c in cells if c.workload == name}
            assert sizes[10.0] > sizes[1.0] * 2

    def test_quicksort_saturates_unlike_recursive(self, cells):
        qs = {c.interval_paper_ms: c.mean_checkpoint_bytes
              for c in cells if c.workload == "quicksort"}
        rec = {c.interval_paper_ms: c.mean_checkpoint_bytes
               for c in cells if c.workload == "rec-16"}
        assert qs[10.0] / qs[5.0] < rec[10.0] / rec[5.0] * 1.05

    def test_recursive_per_byte_cost_highest_at_1ms(self, cells):
        per_byte = {c.interval_paper_ms: c.ns_per_byte
                    for c in cells if c.workload == "rec-4"}
        assert per_byte[1.0] > per_byte[10.0]


class TestFig12:
    def test_tracking_overhead_small(self):
        cells = overhead.fig12_tracking_overhead(
            target_ops=OPS, granularities=(8,)
        )
        for cell in cells:
            assert cell.speedup > 0.9, f"{cell.workload} overhead too large"
        mean_overhead = sum(c.overhead_percent for c in cells) / len(cells)
        assert mean_overhead < 5.0


class TestFig13:
    @pytest.fixture(scope="class")
    def cells(self):
        return overhead.fig13_watermark_sensitivity(
            target_ops=OPS, hwm_values=(8, 32), lwm_values=(2, 16)
        )

    def test_sssp_ops_decrease_with_hwm(self, cells):
        sssp = [c for c in cells if c.workload == "g500_sssp" and c.lwm == 4]
        by_hwm = {c.hwm: c.memory_ops for c in sssp}
        assert by_hwm[32] < by_hwm[8]

    def test_mcf_ops_increase_with_hwm(self, cells):
        mcf = [c for c in cells if c.workload == "605.mcf_s" and c.lwm == 4]
        by_hwm = {c.hwm: c.memory_ops for c in mcf}
        assert by_hwm[32] > by_hwm[8] * 0.95

    def test_mcf_benefits_from_higher_lwm(self, cells):
        mcf = [c for c in cells if c.workload == "605.mcf_s" and c.hwm == 24]
        by_lwm = {c.lwm: c.memory_ops for c in mcf}
        assert by_lwm[16] <= by_lwm[2] * 1.05


class TestContextSwitch:
    def test_overhead_in_paper_ballpark(self):
        result = overhead.context_switch_overhead(switches=60)
        # Paper reports ~870 cycles on average.
        assert 300 < result.mean_prosper_cycles < 2500
        assert result.switches == 60


class TestEnergy:
    def test_energy_report_positive(self):
        report = overhead.energy_report(target_ops=8_000)
        assert report.reads > 0
        assert report.writes > 0
        assert report.total_nj > 0
        assert report.area_mm2 == pytest.approx(0.000704786)
