#!/usr/bin/env python3
"""Multi-threading support: per-thread stacks, context switches, and
inter-thread stack writes (Section III-C).

Two persistent threads alternate on one logical CPU.  The scheduler flushes
and saves the Prosper tracker state for the outgoing thread and restores it
for the incoming one; the example reports the measured per-switch overhead
(paper: ~870 cycles).  Finally, one thread writes into the *other* thread's
stack — the page-permission scheme faults the write into the OS, which
records it in the victim's bitmap so no checkpoint misses it.

Run:  python examples/multithreaded_stacks.py
"""

import numpy as np

from repro.core.tracker import ProsperTracker
from repro.kernel.process import Process
from repro.kernel.scheduler import Scheduler


def main() -> None:
    proc = Process(name="mt-demo")
    t1 = proc.spawn_thread(stack_bytes=512 * 1024, persistent=True)
    t2 = proc.spawn_thread(stack_bytes=512 * 1024, persistent=True)
    tracker = ProsperTracker(proc.tracker_config)
    scheduler = Scheduler(tracker)
    rng = np.random.default_rng(7)

    print(f"thread 1 stack: [{t1.stack.start:#x}, {t1.stack.end:#x})")
    print(f"thread 2 stack: [{t2.stack.start:#x}, {t2.stack.end:#x})")

    # Alternate the two threads, each writing its own stack.
    for i in range(100):
        thread = (t1, t2)[i % 2]
        scheduler.switch_to(thread)
        offsets = rng.integers(0, thread.stack.size // 8, size=200) * 8
        for off in offsets:
            tracker.observe_store(thread.stack.start + int(off), 8)

    stats = scheduler.stats
    print(f"\ncontext switches:              {stats.switches}")
    print(f"mean Prosper switch overhead:  {stats.mean_prosper_overhead:.0f} cycles"
          "  (paper: ~870)")

    # Flush the current thread so both bitmaps are up to date.
    tracker.request_flush()
    tracker.poll_quiescent()
    print(f"thread 1 dirty granules:       {t1.bitmap.dirty_granule_count()}")
    print(f"thread 2 dirty granules:       {t2.bitmap.dirty_granule_count()}")

    # Inter-thread stack write: t2 writes into t1's stack.  The per-thread
    # page tables map t1's stack read-only in t2's view, so the write
    # faults and the OS records it against t1's bitmap.
    victim_address = t1.stack.start + 0x1230
    proc.page_table.map_range(t1.stack)
    view = proc.build_thread_view(t2.tid)
    assert not view.entries[victim_address // 4096].writable
    handled = proc.handle_cross_thread_write(t2.tid, victim_address, 8)
    print(f"\ncross-thread write to {victim_address:#x}: "
          f"intercepted={handled}, "
          f"recorded in t1 bitmap={t1.bitmap.is_dirty(victim_address)}")
    assert handled and t1.bitmap.is_dirty(victim_address)
    del view


if __name__ == "__main__":
    main()
