"""repro — a reproduction of *Prosper: Program Stack Persistence in Hybrid
Memory Systems* (HPCA 2024).

The package implements the paper's hardware-software co-designed stack
checkpoint mechanism (Prosper), every baseline it is evaluated against
(Dirtybit, write-protection tracking, flush/undo/redo, Romulus, SSP), and
the substrate they all run on: a trace-driven CPU model, a three-level
cache hierarchy over hybrid DRAM+NVM memory, and a GemOS-like kernel with
processes, virtual memory, scheduling, periodic checkpoints, and crash
recovery.

Quickstart::

    from repro import ProsperPersistence, run_mechanism
    from repro.workloads import gapbs_pr

    trace = gapbs_pr(target_ops=50_000)
    result = run_mechanism(trace, ProsperPersistence(), interval_paper_ms=10)
    print(result.normalized_time)   # execution-time overhead of persistence
"""

from repro.config import (
    CacheConfig,
    DramConfig,
    NvmConfig,
    SystemConfig,
    TrackerConfig,
    setup_i,
    setup_ii,
)
from repro.core import (
    DirtyBitmap,
    EnergyModel,
    LookupTable,
    MsrBank,
    ProsperCheckpointEngine,
    ProsperTracker,
)
from repro.core.policies import AllocationPolicy
from repro.cpu import ExecutionEngine, Op, OpKind
from repro.memory import AddressRange, MemoryHierarchy
from repro.persistence import (
    AdaptiveProsperPersistence,
    CombinedPersistence,
    DirtyBitPersistence,
    FlushPersistence,
    NoPersistence,
    PersistenceMechanism,
    ProsperPersistence,
    RedoLogPersistence,
    RomulusPersistence,
    SspPersistence,
    UndoLogPersistence,
    WriteProtectPersistence,
)
from repro.experiments.runner import RunResult, run_mechanism
from repro.workloads import Trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configs
    "CacheConfig",
    "DramConfig",
    "NvmConfig",
    "SystemConfig",
    "TrackerConfig",
    "setup_i",
    "setup_ii",
    # core
    "MsrBank",
    "DirtyBitmap",
    "LookupTable",
    "ProsperTracker",
    "ProsperCheckpointEngine",
    "EnergyModel",
    "AllocationPolicy",
    # substrate
    "ExecutionEngine",
    "Op",
    "OpKind",
    "AddressRange",
    "MemoryHierarchy",
    "Trace",
    # mechanisms
    "PersistenceMechanism",
    "NoPersistence",
    "DirtyBitPersistence",
    "WriteProtectPersistence",
    "FlushPersistence",
    "UndoLogPersistence",
    "RedoLogPersistence",
    "RomulusPersistence",
    "SspPersistence",
    "ProsperPersistence",
    "AdaptiveProsperPersistence",
    "CombinedPersistence",
    # harness
    "RunResult",
    "run_mechanism",
]
