"""Deterministic crash-point injection for the checkpoint pipeline.

The paper validates Prosper's crash consistency by killing gem5 at a few
hand-picked moments.  This module generalizes that into systematic fault
injection: every step of the two-step staging/commit protocol is a *named
crash point*, and a :class:`FaultInjector` threaded through the pipeline
(`core/checkpoint.py`, `kernel/checkpoint_mgr.py`) can be armed to "lose
power" at the N-th occurrence of any point.  Arming is explicit and
per-(point, occurrence), so every run is exactly reproducible.

Crash points, in protocol order for one process checkpoint::

    metadata_write        before the metadata record (registers, layout) lands
    stage_begin           per thread, before its staging buffer is created
    stage_run_copy[i]     per thread, before the i-th dirty run is staged
    stage_complete        per thread, after its staging buffer is complete
    commit_flag_write     before the process commit record flips
    persist_barrier       per thread, inside the staged->persistent apply
    bitmap_clear          per thread, before its consumed bitmap words clear

A crash fires by raising :class:`CrashInjected`; the durable ("NVM") state
at that moment — checkpoint records, staging buffers — is left exactly as
written so far, and the harness then drops volatile state and drives
recovery.  An un-armed injector only records which points fired (the probe
pass :class:`repro.faults.sweep.CrashConsistencyChecker` uses to enumerate
the sweep).
"""

from __future__ import annotations

from collections import Counter

#: Named crash points of the two-step staging/commit protocol.
STAGE_BEGIN = "stage_begin"
STAGE_COMPLETE = "stage_complete"
METADATA_WRITE = "metadata_write"
COMMIT_FLAG_WRITE = "commit_flag_write"
BITMAP_CLEAR = "bitmap_clear"
PERSIST_BARRIER = "persist_barrier"

#: Crash points of the multicore execution path: the context-switch
#: tracker save/restore (scheduler) and the stop-the-world quiesce
#: barrier that precedes a process checkpoint (multicore simulation).
CTX_SAVE = "ctx_save"
CTX_RESTORE = "ctx_restore"
BARRIER_QUIESCE = "barrier_quiesce"


def stage_run_copy(index: int) -> str:
    """Crash-point name for staging the *index*-th dirty run of a thread."""
    return f"stage_run_copy[{index}]"


def cycle_point(cycle: int) -> str:
    """Synthetic crash-point name for a cycle-deadline crash (see
    :meth:`FaultInjector.arm_cycle`)."""
    return f"cycle[{cycle}]"


def is_cycle_point(point: str) -> bool:
    """True when *point* names a cycle-deadline crash rather than a named
    checkpoint-pipeline step."""
    return point.startswith("cycle[")


#: The crash-point families, for documentation and CLI listings.
CRASH_POINT_FAMILIES = (
    METADATA_WRITE,
    STAGE_BEGIN,
    "stage_run_copy[i]",
    STAGE_COMPLETE,
    COMMIT_FLAG_WRITE,
    PERSIST_BARRIER,
    BITMAP_CLEAR,
    CTX_SAVE,
    CTX_RESTORE,
    BARRIER_QUIESCE,
)


class CrashInjected(Exception):
    """Raised at an armed crash point: the simulated machine lost power.

    Durable state written before the crash point survives; the handler is
    expected to drop volatile state (:meth:`CrashSimulator.crash`) and then
    drive recovery.
    """

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(f"injected crash at {point} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class FaultInjector:
    """Seeded, deterministic fault plan for one simulated run.

    The injector owns two independent fault dimensions:

    * a **crash plan** — at most one (point, occurrence) pair armed via
      :meth:`arm`; the matching :meth:`reached` call raises
      :class:`CrashInjected`;
    * a **torn-metadata plan** — checkpoint sequence numbers whose metadata
      record should be silently corrupted (a torn cache-line write at the
      moment of power loss), registered via :meth:`tear_metadata_at` and
      detected only by the CRC check at recovery.

    *seed* does not drive the injector itself (the plan is explicit) but is
    carried so harnesses can derive matching NVM error models from it.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.armed_point: str | None = None
        self.armed_occurrence: int = 0
        #: Cycle deadline: the run loop crashes at the first op boundary at
        #: or past this cycle count (armed via :meth:`arm_cycle`).
        self.armed_cycle: int | None = None
        #: Every point fired, in order (the probe pass reads this).
        self.fired: list[str] = []
        self._counts: Counter[str] = Counter()
        self._torn_metadata: set[int] = set()

    # ------------------------------------------------------------------ #
    # Crash plan
    # ------------------------------------------------------------------ #

    def arm(self, point: str, occurrence: int = 0) -> None:
        """Crash at the *occurrence*-th firing of *point* (0-based)."""
        if occurrence < 0:
            raise ValueError("occurrence must be non-negative")
        self.armed_point = point
        self.armed_occurrence = occurrence

    def arm_cycle(self, cycle: int) -> None:
        """Crash at the first op boundary where the clock reaches *cycle*.

        Unlike :meth:`arm`, this models power dropping at an arbitrary
        moment mid-interval rather than at a named protocol step.  The
        execution engine polls :meth:`check_cycle` after every op; a
        deadline landing inside interval-boundary checkpoint work fires at
        the first op after it (the named points cover intra-checkpoint
        crashes).
        """
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        self.armed_cycle = cycle

    def disarm(self) -> None:
        """Clear the crash plan (recovery runs with the injector disarmed)."""
        self.armed_point = None
        self.armed_cycle = None

    @property
    def is_armed(self) -> bool:
        """True when either a named-point or a cycle crash is planned."""
        return self.armed_point is not None or self.armed_cycle is not None

    def check_cycle(self, now: int) -> None:
        """Crash when the armed cycle deadline has been reached."""
        armed = self.armed_cycle
        if armed is not None and now >= armed:
            self.armed_cycle = None
            raise CrashInjected(cycle_point(armed), 0)

    def reached(self, point: str) -> None:
        """Record that the pipeline reached *point*; crash when armed for it."""
        occurrence = self._counts[point]
        self._counts[point] += 1
        self.fired.append(point)
        if point == self.armed_point and occurrence == self.armed_occurrence:
            raise CrashInjected(point, occurrence)

    def occurrences(self) -> Counter[str]:
        """Copy of per-point firing counts so far."""
        return Counter(self._counts)

    def reset(self) -> None:
        """Forget fired history and counts (plans stay armed)."""
        self.fired.clear()
        self._counts.clear()

    # ------------------------------------------------------------------ #
    # Torn-metadata plan
    # ------------------------------------------------------------------ #

    def tear_metadata_at(self, *sequences: int) -> None:
        """Corrupt the metadata record of the given checkpoint sequences."""
        self._torn_metadata.update(sequences)

    def should_tear_metadata(self, sequence: int) -> bool:
        return sequence in self._torn_metadata
