"""GemOS-like operating-system layer.

The paper builds its end-to-end checkpoint solution on GemOS, a small
teaching OS for gem5, extended with hybrid-memory support and the Prosper
software component.  This subpackage provides the equivalent substrate:

* :mod:`repro.kernel.layout` — process address-space layout (stack, heap,
  bitmap areas) over hybrid DRAM+NVM;
* :mod:`repro.kernel.vmem` — page tables with dirty / write-protect bits and
  on-demand stack growth;
* :mod:`repro.kernel.process` — processes and threads (per-thread stacks,
  register state, persistent-stack handles);
* :mod:`repro.kernel.scheduler` — round-robin scheduling with Prosper
  tracker state save/restore on context switches (Section III-C);
* :mod:`repro.kernel.checkpoint_mgr` — the periodic whole-process
  checkpoint procedure (registers + memory segments);
* :mod:`repro.kernel.restore` — the crash model and recovery path.
"""

from repro.kernel.layout import AddressSpaceLayout
from repro.kernel.vmem import PageTable, PageTableEntry
from repro.kernel.process import Process, Thread
from repro.kernel.scheduler import ContextSwitchStats, Scheduler
from repro.kernel.checkpoint_mgr import CheckpointManager, ProcessCheckpoint
from repro.kernel.restore import CrashSimulator, RecoveryReport
from repro.kernel.simulation import MultiThreadSimulation, SimulationStats
from repro.kernel.multicore import MultiCoreSimulation, MultiCoreStats

__all__ = [
    "AddressSpaceLayout",
    "PageTable",
    "PageTableEntry",
    "Process",
    "Thread",
    "Scheduler",
    "ContextSwitchStats",
    "CheckpointManager",
    "ProcessCheckpoint",
    "CrashSimulator",
    "RecoveryReport",
    "MultiThreadSimulation",
    "SimulationStats",
    "MultiCoreSimulation",
    "MultiCoreStats",
]
