"""Crash-consistency sweep: crash at *every* point, verify recovery.

The paper's validation kills gem5 at a few hand-picked moments.  This
harness is systematic: a probe pass runs a deterministic multi-threaded
checkpoint workload with an unarmed :class:`FaultInjector` and records
every crash point that fires — ``stage_run_copy[i]`` per dirty run per
thread per interval, the per-thread stage/commit points, the per-process
metadata and commit-flag writes.  The sweep then re-runs the identical
workload once per (point, occurrence), crashing there, driving the
recovery path, and checking the crash-consistency invariant:

    After recovery, the process state (registers *and* stack contents,
    DRAM and NVM images alike) equals exactly one of

    * the checkpoint being taken when power failed (fully rolled forward),
    * the previous committed checkpoint (staging discarded), or
    * the pristine initial state, only if nothing had ever committed —

    and never a blend of two checkpoints or of two threads' epochs.

Every run derives from one seed, so a violation is exactly reproducible
by re-arming the same (point, occurrence).  An optional transient NVM
write-error rate exercises the retry path under the same invariant.

This module imports the kernel layer, which reaches back down to
:mod:`repro.memory.devices`; import it as ``repro.faults.sweep``, not via
the package root (see ``repro/faults/__init__.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import setup_i
from repro.core.tracker import ProsperTracker
from repro.faults.injector import COMMIT_FLAG_WRITE, CrashInjected, FaultInjector
from repro.faults.nvm_errors import NvmErrorModel
from repro.kernel.checkpoint_mgr import CheckpointManager
from repro.kernel.process import Process
from repro.kernel.restore import CrashSimulator
from repro.memory.address import AddressRange
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import ByteImage

#: Active stack window per thread: SP sits this far below the stack top and
#: never moves during the sweep workload, so the expected contents are exact.
ACTIVE_WINDOW_BYTES = 64 * 1024
#: Byte stride between dirty clusters, large enough that each cluster
#: coalesces into its own run (so ``stage_run_copy[i]`` fires per run).
CLUSTER_STRIDE = 4096

#: Sweep-case outcomes.
OUTCOME_ROLLED_FORWARD = "rolled_forward"
OUTCOME_PREVIOUS = "previous"
OUTCOME_FRESH_START = "fresh_start"
OUTCOME_VIOLATION = "violation"


@dataclass(frozen=True)
class SweepCase:
    """Result of one crash-and-recover run of the sweep."""

    point: str
    occurrence: int
    crashed_in_interval: int
    resumed_from: int | None
    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome != OUTCOME_VIOLATION


@dataclass
class SweepReport:
    """Aggregate outcome of a full crash-point sweep."""

    seed: int
    threads: int
    intervals: int
    writes_per_interval: int
    transient_rate: float
    cases: list[SweepCase] = field(default_factory=list)

    @property
    def violations(self) -> list[SweepCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def points_swept(self) -> int:
        return len({case.point for case in self.cases})

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for case in self.cases:
            counts[case.outcome] = counts.get(case.outcome, 0) + 1
        return counts


@dataclass(frozen=True)
class RetryDemoResult:
    """Outcome of the seeded transient-NVM-error recovery demo."""

    checkpoints: int
    retries: int
    resumed_from: int | None
    state_ok: bool


@dataclass(frozen=True)
class TornMetadataDemoResult:
    """Outcome of the torn-metadata-record detection demo."""

    resumed_from: int | None
    discarded_staged: int
    state_ok: bool

    @property
    def detected(self) -> bool:
        """The torn record was caught by its CRC and discarded."""
        return self.discarded_staged > 0


def state_mismatch(
    process: Process,
    sp: dict[int, int],
    dram_images: dict[int, ByteImage],
    nvm_images: dict[int, ByteImage],
    mem_at: list[dict[int, dict[int, int]]],
    regs_at: list[dict[int, int]],
    sequence: int | None,
) -> str | None:
    """Compare restored process state against checkpoint *sequence*'s snapshot.

    The crash-consistency invariant shared by the single-core and multicore
    sweeps: registers and stack contents (DRAM and NVM images alike) must
    equal exactly one checkpoint's snapshot — never a blend of two
    checkpoints or of two threads' epochs.  Returns None on an exact match,
    else a description of the first divergence.  ``sequence=None`` means
    "pristine": no checkpoint ever committed.
    """
    if sequence is None:
        expected_regs = {tid: 0 for tid in sp}
        expected_mem: dict[int, dict[int, int]] = {tid: {} for tid in sp}
    else:
        expected_regs = regs_at[sequence]
        expected_mem = mem_at[sequence]
    for thread in process.iter_threads():
        tid = thread.tid
        if thread.registers.op_index != expected_regs[tid]:
            return (
                f"tid {tid}: op_index {thread.registers.op_index} != "
                f"expected {expected_regs[tid]}"
            )
        window = AddressRange(sp[tid], thread.stack.end)
        for label, image in (
            ("DRAM", dram_images[tid]),
            ("NVM", nvm_images[tid]),
        ):
            actual = dict(image.words_in_range(window))
            if actual != expected_mem[tid]:
                return (
                    f"tid {tid}: {label} stack contents diverge from "
                    f"checkpoint {sequence} (blend or data loss)"
                )
    return None


class _SweepScenario:
    """One deterministic run of the sweep workload.

    Stack contents are tracked twice: in the simulation's byte images (what
    the checkpoint/recovery machinery operates on) and in a plain Python
    mirror snapshotted before every checkpoint (what the invariant check
    compares against).  The mirror is *derived independently* of the
    checkpoint pipeline, so a pipeline bug cannot corrupt the expectation.
    """

    def __init__(
        self,
        seed: int,
        threads: int,
        intervals: int,
        writes_per_interval: int,
        transient_rate: float,
        injector: FaultInjector | None,
    ) -> None:
        self.seed = seed
        self.intervals = intervals
        self.writes_per_interval = writes_per_interval
        self.process = Process(name="fault-sweep")
        self.hierarchy = MemoryHierarchy(setup_i())
        if transient_rate and self.hierarchy.nvm is not None:
            self.hierarchy.nvm.error_model = NvmErrorModel(
                seed=seed, transient_write_rate=transient_rate
            )
        self.tracker = ProsperTracker(self.process.tracker_config)
        self.dram_images: dict[int, ByteImage] = {}
        self.nvm_images: dict[int, ByteImage] = {}
        self.injector = injector
        self.manager = CheckpointManager(
            self.process,
            self.hierarchy,
            self.tracker,
            injector=injector,
            dram_images=self.dram_images,
            nvm_images=self.nvm_images,
        )
        self.crash_sim = CrashSimulator(
            self.process,
            self.manager,
            dram_images=self.dram_images,
            nvm_images=self.nvm_images,
        )
        self.sp: dict[int, int] = {}
        for _ in range(threads):
            thread = self.process.spawn_thread(
                stack_bytes=512 * 1024, persistent=True
            )
            thread.registers.stack_pointer = thread.stack.end - ACTIVE_WINDOW_BYTES
            self.sp[thread.tid] = thread.registers.stack_pointer
            self.dram_images[thread.tid] = ByteImage()
            self.nvm_images[thread.tid] = ByteImage()
        #: Independent mirror of each thread's live stack words.
        self.mirror: dict[int, dict[int, int]] = {
            tid: {} for tid in self.sp
        }
        #: Mirror + register snapshots taken just before checkpoint k.
        self.mem_at: list[dict[int, dict[int, int]]] = []
        self.regs_at: list[dict[int, int]] = []

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #

    def _workload_interval(self, k: int) -> None:
        """Dirty each thread's active window with interval-unique values.

        The same addresses are rewritten every interval with values that
        encode (thread, interval, write index), so any blend of two
        checkpoint epochs shows up as a mismatched word.
        """
        for thread in self.process.iter_threads():
            self.tracker.configure(thread.bitmap)
            sp = self.sp[thread.tid]
            for j in range(self.writes_per_interval):
                address = sp + j * CLUSTER_STRIDE
                value = (thread.tid << 48) | ((k + 1) << 32) | (j + 1)
                self.tracker.observe_store(address, 8)
                self.dram_images[thread.tid].write(address, value)
                self.mirror[thread.tid][address] = value
                thread.registers.op_index += 1
            self.tracker.request_flush()
            self.tracker.poll_quiescent()

    def run(self) -> int:
        """Run every interval + checkpoint; returns checkpoints completed.

        An armed injector makes this raise :class:`CrashInjected` from
        inside the checkpoint whose index is ``len(self.mem_at) - 1``.
        """
        completed = 0
        for k in range(self.intervals):
            self._workload_interval(k)
            self.mem_at.append(
                {tid: dict(words) for tid, words in self.mirror.items()}
            )
            self.regs_at.append(
                {
                    thread.tid: thread.registers.op_index
                    for thread in self.process.iter_threads()
                }
            )
            self.manager.checkpoint_process()
            completed += 1
        return completed

    # ------------------------------------------------------------------ #
    # Invariant check
    # ------------------------------------------------------------------ #

    def state_mismatch(self, sequence: int | None) -> str | None:
        """Compare restored state against checkpoint *sequence*'s snapshot.

        Delegates to the module-level :func:`state_mismatch`, which the
        multicore sweep shares.
        """
        return state_mismatch(
            self.process,
            self.sp,
            self.dram_images,
            self.nvm_images,
            self.mem_at,
            self.regs_at,
            sequence,
        )


class CrashConsistencyChecker:
    """Enumerates every crash point of a workload and verifies recovery."""

    def __init__(
        self,
        seed: int = 0,
        threads: int = 2,
        intervals: int = 3,
        writes_per_interval: int = 4,
        transient_rate: float = 0.0,
    ) -> None:
        if threads < 1 or intervals < 1 or writes_per_interval < 1:
            raise ValueError("threads, intervals and writes must be positive")
        if not 0.0 <= transient_rate <= 1.0:
            raise ValueError("transient rate must be in [0, 1]")
        self.seed = seed
        self.threads = threads
        self.intervals = intervals
        self.writes_per_interval = writes_per_interval
        self.transient_rate = transient_rate

    def _scenario(self, injector: FaultInjector | None) -> _SweepScenario:
        return _SweepScenario(
            self.seed,
            self.threads,
            self.intervals,
            self.writes_per_interval,
            self.transient_rate,
            injector,
        )

    def enumerate_points(self) -> list[tuple[str, int]]:
        """Probe pass: every (point, occurrence) the workload reaches."""
        probe = FaultInjector(self.seed)
        self._scenario(probe).run()
        ordered: list[str] = []
        for point in probe.fired:
            if point not in ordered:
                ordered.append(point)
        counts = probe.occurrences()
        return [
            (point, occurrence)
            for point in ordered
            for occurrence in range(counts[point])
        ]

    def run_case(self, point: str, occurrence: int) -> SweepCase:
        """Crash at one (point, occurrence), recover, check the invariant."""
        injector = FaultInjector(self.seed)
        injector.arm(point, occurrence)
        scenario = self._scenario(injector)
        try:
            scenario.run()
        except CrashInjected:
            pass
        else:
            return SweepCase(
                point,
                occurrence,
                -1,
                None,
                OUTCOME_VIOLATION,
                "armed crash point never fired",
            )
        crashed_in = len(scenario.mem_at) - 1
        injector.disarm()
        scenario.crash_sim.crash()
        report = scenario.crash_sim.recover()
        resumed = report.resumed_from_sequence

        if resumed == crashed_in:
            outcome = OUTCOME_ROLLED_FORWARD
        elif crashed_in > 0 and resumed == crashed_in - 1:
            outcome = OUTCOME_PREVIOUS
        elif crashed_in == 0 and resumed is None:
            outcome = OUTCOME_FRESH_START
        else:
            return SweepCase(
                point,
                occurrence,
                crashed_in,
                resumed,
                OUTCOME_VIOLATION,
                f"resumed from {resumed}, expected {crashed_in} or "
                f"{crashed_in - 1 if crashed_in else None}",
            )
        mismatch = scenario.state_mismatch(resumed)
        if mismatch is not None:
            return SweepCase(
                point, occurrence, crashed_in, resumed, OUTCOME_VIOLATION, mismatch
            )
        return SweepCase(point, occurrence, crashed_in, resumed, outcome)

    def run(self) -> SweepReport:
        """Sweep every enumerated (point, occurrence)."""
        report = SweepReport(
            self.seed,
            self.threads,
            self.intervals,
            self.writes_per_interval,
            self.transient_rate,
        )
        for point, occurrence in self.enumerate_points():
            report.cases.append(self.run_case(point, occurrence))
        return report


# ---------------------------------------------------------------------- #
# Targeted demos (used by the CLI and the example script)
# ---------------------------------------------------------------------- #


def transient_retry_demo(
    seed: int = 0,
    threads: int = 2,
    intervals: int = 3,
    writes_per_interval: int = 4,
    transient_rate: float = 0.25,
) -> RetryDemoResult:
    """Checkpoint under transient NVM write errors, crash, recover.

    The error model makes a deterministic fraction of checkpoint writes
    fail transiently; the reliable-write path retries with backoff, the
    retries are charged to the checkpoint's cycles, and recovery must
    still restore the last committed checkpoint exactly.
    """
    checker = CrashConsistencyChecker(
        seed, threads, intervals, writes_per_interval, transient_rate
    )
    scenario = checker._scenario(None)
    completed = scenario.run()
    retries = sum(record.retries for record in scenario.manager.checkpoints)
    scenario.crash_sim.crash()
    report = scenario.crash_sim.recover()
    mismatch = scenario.state_mismatch(report.resumed_from_sequence)
    return RetryDemoResult(
        checkpoints=completed,
        retries=retries,
        resumed_from=report.resumed_from_sequence,
        state_ok=(report.resumed_from_sequence == completed - 1)
        and mismatch is None,
    )


def torn_metadata_demo(
    seed: int = 0,
    threads: int = 2,
    writes_per_interval: int = 4,
) -> TornMetadataDemoResult:
    """Tear checkpoint 1's metadata record, crash mid-commit, recover.

    The tear is silent at write time; the staging for checkpoint 1 is
    complete, so a recovery that trusted completeness alone would roll it
    forward onto registers it cannot validate.  The metadata CRC catches
    the tear: the staged data is discarded and the process falls back to
    committed checkpoint 0.
    """
    injector = FaultInjector(seed)
    injector.tear_metadata_at(1)
    # Crash at the commit-flag write of checkpoint 1 (its 2nd occurrence).
    injector.arm(COMMIT_FLAG_WRITE, occurrence=1)
    checker = CrashConsistencyChecker(
        seed, threads, intervals=2, writes_per_interval=writes_per_interval
    )
    scenario = checker._scenario(injector)
    try:
        scenario.run()
    except CrashInjected:
        pass
    injector.disarm()
    scenario.crash_sim.crash()
    report = scenario.crash_sim.recover()
    mismatch = scenario.state_mismatch(report.resumed_from_sequence)
    return TornMetadataDemoResult(
        resumed_from=report.resumed_from_sequence,
        discarded_staged=scenario.manager.discarded_staged,
        state_ok=(report.resumed_from_sequence == 0) and mismatch is None,
    )
