"""The DRAM-resident dirty bitmap maintained by the Prosper tracker.

One bit corresponds to one tracking granule of the stack (Section III-A:
"A bit in the dirty bitmap corresponds to a stack address range based on the
tracking granularity").  The bitmap is organized as 32-bit words — the same
width as the bitmap-value field of a lookup-table entry (Figure 7) — so a
single tracker store updates one word.

The OS consumes the bitmap at checkpoint time: it inspects only the words
covering the maximum active stack region, coalesces contiguous set bits into
runs, and clears the bits it consumed for the next interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.bitops import popcount_u32
from repro.memory.address import AddressRange

#: Bits per bitmap word (matches the lookup-table bitmap-value width).
WORD_BITS = 32
#: Bytes occupied by one bitmap word in the bitmap area.
WORD_BYTES = 4


@dataclass(frozen=True)
class DirtyRun:
    """A maximal run of contiguous dirty granules ``[start, end)`` in bytes."""

    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


class DirtyBitmap:
    """Dirty bitmap for one thread's stack region.

    Parameters
    ----------
    region:
        The stack address range the bitmap covers.
    granularity:
        Bytes per bit (a multiple of 8; Section III-B).
    base_address:
        Virtual address of the bitmap area in DRAM, used to compute the
        bitmap-word addresses the tracker stores to.
    """

    def __init__(self, region: AddressRange, granularity: int, base_address: int = 0x6000_0000) -> None:
        if granularity % 8 != 0 or granularity <= 0:
            raise ValueError("granularity must be a positive multiple of 8")
        self.region = region
        self.granularity = granularity
        self.base_address = base_address
        self.num_granules = -(-region.size // granularity)
        self.num_words = -(-self.num_granules // WORD_BITS)
        self._words = np.zeros(self.num_words, dtype=np.uint32)

    # ------------------------------------------------------------------ #
    # Address math (mirrors the tracker's hardware calculation, Figure 7)
    # ------------------------------------------------------------------ #

    def granule_of(self, address: int) -> int:
        """Granule index of a stack *address* (0 = lowest stack address)."""
        if not self.region.contains(address):
            raise ValueError(
                f"address {address:#x} outside tracked region {self.region}"
            )
        return (address - self.region.start) // self.granularity

    def word_address(self, granule: int) -> int:
        """Virtual address of the bitmap word holding *granule*'s bit."""
        return self.base_address + (granule // WORD_BITS) * WORD_BYTES

    def bit_position(self, granule: int) -> int:
        """Bit index of *granule* within its bitmap word."""
        return granule % WORD_BITS

    # ------------------------------------------------------------------ #
    # Word-level interface used by the tracker's bitmap loads/stores
    # ------------------------------------------------------------------ #

    def load_word(self, word_index: int) -> int:
        """Tracker-issued load of the old bitmap value."""
        return int(self._words[word_index])

    def store_word(self, word_index: int, value: int) -> None:
        """Tracker-issued store of a merged bitmap value."""
        self._words[word_index] = np.uint32(value)

    def merge_word(self, word_index: int, accumulated: int) -> bool:
        """Accumulate-and-Apply merge: OR *accumulated* into the word.

        Returns True when the stored value actually changed (a store to
        memory is required), False when the accumulated bits were already
        set (the store can be elided — "stored back if required").
        """
        old = int(self._words[word_index])
        new = old | (accumulated & 0xFFFF_FFFF)
        if new != old:
            self._words[word_index] = np.uint32(new)
            return True
        return False

    def merge_words(self, word_indices: np.ndarray, accumulated: np.ndarray) -> int:
        """Vectorized Accumulate-and-Apply merge of several distinct words.

        Semantically identical to calling :meth:`merge_word` once per
        (index, value) pair — *word_indices* must be distinct, which the
        lookup table guarantees (it holds at most one entry per word).
        Returns how many words actually changed (stores required); the rest
        can be elided.
        """
        old = self._words[word_indices]
        new = old | accumulated.astype(np.uint32)
        changed = new != old
        self._words[word_indices] = new
        return int(np.count_nonzero(changed))

    def store_words(self, word_indices: np.ndarray, values: np.ndarray) -> None:
        """Vectorized Load-and-Update write-out of several distinct words."""
        self._words[word_indices] = values.astype(np.uint32)

    # ------------------------------------------------------------------ #
    # OS-side inspection and maintenance
    # ------------------------------------------------------------------ #

    def set_bits_for_access(self, address: int, size: int) -> None:
        """Directly mark the granules covered by an access (software path).

        Used by the OS fault handler for inter-thread stack writes
        (Section III-C) and by tests.
        """
        if size <= 0:
            return
        first = self.granule_of(address)
        last = self.granule_of(min(address + size - 1, self.region.end - 1))
        first_word, last_word = first // WORD_BITS, last // WORD_BITS
        lo_bit = first % WORD_BITS
        hi_bit = last % WORD_BITS
        if first_word == last_word:
            mask = ((1 << (last - first + 1)) - 1) << lo_bit
            self._words[first_word] |= np.uint32(mask)
            return
        # Partial first word, full middle words (one slice write), partial
        # last word — O(words) numpy stores instead of O(granules) Python.
        self._words[first_word] |= np.uint32((0xFFFF_FFFF << lo_bit) & 0xFFFF_FFFF)
        if last_word - first_word > 1:
            self._words[first_word + 1 : last_word] |= np.uint32(0xFFFF_FFFF)
        self._words[last_word] |= np.uint32((1 << (hi_bit + 1)) - 1)

    def is_dirty(self, address: int) -> bool:
        """True when the granule containing *address* is marked dirty."""
        granule = self.granule_of(address)
        return bool(self._words[granule // WORD_BITS] >> (granule % WORD_BITS) & 1)

    def dirty_granule_count(self) -> int:
        """Total set bits (population count across all words).

        Two LUT gathers over the word array — no per-call ``unpackbits``
        allocation of ``32 * num_words`` bytes.
        """
        return int(popcount_u32(self._words).sum())

    def words_touched(self, active_low: int | None = None) -> int:
        """Number of bitmap words covering ``[active_low, region.end)``.

        This is the amount of metadata the OS must walk at checkpoint time;
        passing the tracker-reported lowest dirty address limits the walk to
        the active stack region (Section III-A).
        """
        if active_low is None or active_low <= self.region.start:
            return self.num_words
        first_granule = (active_low - self.region.start) // self.granularity
        return self.num_words - first_granule // WORD_BITS

    def dirty_run_bounds(
        self, active_low: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Maximal contiguous dirty byte-ranges as ``(starts, ends)`` arrays.

        The columnar form of :meth:`iter_dirty_runs`: the checkpoint engine
        clips, filters, and sums these bounds with numpy instead of walking
        ``DirtyRun`` objects one at a time.
        """
        start_granule = 0
        if active_low is not None and active_low > self.region.start:
            start_granule = (active_low - self.region.start) // self.granularity

        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little"
        )[: self.num_granules]
        if start_granule:
            bits = bits[start_granule:]
        if not bits.any():
            empty = np.empty(0, dtype=np.int64)
            return empty, empty

        # Find run boundaries via the discrete difference of the bit vector.
        padded = np.concatenate(([0], bits, [0]))
        edges = np.flatnonzero(np.diff(padded))
        base = self.region.start + start_granule * self.granularity
        bounds = base + edges.astype(np.int64) * self.granularity
        return bounds[0::2], np.minimum(bounds[1::2], self.region.end)

    def iter_dirty_runs(self, active_low: int | None = None) -> Iterator[DirtyRun]:
        """Yield maximal contiguous dirty byte-ranges, low address first.

        Contiguous set bits are coalesced into one run (Section III-A: "the
        OS looks for coalescing opportunities"), so one run becomes one copy
        operation at checkpoint time.
        """
        starts, ends = self.dirty_run_bounds(active_low)
        for s, e in zip(starts.tolist(), ends.tolist()):
            yield DirtyRun(s, e)

    def clear(self, active_low: int | None = None) -> int:
        """Clear dirty bits; returns the number of words written.

        With *active_low* given, only the words covering the active region
        are cleared — the optimization enabled by the tracker sharing the
        maximum active stack extent with the OS.
        """
        if active_low is None or active_low <= self.region.start:
            written = int(np.count_nonzero(self._words))
            self._words[:] = 0
            return written
        first_word = ((active_low - self.region.start) // self.granularity) // WORD_BITS
        written = int(np.count_nonzero(self._words[first_word:]))
        self._words[first_word:] = 0
        return written

    def snapshot_words(self) -> np.ndarray:
        """Copy of the raw words (context-switch save path)."""
        return self._words.copy()

    def restore_words(self, words: np.ndarray) -> None:
        """Restore raw words (context-switch restore path)."""
        if words.shape != self._words.shape:
            raise ValueError("bitmap snapshot shape mismatch")
        self._words[:] = words
