"""Seed-robustness validation of the headline paper shapes.

The benchmark suite asserts each figure's shape at one seed; this module
re-checks the load-bearing claims across several seeds so a reproduction
report can state that the orderings are not one-draw luck:

1. Prosper has the lowest normalized time of all mechanisms (Figure 8).
2. Romulus has the highest (Figure 8).
3. SSP-10µs costs at least as much as SSP-1ms (Figure 8).
4. SSP+Prosper beats SSP-everything for full-memory persistence (Figure 9,
   10 µs setting).
5. Sub-page tracking reduces the copy size by >5x on every application
   (Figure 4).
6. Tracking overhead stays under 2 % per workload (Figure 12).
7. mcf's bitmap traffic does not improve with a larger HWM while SSSP's
   does (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import evaluation, motivation, overhead


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one shape check at one seed."""

    name: str
    seed: int
    passed: bool
    detail: str


def _fig8_checks(seed: int, target_ops: int) -> list[CheckResult]:
    results = evaluation.fig8_stack_persistence(target_ops=target_ops, seed=seed)
    table: dict[str, dict[str, float]] = {}
    for r in results:
        table.setdefault(r.trace_name, {})[r.mechanism_name] = r.normalized_time
    out = []
    for workload, row in table.items():
        best = min(row, key=row.get)
        worst = max(row, key=row.get)
        out.append(
            CheckResult(
                "fig8-prosper-best", seed, best == "prosper",
                f"{workload}: best={best} ({row[best]:.2f})",
            )
        )
        out.append(
            CheckResult(
                "fig8-romulus-worst", seed, worst == "romulus",
                f"{workload}: worst={worst} ({row[worst]:.2f})",
            )
        )
        out.append(
            CheckResult(
                "fig8-ssp-interval-trend", seed,
                row["ssp-10us"] >= row["ssp-1ms"] * 0.98,
                f"{workload}: 10us={row['ssp-10us']:.2f} 1ms={row['ssp-1ms']:.2f}",
            )
        )
    return out


def _fig9_checks(seed: int, target_ops: int) -> list[CheckResult]:
    cells = evaluation.fig9_memory_persistence(
        target_ops=target_ops, ssp_intervals_us=(10.0,), seed=seed
    )
    table: dict[str, dict[str, float]] = {}
    for c in cells:
        table.setdefault(c.workload, {})[c.combination] = c.normalized_time
    return [
        CheckResult(
            "fig9-prosper-combo-best", seed,
            row["ssp+prosper"] <= row["ssp"] * 1.001,
            f"{workload}: ssp+prosper={row['ssp+prosper']:.2f} ssp={row['ssp']:.2f}",
        )
        for workload, row in table.items()
    ]


def _fig4_checks(seed: int, target_ops: int) -> list[CheckResult]:
    rows = motivation.fig4_copy_size(target_ops=target_ops, seed=seed)
    return [
        CheckResult(
            "fig4-reduction", seed, row.reduction_factor > 5.0,
            f"{row.workload}: {row.reduction_factor:.1f}x",
        )
        for row in rows
    ]


def _fig12_checks(seed: int, target_ops: int) -> list[CheckResult]:
    cells = overhead.fig12_tracking_overhead(
        target_ops=target_ops, granularities=(8,), seed=seed
    )
    return [
        CheckResult(
            "fig12-overhead-small", seed, cell.speedup > 0.98,
            f"{cell.workload}: speedup={cell.speedup:.4f}",
        )
        for cell in cells
    ]


def _fig13_checks(seed: int, target_ops: int) -> list[CheckResult]:
    cells = overhead.fig13_watermark_sensitivity(
        target_ops=target_ops, hwm_values=(8, 32), lwm_values=(), seed=seed
    )
    by = {(c.workload, c.hwm): c.memory_ops for c in cells}
    return [
        CheckResult(
            "fig13-sssp-hwm-down", seed,
            by[("g500_sssp", 32)] < by[("g500_sssp", 8)],
            f"sssp: hwm8={by[('g500_sssp', 8)]} hwm32={by[('g500_sssp', 32)]}",
        ),
        CheckResult(
            "fig13-mcf-hwm-up", seed,
            by[("605.mcf_s", 32)] > by[("605.mcf_s", 8)] * 0.95,
            f"mcf: hwm8={by[('605.mcf_s', 8)]} hwm32={by[('605.mcf_s', 32)]}",
        ),
    ]


def validate_shapes(
    seeds: tuple[int, ...] = (42, 7, 1234),
    target_ops: int = 30_000,
) -> list[CheckResult]:
    """Run every shape check at every seed; returns the flat result list."""
    out: list[CheckResult] = []
    for seed in seeds:
        out.extend(_fig8_checks(seed, target_ops))
        out.extend(_fig9_checks(seed, target_ops))
        out.extend(_fig4_checks(seed, target_ops))
        out.extend(_fig12_checks(seed, target_ops))
        out.extend(_fig13_checks(seed, target_ops))
    return out


def summarize(results: list[CheckResult]) -> dict[str, tuple[int, int]]:
    """Per check name: (passes, total) across seeds/workloads."""
    summary: dict[str, tuple[int, int]] = {}
    for r in results:
        passes, total = summary.get(r.name, (0, 0))
        summary[r.name] = (passes + (1 if r.passed else 0), total + 1)
    return summary
