"""Tests for the TLB / page-table-walker model."""

from hypothesis import given, strategies as st

from repro.memory.tlb import Tlb, TlbConfig


def tiny_tlb(entries=8, associativity=2):
    return Tlb(TlbConfig(entries=entries, associativity=associativity))


class TestTranslation:
    def test_first_access_walks(self):
        tlb = tiny_tlb()
        cost = tlb.translate(0x1000, is_write=False)
        assert cost == tlb.config.walk_cycles
        assert tlb.stats.misses == 1

    def test_second_access_hits_free(self):
        tlb = tiny_tlb()
        tlb.translate(0x1000, False)
        assert tlb.translate(0x1234, False) == 0  # same page
        assert tlb.stats.hits == 1

    def test_first_write_pays_dirty_update(self):
        tlb = tiny_tlb()
        tlb.translate(0x1000, False)
        cost = tlb.translate(0x1000, True)
        assert cost == tlb.config.dirty_update_cycles
        # Second write to the same page: dirty bit already set.
        assert tlb.translate(0x1008, True) == 0
        assert tlb.stats.dirty_updates == 1

    def test_miss_plus_write_charges_both(self):
        tlb = tiny_tlb()
        cost = tlb.translate(0x5000, True)
        assert cost == tlb.config.walk_cycles + tlb.config.dirty_update_cycles

    def test_capacity_eviction_lru(self):
        tlb = tiny_tlb(entries=2, associativity=1)
        # Pages 0 and 2 map to set 0 (2 sets): 0 evicted by 2... with
        # num_sets=2, pages 0 and 2 share set 0.
        tlb.translate(0 * 4096, False)
        tlb.translate(2 * 4096, False)
        assert tlb.translate(0 * 4096, False) > 0  # 0 was evicted
        assert tlb.stats.misses == 3


class TestDirtyMaintenance:
    def test_clear_dirty_bits_forces_new_updates(self):
        tlb = tiny_tlb()
        tlb.translate(0x1000, True)
        assert tlb.clear_dirty_bits() == 1
        assert tlb.translate(0x1000, True) == tlb.config.dirty_update_cycles
        assert tlb.stats.dirty_updates == 2

    def test_flush_empties(self):
        tlb = tiny_tlb()
        tlb.translate(0x1000, False)
        tlb.flush()
        assert tlb.resident_entries == 0

    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
    def test_occupancy_bounded(self, accesses):
        tlb = tiny_tlb(entries=8, associativity=2)
        for page, is_write in accesses:
            tlb.translate(page * 4096, is_write)
        assert tlb.resident_entries <= 8
        assert tlb.stats.accesses == len(accesses)

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=200))
    def test_dirty_updates_at_most_once_per_page_between_clears(self, pages):
        tlb = Tlb(TlbConfig(entries=64, associativity=64))  # no evictions
        for page in pages:
            tlb.translate(page * 4096, True)
        assert tlb.stats.dirty_updates == len(set(pages))


class TestEngineIntegration:
    def test_engine_charges_translation(self):
        from repro.config import setup_i
        from repro.cpu.engine import ExecutionEngine
        from repro.cpu.ops import Op, OpKind
        from repro.memory.address import AddressRange
        from dataclasses import replace

        stack = AddressRange(0x7000_0000, 0x7010_0000)
        ops = [Op(OpKind.READ, stack.start + 8, 8)] * 4

        plain = ExecutionEngine(config=setup_i(), stack_range=stack)
        base = plain.run(list(ops)).app_cycles

        cfg = replace(setup_i(), tlb=TlbConfig())
        with_tlb = ExecutionEngine(config=cfg, stack_range=stack)
        total = with_tlb.run(list(ops)).app_cycles
        # Exactly one TLB miss (one page), hits free afterwards.
        assert total == base + TlbConfig().walk_cycles
        assert with_tlb.tlb.stats.misses == 1

    def test_engine_without_tlb_has_none(self):
        from repro.cpu.engine import ExecutionEngine

        assert ExecutionEngine().tlb is None
