"""Tests for the fault-injection subsystem: crash-point injection, the
crash-consistency sweep, torn-record detection, and verified recovery."""

import pytest

from repro.config import TrackerConfig, setup_i
from repro.core.checkpoint import ProsperCheckpointEngine
from repro.core.tracker import ProsperTracker
from repro.faults.injector import (
    STAGE_COMPLETE,
    CrashInjected,
    FaultInjector,
    stage_run_copy,
)
from repro.faults.nvm_errors import WRITE_OK, WRITE_TORN, NvmErrorModel
from repro.faults.sweep import (
    OUTCOME_PREVIOUS,
    OUTCOME_ROLLED_FORWARD,
    CrashConsistencyChecker,
    torn_metadata_demo,
    transient_retry_demo,
)
from repro.kernel.checkpoint_mgr import CheckpointManager
from repro.kernel.process import Process
from repro.kernel.restore import CrashSimulator
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import ByteImage


class TestFaultInjector:
    def test_unarmed_injector_only_records(self):
        inj = FaultInjector()
        for _ in range(3):
            inj.reached("stage_begin")
        assert inj.fired == ["stage_begin"] * 3
        assert inj.occurrences()["stage_begin"] == 3

    def test_armed_point_fires_at_requested_occurrence(self):
        inj = FaultInjector()
        inj.arm("stage_begin", occurrence=2)
        inj.reached("stage_begin")
        inj.reached("stage_begin")
        with pytest.raises(CrashInjected) as exc:
            inj.reached("stage_begin")
        assert exc.value.point == "stage_begin"
        assert exc.value.occurrence == 2

    def test_disarm_and_reset(self):
        inj = FaultInjector()
        inj.arm("metadata_write")
        inj.disarm()
        inj.reached("metadata_write")  # no crash
        inj.reset()
        assert inj.fired == []
        assert inj.occurrences()["metadata_write"] == 0

    def test_negative_occurrence_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("stage_begin", occurrence=-1)

    def test_torn_metadata_plan(self):
        inj = FaultInjector()
        inj.tear_metadata_at(1, 3)
        assert inj.should_tear_metadata(1)
        assert not inj.should_tear_metadata(2)


def make_world(injector=None, with_images=False):
    """One persistent thread + manager, two dirty clusters per interval."""
    proc = Process()
    thread = proc.spawn_thread(stack_bytes=1 << 20, persistent=True)
    thread.registers.stack_pointer = thread.stack.end - 65536
    hierarchy = MemoryHierarchy(setup_i())
    tracker = ProsperTracker(proc.tracker_config)
    tracker.configure(thread.bitmap)
    dram = {thread.tid: ByteImage()} if with_images else None
    nvm = {thread.tid: ByteImage()} if with_images else None
    mgr = CheckpointManager(
        proc,
        hierarchy,
        tracker,
        injector=injector,
        dram_images=dram,
        nvm_images=nvm,
    )
    return proc, tracker, mgr


def dirty_two_runs(proc, tracker, mgr, op_index, value=0):
    """Dirty two well-separated clusters (two staged runs per checkpoint)."""
    thread = proc.thread(1)
    sp = thread.registers.stack_pointer
    for address in (sp + 8, sp + 8192):
        tracker.observe_store(address, 8)
        if mgr.dram_images is not None:
            mgr.dram_images[thread.tid].write(address, value)
    thread.registers.op_index = op_index
    tracker.request_flush()
    tracker.poll_quiescent()


class TestPartialStagingNotPromoted:
    """Regression for the roll-forward guard: a crash mid-staging leaves a
    *partial* staging buffer, which recovery must discard — the old
    ``dirty_runs is not None`` check promoted it unconditionally."""

    def test_crash_mid_run_copy_falls_back(self):
        inj = FaultInjector()
        proc, tracker, mgr = make_world(injector=inj)
        dirty_two_runs(proc, tracker, mgr, op_index=111)
        mgr.checkpoint_process()  # sequence 0, committed

        dirty_two_runs(proc, tracker, mgr, op_index=222)
        # Crash before the 2nd run of checkpoint 1 is staged (occurrence 1:
        # checkpoint 0 already fired stage_run_copy[1] once).
        inj.arm(stage_run_copy(1), occurrence=1)
        with pytest.raises(CrashInjected):
            mgr.checkpoint_process()

        sim = CrashSimulator(proc, mgr)
        sim.crash()
        report = sim.recover()
        # The half-staged checkpoint 1 must NOT be promoted.
        assert report.resumed_from_sequence == 0
        assert not report.rolled_forward
        assert proc.thread(1).registers.op_index == 111
        assert mgr.discarded_staged == 1
        assert mgr.discarded_intervals == {1}
        assert not mgr.checkpoints[1].committed

    def test_crash_after_staging_complete_rolls_forward(self):
        inj = FaultInjector()
        proc, tracker, mgr = make_world(injector=inj)
        dirty_two_runs(proc, tracker, mgr, op_index=111)
        mgr.checkpoint_process()

        dirty_two_runs(proc, tracker, mgr, op_index=222)
        inj.arm(STAGE_COMPLETE, occurrence=1)
        with pytest.raises(CrashInjected):
            mgr.checkpoint_process()

        sim = CrashSimulator(proc, mgr)
        sim.crash()
        report = sim.recover()
        assert report.rolled_forward
        assert report.resumed_from_sequence == 1
        assert proc.thread(1).registers.op_index == 222


class TestTornRecordDetection:
    def test_torn_metadata_discards_staging(self):
        inj = FaultInjector()
        inj.tear_metadata_at(1)
        proc, tracker, mgr = make_world(injector=inj)
        dirty_two_runs(proc, tracker, mgr, op_index=111)
        mgr.checkpoint_process()

        dirty_two_runs(proc, tracker, mgr, op_index=222)
        mgr.checkpoint_process(crash_during_commit=True)  # fully staged
        sim = CrashSimulator(proc, mgr)
        sim.crash()
        report = sim.recover()
        # Staging is complete, but the metadata CRC fails: fall back.
        assert report.resumed_from_sequence == 0
        assert proc.thread(1).registers.op_index == 111
        assert mgr.discarded_staged == 1

    def test_torn_staged_run_detected_by_checksum(self):
        region_tracker = ProsperTracker(TrackerConfig())
        proc = Process()
        thread = proc.spawn_thread(stack_bytes=1 << 20, persistent=True)
        region_tracker.configure(thread.bitmap)
        hierarchy = MemoryHierarchy(setup_i())

        class TornOnce(NvmErrorModel):
            def __init__(self):
                super().__init__()
                self._queue = [(WRITE_TORN, None)]

            def draw_write(self):
                return self._queue.pop(0) if self._queue else (WRITE_OK, None)

        hierarchy.nvm.error_model = TornOnce()
        engine = ProsperCheckpointEngine(region_tracker, thread.bitmap, hierarchy)
        region_tracker.observe_store(thread.stack.end - 64, 8)
        engine.stage(0)
        staged = engine.staged
        assert staged is not None and staged.complete
        assert not staged.verify()  # the tear corrupted a staged run
        assert engine.recover_staged() is None  # discarded, nothing committed
        assert engine.staged is None


class TestCrashSimulatorMemoryRestoration:
    def test_recover_restores_stack_contents(self):
        proc, tracker, mgr = make_world(with_images=True)
        thread = proc.thread(1)
        sp = thread.registers.stack_pointer
        dirty_two_runs(proc, tracker, mgr, op_index=42, value=0xDEAD)
        mgr.checkpoint_process()

        sim = CrashSimulator(proc, mgr)
        sim.crash()
        assert mgr.dram_images[thread.tid].read(sp + 8) == 0  # DRAM died
        report = sim.recover()
        assert report.resumed_from_sequence == 0
        # Contents, not just registers, came back from the NVM image.
        assert mgr.dram_images[thread.tid].read(sp + 8) == 0xDEAD
        assert mgr.dram_images[thread.tid].read(sp + 8192) == 0xDEAD


class TestSweep:
    def test_small_sweep_has_zero_violations(self):
        checker = CrashConsistencyChecker(
            seed=0, threads=2, intervals=2, writes_per_interval=2
        )
        report = checker.run()
        assert report.ok, [str(v) for v in report.violations]
        # Every protocol family shows up, including per-run copy points.
        points = {case.point for case in report.cases}
        assert {
            "metadata_write",
            "stage_begin",
            "stage_run_copy[0]",
            "stage_run_copy[1]",
            "stage_complete",
            "commit_flag_write",
            "persist_barrier",
            "bitmap_clear",
        } <= points
        outcomes = {case.outcome for case in report.cases}
        assert OUTCOME_ROLLED_FORWARD in outcomes
        assert OUTCOME_PREVIOUS in outcomes

    def test_sweep_is_deterministic(self):
        checker = CrashConsistencyChecker(
            seed=5, threads=1, intervals=2, writes_per_interval=2
        )
        assert checker.run().cases == checker.run().cases

    def test_sweep_under_transient_errors_still_consistent(self):
        checker = CrashConsistencyChecker(
            seed=1,
            threads=1,
            intervals=2,
            writes_per_interval=2,
            transient_rate=0.2,
        )
        report = checker.run()
        assert report.ok, [str(v) for v in report.violations]

    def test_transient_retry_demo_accounts_retries(self):
        result = transient_retry_demo(seed=0)
        assert result.retries > 0
        assert result.resumed_from == result.checkpoints - 1
        assert result.state_ok

    def test_torn_metadata_demo_detects_and_falls_back(self):
        result = torn_metadata_demo(seed=0)
        assert result.detected
        assert result.resumed_from == 0
        assert result.state_ok


class TestFaultsCli:
    def test_faults_sweep_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            ["faults", "sweep", "--intervals", "1", "--writes", "2", "--no-demos"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 invariant violation(s)" in out
        assert "stage_run_copy[0]" in out

    def test_list_mentions_faults(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "faults" in capsys.readouterr().out
