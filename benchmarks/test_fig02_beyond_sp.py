"""Figure 2 — stack writes beyond the interval-final SP.

Regenerates the per-interval series of total stack writes vs writes landing
below the SP value at the interval end (wasted work for SP-unaware
mechanisms), aggregated over 100 intervals as in the paper.
Paper shape: >36 % of Ycsb_mem stack writes land beyond the final SP; the
other workloads behave similarly.
"""

from repro.analysis.report import render_table
from repro.experiments import motivation


def test_fig2_beyond_final_sp(benchmark):
    results = benchmark.pedantic(
        motivation.fig2_beyond_final_sp,
        kwargs={"num_intervals": 100, "target_ops": 120_000},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            "Figure 2: stack writes beyond interval-final SP (100 intervals)",
            ["workload", "stack writes", "beyond final SP", "fraction"],
            [
                [r.workload, r.total_writes, r.total_beyond, f"{r.beyond_fraction:.3f}"]
                for r in results
            ],
        )
    )
    ycsb = next(r for r in results if r.workload == "ycsb_mem")
    assert ycsb.beyond_fraction > 0.1
    for r in results:
        assert 0 <= r.beyond_fraction <= 1
