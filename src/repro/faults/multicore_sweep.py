"""Multicore crash sweep: context switches and checkpoint barriers.

Extends the single-core crash-consistency sweep (:mod:`repro.faults.sweep`)
to the multicore execution path.  The crash surfaces here are the ones the
single-core sweep never reaches:

* ``ctx_save`` / ``ctx_restore`` — inside :meth:`Scheduler.switch_to`,
  while the per-core Prosper tracker state of the outgoing thread is being
  flushed and saved, or the incoming thread's saved state is being loaded;
* ``barrier_quiesce`` — inside the stop-the-world quiesce barrier each
  core passes before a process-wide checkpoint;
* plus every point of the two-step staging/commit protocol itself, now
  exercised with per-core trackers feeding one shared checkpoint manager.

The invariant is the same as the single-core sweep's — recovery restores
exactly one checkpoint's snapshot of *every* thread, registers and stack
contents alike — with the multicore-specific sharpening that threads
scheduled on different cores must never resume from different checkpoint
epochs (a "blend").  Crashes that land *outside* any checkpoint (the
context-switch points) are additionally required to restore the most
recently committed checkpoint, not merely some committed checkpoint.

Like the single-core sweep, every run derives from one seed, so any
violation is reproducible by re-arming the same (point, occurrence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injector import (
    CTX_RESTORE,
    CTX_SAVE,
    CrashInjected,
    FaultInjector,
)
from repro.faults.sweep import (
    ACTIVE_WINDOW_BYTES,
    CLUSTER_STRIDE,
    OUTCOME_FRESH_START,
    OUTCOME_PREVIOUS,
    OUTCOME_ROLLED_FORWARD,
    OUTCOME_VIOLATION,
    SweepCase,
    state_mismatch,
)
from repro.kernel.multicore import MultiCoreSimulation
from repro.memory.image import ByteImage

#: Crash points that fire between checkpoints (inside a context switch)
#: rather than inside the checkpoint pipeline.
WORKLOAD_PHASE_POINTS = frozenset({CTX_SAVE, CTX_RESTORE})


@dataclass
class MulticoreSweepReport:
    """Aggregate outcome of a multicore crash sweep."""

    seed: int
    cores: int
    intervals: int
    writes_per_interval: int
    cases: list[SweepCase] = field(default_factory=list)

    @property
    def violations(self) -> list[SweepCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def points_swept(self) -> int:
        return len({case.point for case in self.cases})

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for case in self.cases:
            counts[case.outcome] = counts.get(case.outcome, 0) + 1
        return counts


class _MulticoreScenario:
    """One deterministic multicore run: 2 threads per core, real scheduler.

    Each interval gives every thread one scheduling quantum on its home
    core — a genuine :meth:`Scheduler.switch_to` with Prosper tracker
    save/restore, which is where the ``ctx_save``/``ctx_restore`` crash
    points live — during which the thread dirties its active stack window
    with interval-unique values.  After each interval the scenario
    snapshots an independent mirror of all thread state, then drives the
    simulation's stop-the-world checkpoint (quiesce barrier + shared
    checkpoint manager).
    """

    def __init__(
        self,
        seed: int,
        cores: int,
        intervals: int,
        writes_per_interval: int,
        injector: FaultInjector | None,
    ) -> None:
        self.seed = seed
        self.intervals = intervals
        self.writes_per_interval = writes_per_interval
        self.dram_images: dict[int, ByteImage] = {}
        self.nvm_images: dict[int, ByteImage] = {}
        # Two persistent threads per core so every switch both saves the
        # outgoing tracker state and restores the incoming one.
        self.sim = MultiCoreSimulation(
            thread_ops=[[] for _ in range(2 * cores)],
            num_cores=cores,
            stack_bytes=512 * 1024,
            injector=injector,
            dram_images=self.dram_images,
            nvm_images=self.nvm_images,
        )
        self.process = self.sim.process
        self.sp: dict[int, int] = {}
        for thread in self.process.iter_threads():
            thread.registers.stack_pointer = (
                thread.stack.end - ACTIVE_WINDOW_BYTES
            )
            self.sp[thread.tid] = thread.registers.stack_pointer
            self.dram_images[thread.tid] = ByteImage()
            self.nvm_images[thread.tid] = ByteImage()
        #: Independent mirror of each thread's live stack words.
        self.mirror: dict[int, dict[int, int]] = {tid: {} for tid in self.sp}
        #: Mirror + register snapshots taken just before checkpoint k.
        self.mem_at: list[dict[int, dict[int, int]]] = []
        self.regs_at: list[dict[int, int]] = []

    # ------------------------------------------------------------------ #

    def _workload_interval(self, k: int) -> None:
        """One quantum per thread per core, with interval-unique values."""
        for core in self.sim.cores:
            for thread, _ops, _cursor in core.queue:
                core.scheduler.switch_to(thread)  # ctx_save / ctx_restore
                sp = self.sp[thread.tid]
                for j in range(self.writes_per_interval):
                    address = sp + j * CLUSTER_STRIDE
                    value = (thread.tid << 48) | ((k + 1) << 32) | (j + 1)
                    core.tracker.observe_store(address, 8)
                    self.dram_images[thread.tid].write(address, value)
                    self.mirror[thread.tid][address] = value
                    thread.registers.op_index += 1

    def run(self) -> int:
        """Run every interval + checkpoint; returns checkpoints completed.

        An armed injector makes this raise :class:`CrashInjected` either
        mid-switch (``len(self.mem_at)`` checkpoints committed) or inside
        checkpoint ``len(self.mem_at) - 1``.
        """
        completed = 0
        for k in range(self.intervals):
            self._workload_interval(k)
            self.mem_at.append(
                {tid: dict(words) for tid, words in self.mirror.items()}
            )
            self.regs_at.append(
                {
                    thread.tid: thread.registers.op_index
                    for thread in self.process.iter_threads()
                }
            )
            self.sim._checkpoint()  # barrier_quiesce + staging/commit points
            completed += 1
        return completed

    def state_mismatch(self, sequence: int | None) -> str | None:
        return state_mismatch(
            self.process,
            self.sp,
            self.dram_images,
            self.nvm_images,
            self.mem_at,
            self.regs_at,
            sequence,
        )


class MulticoreCrashChecker:
    """Enumerates and verifies every multicore crash point."""

    def __init__(
        self,
        seed: int = 0,
        cores: int = 2,
        intervals: int = 3,
        writes_per_interval: int = 4,
    ) -> None:
        if cores < 1 or intervals < 1 or writes_per_interval < 1:
            raise ValueError("cores, intervals and writes must be positive")
        self.seed = seed
        self.cores = cores
        self.intervals = intervals
        self.writes_per_interval = writes_per_interval

    def _scenario(self, injector: FaultInjector | None) -> _MulticoreScenario:
        return _MulticoreScenario(
            self.seed, self.cores, self.intervals, self.writes_per_interval, injector
        )

    def enumerate_points(self) -> list[tuple[str, int]]:
        """Probe pass: every (point, occurrence) the workload reaches."""
        probe = FaultInjector(self.seed)
        self._scenario(probe).run()
        ordered: list[str] = []
        for point in probe.fired:
            if point not in ordered:
                ordered.append(point)
        counts = probe.occurrences()
        return [
            (point, occurrence)
            for point in ordered
            for occurrence in range(counts[point])
        ]

    def run_case(self, point: str, occurrence: int) -> SweepCase:
        """Crash at one (point, occurrence), recover, check the invariant."""
        injector = FaultInjector(self.seed)
        injector.arm(point, occurrence)
        scenario = self._scenario(injector)
        try:
            scenario.run()
        except CrashInjected:
            pass
        else:
            return SweepCase(
                point,
                occurrence,
                -1,
                None,
                OUTCOME_VIOLATION,
                "armed crash point never fired",
            )
        snapshots = len(scenario.mem_at)
        injector.disarm()
        scenario.sim.crash()
        report = scenario.sim.recover()
        resumed = report.resumed_from_sequence

        if point in WORKLOAD_PHASE_POINTS:
            # Crash mid-switch: no checkpoint in flight, `snapshots`
            # checkpoints committed.  Recovery must restore the *latest*
            # committed checkpoint exactly — anything older is data loss.
            crashed_in = snapshots - 1
            if snapshots == 0 and resumed is None:
                outcome = OUTCOME_FRESH_START
            elif snapshots > 0 and resumed == snapshots - 1:
                outcome = OUTCOME_PREVIOUS
            else:
                return SweepCase(
                    point,
                    occurrence,
                    crashed_in,
                    resumed,
                    OUTCOME_VIOLATION,
                    f"resumed from {resumed}, expected "
                    f"{snapshots - 1 if snapshots else None} "
                    "(latest committed checkpoint)",
                )
        else:
            # Crash inside checkpoint `snapshots - 1`: either it completed
            # (rolled forward) or recovery falls back to its predecessor.
            crashed_in = snapshots - 1
            if resumed == crashed_in:
                outcome = OUTCOME_ROLLED_FORWARD
            elif crashed_in > 0 and resumed == crashed_in - 1:
                outcome = OUTCOME_PREVIOUS
            elif crashed_in == 0 and resumed is None:
                outcome = OUTCOME_FRESH_START
            else:
                return SweepCase(
                    point,
                    occurrence,
                    crashed_in,
                    resumed,
                    OUTCOME_VIOLATION,
                    f"resumed from {resumed}, expected {crashed_in} or "
                    f"{crashed_in - 1 if crashed_in else None}",
                )
        mismatch = scenario.state_mismatch(resumed)
        if mismatch is not None:
            return SweepCase(
                point, occurrence, crashed_in, resumed, OUTCOME_VIOLATION, mismatch
            )
        return SweepCase(point, occurrence, crashed_in, resumed, outcome)

    def run(self) -> MulticoreSweepReport:
        """Sweep every enumerated (point, occurrence)."""
        report = MulticoreSweepReport(
            self.seed, self.cores, self.intervals, self.writes_per_interval
        )
        for point, occurrence in self.enumerate_points():
            report.cases.append(self.run_case(point, occurrence))
        return report
