"""Tests for the checkpoint-family mechanisms: none/dirtybit/writeprotect/prosper."""

from repro.config import PAGE_BYTES, TrackerConfig
from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import Op, OpKind
from repro.memory.address import AddressRange
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.none import NoPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.writeprotect import WriteProtectPersistence

STACK = AddressRange(0x7000_0000, 0x7010_0000)


def run(mechanism, ops, interval_ops=None):
    """Run *ops* under one big live frame (SP at the region base).

    Checkpoints are SP-aware: without the frame, every write would be
    below the final SP and dropped as dead-frame data.
    """
    engine = ExecutionEngine(stack_range=STACK, mechanism=mechanism)
    frame = Op(OpKind.CALL, size=STACK.size)
    stats = engine.run(
        [frame] + list(ops), interval_ops=(interval_ops or len(ops)) + 1
    )
    return engine, stats


def stack_writes(addresses):
    return [Op(OpKind.WRITE, a, 8) for a in addresses]


class TestNoPersistence:
    def test_zero_cost(self):
        mech = NoPersistence()
        _, stats = run(mech, stack_writes([STACK.start + 8] * 20))
        assert stats.inline_cycles == 0
        assert mech.stats.checkpoint_bytes in ([], [0])

    def test_capabilities(self):
        caps = NoPersistence.capabilities
        assert not caps.achieves_process_persistence
        assert caps.allows_stack_in_dram


class TestDirtyBit:
    def test_one_write_copies_whole_page(self):
        mech = DirtyBitPersistence()
        run(mech, stack_writes([STACK.start + 8]))
        assert mech.stats.checkpoint_bytes == [PAGE_BYTES]

    def test_writes_in_same_page_coalesce(self):
        mech = DirtyBitPersistence()
        run(mech, stack_writes([STACK.start + i * 8 for i in range(16)]))
        assert mech.stats.checkpoint_bytes == [PAGE_BYTES]

    def test_two_pages(self):
        mech = DirtyBitPersistence()
        run(mech, stack_writes([STACK.start + 8, STACK.start + PAGE_BYTES + 8]))
        assert mech.stats.checkpoint_bytes == [2 * PAGE_BYTES]

    def test_dirty_state_clears_per_interval(self):
        mech = DirtyBitPersistence()
        ops = stack_writes([STACK.start + 8, STACK.start + 8])
        run(mech, ops, interval_ops=1)
        # Each interval re-dirties and copies the page again.
        assert mech.stats.checkpoint_bytes[:2] == [PAGE_BYTES, PAGE_BYTES]

    def test_no_store_cost(self):
        mech = DirtyBitPersistence()
        _, stats = run(mech, stack_writes([STACK.start + 8] * 50))
        assert stats.inline_cycles == 0

    def test_page_straddling_write(self):
        mech = DirtyBitPersistence()
        run(mech, [Op(OpKind.WRITE, STACK.start + PAGE_BYTES - 4, 8)])
        assert mech.stats.checkpoint_bytes == [2 * PAGE_BYTES]


class TestWriteProtect:
    def test_first_touch_faults(self):
        mech = WriteProtectPersistence()
        _, stats = run(mech, stack_writes([STACK.start + 8] * 10))
        assert mech.faults == 1
        assert stats.inline_cycles > 0

    def test_faults_once_per_page_per_interval(self):
        mech = WriteProtectPersistence()
        ops = stack_writes(
            [STACK.start + 8, STACK.start + 16, STACK.start + PAGE_BYTES + 8]
        )
        run(mech, ops)
        assert mech.faults == 2

    def test_costlier_than_dirtybit(self):
        ops = stack_writes([STACK.start + i * PAGE_BYTES for i in range(16)])
        wp = WriteProtectPersistence()
        _, wp_stats = run(wp, list(ops))
        db = DirtyBitPersistence()
        _, db_stats = run(db, list(ops))
        assert wp_stats.total_cycles > db_stats.total_cycles
        # Same checkpoint size — only the tracking overhead differs.
        assert wp.stats.checkpoint_bytes == db.stats.checkpoint_bytes


class TestProsperMechanism:
    def test_copies_granules_not_pages(self):
        mech = ProsperPersistence()
        run(mech, stack_writes([STACK.start + 8]))
        assert mech.stats.checkpoint_bytes == [8]

    def test_granularity_rounds_copy_size(self):
        mech = ProsperPersistence(TrackerConfig().with_granularity(64))
        run(mech, stack_writes([STACK.start + 8]))
        assert mech.stats.checkpoint_bytes == [64]

    def test_much_smaller_than_dirtybit_for_sparse(self):
        ops = stack_writes([STACK.start + i * PAGE_BYTES for i in range(8)])
        prosper = ProsperPersistence()
        run(prosper, list(ops))
        dirtybit = DirtyBitPersistence()
        run(dirtybit, list(ops))
        ratio = (
            dirtybit.stats.total_checkpoint_bytes
            / prosper.stats.total_checkpoint_bytes
        )
        assert ratio == PAGE_BYTES / 8  # 512x for pure sparse writes

    def test_equal_footprint_for_stream(self):
        # Full-page streaming: fine tracking cannot shrink the copy.
        ops = stack_writes([STACK.start + i * 8 for i in range(PAGE_BYTES // 8)])
        prosper = ProsperPersistence()
        run(prosper, list(ops))
        assert prosper.stats.total_checkpoint_bytes == PAGE_BYTES

    def test_persisted_state_reports_commit(self):
        mech = ProsperPersistence()
        run(mech, stack_writes([STACK.start + 8]))
        state = mech.persisted_state()
        assert state["kind"] == "prosper-checkpoint"
        assert state["last_committed"] == 0

    def test_variant_name(self):
        assert ProsperPersistence().variant_name == "prosper-8B"
        assert (
            ProsperPersistence(TrackerConfig().with_granularity(128)).variant_name
            == "prosper-128B"
        )

    def test_capabilities_match_table_i(self):
        caps = ProsperPersistence.capabilities
        assert caps.achieves_process_persistence
        assert caps.works_without_compiler_support
        assert caps.stack_pointer_aware
        assert caps.allows_stack_in_dram
