"""Per-store persistence primitives: flush, undo logging, redo logging.

These are the generic NVM-persistence mechanisms of Section II-A, used in
the motivation study (Figure 3).  All three keep the protected region in NVM
and perform non-trivial work on *every* store during a consistency interval:

* **flush** — a ``clwb`` after every store pushes the dirty line into the
  NVM write path immediately;
* **undo** — the first store to a location per interval first persists the
  old value into an undo log (NVM read + NVM log append + ordering);
* **redo** — every store appends ``<address, value>`` to a redo log in NVM;
  loads must check the log (an indirection cost), and at commit the log is
  applied to the home locations.

None of these can be SP-aware by construction — they must act at store
time, before the end-of-interval SP is known.  To quantify what SP awareness
*would* save (the paper's trace-replay analysis), each mechanism accepts an
``sp_oracle`` giving the final SP of each interval in advance; with the
oracle installed, work for stores below that SP (dead frames) is skipped.
"""

from __future__ import annotations

from typing import Callable

from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    PersistenceMechanism,
)

#: Pipeline cost of issuing clwb + the occasional sfence amortized in.
CLWB_ISSUE_CYCLES = 6
#: Software cost of forming one log entry (address/size bookkeeping).
LOG_ENTRY_SETUP_CYCLES = 10
#: Bytes of metadata per log entry (address + size + sequence).
LOG_ENTRY_HEADER_BYTES = 16
#: Cost for a load to consult the redo-log index before reading home data.
REDO_LOOKUP_CYCLES = 8


class _SpAwareMixin:
    """Shared oracle plumbing for the three primitives."""

    def __init__(self, sp_oracle: Callable[[int], int] | None = None) -> None:
        self._sp_oracle = sp_oracle
        self._current_interval = 0

    @property
    def sp_aware(self) -> bool:
        return self._sp_oracle is not None

    def _skip_store(self, address: int) -> bool:
        """True when SP awareness says this store is to a dead frame."""
        if self._sp_oracle is None:
            return False
        final_sp = self._sp_oracle(self._current_interval)
        return address < final_sp

    def _advance_interval(self) -> None:
        self._current_interval += 1


class FlushPersistence(_SpAwareMixin, PersistenceMechanism):
    """clwb-per-store persistence with the stack resident in NVM."""

    name = "flush"
    capabilities = Capabilities(
        achieves_process_persistence=False,
        works_without_compiler_support=True,
        stack_pointer_aware=False,
        allows_stack_in_dram=False,
    )
    region_in_nvm = True
    # Not batchable: the stack lives in NVM, so every store's cost flows
    # through the NVM write buffer at the current cycle count (clwb latency
    # depends on ``now``); deferred delivery would drift the timing.
    supports_batching = False

    def __init__(self, sp_oracle: Callable[[int], int] | None = None) -> None:
        _SpAwareMixin.__init__(self, sp_oracle)
        PersistenceMechanism.__init__(self)
        self.flushes = 0
        self.skipped = 0

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        if self._skip_store(address):
            self.skipped += 1
            return 0
        self.flushes += 1
        cost = CLWB_ISSUE_CYCLES + self.hierarchy.clwb(address, size)
        self.stats.inline_overhead_cycles += cost
        return cost

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        cycles = self.hierarchy.persist_barrier()
        self.stats.checkpoint_bytes.append(0)
        self.stats.checkpoint_cycles.append(cycles)
        self._advance_interval()
        return cycles

    def persisted_state(self) -> dict:
        return {"kind": "in-place-nvm", "flushes": self.flushes}


class UndoLogPersistence(_SpAwareMixin, PersistenceMechanism):
    """Undo logging: persist the old value before the first overwrite."""

    name = "undo"
    capabilities = Capabilities(
        achieves_process_persistence=False,
        works_without_compiler_support=False,
        stack_pointer_aware=False,
        allows_stack_in_dram=False,
    )
    region_in_nvm = True
    # Not batchable: log appends are NVM writes priced at the current cycle
    # count (write-buffer occupancy is now-dependent).
    supports_batching = False

    def __init__(self, sp_oracle: Callable[[int], int] | None = None) -> None:
        _SpAwareMixin.__init__(self, sp_oracle)
        PersistenceMechanism.__init__(self)
        self.log_entries = 0
        self.log_bytes = 0
        self.skipped = 0
        self._logged_this_interval: set[int] = set()

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        if self._skip_store(address):
            self.skipped += 1
            return 0
        # Undo logs once per (8-byte) location per interval.
        key = address // 8
        if key in self._logged_this_interval:
            return 0
        self._logged_this_interval.add(key)
        self.log_entries += 1
        entry_bytes = LOG_ENTRY_HEADER_BYTES + size
        self.log_bytes += entry_bytes
        nvm = self.hierarchy.nvm
        # Read the old value from NVM, append it to the log, order the log
        # ahead of the data store (fence modeled inside write/persist costs).
        cost = (
            LOG_ENTRY_SETUP_CYCLES
            + nvm.read(size)
            + nvm.write(entry_bytes, now)
        )
        self.stats.inline_overhead_cycles += cost
        return cost

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        # Commit: drain persists, then truncate the log (a small NVM write).
        cycles = self.hierarchy.persist_barrier()
        cycles += self.hierarchy.nvm.write(LOG_ENTRY_HEADER_BYTES, ctx.now)
        self.stats.checkpoint_bytes.append(0)
        self.stats.checkpoint_cycles.append(cycles)
        self._logged_this_interval.clear()
        self._advance_interval()
        return cycles

    def persisted_state(self) -> dict:
        return {"kind": "in-place-nvm+undo-log", "log_entries": self.log_entries}


class RedoLogPersistence(_SpAwareMixin, PersistenceMechanism):
    """Redo logging: stores append to a log, applied to home at commit."""

    name = "redo"
    capabilities = Capabilities(
        achieves_process_persistence=False,
        works_without_compiler_support=False,
        stack_pointer_aware=False,
        allows_stack_in_dram=False,
    )
    region_in_nvm = True
    # Not batchable: like undo logging, appends hit the NVM write buffer at
    # the current cycle count.
    supports_batching = False

    def __init__(self, sp_oracle: Callable[[int], int] | None = None) -> None:
        _SpAwareMixin.__init__(self, sp_oracle)
        PersistenceMechanism.__init__(self)
        self.log_entries = 0
        self.log_bytes = 0
        self.skipped = 0
        #: Unique 8-byte locations written this interval (applied at commit).
        self._pending: set[int] = set()

    def on_load(self, address: int, size: int, now: int) -> int:
        self.stats.loads_seen += 1
        # Loads must consult the redo log for not-yet-applied data.
        cost = REDO_LOOKUP_CYCLES
        self.stats.inline_overhead_cycles += cost
        return cost

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        if self._skip_store(address):
            self.skipped += 1
            return 0
        self.log_entries += 1
        entry_bytes = LOG_ENTRY_HEADER_BYTES + size
        self.log_bytes += entry_bytes
        self._pending.add(address // 8)
        cost = LOG_ENTRY_SETUP_CYCLES + self.hierarchy.nvm.write(entry_bytes, now)
        self.stats.inline_overhead_cycles += cost
        return cost

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        # Apply the log: copy every pending location from log to home.
        apply_bytes = len(self._pending) * 8
        cycles = self.hierarchy.copy_nvm_to_nvm(apply_bytes)
        cycles += self.hierarchy.persist_barrier()
        cycles += self.hierarchy.nvm.write(LOG_ENTRY_HEADER_BYTES, ctx.now)
        self.stats.checkpoint_bytes.append(apply_bytes)
        self.stats.checkpoint_cycles.append(cycles)
        self._pending.clear()
        self._advance_interval()
        return cycles

    def persisted_state(self) -> dict:
        return {"kind": "in-place-nvm+redo-log", "log_entries": self.log_entries}
