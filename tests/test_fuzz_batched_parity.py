"""Cross-engine parity under fault machinery: arming a FaultInjector (or
attaching a persist-order oracle) must route the batched engine through the
exact scalar path, so crash points, cycle counts, and recovery outcomes are
identical by construction."""

import pytest

from repro.config import setup_i
from repro.cpu.engine import ExecutionEngine
from repro.cpu.engine_fast import BatchedExecutionEngine
from repro.faults.fuzzer import CrashSpec, build_setup, build_trace, run_schedule
from repro.faults.injector import STAGE_COMPLETE, CrashInjected, FaultInjector
from repro.persistence.prosper import ProsperPersistence

OPS = 600
INTERVAL_OPS = 200
TRACE = build_trace(0, OPS)


def _engine(cls, injector=None):
    return cls(
        config=setup_i(),
        mechanism=ProsperPersistence(),
        fault_injector=injector,
    )


class TestDelegationGate:
    def test_plain_batched_engine_stays_vectorized(self):
        engine = _engine(BatchedExecutionEngine)
        assert not engine._scalar_exact_required()

    def test_attached_injector_forces_scalar_path(self):
        # Merely *attached* — not armed — already forces delegation: the
        # per-op cycle poll has to exist for arm_cycle to ever fire.
        engine = _engine(BatchedExecutionEngine, FaultInjector())
        assert engine._scalar_exact_required()

    def test_order_oracle_forces_scalar_path(self):
        from repro.faults.order import PersistOrderOracle

        engine = _engine(BatchedExecutionEngine)
        engine.hierarchy.nvm.order_oracle = PersistOrderOracle()
        assert engine._scalar_exact_required()


class TestEngineParity:
    def test_unarmed_run_matches_scalar_stats(self):
        results = {}
        for cls in (ExecutionEngine, BatchedExecutionEngine):
            engine = _engine(cls, FaultInjector())
            engine.run(TRACE, interval_ops=INTERVAL_OPS)
            results[cls.__name__] = (engine.now, list(engine.fault_injector.fired))
        assert results["ExecutionEngine"] == results["BatchedExecutionEngine"]

    def test_armed_point_crash_is_identical(self):
        crashes = {}
        for cls in (ExecutionEngine, BatchedExecutionEngine):
            injector = FaultInjector()
            engine = _engine(cls, injector)
            injector.arm(STAGE_COMPLETE, 1)
            with pytest.raises(CrashInjected) as exc:
                engine.run(TRACE, interval_ops=INTERVAL_OPS)
            crashes[cls.__name__] = (
                exc.value.point,
                exc.value.occurrence,
                engine.now,
                list(injector.fired),
            )
        assert crashes["ExecutionEngine"] == crashes["BatchedExecutionEngine"]

    def test_armed_cycle_crash_is_identical(self):
        crashes = {}
        for cls in (ExecutionEngine, BatchedExecutionEngine):
            injector = FaultInjector()
            engine = _engine(cls, injector)
            injector.arm_cycle(50_000)
            with pytest.raises(CrashInjected) as exc:
                engine.run(TRACE, interval_ops=INTERVAL_OPS)
            crashes[cls.__name__] = (exc.value.point, engine.now)
        assert crashes["ExecutionEngine"] == crashes["BatchedExecutionEngine"]


class TestScheduleParity:
    @pytest.mark.parametrize("mechanism", ["prosper", "dirtybit"])
    def test_same_schedule_same_outcome(self, mechanism):
        # Fix the schedule completely (point spec + forced neat-ish plan
        # sampled once) and compare full outcome dicts across engines;
        # only the engine label itself may differ.
        import random

        spec = CrashSpec("point", point=STAGE_COMPLETE, occurrence=1)
        outcomes = {}
        for engine_name in ("scalar", "batched"):
            outcome = run_schedule(
                mechanism, engine_name, TRACE, INTERVAL_OPS, spec,
                plan_rng=random.Random(17),
            )
            d = outcome.to_dict()
            assert d.pop("engine") == engine_name
            outcomes[engine_name] = d
        assert outcomes["scalar"] == outcomes["batched"]
        assert outcomes["scalar"]["ok"]

    def test_fuzz_setup_batched_engine_delegates(self):
        setup = build_setup("prosper", "batched")
        assert isinstance(setup.engine, BatchedExecutionEngine)
        assert setup.engine._scalar_exact_required()
