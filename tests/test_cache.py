"""Tests for repro.memory.cache: set-associative write-back LRU cache."""

from hypothesis import given, strategies as st

from repro.config import CacheConfig
from repro.memory.cache import Cache


def tiny_cache(ways: int = 2, sets: int = 4) -> Cache:
    """A small cache: sets*ways lines of 64B."""
    return Cache(CacheConfig(sets * ways * 64, ways, 3, 4))


class TestBasicBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = tiny_cache()
        hit, _ = cache.access(0, is_write=False)
        assert not hit
        hit, _ = cache.access(0, is_write=False)
        assert hit

    def test_capacity_eviction_lru(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)  # 0 is now MRU
        hit, victim = cache.access(2, False)  # evicts 1 (LRU)
        assert not hit
        assert victim is None  # clean victim: no writeback
        assert cache.lookup(0)
        assert not cache.lookup(1)

    def test_dirty_victim_returns_writeback(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        _, victim = cache.access(1, is_write=False)
        assert victim == 0
        assert cache.stats.writebacks == 1

    def test_write_marks_dirty_on_hit(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0, is_write=False)
        cache.access(0, is_write=True)
        _, victim = cache.access(1, False)
        assert victim == 0

    def test_lines_map_to_distinct_sets(self):
        cache = tiny_cache(ways=1, sets=4)
        for line in range(4):
            cache.access(line, False)
        assert cache.resident_lines == 4
        assert cache.stats.evictions == 0


class TestMaintenanceOps:
    def test_clean_clwb_semantics(self):
        cache = tiny_cache()
        cache.access(5, is_write=True)
        assert cache.clean(5) is True  # dirty -> writeback needed
        assert cache.clean(5) is False  # now clean
        assert cache.lookup(5)  # clwb keeps the line resident

    def test_clean_absent_line(self):
        cache = tiny_cache()
        assert cache.clean(99) is False

    def test_invalidate_reports_dirty(self):
        cache = tiny_cache()
        cache.access(3, is_write=True)
        assert cache.invalidate(3) is True
        assert not cache.lookup(3)
        assert cache.invalidate(3) is False

    def test_flush_all_counts_dirty(self):
        cache = tiny_cache()
        cache.access(0, True)
        cache.access(1, False)
        cache.access(2, True)
        assert cache.flush_all() == 2
        assert cache.resident_lines == 0


class TestStats:
    def test_hit_rate(self):
        cache = tiny_cache()
        cache.access(0, False)
        cache.access(0, False)
        cache.access(0, False)
        assert cache.stats.hit_rate == 2 / 3

    def test_hit_rate_empty(self):
        assert tiny_cache().stats.hit_rate == 0.0


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = tiny_cache(ways=2, sets=4)
        for line, is_write in accesses:
            cache.access(line, is_write)
        assert cache.resident_lines <= 8
        for s in range(4):
            assert cache.set_occupancy(s) <= 2

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    def test_most_recent_line_always_resident(self, lines):
        cache = tiny_cache(ways=2, sets=4)
        for line in lines:
            cache.access(line, False)
        assert cache.lookup(lines[-1])

    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = tiny_cache()
        for line, is_write in accesses:
            cache.access(line, is_write)
        assert cache.stats.accesses == len(accesses)
