"""Extension experiments beyond the paper's figures.

* **Prosper on the heap** — Section III: "its generic design can be
  leveraged to track modifications to any virtual address range.  For
  example, we can use Prosper to track modifications to dynamically
  allocated virtual address range in the heap."  The experiment protects
  the heap with Prosper instead of SSP and compares full-memory-state
  persistence cost.
* **Adaptive granularity** — the OS-driven granularity loop of
  :mod:`repro.persistence.adaptive`, evaluated on the workloads where a
  fixed granularity is wrong somewhere: Sparse (wants 8 B), Stream (wants
  the page fallback).
* **Adaptive watermarks** — the HWM hill-climb on mcf vs SSSP, checking it
  walks toward each workload's preferred end of the HWM range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adaptive import WatermarkController
from repro.experiments.runner import run_mechanism, vanilla_cycles
from repro.persistence.adaptive import AdaptiveProsperPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.ssp import SspPersistence
from repro.workloads.apps import gapbs_pr, ycsb_mem
from repro.workloads.spec import spec_workload
from repro.workloads.synthetic import sparse_workload, stream_workload
from repro.workloads.apps import g500_sssp

DEFAULT_OPS = 60_000


# --------------------------------------------------------------------- #
# Prosper on the heap
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class HeapProsperCell:
    workload: str
    heap_mechanism: str
    normalized_time: float


def prosper_heap_experiment(
    target_ops: int = DEFAULT_OPS,
    interval_paper_ms: float = 10.0,
    seed: int = 42,
) -> list[HeapProsperCell]:
    """Full memory-state persistence: SSP heap vs Prosper heap (stack always Prosper)."""
    cells = []
    for trace in (gapbs_pr(target_ops, seed), ycsb_mem(target_ops, seed)):
        base = vanilla_cycles(trace)
        for heap_label, heap_factory in (
            ("ssp-10us", lambda: SspPersistence(10.0)),
            ("prosper", ProsperPersistence),
        ):
            result = run_mechanism(
                trace,
                ProsperPersistence(),
                interval_paper_ms,
                heap_mechanism=heap_factory(),
                baseline_cycles=base,
                mechanism_label=f"prosper+{heap_label}",
            )
            cells.append(
                HeapProsperCell(trace.name, heap_label, result.normalized_time)
            )
    return cells


# --------------------------------------------------------------------- #
# Adaptive granularity
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class AdaptiveCell:
    workload: str
    mechanism: str
    normalized_time: float
    mean_checkpoint_bytes: float
    final_granularity: int
    transitions: int


def adaptive_granularity_experiment(
    interval_paper_ms: float = 10.0, seed: int = 11
) -> list[AdaptiveCell]:
    """Adaptive Prosper vs fixed 8 B Prosper on sparse and streaming writers."""
    traces = [
        sparse_workload(pages=48, rounds=100, seed=seed),
        stream_workload(array_bytes=96 * 1024, passes=3, seed=seed),
    ]
    cells = []
    for trace in traces:
        base = vanilla_cycles(trace)
        for label, factory in (
            ("prosper-8B", ProsperPersistence),
            ("prosper-adaptive", AdaptiveProsperPersistence),
        ):
            mech = factory()
            result = run_mechanism(
                trace, mech, interval_paper_ms, baseline_cycles=base,
                mechanism_label=label,
            )
            if isinstance(mech, AdaptiveProsperPersistence):
                final = mech.current_granularity
                transitions = len(mech.controller.transitions)
            else:
                final = 8
                transitions = 0
            cells.append(
                AdaptiveCell(
                    trace.name,
                    label,
                    result.normalized_time,
                    mech.stats.mean_checkpoint_bytes,
                    final,
                    transitions,
                )
            )
    return cells


# --------------------------------------------------------------------- #
# Adaptive watermarks
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class WatermarkWalkResult:
    workload: str
    initial_hwm: int
    final_hwm: int
    history: tuple[int, ...]


def adaptive_watermark_experiment(
    target_ops: int = 40_000,
    num_intervals: int = 40,
    seed: int = 42,
) -> list[WatermarkWalkResult]:
    """Let the HWM hill-climb on mcf and SSSP; directions should diverge.

    Each interval replays the next slice of the store stream through a
    tracker configured with the controller's current HWM.
    """
    from repro.config import TrackerConfig
    from repro.core.bitmap import DirtyBitmap
    from repro.core.tracker import ProsperTracker
    from repro.cpu.ops import OpKind

    results = []
    for trace in (
        spec_workload("605.mcf_s", target_ops, seed=seed),
        g500_sssp(target_ops, seed),
    ):
        controller = WatermarkController(initial_hwm=20)
        bitmap = DirtyBitmap(trace.stack_range, 8)
        chunk = max(1, len(trace.ops) // num_intervals)
        for i in range(num_intervals):
            config = TrackerConfig(high_water_mark=controller.hwm)
            tracker = ProsperTracker(config)
            tracker.configure(bitmap)
            stores = 0
            for op in trace.ops[i * chunk: (i + 1) * chunk]:
                if op.kind == OpKind.WRITE and trace.stack_range.contains(op.address):
                    tracker.observe_store(op.address, op.size)
                    stores += 1
            tracker.request_flush()
            tracker.poll_quiescent()
            controller.observe(tracker.interval_memory_ops, stores)
            bitmap.clear()
        results.append(
            WatermarkWalkResult(
                trace.name, 20, controller.hwm, tuple(controller.history)
            )
        )
    return results


# --------------------------------------------------------------------- #
# Inter-thread stack writes (Section III-C)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class CrossThreadCell:
    cross_write_fraction: float
    cycles: int
    cross_writes: int

    def overhead_vs(self, baseline: "CrossThreadCell") -> float:
        return self.cycles / baseline.cycles


def cross_thread_write_experiment(
    fractions: tuple[float, ...] = (0.0, 0.01, 0.05, 0.20),
    writes_per_thread: int = 2_000,
    seed: int = 5,
) -> list[CrossThreadCell]:
    """Cost of the page-permission scheme for inter-thread stack writes.

    Section III-C argues such writes are rare and can be handled by
    faulting them into the OS, which records the dirty bits in the victim
    thread's bitmap.  This experiment sweeps the fraction of writes that
    target the *other* thread's stack and measures total execution cycles:
    at the paper's "rare" regime (~1 %) the overhead should be small, and
    it should grow roughly linearly with the fraction.
    """
    import numpy as np

    from repro.cpu.ops import Op, OpKind
    from repro.kernel.simulation import MultiThreadSimulation

    cells = []
    for fraction in fractions:
        sim = MultiThreadSimulation(
            [[Op(OpKind.COMPUTE, size=1)], [Op(OpKind.COMPUTE, size=1)]],
            quantum_ops=200,
            checkpoint_every_quanta=8,
        )
        rng = np.random.default_rng(seed)
        threads = [t for t, _, _ in sim._streams]
        streams = []
        cross_total = 0
        for me, other in ((threads[0], threads[1]), (threads[1], threads[0])):
            frame = me.stack.size // 2
            ops = [Op(OpKind.CALL, size=frame)]
            my_base = me.stack.end - frame
            other_base = other.stack.end - frame
            offsets = rng.integers(0, frame // 8, size=writes_per_thread) * 8
            is_cross = rng.random(writes_per_thread) < fraction
            for off, cross in zip(offsets, is_cross):
                base = other_base if cross else my_base
                ops.append(Op(OpKind.WRITE, base + int(off), 8))
                cross_total += bool(cross)
            streams.append((me, ops, 0))
        sim._streams = streams
        stats = sim.run()
        cells.append(CrossThreadCell(fraction, stats.cycles, cross_total))
    return cells
