"""Execution-engine speedup — scalar reference vs batched fast path.

Runs the reference trace (quicksort, the call-dense stack workload at the
heart of the paper's stack-persistence studies) through both engine
implementations and records wall-clock times plus the speedup ratio:

* the gated run is the no-persistence configuration — the exact shape of
  the ``vanilla_cycles`` baseline that every figure computes at least once
  per workload, where per-op Python overhead (what the batched path
  eliminates) dominates; it must be at least ``MIN_SPEEDUP`` faster;
* a second, informational run measures the full Prosper mechanism, whose
  per-store tracker hooks are inherently sequential and shared by both
  engines, so its ratio is reported but not gated.

Both runs must produce identical engine stats — the fast path is only
allowed to change *how fast* the simulation runs, never what it computes
(the exhaustive check lives in ``tests/test_engine_equivalence.py``).

The timing report is exported as JSON (``results/engine_speedup.json`` by
default, override with ``REPRO_BENCH_OUT``) so CI can archive it.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.analysis.export import write_json
from repro.cpu.engine import ExecutionEngine
from repro.cpu.engine_fast import BatchedExecutionEngine
from repro.persistence.none import NoPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.workloads.callstack import quicksort_workload

INTERVAL_CYCLES = 60_000
#: Acceptance floor for the batched engine on the reference (vanilla) run.
MIN_SPEEDUP = 3.0


def _reference_trace():
    return quicksort_workload(elements=4096, repeats=6, seed=42)


def _time_pair(mechanism_factory) -> dict:
    trace = _reference_trace()
    elapsed = {}
    stats = {}
    for engine_cls in (ExecutionEngine, BatchedExecutionEngine):
        engine = engine_cls(
            stack_range=trace.stack_range,
            mechanism=mechanism_factory(),
            heap_range=trace.heap_range,
        )
        start = time.perf_counter()
        result = engine.run(trace, interval_cycles=INTERVAL_CYCLES)
        elapsed[engine_cls] = time.perf_counter() - start
        stats[engine_cls] = dataclasses.asdict(result)
    assert stats[BatchedExecutionEngine] == stats[ExecutionEngine], (
        "batched stats diverged from scalar"
    )
    scalar_s = elapsed[ExecutionEngine]
    batched_s = elapsed[BatchedExecutionEngine]
    ops = stats[ExecutionEngine]["ops_executed"]
    return {
        "ops": ops,
        "scalar_s": round(scalar_s, 4),
        "batched_s": round(batched_s, 4),
        "scalar_us_per_op": round(scalar_s / ops * 1e6, 4),
        "batched_us_per_op": round(batched_s / ops * 1e6, 4),
        "speedup": round(scalar_s / batched_s, 2) if batched_s else float("inf"),
        "stats_identical": True,
    }


def test_engine_speedup(benchmark):
    vanilla = benchmark.pedantic(
        _time_pair, args=(NoPersistence,), rounds=1, iterations=1
    )
    prosper = _time_pair(ProsperPersistence)

    report = {
        "trace": "quicksort",
        "interval_cycles": INTERVAL_CYCLES,
        "min_speedup": MIN_SPEEDUP,
        "vanilla": vanilla,
        "prosper": prosper,
    }
    out = os.environ.get("REPRO_BENCH_OUT", "results/engine_speedup.json")
    path = write_json(report, out)

    print(
        f"\nengine speedup (quicksort): vanilla {vanilla['speedup']:.1f}x, "
        f"prosper {prosper['speedup']:.1f}x (report: {path})"
    )
    assert vanilla["speedup"] >= MIN_SPEEDUP, (
        f"batched engine only {vanilla['speedup']:.2f}x faster "
        f"(need {MIN_SPEEDUP}x): scalar {vanilla['scalar_s']:.3f}s "
        f"vs batched {vanilla['batched_s']:.3f}s"
    )
