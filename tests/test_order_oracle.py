"""Tests for the persist-order model: the oracle state machine, its wiring
into the NVM device's barrier, and cycle-deadline crash arming."""

import random

import pytest

from repro.config import setup_i
from repro.faults.injector import (
    CrashInjected,
    FaultInjector,
    cycle_point,
    is_cycle_point,
)
from repro.faults.order import (
    DROP_PROBABILITIES,
    CrashOutcome,
    PersistOrderOracle,
    PersistPlan,
)
from repro.memory.hierarchy import MemoryHierarchy


class TestPersistOrderOracle:
    def test_record_then_barrier_retires(self):
        oracle = PersistOrderOracle()
        oracle.record("a", undo=lambda: None)
        oracle.record("b")
        assert oracle.pending_labels() == ["a", "b"]
        oracle.barrier()
        assert oracle.pending_labels() == []
        assert oracle.retired_total == 2
        assert oracle.barriers == 1

    def test_duplicate_pending_label_rejected(self):
        oracle = PersistOrderOracle()
        oracle.record("a")
        with pytest.raises(ValueError, match="duplicate"):
            oracle.record("a")
        # After a barrier the label may be reused (new epoch).
        oracle.barrier()
        oracle.record("a")

    def test_note_write_is_statistics_only(self):
        oracle = PersistOrderOracle()
        oracle.note_write(64)
        oracle.note_write(8)
        assert oracle.writes_noted == 2
        assert oracle.bytes_noted == 72
        assert oracle.pending_labels() == []

    def test_sample_plan_only_drops_undoable(self):
        oracle = PersistOrderOracle()
        oracle.record("fixed")  # no undo: must never be dropped
        oracle.record("loose", undo=lambda: None)
        rng = random.Random(0)
        for _ in range(200):
            plan = oracle.sample_plan(rng)
            assert "fixed" not in plan.dropped

    def test_sample_plan_tears_only_tearable(self):
        oracle = PersistOrderOracle()
        oracle.record("plain", undo=lambda: None)
        oracle.record("content", undo=lambda: None, tear=lambda: None)
        rng = random.Random(1)
        torn = set()
        for _ in range(200):
            plan = oracle.sample_plan(rng)
            if plan.torn is not None:
                torn.add(plan.torn)
        assert torn == {"content"}

    def test_sample_plan_empty_pending_is_neat(self):
        oracle = PersistOrderOracle()
        plan = oracle.sample_plan(random.Random(0))
        assert plan.is_neat

    def test_sample_plan_deterministic_given_rng(self):
        def build():
            oracle = PersistOrderOracle()
            for i in range(6):
                oracle.record(f"w{i}", undo=lambda: None, tear=lambda: None)
            return oracle

        plans_a = [build().sample_plan(random.Random(s)) for s in range(20)]
        plans_b = [build().sample_plan(random.Random(s)) for s in range(20)]
        assert plans_a == plans_b
        # The probability mix actually exercises drops.
        assert any(p.dropped for p in plans_a)
        assert 0.0 in DROP_PROBABILITIES  # the neat model stays in the mix

    def test_apply_plan_runs_undo_and_tear(self):
        oracle = PersistOrderOracle()
        events = []
        oracle.record("a", undo=lambda: events.append("undo-a"))
        oracle.record("b", undo=lambda: None, tear=lambda: events.append("tear-b"))
        outcome = oracle.apply_plan(PersistPlan(frozenset({"a"}), "b"))
        assert isinstance(outcome, CrashOutcome)
        assert events == ["undo-a", "tear-b"]
        assert outcome.dropped == ["a"]
        assert outcome.torn == "b"
        assert outcome.pending == ["a", "b"]
        assert oracle.pending_labels() == []  # nothing in flight after a crash

    def test_apply_plan_rejects_undroppable(self):
        oracle = PersistOrderOracle()
        oracle.record("fixed")
        with pytest.raises(ValueError, match="cannot be dropped"):
            oracle.apply_plan(PersistPlan(frozenset({"fixed"}), None))

    def test_apply_plan_ignores_labels_not_pending(self):
        oracle = PersistOrderOracle()
        oracle.record("a", undo=lambda: None)
        outcome = oracle.apply_plan(PersistPlan(frozenset({"ghost"}), None))
        assert outcome.dropped == []

    def test_plan_round_trips_through_dict(self):
        plan = PersistPlan(frozenset({"x", "y"}), "z")
        assert PersistPlan.from_dict(plan.to_dict()) == plan
        assert PersistPlan.from_dict(PersistPlan().to_dict()).is_neat


class TestDeviceIntegration:
    def test_nvm_write_notes_and_barrier_retires(self):
        hierarchy = MemoryHierarchy(setup_i())
        oracle = PersistOrderOracle()
        hierarchy.nvm.order_oracle = oracle
        oracle.record("marker", undo=lambda: None)
        hierarchy.nvm.write(8, now=0)
        assert oracle.writes_noted == 1
        hierarchy.persist_barrier()
        assert oracle.pending_labels() == []

    def test_barrier_retires_even_with_empty_write_buffer(self):
        # The barrier is the durability point of the model whether or not
        # the timing-level buffer happens to hold anything.
        hierarchy = MemoryHierarchy(setup_i())
        oracle = PersistOrderOracle()
        hierarchy.nvm.order_oracle = oracle
        oracle.record("marker", undo=lambda: None)
        assert hierarchy.persist_barrier() == 0
        assert oracle.pending_labels() == []


class TestCycleArming:
    def test_cycle_point_names(self):
        assert cycle_point(42) == "cycle[42]"
        assert is_cycle_point("cycle[42]")
        assert not is_cycle_point("stage_complete")

    def test_arm_cycle_fires_at_deadline(self):
        injector = FaultInjector()
        injector.arm_cycle(100)
        assert injector.is_armed
        injector.check_cycle(99)  # not yet
        with pytest.raises(CrashInjected) as exc:
            injector.check_cycle(100)
        assert exc.value.point == "cycle[100]"
        # One-shot: the deadline cleared itself.
        injector.check_cycle(200)

    def test_disarm_clears_both_modes(self):
        injector = FaultInjector()
        injector.arm("stage_begin", 0)
        injector.arm_cycle(5)
        injector.disarm()
        assert not injector.is_armed
        injector.check_cycle(10)
        injector.reached("stage_begin")

    def test_arm_cycle_rejects_negative(self):
        with pytest.raises(ValueError):
            FaultInjector().arm_cycle(-1)
