"""Harness parallelism — serial vs worker-pool wall clock.

Runs the same figure subset through the repro harness twice, once with
``jobs=1`` (the legacy in-process path) and once with a worker pool, and
records both wall-clock times plus the speedup ratio.  The two runs must
also produce byte-identical figure text — parallelism is only allowed to
change *when* units run, never *what* they produce.

The timing report is exported as JSON (``results/harness_speedup.json``
by default, override with ``REPRO_BENCH_OUT``) so CI can archive it.
"""

from __future__ import annotations

import os
import time

from repro.analysis.export import write_json
from repro.harness import HarnessOptions, run_figures

FIGURES = ["fig1", "fig8"]
OPS = 4_000
JOBS = 4


def _run(jobs: int) -> tuple[float, list[str]]:
    start = time.perf_counter()
    outcomes = run_figures(FIGURES, HarnessOptions(ops=OPS, jobs=jobs))
    elapsed = time.perf_counter() - start
    assert all(outcome.ok for outcome in outcomes)
    return elapsed, [outcome.text for outcome in outcomes]


def test_harness_speedup(benchmark):
    serial_s, serial_text = _run(jobs=1)
    parallel_s, parallel_text = benchmark.pedantic(
        _run, kwargs={"jobs": JOBS}, rounds=1, iterations=1
    )
    assert parallel_text == serial_text, "parallel output diverged from serial"

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    report = {
        "figures": FIGURES,
        "ops": OPS,
        "jobs": JOBS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "identical_output": True,
    }
    out = os.environ.get("REPRO_BENCH_OUT", "results/harness_speedup")
    path = write_json(report, out)
    print()
    print(
        f"harness speedup: serial {serial_s:.2f}s, "
        f"jobs={JOBS} {parallel_s:.2f}s ({speedup:.2f}x) -> {path}"
    )
    # Pool overhead (fork + pipe) is real at small ops counts; the bar
    # here is only that parallelism is not pathologically slower.
    assert parallel_s < serial_s * 2.0
