"""Plain-text rendering of tables and series for the benchmark harness.

The paper's artifact emits formatted text files that the plots are built
from; the benchmarks here do the same, printing rows the EXPERIMENTS.md
records were read off.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, series: Mapping[str, Mapping[str, float]],
                  value_format: str = "{:.3f}") -> str:
    """Render a {series: {x: y}} mapping, one series per block."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"[{name}]")
        for x, y in points.items():
            lines.append(f"  {x}: {value_format.format(y)}")
    return "\n".join(lines)


def format_bytes(n: float) -> str:
    """Human-readable byte count (KiB/MiB with two decimals)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.2f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.2f}GiB"  # pragma: no cover - unreachable
