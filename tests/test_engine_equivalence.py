"""Differential suite: the batched engine against the scalar oracle.

The batched engine (:mod:`repro.cpu.engine_fast`) must be *byte-identical*
to the scalar reference, not approximately equal: every figure in the
paper reproduction is a ratio of cycle counts, so a single divergent
cache miss or mechanism hook would silently skew results.  These tests
run every figure's representative workload through both engines under
every mechanism family and compare full state snapshots — engine stats,
interval records, mechanism counters, per-level cache stats, device
stats, TLB stats, and final register state.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TrackerConfig, setup_i, setup_ii
from repro.core.policies import AllocationPolicy
from repro.cpu.engine import ExecutionEngine
from repro.cpu.engine_fast import BatchedExecutionEngine
from repro.cpu.ops import Op, OpKind, TraceBuilder, array_to_ops, ops_to_array
from repro.memory.address import AddressRange
from repro.memory.tlb import TlbConfig
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.logging import (
    FlushPersistence,
    RedoLogPersistence,
    UndoLogPersistence,
)
from repro.persistence.none import NoPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.ssp import SspPersistence
from repro.workloads.apps import g500_sssp, gapbs_pr, ycsb_mem, ycsb_mem_phased
from repro.workloads.callstack import quicksort_workload, recursive_workload
from repro.workloads.spec import spec_workload
from repro.workloads.synthetic import (
    normal_workload,
    poisson_workload,
    random_workload,
    sparse_workload,
    stream_workload,
)
from repro.workloads.trace import Trace

#: Trace length for the differential runs: several vectorization chunks
#: (CHUNK_OPS = 8192) so chunk-boundary handling is exercised.
OPS = 20_000


def _stats_dict(stats) -> object:
    if dataclasses.is_dataclass(stats):
        return dataclasses.asdict(stats)
    return repr(stats)


def snapshot(engine: ExecutionEngine, stats) -> dict:
    """Full observable state of a finished run."""
    hierarchy = engine.hierarchy
    return {
        "engine": _stats_dict(stats),
        "now": engine.now,
        "stack_pointer": engine.registers.stack_pointer,
        "op_index": engine.registers.op_index,
        "mechanism": _stats_dict(engine.mechanism.stats),
        "heap_mechanism": (
            _stats_dict(engine.heap_mechanism.stats)
            if engine.heap_mechanism is not None
            else None
        ),
        "caches": {
            level.name: _stats_dict(level.stats)
            for level in (hierarchy.l1, hierarchy.l2, hierarchy.l3)
        },
        "dram": _stats_dict(hierarchy.dram.stats),
        "nvm": (
            _stats_dict(hierarchy.nvm.stats) if hierarchy.nvm is not None else None
        ),
        "tlb": _stats_dict(engine.tlb.stats) if engine.tlb is not None else None,
    }


def run_both(
    trace: Trace,
    mechanism_factory=NoPersistence,
    config_factory=setup_i,
    heap_factory=None,
    **run_kwargs,
) -> tuple[dict, dict]:
    """Run *trace* through both engines with freshly built state each."""
    results = []
    for engine_cls in (ExecutionEngine, BatchedExecutionEngine):
        engine = engine_cls(
            config=config_factory(),
            stack_range=trace.stack_range,
            mechanism=mechanism_factory(),
            heap_range=trace.heap_range,
            heap_mechanism=heap_factory() if heap_factory is not None else None,
        )
        stats = engine.run(trace, **run_kwargs)
        results.append(snapshot(engine, stats))
    return results[0], results[1]


def assert_equivalent(trace, **kwargs) -> None:
    scalar, batched = run_both(trace, **kwargs)
    assert batched == scalar


WORKLOADS = {
    "random": lambda: random_workload(OPS, seed=7),
    "stream": lambda: stream_workload(OPS, seed=7),
    "sparse": lambda: sparse_workload(rounds=100, seed=7),
    "normal": lambda: normal_workload(OPS, seed=7),
    "poisson": lambda: poisson_workload(OPS, seed=7),
    "quicksort": lambda: quicksort_workload(seed=7),
    "recursive": lambda: recursive_workload(descents=250, seed=7),
    "gapbs_pr": lambda: gapbs_pr(OPS, seed=7),
    "g500_sssp": lambda: g500_sssp(OPS, seed=7),
    "ycsb_mem": lambda: ycsb_mem(OPS, seed=7),
    "ycsb_phased": lambda: ycsb_mem_phased(OPS, seed=7),
    "spec_mcf": lambda: spec_workload("605.mcf_s", OPS, seed=7),
}

MECHANISMS = {
    "none": NoPersistence,
    "prosper": ProsperPersistence,
    "dirtybit": DirtyBitPersistence,
    "ssp": SspPersistence,
    "flush": FlushPersistence,
    "undo": UndoLogPersistence,
    "redo": RedoLogPersistence,
}


class TestWorkloadCoverage:
    """Every figure's representative workload, under the paper's headline
    mechanism (Prosper) with wall-clock intervals."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_prosper_interval_cycles(self, workload):
        assert_equivalent(
            WORKLOADS[workload](),
            mechanism_factory=ProsperPersistence,
            interval_cycles=25_000,
        )

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_vanilla_no_intervals(self, workload):
        assert_equivalent(WORKLOADS[workload]())


class TestMechanismCoverage:
    """Every mechanism family on one call-heavy and one app workload, in
    both interval modes."""

    @pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
    def test_interval_cycles(self, mechanism):
        assert_equivalent(
            gapbs_pr(OPS, seed=11),
            mechanism_factory=MECHANISMS[mechanism],
            interval_cycles=25_000,
        )

    @pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
    def test_interval_ops(self, mechanism):
        assert_equivalent(
            quicksort_workload(seed=11),
            mechanism_factory=MECHANISMS[mechanism],
            interval_ops=1_500,
        )


def _run_engines(trace, mechanism_factory, **run_kwargs):
    """Like :func:`run_both` but returns the engines for deep inspection."""
    engines = []
    for engine_cls in (ExecutionEngine, BatchedExecutionEngine):
        engine = engine_cls(
            config=setup_i(),
            stack_range=trace.stack_range,
            mechanism=mechanism_factory(),
        )
        engine.run(trace, **run_kwargs)
        engines.append(engine)
    return engines[0], engines[1]


def _prosper_deep_state(engine) -> dict:
    """Mechanism-internal state the top-level snapshot doesn't reach:
    tracker table counters, raw bitmap words, MSR-visible low-water mark,
    and the per-interval checkpoint traffic."""
    mech = engine.mechanism
    tracker = mech.tracker
    return {
        "table_stats": dataclasses.asdict(tracker.stats),
        "table_entries": sorted(tracker.table.entries_snapshot()),
        "bitmap_words": mech.bitmap.snapshot_words().tolist(),
        "min_dirty_address": tracker.min_dirty_address,
        "checkpoint_bytes": list(mech.stats.checkpoint_bytes),
        "checkpoint_cycles": list(mech.stats.checkpoint_cycles),
    }


class TestBatchedHookDeepState:
    """Batched-hook delivery must leave the *internal* Prosper machinery —
    not just the top-level counters — byte-identical to per-op delivery,
    across tracking granularities and both entry-allocation policies."""

    GRANULARITIES = (8, 64, 512)
    POLICIES = (
        AllocationPolicy.ACCUMULATE_AND_APPLY,
        AllocationPolicy.LOAD_AND_UPDATE,
    )

    @staticmethod
    def _factory(granularity: int, policy: AllocationPolicy):
        return lambda: ProsperPersistence(
            TrackerConfig(granularity_bytes=granularity), policy=policy
        )

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_tracker_and_checkpoint_state(self, granularity, policy):
        trace = quicksort_workload(seed=13)
        scalar, batched = _run_engines(
            trace,
            self._factory(granularity, policy),
            interval_cycles=25_000,
        )
        assert _prosper_deep_state(batched) == _prosper_deep_state(scalar)
        assert snapshot(batched, batched.stats) == snapshot(scalar, scalar.stats)

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_mid_interval_state(self, granularity, policy):
        # Without the final checkpoint the run ends mid-interval, so the
        # lookup table still holds unflushed entries and the bitmap holds
        # bits the OS has not consumed — the state the batched hooks build
        # incrementally and must leave exactly as the scalar engine does.
        trace = gapbs_pr(OPS, seed=13)
        scalar, batched = _run_engines(
            trace,
            self._factory(granularity, policy),
            interval_cycles=25_000,
            final_checkpoint=False,
        )
        assert _prosper_deep_state(batched) == _prosper_deep_state(scalar)

    @pytest.mark.parametrize("page_bytes", [512, 4096])
    def test_dirtybit_page_sets(self, page_bytes):
        # The page-grain baseline also batches; its dirty/mapped page sets
        # and checkpoint traffic must match the scalar oracle too.
        trace = quicksort_workload(seed=13)
        scalar, batched = _run_engines(
            trace,
            lambda: DirtyBitPersistence(page_bytes=page_bytes),
            interval_cycles=25_000,
            final_checkpoint=False,
        )
        assert batched.mechanism._dirty_pages == scalar.mechanism._dirty_pages
        assert batched.mechanism._mapped_pages == scalar.mechanism._mapped_pages
        assert list(batched.mechanism.stats.checkpoint_bytes) == list(
            scalar.mechanism.stats.checkpoint_bytes
        )
        assert list(batched.mechanism.stats.checkpoint_cycles) == list(
            scalar.mechanism.stats.checkpoint_cycles
        )


class TestConfigurationCorners:
    def test_setup_ii(self):
        assert_equivalent(
            ycsb_mem(OPS, seed=3),
            mechanism_factory=ProsperPersistence,
            config_factory=setup_ii,
            interval_cycles=25_000,
        )

    def test_tlb_enabled(self):
        def config():
            return dataclasses.replace(setup_i(), tlb=TlbConfig())

        assert_equivalent(
            gapbs_pr(OPS, seed=3),
            mechanism_factory=ProsperPersistence,
            config_factory=config,
            interval_cycles=25_000,
        )

    def test_heap_mechanism(self):
        assert_equivalent(
            ycsb_mem(OPS, seed=3),
            mechanism_factory=ProsperPersistence,
            heap_factory=DirtyBitPersistence,
            interval_cycles=25_000,
        )

    def test_no_final_checkpoint(self):
        assert_equivalent(
            gapbs_pr(OPS, seed=3),
            mechanism_factory=ProsperPersistence,
            interval_cycles=25_000,
            final_checkpoint=False,
        )

    def test_interval_longer_than_trace(self):
        # Only the trailing partial interval ever commits.
        assert_equivalent(
            random_workload(2_000, seed=3),
            mechanism_factory=ProsperPersistence,
            interval_cycles=10**9,
        )

    def test_interval_ops_unaligned_with_chunks(self):
        # interval_ops prime relative to CHUNK_OPS: boundaries land
        # mid-chunk and straddle chunk edges.
        assert_equivalent(
            stream_workload(OPS, seed=3),
            mechanism_factory=DirtyBitPersistence,
            interval_ops=997,
        )

    def test_scalar_engine_still_selectable(self):
        from repro.experiments.runner import engine_class

        assert engine_class(dataclasses.replace(setup_i(), engine="scalar")) is (
            ExecutionEngine
        )
        assert engine_class(setup_i()) is BatchedExecutionEngine

    def test_unknown_engine_rejected(self):
        from repro.experiments.runner import engine_class

        with pytest.raises(ValueError, match="unknown engine mode"):
            engine_class(dataclasses.replace(setup_i(), engine="turbo"))


def _overflowing_trace() -> Trace:
    stack = AddressRange(0x7000_0000, 0x7000_0400)  # 1 KiB stack
    ops = TraceBuilder()
    for _ in range(6):
        ops.call(256)
        ops.write(stack.end - 8)
    return Trace(ops.to_array(), stack)


class TestFaultEquivalence:
    def test_stack_overflow_identical(self):
        trace = _overflowing_trace()
        outcomes = []
        for engine_cls in (ExecutionEngine, BatchedExecutionEngine):
            engine = engine_cls(stack_range=trace.stack_range)
            with pytest.raises(RuntimeError) as excinfo:
                engine.run(trace, interval_cycles=50)
            outcomes.append((str(excinfo.value), snapshot(engine, engine.stats)))
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("engine_cls", [ExecutionEngine, BatchedExecutionEngine])
    def test_invalid_arguments(self, engine_cls):
        engine = engine_cls(stack_range=AddressRange(0, 4096))
        with pytest.raises(ValueError):
            engine.run([], interval_cycles=-1)
        with pytest.raises(ValueError):
            engine.run([], interval_ops=0)


_OPS_STRATEGY = st.lists(
    st.builds(
        Op,
        kind=st.sampled_from(list(OpKind)),
        address=st.integers(min_value=0, max_value=2**64 - 1),
        size=st.integers(min_value=0, max_value=2**32 - 1),
    ),
    max_size=128,
)


class TestArrayRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_OPS_STRATEGY)
    def test_ops_array_round_trip(self, ops):
        assert array_to_ops(ops_to_array(ops)) == ops

    @settings(max_examples=60, deadline=None)
    @given(_OPS_STRATEGY)
    def test_trace_builder_matches_ops_to_array(self, ops):
        builder = TraceBuilder()
        for op in ops:
            builder.append(int(op.kind), op.address, op.size)
        assert len(builder) == len(ops)
        built = builder.to_array()
        reference = ops_to_array(ops)
        assert built.dtype == reference.dtype
        assert built.tobytes() == reference.tobytes()
