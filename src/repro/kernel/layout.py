"""Process address-space layout over hybrid DRAM+NVM memory.

The layout places the mutable segments of a process and the Prosper
metadata areas:

* per-thread **stacks** in DRAM (high addresses, growing down), each with a
  guard gap;
* the **heap** in DRAM (low addresses, growing up);
* per-thread **dirty bitmap areas** in DRAM (tracker-written metadata);
* per-thread **persistent stacks** and the **staging buffer** in NVM
  (checkpoint destinations).

Only address arithmetic lives here — the layout is what the OS tells the
Prosper hardware (via MSRs) and what the checkpoint engines consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.address import AddressRange, align_up

#: Defaults mirroring a classic 48-bit user layout, scaled down.
DEFAULT_STACK_TOP = 0x7FFF_F000
DEFAULT_STACK_LIMIT = 8 * 1024 * 1024
DEFAULT_GUARD_BYTES = 64 * 1024
DEFAULT_HEAP_BASE = 0x1000_0000
DEFAULT_BITMAP_BASE = 0x6000_0000
DEFAULT_NVM_BASE = 0xF000_0000


@dataclass
class AddressSpaceLayout:
    """Address-space geometry for one process."""

    stack_top: int = DEFAULT_STACK_TOP
    stack_limit: int = DEFAULT_STACK_LIMIT
    guard_bytes: int = DEFAULT_GUARD_BYTES
    heap_base: int = DEFAULT_HEAP_BASE
    heap_limit: int = 256 * 1024 * 1024
    bitmap_base: int = DEFAULT_BITMAP_BASE
    nvm_base: int = DEFAULT_NVM_BASE
    _next_stack_top: int = field(init=False)
    _next_bitmap: int = field(init=False)
    _next_nvm: int = field(init=False)

    def __post_init__(self) -> None:
        self._next_stack_top = self.stack_top
        self._next_bitmap = self.bitmap_base
        self._next_nvm = self.nvm_base

    @property
    def heap_range(self) -> AddressRange:
        return AddressRange(self.heap_base, self.heap_base + self.heap_limit)

    def allocate_stack(self, size: int | None = None) -> AddressRange:
        """Carve a stack for a new thread (top-down, with a guard gap)."""
        size = size or self.stack_limit
        top = self._next_stack_top
        start = top - size
        if start <= self.heap_range.end:
            raise MemoryError("address space exhausted allocating a stack")
        self._next_stack_top = start - self.guard_bytes
        return AddressRange(start, top)

    def allocate_bitmap_area(self, stack: AddressRange, granularity: int) -> int:
        """Reserve a DRAM bitmap area for *stack*; returns its base address.

        One bit per granule, rounded to whole 4-byte words, padded to 64
        bytes so distinct threads' bitmaps never share cache lines.
        """
        granules = -(-stack.size // granularity)
        words = -(-granules // 32)
        size = align_up(words * 4, 64)
        base = self._next_bitmap
        self._next_bitmap += size
        return base

    def allocate_persistent_stack(self, stack: AddressRange) -> AddressRange:
        """Reserve the NVM region holding a thread's persistent stack image."""
        base = self._next_nvm
        self._next_nvm += align_up(stack.size, 4096)
        return AddressRange(base, base + stack.size)

    def allocate_staging_buffer(self, size: int) -> AddressRange:
        """Reserve the NVM staging buffer used by two-step commits."""
        base = self._next_nvm
        self._next_nvm += align_up(size, 4096)
        return AddressRange(base, base + size)

    def is_nvm_address(self, address: int) -> bool:
        """True when *address* falls in the NVM-mapped portion."""
        return address >= self.nvm_base
