"""Page-granularity checkpointing via PTE dirty bits (the Dirtybit baseline).

Models LDT-style dirty tracking (Section II-B): the hardware page-table
walker sets the dirty bit in a PTE on the first write to its page in an
interval — effectively free for the application.  At the end of the interval
the OS walks the PTEs of the stack region, copies every dirty *page* to NVM,
and resets the dirty bits for the next interval.

The inefficiency the paper attacks is visible directly in this model: a
single 8-byte store dirties a whole 4 KiB page, so the checkpoint size is
amplified by up to 512x relative to byte-granularity tracking.
"""

from __future__ import annotations

import numpy as np

from repro.config import PAGE_BYTES
from repro.core.bitmap import DirtyRun
from repro.core.checkpoint import StagedCheckpoint, StagedRun, staged_run_crc
from repro.faults.injector import (
    PERSIST_BARRIER,
    STAGE_BEGIN,
    STAGE_COMPLETE,
    stage_run_copy,
)
from repro.memory.address import page_index, span_pages
from repro.persistence.base import (
    Capabilities,
    IntervalContext,
    PersistenceMechanism,
)

#: Cycles for the OS to examine one PTE during the dirty walk.
PTE_INSPECT_CYCLES = 4
#: Cycles to reset one dirty PTE (write + accounting).
PTE_CLEAR_CYCLES = 3
#: Fixed per-checkpoint cost: entering the walk, TLB maintenance for the
#: cleared dirty bits (LDT batches this; still not free).
CHECKPOINT_FIXED_CYCLES = 600


class DirtyBitPersistence(PersistenceMechanism):
    """Stack checkpointing with 4 KiB dirty-bit tracking."""

    name = "dirtybit"
    capabilities = Capabilities(
        achieves_process_persistence=True,
        works_without_compiler_support=True,
        stack_pointer_aware=True,
        allows_stack_in_dram=True,
    )
    region_in_nvm = False
    # PTE dirty bits are set by the page-table walker off the critical path;
    # on_store charges nothing and keeps no cycle-dependent state, so runs
    # of stores can be delivered in one batched set update.
    supports_batching = True

    def __init__(
        self,
        page_bytes: int = PAGE_BYTES,
        content_reader=None,
        content_writer=None,
    ) -> None:
        super().__init__()
        self.page_bytes = page_bytes
        self._dirty_pages: set[int] = set()
        #: Pages ever mapped (their PTEs exist and must be walked).
        self._mapped_pages: set[int] = set()
        #: Optional actual-contents hooks, mirroring Prosper's checkpoint
        #: engine: live dirty pages are staged as checksummed
        #: :class:`StagedRun` records (descriptor first), made durable by
        #: the persist barrier, then committed and applied via
        #: *content_writer*.  None keeps the timing-only model.
        self.content_reader = content_reader
        self.content_writer = content_writer
        self.staged: StagedCheckpoint | None = None
        self.last_committed_interval: int | None = None
        self._injector = None

    def attach(self, engine, region) -> None:
        super().attach(engine, region)
        self._injector = getattr(engine, "fault_injector", None)

    def _reached(self, point: str) -> None:
        if self._injector is not None:
            self._injector.reached(point)

    def _oracle(self):
        nvm = self.hierarchy.nvm
        return nvm.order_oracle if nvm is not None else None

    def on_store(self, address: int, size: int, now: int) -> int:
        self.stats.stores_seen += 1
        for page in span_pages(address, size, self.page_bytes):
            self._dirty_pages.add(page)
            self._mapped_pages.add(page)
        # The PTW sets the dirty bit off the critical path.
        return 0

    def on_store_batch(self, addresses: np.ndarray, sizes: np.ndarray, now: int) -> int:
        self.stats.stores_seen += len(addresses)
        if len(addresses) == 0:
            return 0
        pb = self.page_bytes
        positive = sizes > 0
        first = addresses[positive] // pb
        last = (addresses[positive] + sizes[positive] - 1) // pb
        if len(first) == 0:
            return 0
        if int((last - first).max()) == 0:
            touched = np.unique(first)
        else:
            # Rare multi-page stores: expand each [first, last] span.
            spans = [np.arange(f, l + 1) for f, l in zip(first.tolist(), last.tolist())]
            touched = np.unique(np.concatenate(spans))
        pages = touched.tolist()
        self._dirty_pages.update(pages)
        self._mapped_pages.update(pages)
        return 0

    def on_interval_end(self, ctx: IntervalContext) -> int:
        self.stats.intervals += 1
        cycles = round(CHECKPOINT_FIXED_CYCLES * self.fixed_scale)

        # Walk PTEs for the stack VMA.  The OS can bound the walk to the
        # pages between the lowest active SP and the stack top (the region
        # that can possibly be mapped/dirty) — page-level SP awareness.
        low_page = page_index(min(ctx.min_sp, ctx.final_sp), self.page_bytes)
        top_page = page_index(ctx.region.end - 1, self.page_bytes)
        walked = max(0, top_page - low_page + 1)
        cycles += walked * PTE_INSPECT_CYCLES

        # Copy every *live* dirty page (SP awareness at page granularity:
        # pages wholly below the final SP hold only popped frames and are
        # dropped), pipelined: one device latency for the batch plus
        # bandwidth streaming of the bytes.
        final_page = page_index(ctx.final_sp, self.page_bytes)
        live = sorted(p for p in self._dirty_pages if p >= final_page)
        copied = len(live) * self.page_bytes
        cycles += len(self._dirty_pages) * PTE_CLEAR_CYCLES
        if self.content_reader is not None:
            self._stage_pages(ctx.interval_index, live)
        if copied:
            cycles += self.hierarchy.copy_dram_to_nvm(copied, self.fixed_scale)
        if self.content_reader is not None:
            self._reached(PERSIST_BARRIER)
        cycles += self.hierarchy.persist_barrier()
        if self.content_reader is not None:
            self._commit_staged()

        self.stats.checkpoint_bytes.append(copied)
        self.stats.checkpoint_cycles.append(cycles)
        self._dirty_pages.clear()
        return cycles

    # ------------------------------------------------------------------ #
    # Content checkpointing (crash-schedule fuzzing substrate)
    # ------------------------------------------------------------------ #

    def _stage_pages(self, interval_index: int, live_pages: list[int]) -> None:
        """Stage the live dirty pages as checksummed runs, descriptor first.

        Page-granularity analogue of
        :meth:`repro.core.checkpoint.ProsperCheckpointEngine.stage`: the
        same two-step protocol, the same persist-order bookkeeping, so the
        fuzzer can drive both mechanisms through one oracle.
        """
        oracle = self._oracle()
        if oracle is not None and self.staged is not None and self.staged.committed:
            # Buffer reuse: flush the previous still-pending commit marker.
            oracle.barrier()
        self._reached(STAGE_BEGIN)
        staged = StagedCheckpoint(interval_index, expected_runs=len(live_pages))
        self.staged = staged
        if oracle is not None:
            oracle.record(
                f"pgckpt[{interval_index}].descriptor",
                undo=self._lose_descriptor(staged),
                size=8,
            )
        reader = self.content_reader
        pb = self.page_bytes
        for index, page in enumerate(live_pages):
            self._reached(stage_run_copy(index))
            run = DirtyRun(page * pb, (page + 1) * pb)
            payload = tuple(reader(run))
            staged_run = StagedRun(run, staged_run_crc(run, payload), payload)
            staged.staged_runs.append(staged_run)
            if oracle is not None:
                oracle.record(
                    f"pgckpt[{interval_index}].stage_run[{index}]",
                    undo=self._lose_staged_run(staged, staged_run),
                    tear=self._tear_staged_run(staged_run),
                    size=run.size,
                )
        self._reached(STAGE_COMPLETE)

    def _commit_staged(self) -> None:
        """Flip the commit marker and apply the (now durable) staged pages."""
        staged = self.staged
        if staged is None or staged.committed:
            return
        if self.content_writer is not None:
            for staged_run in staged.staged_runs:
                self.content_writer(staged_run)
        previous = self.last_committed_interval
        staged.committed = True
        self.last_committed_interval = staged.interval_index
        oracle = self._oracle()
        if oracle is not None:
            def undo_marker() -> None:
                staged.committed = False
                self.last_committed_interval = previous

            oracle.record(
                f"pgckpt[{staged.interval_index}].commit",
                undo=undo_marker,
                size=8,
            )

    @staticmethod
    def _lose_descriptor(staged: StagedCheckpoint):
        def undo() -> None:
            staged.descriptor_lost = True

        return undo

    @staticmethod
    def _lose_staged_run(staged: StagedCheckpoint, staged_run: StagedRun):
        def undo() -> None:
            staged.staged_runs = [
                s for s in staged.staged_runs if s is not staged_run
            ]

        return undo

    @staticmethod
    def _tear_staged_run(staged_run: StagedRun):
        from repro.core.checkpoint import ProsperCheckpointEngine

        def tear() -> None:
            ProsperCheckpointEngine._tear(staged_run)

        return tear

    def recover_staged(self) -> int | None:
        """Recovery: replay a complete, checksum-clean staging; discard
        anything less.  Returns the interval recovered to (None when no
        checkpoint ever committed)."""
        staged = self.staged
        if staged is None or staged.committed:
            return self.last_committed_interval
        if not staged.verify():
            self.staged = None
            return self.last_committed_interval
        self._commit_staged()
        return self.last_committed_interval

    @property
    def dirty_page_count(self) -> int:
        return len(self._dirty_pages)

    def persisted_state(self) -> dict:
        return {
            "kind": "page-checkpoint",
            "intervals_committed": self.stats.intervals,
        }
