"""Figure 1 — fraction of memory operations in the stack region.

Regenerates the motivation bar chart: for Gapbs_pr, G500_sssp and Ycsb_mem,
the share of memory operations (and of writes) hitting the stack.
Paper shape: Gapbs_pr ~70 %, G500_sssp in between, Ycsb_mem ~15 %.
"""

from repro.analysis.report import render_table
from repro.experiments import motivation


def test_fig1_stack_fraction(benchmark):
    rows = benchmark.pedantic(
        motivation.fig1_stack_fraction,
        kwargs={"target_ops": 120_000},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            "Figure 1: stack share of memory operations",
            ["workload", "stack op fraction", "stack write fraction"],
            [
                [r.workload, f"{r.stack_fraction:.3f}", f"{r.stack_write_fraction:.3f}"]
                for r in rows
            ],
        )
    )
    by_name = {r.workload: r.stack_fraction for r in rows}
    assert by_name["gapbs_pr"] > by_name["g500_sssp"] > by_name["ycsb_mem"]
