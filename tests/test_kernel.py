"""Tests for repro.kernel: layout, vmem, processes, scheduler."""

import pytest

from repro.config import TrackerConfig
from repro.core.tracker import ProsperTracker
from repro.kernel.layout import AddressSpaceLayout
from repro.kernel.process import Process
from repro.kernel.scheduler import BASE_SWITCH_CYCLES, Scheduler
from repro.kernel.vmem import PageTable
from repro.memory.address import AddressRange


class TestLayout:
    def test_stacks_allocated_top_down_with_guards(self):
        layout = AddressSpaceLayout()
        s1 = layout.allocate_stack(1 << 20)
        s2 = layout.allocate_stack(1 << 20)
        assert s2.end < s1.start  # guard gap between stacks
        assert s1.start - s2.end == layout.guard_bytes
        assert not s1.overlaps(s2)

    def test_bitmap_areas_disjoint(self):
        layout = AddressSpaceLayout()
        s1 = layout.allocate_stack(1 << 20)
        s2 = layout.allocate_stack(1 << 20)
        b1 = layout.allocate_bitmap_area(s1, 8)
        b2 = layout.allocate_bitmap_area(s2, 8)
        bitmap_bytes = (1 << 20) // 8 // 32 * 4
        assert b2 >= b1 + bitmap_bytes

    def test_persistent_stack_in_nvm(self):
        layout = AddressSpaceLayout()
        stack = layout.allocate_stack(1 << 20)
        pstack = layout.allocate_persistent_stack(stack)
        assert layout.is_nvm_address(pstack.start)
        assert pstack.size == stack.size

    def test_exhaustion_detected(self):
        layout = AddressSpaceLayout()
        with pytest.raises(MemoryError):
            for _ in range(10_000):
                layout.allocate_stack(1 << 20)


class TestPageTable:
    def test_map_and_touch(self):
        pt = PageTable()
        pt.map_range(AddressRange(0, 8192))
        assert pt.mapped_pages == 2
        pt.touch(100, 8, is_write=True)
        assert pt.entries[0].dirty

    def test_unmapped_access_raises(self):
        pt = PageTable()
        with pytest.raises(MemoryError):
            pt.touch(0x5000, 8, is_write=False)

    def test_on_demand_stack_growth(self):
        pt = PageTable()
        stack = AddressRange(0x10000, 0x20000)
        faults = pt.touch(0x10008, 8, True, stack_region=stack)
        assert faults == 1
        assert pt.is_mapped(0x10008)
        assert pt.faults[0].kind == "demand-map"

    def test_write_protect_faults_once(self):
        pt = PageTable()
        rng = AddressRange(0, 4096)
        pt.map_range(rng)
        pt.write_protect(rng)
        assert pt.touch(0, 8, True) == 1  # WP fault
        assert pt.touch(8, 8, True) == 0  # now writable

    def test_collect_and_clear_dirty(self):
        pt = PageTable()
        pt.map_range(AddressRange(0, 4 * 4096))
        pt.touch(0, 8, True)
        pt.touch(2 * 4096, 8, True)
        dirty = pt.collect_and_clear_dirty()
        assert sorted(dirty) == [0, 2]
        assert pt.collect_and_clear_dirty() == []

    def test_collect_scoped_to_range(self):
        pt = PageTable()
        pt.map_range(AddressRange(0, 4 * 4096))
        pt.touch(0, 8, True)
        pt.touch(3 * 4096, 8, True)
        dirty = pt.collect_and_clear_dirty(AddressRange(0, 4096))
        assert dirty == [0]
        # The out-of-range page stays dirty.
        assert pt.entries[3].dirty

    def test_clone_view_read_only_region(self):
        pt = PageTable()
        pt.map_range(AddressRange(0, 2 * 4096))
        view = pt.clone_view(read_only=AddressRange(4096, 8192))
        assert view.entries[0].writable
        assert not view.entries[1].writable
        # Base table unchanged.
        assert pt.entries[1].writable


class TestProcess:
    def test_spawn_thread_nonpersistent(self):
        proc = Process()
        t = proc.spawn_thread(stack_bytes=1 << 20)
        assert not t.persistent
        assert t.registers.stack_pointer == t.stack.end

    def test_spawn_persistent_thread_sets_up_metadata(self):
        proc = Process(tracker_config=TrackerConfig(granularity_bytes=16))
        t = proc.spawn_thread(stack_bytes=1 << 20, persistent=True)
        assert t.persistent
        assert t.bitmap.granularity == 16
        assert t.bitmap.region == t.stack
        assert t.persistent_stack.size == t.stack.size

    def test_thread_ids_unique(self):
        proc = Process()
        tids = {proc.spawn_thread(1 << 20).tid for _ in range(5)}
        assert len(tids) == 5

    def test_cross_thread_write_recorded_in_victim_bitmap(self):
        proc = Process()
        t1 = proc.spawn_thread(1 << 20, persistent=True)
        t2 = proc.spawn_thread(1 << 20, persistent=True)
        address = t1.stack.start + 128
        handled = proc.handle_cross_thread_write(t2.tid, address, 8)
        assert handled
        assert t1.bitmap.is_dirty(address)

    def test_own_stack_write_not_cross_thread(self):
        proc = Process()
        t1 = proc.spawn_thread(1 << 20, persistent=True)
        assert not proc.handle_cross_thread_write(t1.tid, t1.stack.start, 8)

    def test_thread_view_protects_other_stacks(self):
        proc = Process()
        t1 = proc.spawn_thread(1 << 20, persistent=True)
        t2 = proc.spawn_thread(1 << 20, persistent=True)
        proc.page_table.map_range(t1.stack)
        proc.page_table.map_range(t2.stack)
        view = proc.build_thread_view(t1.tid)
        own_page = t1.stack.start // 4096
        other_page = t2.stack.start // 4096
        assert view.entries[own_page].writable
        assert not view.entries[other_page].writable


class TestScheduler:
    def test_switch_between_persistent_threads(self):
        proc = Process()
        t1 = proc.spawn_thread(1 << 20, persistent=True)
        t2 = proc.spawn_thread(1 << 20, persistent=True)
        tracker = ProsperTracker(proc.tracker_config)
        sched = Scheduler(tracker)

        c1 = sched.switch_to(t1)
        assert c1 >= BASE_SWITCH_CYCLES
        tracker.observe_store(t1.stack.start + 64, 8)
        sched.switch_to(t2)
        # The outgoing thread's dirty info was flushed to its bitmap.
        assert t1.bitmap.is_dirty(t1.stack.start + 64)
        # And its tracker state saved.
        assert t1.tracker_state is not None

    def test_state_restored_on_return(self):
        proc = Process()
        t1 = proc.spawn_thread(1 << 20, persistent=True)
        t2 = proc.spawn_thread(1 << 20, persistent=True)
        tracker = ProsperTracker(proc.tracker_config)
        sched = Scheduler(tracker)
        sched.switch_to(t1)
        sched.switch_to(t2)
        sched.switch_to(t1)
        assert tracker.msrs.stack_range == t1.stack
        assert t1.tracker_state is None  # consumed by restore

    def test_prosper_overhead_tracked(self):
        proc = Process()
        t1 = proc.spawn_thread(1 << 20, persistent=True)
        t2 = proc.spawn_thread(1 << 20, persistent=True)
        sched = Scheduler(ProsperTracker(proc.tracker_config))
        for i in range(10):
            sched.switch_to((t1, t2)[i % 2])
        assert sched.stats.switches == 10
        assert sched.stats.mean_prosper_overhead > 0

    def test_nonpersistent_thread_disables_tracker(self):
        proc = Process()
        t1 = proc.spawn_thread(1 << 20, persistent=True)
        t2 = proc.spawn_thread(1 << 20, persistent=False)
        tracker = ProsperTracker(proc.tracker_config)
        sched = Scheduler(tracker)
        sched.switch_to(t1)
        assert tracker.msrs.enabled
        sched.switch_to(t2)
        assert not tracker.msrs.enabled
