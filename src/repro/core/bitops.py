"""Shared bit-manipulation helpers for the tracking metadata hot path.

The dirty bitmap and the coalescing lookup table both spend their time
counting set bits in 32-bit words.  Python has no cheap scalar popcount
before ``int.bit_count`` (3.10+, which this repo does not assume), and the
historical ``bin(value).count("1")`` implementation allocates a string per
call — visible in profiles of the dirty-tracking path.  This module builds
one 16-bit popcount lookup table at import time and exposes:

* :func:`popcount_int` — scalar popcount of an arbitrary non-negative int;
* :func:`popcount_u32` — vectorized popcount over a ``uint32``-compatible
  numpy array (two LUT gathers and an add, no per-element Python work).

Both are exact replacements, used by :mod:`repro.core.bitmap` and
:mod:`repro.core.lookup_table`.
"""

from __future__ import annotations

import numpy as np

#: Popcount of every 16-bit value.  Built vectorized (SWAR reduction) so
#: importing this module costs microseconds, not a 65536-iteration loop.
POPCOUNT16: np.ndarray


def _build_lut() -> np.ndarray:
    v = np.arange(1 << 16, dtype=np.uint32)
    v = v - ((v >> 1) & 0x5555)
    v = (v & 0x3333) + ((v >> 2) & 0x3333)
    v = (v + (v >> 4)) & 0x0F0F
    v = (v + (v >> 8)) & 0x001F
    return v.astype(np.uint16)


POPCOUNT16 = _build_lut()
#: Plain-list view of the LUT: indexing a Python list with a Python int is
#: several times faster than indexing the ndarray in scalar code.
_POPCOUNT16_LIST: list[int] = POPCOUNT16.tolist()


def popcount_int(value: int) -> int:
    """Number of set bits in a non-negative integer of any width."""
    lut = _POPCOUNT16_LIST
    total = 0
    while value:
        total += lut[value & 0xFFFF]
        value >>= 16
    return total


def popcount_u32(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of an array of 32-bit non-negative values.

    Accepts any integer dtype whose values fit in ``uint32``; returns an
    ``int64`` array of the same shape.
    """
    w = words.astype(np.int64, copy=False)
    return (
        POPCOUNT16[w & 0xFFFF].astype(np.int64)
        + POPCOUNT16[(w >> 16) & 0xFFFF]
    )
