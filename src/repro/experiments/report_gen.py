"""One-shot reproduction report: every figure, regenerated and rendered.

``python -m repro report --out results/`` writes a self-contained markdown
document with every experiment's regenerated table plus the qualitative
verdicts of the shape validation — the same content EXPERIMENTS.md records,
but produced live from the current code at the requested scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

from repro.analysis.report import format_bytes
from repro.experiments import evaluation, motivation, overhead
from repro.experiments.validation import summarize, validate_shapes


@dataclass(frozen=True)
class ReportSection:
    title: str
    body_markdown: str


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _fig1_section(ops: int) -> ReportSection:
    rows = motivation.fig1_stack_fraction(target_ops=ops)
    table = _md_table(
        ["workload", "stack op fraction", "stack write fraction"],
        [[r.workload, f"{r.stack_fraction:.3f}", f"{r.stack_write_fraction:.3f}"] for r in rows],
    )
    return ReportSection("Figure 1 — stack share of memory operations", table)


def _fig2_section(ops: int) -> ReportSection:
    rows = motivation.fig2_beyond_final_sp(num_intervals=100, target_ops=ops)
    table = _md_table(
        ["workload", "stack writes", "beyond final SP", "fraction"],
        [[r.workload, r.total_writes, r.total_beyond, f"{r.beyond_fraction:.3f}"] for r in rows],
    )
    return ReportSection("Figure 2 — writes beyond the interval-final SP", table)


def _fig4_section(ops: int) -> ReportSection:
    rows = motivation.fig4_copy_size(target_ops=ops)
    table = _md_table(
        ["workload", "page copy", "8-byte copy", "reduction"],
        [
            [r.workload, format_bytes(r.page_bytes_per_interval),
             format_bytes(r.byte_bytes_per_interval), f"{r.reduction_factor:.1f}x"]
            for r in rows
        ],
    )
    return ReportSection("Figure 4 — page vs 8-byte copy size", table)


def _fig8_section(ops: int) -> ReportSection:
    results = evaluation.fig8_stack_persistence(target_ops=ops)
    table: dict[str, dict[str, float]] = {}
    for r in results:
        table.setdefault(r.trace_name, {})[r.mechanism_name] = r.normalized_time
    mechanisms = sorted(next(iter(table.values())))
    md = _md_table(
        ["workload"] + mechanisms,
        [[w] + [f"{row[m]:.2f}" for m in mechanisms] for w, row in sorted(table.items())],
    )
    return ReportSection("Figure 8 — stack persistence (normalized time)", md)


def _fig10_section(ops: int) -> ReportSection:
    cells = evaluation.fig10_usage_patterns(scale=max(0.2, min(1.0, ops / 100_000)))
    sizes: dict[str, dict] = {}
    times: dict[str, dict] = {}
    for c in cells:
        sizes.setdefault(c.workload, {})[c.granularity] = c.mean_checkpoint_bytes
        times.setdefault(c.workload, {})[c.granularity] = c.checkpoint_time_vs_dirtybit
    md = _md_table(
        ["workload", "size 8B", "size page", "time vs dirtybit (8B)"],
        [
            [w, format_bytes(sizes[w][8]), format_bytes(sizes[w]["page"]),
             f"{times[w][8]:.3f}"]
            for w in sorted(sizes)
        ],
    )
    return ReportSection("Figure 10 — usage patterns at 8 B granularity", md)


def _fig12_section(ops: int) -> ReportSection:
    cells = overhead.fig12_tracking_overhead(target_ops=ops, granularities=(8,))
    md = _md_table(
        ["workload", "speedup", "overhead %"],
        [[c.workload, f"{c.speedup:.4f}", f"{c.overhead_percent:.2f}"] for c in cells],
    )
    mean = sum(c.overhead_percent for c in cells) / len(cells)
    return ReportSection(
        "Figure 12 — tracking overhead",
        md + f"\n\nMean overhead: {mean:.2f} % (paper: <1 % average).",
    )


def _fig13_section(ops: int) -> ReportSection:
    cells = overhead.fig13_watermark_sensitivity(
        target_ops=ops, hwm_values=(8, 16, 24, 32), lwm_values=(2, 8, 16)
    )
    md = _md_table(
        ["workload", "HWM", "LWM", "bitmap ops"],
        [[c.workload, c.hwm, c.lwm, c.memory_ops] for c in cells],
    )
    return ReportSection("Figure 13 — HWM/LWM sensitivity", md)


def _validation_section(ops: int, seeds: tuple[int, ...]) -> ReportSection:
    # The lookup-table pressure dynamics behind the mcf HWM trend need a
    # minimum trace length to manifest; clamp the validation scale.
    scale = max(20_000, min(ops, 25_000))
    summary = summarize(validate_shapes(seeds=seeds, target_ops=scale))
    md = _md_table(
        ["shape check", "passes", "total"],
        [[name, p, t] for name, (p, t) in sorted(summary.items())],
    )
    all_pass = all(p == t for p, t in summary.values())
    verdict = "**all shape checks pass**" if all_pass else "**some checks FAILED**"
    return ReportSection(
        f"Shape validation across seeds {list(seeds)}", md + f"\n\n{verdict}."
    )


def generate_report(
    ops: int = 40_000,
    seeds: tuple[int, ...] = (42, 7),
    timestamp: str | None = None,
) -> str:
    """Build the full markdown report; returns it as a string."""
    stamp = timestamp or datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    sections = [
        _fig1_section(ops),
        _fig2_section(ops),
        _fig4_section(ops),
        _fig8_section(ops),
        _fig10_section(ops),
        _fig12_section(ops),
        _fig13_section(ops),
        _validation_section(ops, seeds),
    ]
    parts = [
        "# Prosper reproduction report",
        "",
        f"Generated {stamp}; trace scale ~{ops} ops per workload.",
        "Paper: *Prosper: Program Stack Persistence in Hybrid Memory"
        " Systems*, HPCA 2024.  See EXPERIMENTS.md for paper-vs-measured"
        " commentary and DESIGN.md for substitutions.",
        "",
    ]
    for section in sections:
        parts.append(f"## {section.title}")
        parts.append("")
        parts.append(section.body_markdown)
        parts.append("")
    return "\n".join(parts)
