"""Shared result cache for deduplicating baseline runs.

``repro all`` regenerates every figure, and almost every figure starts by
running each workload with no persistence to obtain its ``vanilla_cycles``
baseline — the same (trace, config) baseline is recomputed by Figure 8,
Figure 9, the endurance study, and so on.  This cache keys results by
``(trace fingerprint, mechanism, interval, config, ops)`` so a baseline is
computed once per run and reused everywhere, including across worker
processes (via a small directory of JSON entries) and across resumed runs.

The fingerprint hashes the actual operation stream, not the generator
name, so two traces share a cache entry only when they are bit-for-bit
the same workload.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.config import SystemConfig
from repro.experiments.runner import vanilla_cycles
from repro.workloads.trace import Trace


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace: layout plus the full operation stream."""
    hasher = hashlib.sha1()
    hasher.update(
        f"{trace.name}|{trace.stack_range.start}:{trace.stack_range.end}|".encode()
    )
    if trace.heap_range is not None:
        hasher.update(f"{trace.heap_range.start}:{trace.heap_range.end}|".encode())
    hasher.update(trace.array.tobytes())
    return hasher.hexdigest()


def result_key(
    fingerprint: str,
    mechanism: str,
    interval: str,
    config: str,
    ops: int,
) -> str:
    """The canonical ``(trace, mechanism, interval, config, ops)`` key."""
    return f"{fingerprint}|{mechanism}|{interval}|{config}|{ops}"


class ResultCache:
    """Two-level cache: per-process dict plus an optional shared directory.

    The in-memory layer makes repeat lookups free within one process (and
    is inherited by forked workers); the directory layer shares entries
    between worker processes and across resumed runs.  Directory writes
    are atomic (write to a temp file, then rename), so concurrent workers
    can race on the same key without corrupting it — the loser's write is
    simply redundant.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def _entry_path(self, key: str) -> Path:
        assert self.directory is not None
        digest = hashlib.sha1(key.encode()).hexdigest()
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> object | None:
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if self.directory is not None:
            path = self._entry_path(key)
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                entry = None
            if entry is not None and entry.get("key") == key:
                self._memory[key] = entry["value"]
                self.hits += 1
                return entry["value"]
        self.misses += 1
        return None

    def put(self, key: str, value: object) -> None:
        self._memory[key] = value
        if self.directory is None:
            return
        path = self._entry_path(key)
        payload = json.dumps({"key": key, "value": value})
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


#: Process-wide active cache; harness executors consult it so that unit
#: functions stay plain callables.  ``activate`` is called by the
#: supervisor (and by each worker, which re-activates from the directory
#: it was handed, making the scheme safe under any start method).
_active: ResultCache | None = None


def activate(cache: ResultCache | None) -> None:
    global _active
    _active = cache


def active_cache() -> ResultCache | None:
    return _active


def vanilla_cycles_cached(
    trace: Trace,
    config: SystemConfig | None = None,
    config_label: str = "setup_i",
) -> int:
    """Baseline application cycles of *trace*, deduplicated via the cache."""
    cache = _active
    if cache is None:
        return vanilla_cycles(trace, config)
    key = result_key(
        trace_fingerprint(trace), "vanilla", "none", config_label, len(trace.ops)
    )
    value = cache.get(key)
    if value is not None:
        return int(value)
    cycles = vanilla_cycles(trace, config)
    cache.put(key, cycles)
    return cycles
