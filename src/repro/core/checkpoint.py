"""OS-side Prosper checkpoint engine (Section III-A, Figure 5/6).

At the end of each checkpoint interval the OS:

1. requests a lookup-table flush and polls for quiescence (two-step
   protocol; between the steps it prepares for the copy);
2. inspects only the bitmap words covering the *active* stack region —
   bounded below by the tracker-reported lowest dirty address and by the
   lowest SP observed in the interval — coalescing contiguous set bits into
   runs;
3. copies each dirty run from DRAM into a staging buffer in NVM (step one
   of the crash-consistent commit);
4. applies the staged data onto the per-thread persistent stack in NVM
   (step two), then marks the checkpoint committed;
5. clears the consumed bitmap words so the next interval starts clean.

Crash consistency: a failure during (3) leaves the previous committed
checkpoint intact; a failure during (4) is recovered by replaying the fully
staged buffer (it is written completely before the commit record flips).
The recovery path lives in :mod:`repro.kernel.restore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitmap import DirtyBitmap, DirtyRun
from repro.core.tracker import ProsperTracker
from repro.memory.hierarchy import MemoryHierarchy

#: Cycles for the OS to stream-inspect one 64-byte cache line of bitmap
#: (16 words): an 8-byte-at-a-time scan that skips zero words quickly, the
#: coalescing walk of Section III-A.
INSPECT_CYCLES_PER_LINE = 6
WORDS_PER_BITMAP_LINE = 16
#: Cycles to clear one dirty bitmap word for the next interval.
CLEAR_CYCLES_PER_WORD = 2
#: Fixed per-checkpoint software cost: flush request, poll, bookkeeping.
CHECKPOINT_FIXED_CYCLES = 400
#: Per-run software overhead of setting up one copy (pointer math, loop).
PER_RUN_SETUP_CYCLES = 30


@dataclass
class CheckpointResult:
    """Outcome of one stack checkpoint."""

    interval_index: int
    copied_bytes: int
    runs: int
    words_inspected: int
    cycles: int
    committed: bool = True


@dataclass
class StagedCheckpoint:
    """NVM staging-buffer contents awaiting (or after) commit.

    ``runs`` carries the byte ranges staged; the recovery code uses it to
    replay a checkpoint whose commit was interrupted.
    """

    interval_index: int
    runs: list[DirtyRun] = field(default_factory=list)
    committed: bool = False


class ProsperCheckpointEngine:
    """Drives tracker + bitmap to produce crash-consistent stack checkpoints."""

    def __init__(
        self,
        tracker: ProsperTracker,
        bitmap: DirtyBitmap,
        hierarchy: MemoryHierarchy,
        fixed_scale: float = 1.0,
    ) -> None:
        self.tracker = tracker
        self.bitmap = bitmap
        self.hierarchy = hierarchy
        #: Scale for fixed per-event costs under a compressed clock
        #: (see repro.experiments.runner); 1.0 = real latencies.
        self.fixed_scale = fixed_scale
        self.results: list[CheckpointResult] = []
        #: The persistent (committed) image state, for recovery tests: maps
        #: nothing concrete — we record the last committed interval and the
        #: staged-but-uncommitted checkpoint if any.
        self.last_committed_interval: int | None = None
        self.staged: StagedCheckpoint | None = None

    def checkpoint(
        self,
        interval_index: int,
        active_low_hint: int | None = None,
        final_sp: int | None = None,
        crash_after_stage: bool = False,
    ) -> CheckpointResult:
        """Run one end-of-interval checkpoint; returns size/time accounting.

        *active_low_hint* is the lowest SP the OS observed during the
        interval (combined with the tracker's lowest dirty address, it
        bounds the bitmap walk).  *final_sp* is the SP at the commit point:
        the checkpoint is **SP-aware** (Section II-A) — dirty granules
        below it belong to popped frames and are dropped, not copied.
        Setting *crash_after_stage* simulates a power failure between
        staging and commit, leaving :attr:`staged` for the recovery path.
        """
        cycles = round(CHECKPOINT_FIXED_CYCLES * self.fixed_scale)

        # Step 1 — two-step quiescence.
        self.tracker.request_flush()
        cycles += self.tracker.msrs.outstanding_ops  # drain wait, ~1 cyc/op
        self.tracker.poll_quiescent()

        # Step 2 — bounded bitmap inspection (streamed a cache line at a
        # time; zero words are skipped cheaply).
        active_low = self._active_low(active_low_hint)
        words = self.bitmap.words_touched(active_low)
        cycles += (
            -(-words // WORDS_PER_BITMAP_LINE) * INSPECT_CYCLES_PER_LINE
        )
        runs = list(self.bitmap.iter_dirty_runs(active_low))
        if final_sp is not None and final_sp > self.bitmap.region.start:
            # SP awareness: clip every run to the live region [final_sp,
            # top).  Bits below final_sp belong to dead frames; the walk
            # still clears them (below) so they cannot leak into a later
            # checkpoint.
            runs = [
                DirtyRun(max(run.start, final_sp), run.end)
                for run in runs
                if run.end > final_sp
            ]

        # Step 3 — copy dirty runs into the NVM staging buffer.  The copies
        # are pipelined: one fixed device latency for the batch, plus
        # bandwidth-limited streaming of the bytes and a small software
        # setup cost per run.
        copied = sum(run.size for run in runs)
        staged = StagedCheckpoint(interval_index, runs)
        cycles += len(runs) * PER_RUN_SETUP_CYCLES
        if copied:
            cycles += self.hierarchy.copy_dram_to_nvm(copied, self.fixed_scale)
        self.staged = staged

        if crash_after_stage:
            result = CheckpointResult(
                interval_index, copied, len(runs), words, cycles, committed=False
            )
            self.results.append(result)
            return result

        # Step 4 — apply staging buffer onto the persistent stack and commit.
        cycles += self._commit(staged)

        # Step 5 — clear consumed bitmap words.
        cleared = self.bitmap.clear(active_low)
        cycles += cleared * CLEAR_CYCLES_PER_WORD
        self.tracker.begin_interval()

        result = CheckpointResult(interval_index, copied, len(runs), words, cycles)
        self.results.append(result)
        return result

    def _commit(self, staged: StagedCheckpoint) -> int:
        """Apply the staged runs to the per-thread persistent stack in NVM."""
        total = sum(run.size for run in staged.runs)
        cycles = 0
        if total:
            cycles += self.hierarchy.copy_nvm_to_nvm(total, self.fixed_scale)
        cycles += self.hierarchy.persist_barrier()
        staged.committed = True
        self.last_committed_interval = staged.interval_index
        return cycles

    def recover_staged(self) -> int | None:
        """Complete an interrupted commit from the staging buffer.

        Returns the interval index recovered to, or None when the staging
        buffer was empty/committed (recovery falls back to the previous
        committed checkpoint).
        """
        if self.staged is None or self.staged.committed:
            return self.last_committed_interval
        self._commit(self.staged)
        return self.last_committed_interval

    def _active_low(self, hint: int | None) -> int | None:
        tracker_low = self.tracker.min_dirty_address
        candidates = [c for c in (hint, tracker_low) if c is not None]
        if not candidates:
            # Nothing dirtied and no hint: inspect nothing below the top.
            return self.bitmap.region.end
        # The OS must inspect everything from the lowest known dirty/active
        # address upward; taking the min is conservative and correct.
        return max(self.bitmap.region.start, min(candidates))
