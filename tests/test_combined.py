"""Tests for repro.persistence.combined and heap+stack engine composition."""

from repro.cpu.engine import ExecutionEngine
from repro.cpu.ops import Op, OpKind
from repro.memory.address import AddressRange
from repro.persistence.combined import CombinedPersistence
from repro.persistence.dirtybit import DirtyBitPersistence
from repro.persistence.prosper import ProsperPersistence
from repro.persistence.ssp import SspPersistence

STACK = AddressRange(0x7000_0000, 0x7010_0000)
HEAP = AddressRange(0x1000_0000, 0x1100_0000)


def run_combo(stack_mech, heap_mech, ops):
    engine = ExecutionEngine(
        stack_range=STACK,
        mechanism=stack_mech,
        heap_range=HEAP,
        heap_mechanism=heap_mech,
    )
    # A full-region frame keeps every stack write live under the SP-aware
    # checkpoint copy.
    ops = [Op(OpKind.CALL, size=STACK.size)] + list(ops)
    stats = engine.run(ops, interval_ops=len(ops))
    return engine, stats


class TestCombinedPersistence:
    def test_default_name_from_variants(self):
        combo = CombinedPersistence(ProsperPersistence(), SspPersistence(10))
        assert combo.name == "ssp-10us+prosper-8B"

    def test_custom_name(self):
        combo = CombinedPersistence(
            ProsperPersistence(), SspPersistence(10), name="mine"
        )
        assert combo.name == "mine"

    def test_stats_merge(self):
        stack_mech = ProsperPersistence()
        heap_mech = SspPersistence(1000)
        ops = [
            Op(OpKind.WRITE, STACK.start + 8, 8),
            Op(OpKind.WRITE, HEAP.start + 8, 8),
        ]
        run_combo(stack_mech, heap_mech, ops)
        combo = CombinedPersistence(stack_mech, heap_mech)
        merged = combo.stats()
        assert merged.stack_checkpoint_bytes == 8
        assert merged.heap_checkpoint_bytes > 0
        assert (
            merged.total_checkpoint_bytes
            == merged.stack_checkpoint_bytes + merged.heap_checkpoint_bytes
        )


class TestRegionIsolation:
    def test_heap_in_nvm_stack_in_dram(self):
        stack_mech = ProsperPersistence()  # DRAM stack
        heap_mech = SspPersistence(1000)  # NVM heap
        engine, _ = run_combo(
            stack_mech,
            heap_mech,
            [
                Op(OpKind.READ, STACK.start + 8, 8),
                Op(OpKind.READ, HEAP.start + 8, 8),
            ],
        )
        # Exactly one of the two demand misses hit NVM (the heap one).
        assert engine.hierarchy.nvm.stats.reads == 1
        assert engine.hierarchy.dram.stats.reads >= 1

    def test_each_mechanism_checkpoints_its_region(self):
        stack_mech = ProsperPersistence()
        heap_mech = DirtyBitPersistence()
        ops = [
            Op(OpKind.WRITE, STACK.start + 8, 8),
            Op(OpKind.WRITE, HEAP.start + 8, 8),
            Op(OpKind.WRITE, HEAP.start + 8192, 8),
        ]
        run_combo(stack_mech, heap_mech, ops)
        assert stack_mech.stats.total_checkpoint_bytes == 8
        assert heap_mech.stats.total_checkpoint_bytes == 2 * 4096
