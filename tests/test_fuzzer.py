"""Tests for the crash-schedule fuzzer: golden-image verification over
randomized crash schedules, the weakened-recovery mutant catch, shrinking,
and campaign determinism."""

import random

import pytest

from repro.faults.fuzzer import (
    CONTENT_MECHANISMS,
    INTERVAL_MECHANISMS,
    CrashSpec,
    FuzzConfig,
    build_setup,
    build_trace,
    run_campaign,
    run_schedule,
    shrink_plan,
)
from repro.faults.injector import STAGE_COMPLETE, CrashInjected
from repro.faults.order import PersistPlan

#: Small, fast workload shared by the targeted tests.
OPS = 600
INTERVALS = 3
INTERVAL_OPS = OPS // INTERVALS


def _trace(seed=0):
    return build_trace(seed, OPS)


class TestTrace:
    def test_deterministic(self):
        assert build_trace(7, 200) == build_trace(7, 200)
        assert build_trace(7, 200) != build_trace(8, 200)

    def test_requested_length(self):
        assert len(build_trace(0, 321)) == 321


class TestAcceptanceCampaign:
    def test_500_schedules_content_mechanisms_both_engines(self):
        # The headline acceptance criterion: a seeded campaign of >= 500
        # schedules across prosper and dirtybit under both engines, every
        # recovered state matching the golden image.
        report = run_campaign(
            FuzzConfig(seed=2026, budget=512, ops=OPS, intervals=INTERVALS)
        )
        assert report["ok"], report["violations"][:1]
        assert report["schedules"] >= 500
        combos = {(c["mechanism"], c["engine"]) for c in report["combos"]}
        assert combos == {
            (m, e)
            for m in ("prosper", "dirtybit")
            for e in ("scalar", "batched")
        }
        # The campaign must actually exercise both crash axes and
        # non-neat persist plans, or it is not testing the new model.
        kinds = {k for c in report["combos"] for k in c["crash_kinds"]}
        assert kinds == {"cycle", "point"}
        assert any(c["plan_kinds"].get("dropped") for c in report["combos"])
        assert any(c["plan_kinds"].get("torn") for c in report["combos"])

    def test_interval_mechanisms_hold_their_oracle(self):
        report = run_campaign(
            FuzzConfig(
                seed=5,
                budget=32,
                mechanisms=INTERVAL_MECHANISMS,
                engines=("scalar",),
                ops=500,
                intervals=INTERVALS,
            )
        )
        assert report["ok"], report["violations"][:1]

    def test_campaign_is_deterministic(self):
        config = FuzzConfig(seed=13, budget=16, ops=OPS, intervals=INTERVALS)
        assert run_campaign(config) == run_campaign(config)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_campaign(FuzzConfig(mechanisms=("nope",)))
        with pytest.raises(ValueError):
            run_campaign(FuzzConfig(engines=("gpu",)))
        with pytest.raises(ValueError):
            run_campaign(FuzzConfig(budget=0))


class TestWeakenedRecoveryMutant:
    """A deliberately broken commit protocol must be *caught*: recovery
    that trusts staging completeness without re-checking the CRCs rolls a
    torn staged tail forward, and the golden image flags it."""

    def test_campaign_catches_the_mutant(self):
        report = run_campaign(
            FuzzConfig(
                seed=3,
                budget=60,
                mechanisms=("prosper",),
                engines=("scalar",),
                ops=OPS,
                intervals=INTERVALS,
                weaken=True,
            )
        )
        assert not report["ok"]
        violation = report["violations"][0]
        assert "durable" in violation["detail"]
        # The shrinker reduced the failing plan to its essence: one torn
        # staged run, nothing dropped.
        shrunk = violation["shrunk_plan"]
        assert shrunk["dropped"] == []
        assert shrunk["torn"] is not None and ".stage_run[" in shrunk["torn"]
        assert "--schedule" in violation["repro"]
        assert "--weaken" in violation["repro"]

    def test_torn_staged_run_targeted(self):
        # Deterministic core of the mutant catch: crash at the second
        # checkpoint's stage_complete with the last staged run torn.
        trace = _trace()
        spec = CrashSpec("point", point=STAGE_COMPLETE, occurrence=1)

        def torn_plan(setup):
            labels = [
                label
                for label in setup.oracle.pending_labels()
                if ".stage_run[" in label
            ]
            return PersistPlan(frozenset(), labels[-1])

        # Find the concrete torn label by running the schedule once.
        probe = build_setup("prosper", "scalar")
        probe.injector.arm(STAGE_COMPLETE, 1)
        with pytest.raises(CrashInjected):
            probe.engine.run(trace, interval_ops=INTERVAL_OPS)
        plan = torn_plan(probe)

        # Correct recovery: CRC catches the tear, previous checkpoint wins.
        good = run_schedule(
            "prosper", "scalar", trace, INTERVAL_OPS, spec, forced_plan=plan
        )
        assert good.crashed and good.ok
        assert good.resumed == good.snapshots - 2

        # Mutant recovery: the torn tail rolls forward and is flagged.
        bad = run_schedule(
            "prosper", "scalar", trace, INTERVAL_OPS, spec,
            forced_plan=plan, weaken=True,
        )
        assert bad.crashed and not bad.ok
        assert "durable" in bad.detail

        # And the already-minimal plan shrinks to itself.
        shrunk = shrink_plan(
            "prosper", "scalar", trace, INTERVAL_OPS, spec, plan, weaken=True
        )
        assert shrunk == plan

    def test_weaken_is_prosper_only(self):
        with pytest.raises(ValueError):
            build_setup("dirtybit", "scalar", weaken=True)


class TestScheduleSemantics:
    @pytest.mark.parametrize("mechanism", CONTENT_MECHANISMS)
    def test_dropped_commit_marker_is_masked_by_replay(self, mechanism):
        # Mid-interval crash: the only pending write is the previous
        # checkpoint's commit marker.  Dropping it must not lose the
        # checkpoint — recovery replays the durable staging buffer.
        trace = _trace()
        setup = build_setup(mechanism, "scalar")
        setup.injector.arm_cycle(10**18)  # never fires; probe total cycles
        setup.engine.run(trace, interval_ops=INTERVAL_OPS)
        total = setup.engine.now

        spec = CrashSpec("cycle", cycle=int(total * 0.55))
        outcome = run_schedule(
            mechanism, "scalar", trace, INTERVAL_OPS, spec,
            plan_rng=random.Random(99),
        )
        assert outcome.crashed and outcome.ok
        assert outcome.resumed == outcome.snapshots - 1

    def test_deadline_past_end_is_a_clean_no_crash(self):
        trace = _trace()
        spec = CrashSpec("cycle", cycle=10**18)
        outcome = run_schedule("prosper", "scalar", trace, INTERVAL_OPS, spec)
        assert not outcome.crashed and outcome.ok
        assert outcome.classification == "no_crash"

    def test_schedule_replay_is_deterministic(self):
        trace = _trace()
        spec = CrashSpec("point", point=STAGE_COMPLETE, occurrence=1)
        a = run_schedule(
            "prosper", "scalar", trace, INTERVAL_OPS, spec,
            plan_rng=random.Random(4),
        )
        b = run_schedule(
            "prosper", "scalar", trace, INTERVAL_OPS, spec,
            plan_rng=random.Random(4),
        )
        assert a.to_dict() == b.to_dict()
