"""Round-robin scheduler with Prosper-aware context switches.

Section III-C / the context-switch study in Section V: when the outgoing
thread is persistent, the OS (1) instructs the tracker to flush the lookup
table into the outgoing thread's bitmap, (2) proceeds with ordinary
context-switch work, (3) checks the tracker's outstanding-op counter for
quiescence, and (4) loads the incoming thread's tracker state (MSRs and
saved table contents).  The paper measures the extra save/restore work at
about 870 cycles on average; this model reproduces that cost structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tracker import ProsperTracker
from repro.faults.injector import CTX_RESTORE, CTX_SAVE, FaultInjector
from repro.kernel.process import Thread

#: Baseline context-switch cost without any Prosper involvement (register
#: save/restore, address-space switch, scheduler bookkeeping).
BASE_SWITCH_CYCLES = 1500


@dataclass
class ContextSwitchStats:
    """Accounting of scheduler activity."""

    switches: int = 0
    total_cycles: int = 0
    prosper_cycles: int = 0
    per_switch_prosper_cycles: list[int] = field(default_factory=list)

    @property
    def mean_prosper_overhead(self) -> float:
        if not self.per_switch_prosper_cycles:
            return 0.0
        return sum(self.per_switch_prosper_cycles) / len(self.per_switch_prosper_cycles)


class Scheduler:
    """Schedules threads on a single logical CPU with one Prosper tracker."""

    def __init__(
        self, tracker: ProsperTracker, injector: FaultInjector | None = None
    ) -> None:
        self.tracker = tracker
        self.injector = injector
        self.current: Thread | None = None
        self.stats = ContextSwitchStats()

    def switch_to(self, incoming: Thread) -> int:
        """Context switch from the current thread to *incoming*.

        Returns the total cycles the switch consumed (base cost plus the
        Prosper tracker save/restore for persistent threads).
        """
        cycles = BASE_SWITCH_CYCLES
        prosper_cycles = 0
        outgoing = self.current

        if outgoing is not None and outgoing.persistent:
            # Flush + save tracker state for the outgoing context.  The OS
            # overlaps its other switch work with the flush drain; the
            # save_state cost already accounts for the polling step.
            if self.injector is not None:
                self.injector.reached(CTX_SAVE)
            state, spent = self.tracker.save_state()
            outgoing.tracker_state = state
            prosper_cycles += spent

        if incoming.persistent:
            if incoming.tracker_state is not None:
                if self.injector is not None:
                    self.injector.reached(CTX_RESTORE)
                prosper_cycles += self.tracker.restore_state(
                    incoming.tracker_state, incoming.bitmap
                )
                incoming.tracker_state = None
            else:
                # First time on CPU: program the MSRs from scratch.
                assert incoming.bitmap is not None
                self.tracker.configure(incoming.bitmap)
                prosper_cycles += self.tracker.STATE_SWAP_CYCLES
        elif outgoing is not None and outgoing.persistent:
            # Incoming context does not use the tracker: disarm it.
            self.tracker.disable()

        self.current = incoming
        cycles += prosper_cycles
        self.stats.switches += 1
        self.stats.total_cycles += cycles
        self.stats.prosper_cycles += prosper_cycles
        self.stats.per_switch_prosper_cycles.append(prosper_cycles)
        return cycles
