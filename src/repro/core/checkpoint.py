"""OS-side Prosper checkpoint engine (Section III-A, Figure 5/6).

At the end of each checkpoint interval the OS:

1. requests a lookup-table flush and polls for quiescence (two-step
   protocol; between the steps it prepares for the copy);
2. inspects only the bitmap words covering the *active* stack region —
   bounded below by the tracker-reported lowest dirty address and by the
   lowest SP observed in the interval — coalescing contiguous set bits into
   runs;
3. copies each dirty run from DRAM into a staging buffer in NVM (step one
   of the crash-consistent commit), recording a CRC32 alongside each
   staged run;
4. applies the staged data onto the per-thread persistent stack in NVM
   (step two), then marks the checkpoint committed;
5. clears the consumed bitmap words so the next interval starts clean.

Crash consistency: a failure during (3) leaves the previous committed
checkpoint intact — the staging buffer records how many runs were planned,
so recovery can tell a *complete* staging (safe to roll forward) from a
partial one (discard); a failure during (4) is recovered by replaying the
fully staged buffer.  The per-run checksums let recovery detect staged
data corrupted by a torn NVM write and discard it instead of trusting
completeness alone.  The recovery path lives in
:mod:`repro.kernel.restore`.

Fault injection: every step is a named crash point (see
:mod:`repro.faults.injector`); an armed :class:`FaultInjector` threaded
through here raises :class:`CrashInjected` mid-protocol, leaving the
staging state exactly as durably written so far.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.bitmap import DirtyBitmap, DirtyRun
from repro.core.tracker import ProsperTracker
from repro.faults.injector import (
    BITMAP_CLEAR,
    PERSIST_BARRIER,
    STAGE_BEGIN,
    STAGE_COMPLETE,
    FaultInjector,
    stage_run_copy,
)
from repro.memory.hierarchy import MemoryHierarchy

#: Cycles for the OS to stream-inspect one 64-byte cache line of bitmap
#: (16 words): an 8-byte-at-a-time scan that skips zero words quickly, the
#: coalescing walk of Section III-A.
INSPECT_CYCLES_PER_LINE = 6
WORDS_PER_BITMAP_LINE = 16
#: Cycles to clear one dirty bitmap word for the next interval.
CLEAR_CYCLES_PER_WORD = 2
#: Fixed per-checkpoint software cost: flush request, poll, bookkeeping.
CHECKPOINT_FIXED_CYCLES = 400
#: Per-run software overhead of setting up one copy (pointer math, loop).
PER_RUN_SETUP_CYCLES = 30

#: XOR mask applied to a stored CRC to model a torn write corrupting a
#: staged record whose content is not byte-tracked.
TORN_CRC_MASK = 0xA5A5_A5A5

#: Reads a run's DRAM contents as (word address, value) pairs.
ContentReader = Callable[[DirtyRun], Iterable[tuple[int, int]]]
#: Applies a committed staged run to the persistent NVM contents.
ContentWriter = Callable[["StagedRun"], None]


def staged_run_crc(run: DirtyRun, payload: tuple[tuple[int, int], ...]) -> int:
    """CRC32 over a staged run's descriptor and (optional) byte contents."""
    return zlib.crc32(repr((run.start, run.end, payload)).encode())


@dataclass
class StagedRun:
    """One dirty run written to the NVM staging buffer.

    ``crc`` is stored alongside the staged data; recovery recomputes it
    over ``payload`` (the staged words, when the simulation tracks actual
    contents) and discards the run on mismatch — which is how torn NVM
    writes are detected instead of silently rolled forward.
    """

    run: DirtyRun
    crc: int
    payload: tuple[tuple[int, int], ...] = ()

    def verify(self) -> bool:
        return self.crc == staged_run_crc(self.run, self.payload)


@dataclass
class CheckpointResult:
    """Outcome of one stack checkpoint."""

    interval_index: int
    copied_bytes: int
    runs: int
    words_inspected: int
    cycles: int
    committed: bool = True
    #: NVM write retries taken by the reliable-write path (media errors);
    #: their backoff cycles are already included in ``cycles``.
    retries: int = 0


@dataclass
class StageResult:
    """Outcome of the staging half of a checkpoint (step one)."""

    cycles: int
    copied_bytes: int
    runs: int
    words_inspected: int
    retries: int = 0


@dataclass
class StagedCheckpoint:
    """NVM staging-buffer contents awaiting (or after) commit.

    ``expected_runs`` is written first (part of the staging descriptor), so
    recovery can distinguish a complete staging — every planned run made it
    to NVM — from one interrupted mid-copy.  Only a complete, checksum-clean
    staging may be rolled forward.
    """

    interval_index: int
    expected_runs: int = 0
    staged_runs: list[StagedRun] = field(default_factory=list)
    committed: bool = False
    #: Walk bound saved for the deferred bitmap clear at commit time.
    active_low: int | None = None
    #: Set when the persist-order model drops the staging descriptor: the
    #: run count never landed, so recovery cannot tell complete from
    #: partial and must discard.
    descriptor_lost: bool = False

    @property
    def runs(self) -> list[DirtyRun]:
        """Byte ranges staged so far (compatibility accessor)."""
        return [staged.run for staged in self.staged_runs]

    @property
    def complete(self) -> bool:
        """True when every planned run reached the staging buffer."""
        if self.descriptor_lost:
            return False
        return len(self.staged_runs) == self.expected_runs

    def verify(self) -> bool:
        """Complete *and* every staged run passes its checksum."""
        return self.complete and all(s.verify() for s in self.staged_runs)


class ProsperCheckpointEngine:
    """Drives tracker + bitmap to produce crash-consistent stack checkpoints."""

    def __init__(
        self,
        tracker: ProsperTracker,
        bitmap: DirtyBitmap,
        hierarchy: MemoryHierarchy,
        fixed_scale: float = 1.0,
        injector: FaultInjector | None = None,
        content_reader: ContentReader | None = None,
        content_writer: ContentWriter | None = None,
        label_prefix: str = "ckpt",
    ) -> None:
        self.tracker = tracker
        self.bitmap = bitmap
        self.hierarchy = hierarchy
        #: Namespace for persist-order labels.  Callers owning several
        #: engines against one NVM device (the kernel manager's per-thread
        #: engines) must make it unique per engine, or concurrent stagings
        #: of the same interval would collide in the oracle's pending set.
        self.label_prefix = label_prefix
        #: Scale for fixed per-event costs under a compressed clock
        #: (see repro.experiments.runner); 1.0 = real latencies.
        self.fixed_scale = fixed_scale
        self.injector = injector
        self.content_reader = content_reader
        self.content_writer = content_writer
        self.results: list[CheckpointResult] = []
        #: The persistent (committed) image state, for recovery tests: maps
        #: nothing concrete — we record the last committed interval and the
        #: staged-but-uncommitted checkpoint if any.
        self.last_committed_interval: int | None = None
        self.staged: StagedCheckpoint | None = None
        #: TEST-ONLY protocol mutant: recovery trusts staging completeness
        #: without re-checking the per-run CRCs.  A torn staged tail then
        #: rolls forward silently — exactly the class of bug the persist-
        #: order fuzzer exists to catch.  Never set outside tests.
        self.unsafe_trust_completeness = False

    def _reached(self, point: str) -> None:
        if self.injector is not None:
            self.injector.reached(point)

    def _oracle(self):
        """The persist-order oracle on the NVM device, if one is attached."""
        nvm = self.hierarchy.nvm
        return nvm.order_oracle if nvm is not None else None

    # ------------------------------------------------------------------ #
    # Step one: stage dirty runs into the NVM staging buffer
    # ------------------------------------------------------------------ #

    def stage(
        self,
        interval_index: int,
        active_low_hint: int | None = None,
        final_sp: int | None = None,
    ) -> StageResult:
        """Quiesce, walk the bitmap, and stage every dirty run into NVM.

        *active_low_hint* is the lowest SP the OS observed during the
        interval (combined with the tracker's lowest dirty address, it
        bounds the bitmap walk).  *final_sp* is the SP at the commit point:
        the checkpoint is **SP-aware** (Section II-A) — dirty granules
        below it belong to popped frames and are dropped, not copied.
        """
        cycles = round(CHECKPOINT_FIXED_CYCLES * self.fixed_scale)

        # Step 1 — two-step quiescence.
        self.tracker.request_flush()
        cycles += self.tracker.msrs.outstanding_ops  # drain wait, ~1 cyc/op
        self.tracker.poll_quiescent()

        # Step 2 — bounded bitmap inspection (streamed a cache line at a
        # time; zero words are skipped cheaply).  The run bounds come out
        # of the bitmap columnar; clipping and size accounting stay in
        # numpy until the per-run staging records are built.
        active_low = self._active_low(active_low_hint)
        words = self.bitmap.words_touched(active_low)
        cycles += (
            -(-words // WORDS_PER_BITMAP_LINE) * INSPECT_CYCLES_PER_LINE
        )
        starts, ends = self.bitmap.dirty_run_bounds(active_low)
        if final_sp is not None and final_sp > self.bitmap.region.start:
            # SP awareness: clip every run to the live region [final_sp,
            # top).  Bits below final_sp belong to dead frames; the walk
            # still clears them (at commit) so they cannot leak into a
            # later checkpoint.
            live = ends > final_sp
            starts = np.maximum(starts[live], final_sp)
            ends = ends[live]

        # Step 3 — copy dirty runs into the NVM staging buffer.  The
        # staging descriptor (run count) lands first; each run is then
        # copied with its CRC.  The copies are pipelined: one fixed device
        # latency for the batch, plus bandwidth-limited streaming of the
        # bytes and a small software setup cost per run.
        oracle = self._oracle()
        if (
            oracle is not None
            and self.staged is not None
            and self.staged.committed
        ):
            # Reusing the staging buffer overwrites the replay source of
            # the previous checkpoint, so the OS flushes its still-pending
            # commit marker first.  Zero cycles here: bulk staged traffic
            # never sits in the demand write buffer.
            oracle.barrier()
        self._reached(STAGE_BEGIN)
        num_runs = len(starts)
        staged = StagedCheckpoint(
            interval_index, expected_runs=num_runs, active_low=active_low
        )
        self.staged = staged
        if oracle is not None:
            oracle.record(
                f"{self.label_prefix}[{interval_index}].descriptor",
                undo=self._lose_descriptor(staged),
                size=8,
            )
        cycles += num_runs * PER_RUN_SETUP_CYCLES
        copied = int((ends - starts).sum())
        reader = self.content_reader
        starts_list = starts.tolist()
        ends_list = ends.tolist()
        for index in range(num_runs):
            self._reached(stage_run_copy(index))
            run = DirtyRun(starts_list[index], ends_list[index])
            payload = tuple(reader(run)) if reader else ()
            staged_run = StagedRun(run, staged_run_crc(run, payload), payload)
            staged.staged_runs.append(staged_run)
            if oracle is not None:
                oracle.record(
                    f"{self.label_prefix}[{interval_index}].stage_run[{index}]",
                    undo=self._lose_staged_run(staged, staged_run),
                    tear=self._tear_staged_run(staged_run),
                    size=run.size,
                )
        retries = 0
        if copied:
            copy = self.hierarchy.reliable_copy_dram_to_nvm(
                copied, self.fixed_scale
            )
            cycles += copy.cycles
            retries = copy.retries
            if copy.torn and staged.staged_runs:
                # The write in flight when the media tore was the last one;
                # corrupt its staged record so only the CRC can tell.
                self._tear(staged.staged_runs[-1])
        self._reached(STAGE_COMPLETE)
        return StageResult(cycles, copied, num_runs, words, retries)

    # Undo/tear callbacks handed to the persist-order oracle.  Factory
    # methods (not lambdas in the staging loop) so each closure binds its
    # own run.
    @staticmethod
    def _lose_descriptor(staged: StagedCheckpoint):
        def undo() -> None:
            staged.descriptor_lost = True

        return undo

    @staticmethod
    def _lose_staged_run(staged: StagedCheckpoint, staged_run: StagedRun):
        def undo() -> None:
            staged.staged_runs = [
                s for s in staged.staged_runs if s is not staged_run
            ]

        return undo

    @classmethod
    def _tear_staged_run(cls, staged_run: StagedRun):
        def tear() -> None:
            cls._tear(staged_run)

        return tear

    @staticmethod
    def _tear(staged_run: StagedRun) -> None:
        """Silently corrupt a staged run, as a torn NVM write would."""
        if staged_run.payload:
            address, value = staged_run.payload[-1]
            staged_run.payload = staged_run.payload[:-1] + (
                (address, value ^ (TORN_CRC_MASK << 16 | TORN_CRC_MASK)),
            )
        else:
            staged_run.crc ^= TORN_CRC_MASK

    # ------------------------------------------------------------------ #
    # Step two: commit the staged buffer onto the persistent stack
    # ------------------------------------------------------------------ #

    def commit_staged(self) -> int:
        """Apply the current staging buffer (no-op when already committed)."""
        if self.staged is None or self.staged.committed:
            return 0
        return self._commit(self.staged)

    def _commit(self, staged: StagedCheckpoint) -> int:
        """Apply the staged runs to the per-thread persistent stack in NVM.

        Persist-order discipline: the barrier retires the staged runs (and
        descriptor) to guaranteed-durable *before* the commit marker is
        issued, so the marker can never outlive the data it vouches for.
        The marker itself stays pending until the next barrier — losing it
        is always safe, because recovery replays the (durable) staging
        buffer and lands on the same checkpoint.
        """
        total = sum(run.size for run in staged.runs)
        cycles = 0
        if total:
            copy = self.hierarchy.reliable_copy_nvm_to_nvm(
                total, self.fixed_scale
            )
            cycles += copy.cycles
        self._reached(PERSIST_BARRIER)
        cycles += self.hierarchy.persist_barrier()
        if self.content_writer is not None:
            for staged_run in staged.staged_runs:
                self.content_writer(staged_run)
        previous = self.last_committed_interval
        staged.committed = True
        self.last_committed_interval = staged.interval_index
        oracle = self._oracle()
        if oracle is not None:
            def undo_marker() -> None:
                staged.committed = False
                self.last_committed_interval = previous

            oracle.record(
                f"{self.label_prefix}[{staged.interval_index}].commit",
                undo=undo_marker,
                size=8,
            )
        return cycles

    def finish_interval(self) -> int:
        """Clear consumed bitmap words and start the next interval."""
        self._reached(BITMAP_CLEAR)
        active_low = self.staged.active_low if self.staged is not None else None
        cleared = self.bitmap.clear(active_low)
        self.tracker.begin_interval()
        return cleared * CLEAR_CYCLES_PER_WORD

    # ------------------------------------------------------------------ #
    # Composite checkpoint (stage + commit + clear)
    # ------------------------------------------------------------------ #

    def checkpoint(
        self,
        interval_index: int,
        active_low_hint: int | None = None,
        final_sp: int | None = None,
        crash_after_stage: bool = False,
    ) -> CheckpointResult:
        """Run one end-of-interval checkpoint; returns size/time accounting.

        Setting *crash_after_stage* simulates a power failure between
        staging and commit, leaving :attr:`staged` for the recovery path.
        (It is the legacy single-crash-point shim; arbitrary crash points
        are injected via a :class:`FaultInjector`.)
        """
        stage = self.stage(interval_index, active_low_hint, final_sp)
        cycles = stage.cycles

        if crash_after_stage:
            result = CheckpointResult(
                interval_index,
                stage.copied_bytes,
                stage.runs,
                stage.words_inspected,
                cycles,
                committed=False,
                retries=stage.retries,
            )
            self.results.append(result)
            return result

        # Step 4 — apply staging buffer onto the persistent stack and commit.
        cycles += self._commit(self.staged)

        # Step 5 — clear consumed bitmap words.
        cycles += self.finish_interval()

        result = CheckpointResult(
            interval_index,
            stage.copied_bytes,
            stage.runs,
            stage.words_inspected,
            cycles,
            retries=stage.retries,
        )
        self.results.append(result)
        return result

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover_staged(self) -> int | None:
        """Complete an interrupted commit from the staging buffer.

        Rolls forward only when the staging buffer is complete and every
        staged run passes its checksum — a partial or torn staging is
        discarded (the previous committed checkpoint wins).  Returns the
        interval index recovered to, or None when nothing was ever
        committed.
        """
        if self.staged is None or self.staged.committed:
            return self.last_committed_interval
        valid = (
            self.staged.complete
            if self.unsafe_trust_completeness
            else self.staged.verify()
        )
        if not valid:
            self.discard_staged()
            return self.last_committed_interval
        self._commit(self.staged)
        return self.last_committed_interval

    def discard_staged(self) -> None:
        """Drop an incomplete or corrupt staging buffer."""
        self.staged = None

    def _active_low(self, hint: int | None) -> int | None:
        tracker_low = self.tracker.min_dirty_address
        candidates = [c for c in (hint, tracker_low) if c is not None]
        if not candidates:
            # Nothing dirtied and no hint: inspect nothing below the top.
            return self.bitmap.region.end
        # The OS must inspect everything from the lowest known dirty/active
        # address upward; taking the min is conservative and correct.
        return max(self.bitmap.region.start, min(candidates))
