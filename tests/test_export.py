"""Tests for CSV result export."""

import csv
from dataclasses import dataclass

import pytest

from repro.analysis.export import export_experiment, rows_to_dicts, write_csv


@dataclass(frozen=True)
class _Row:
    workload: str
    value: float
    series: tuple


ROWS = [_Row("a", 1.5, (1, 2)), _Row("b", 2.0, (3,))]


class TestConversion:
    def test_dataclass_rows(self):
        dicts = rows_to_dicts(ROWS)
        assert dicts[0]["workload"] == "a"
        assert dicts[1]["value"] == 2.0

    def test_dict_rows_pass_through(self):
        assert rows_to_dicts([{"x": 1}]) == [{"x": 1}]

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            rows_to_dicts([42])


class TestWriting:
    def test_writes_readable_csv(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out")
        assert path.suffix == ".csv"
        with open(path) as handle:
            records = list(csv.DictReader(handle))
        assert records[0]["workload"] == "a"
        assert records[0]["series"] == "1;2"
        assert float(records[1]["value"]) == 2.0

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")

    def test_export_experiment_layout(self, tmp_path):
        path = export_experiment("fig_x", ROWS, out_dir=tmp_path / "results")
        assert path == tmp_path / "results" / "fig_x.csv"
        assert path.exists()

    def test_real_experiment_rows_export(self, tmp_path):
        from repro.experiments import motivation

        rows = motivation.fig1_stack_fraction(target_ops=5_000)
        path = export_experiment("fig1", rows, out_dir=tmp_path)
        with open(path) as handle:
            records = list(csv.DictReader(handle))
        assert {r["workload"] for r in records} == {
            "gapbs_pr", "g500_sssp", "ycsb_mem"
        }
