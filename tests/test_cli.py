"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_default_ops(self):
        args = build_parser().parse_args(["fig1"])
        assert args.ops == 60_000

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_engine_flag(self):
        assert build_parser().parse_args(["fig1"]).engine is None
        args = build_parser().parse_args(["fig1", "--engine", "scalar"])
        assert args.engine == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--engine", "turbo"])


class TestExecution:
    def test_engine_flag_sets_env(self, monkeypatch, capsys):
        import os

        monkeypatch.setenv("REPRO_ENGINE", "")
        assert main(["fig1", "--ops", "8000", "--engine", "scalar"]) == 0
        assert os.environ["REPRO_ENGINE"] == "scalar"

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "energy" in out

    def test_fig1_prints_table(self, capsys):
        assert main(["fig1", "--ops", "10000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "gapbs_pr" in out

    def test_out_directory_written(self, tmp_path, capsys):
        assert main(["fig2", "--ops", "10000", "--out", str(tmp_path)]) == 0
        written = tmp_path / "fig2.txt"
        assert written.exists()
        assert "Figure 2" in written.read_text()

    def test_energy_runs(self, capsys):
        assert main(["energy", "--ops", "10000"]) == 0
        assert "CACTI" in capsys.readouterr().out


class TestCsvExport:
    def test_csv_written_for_tabular_figure(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fig1", "--ops", "8000", "--csv", str(tmp_path)]) == 0
        csv_path = tmp_path / "fig1.csv"
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "stack_fraction" in header

    def test_csv_skipped_for_non_tabular(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["energy", "--ops", "8000", "--csv", str(tmp_path)]) == 0
        assert not (tmp_path / "energy.csv").exists()
