"""Tests for the multi-core simulation."""

import numpy as np
import pytest

from repro.cpu.ops import Op, OpKind
from repro.kernel.multicore import MultiCoreSimulation


def thread_trace(thread, writes=400, seed=0):
    rng = np.random.default_rng(seed)
    frame = thread.stack.size // 2
    ops = [Op(OpKind.CALL, size=frame)]
    base = thread.stack.end - frame
    for off in (rng.integers(0, frame // 8, size=writes) * 8):
        ops.append(Op(OpKind.WRITE, base + int(off), 8))
    return ops


def build_sim(num_threads=4, num_cores=2, writes=400, **kwargs):
    sim = MultiCoreSimulation(
        [[Op(OpKind.COMPUTE, size=1)] for _ in range(num_threads)],
        num_cores=num_cores,
        **kwargs,
    )
    for core in sim.cores:
        for slot, (thread, _, _) in enumerate(core.queue):
            core.queue[slot] = (thread, thread_trace(thread, writes, thread.tid), 0)
    return sim


class TestConstruction:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MultiCoreSimulation([[Op(OpKind.COMPUTE, size=1)]], num_cores=0)

    def test_threads_distributed_round_robin(self):
        sim = build_sim(num_threads=5, num_cores=2)
        assert len(sim.cores[0].queue) == 3
        assert len(sim.cores[1].queue) == 2

    def test_per_core_trackers_distinct(self):
        sim = build_sim()
        assert sim.cores[0].tracker is not sim.cores[1].tracker


class TestExecution:
    def test_all_ops_run(self):
        sim = build_sim(num_threads=4, num_cores=2, writes=300, quantum_ops=100)
        stats = sim.run()
        assert stats.ops_executed == 4 * 301
        assert stats.checkpoints >= 1

    def test_parallelism_beats_single_core(self):
        two = build_sim(num_threads=4, num_cores=2, writes=400, quantum_ops=100)
        two_stats = two.run()
        one = build_sim(num_threads=4, num_cores=1, writes=400, quantum_ops=100)
        one_stats = one.run()
        assert two_stats.wall_cycles < one_stats.wall_cycles
        assert two_stats.ops_executed == one_stats.ops_executed

    def test_utilization_bounded(self):
        sim = build_sim(num_threads=4, num_cores=2, writes=300)
        stats = sim.run()
        assert 0.0 < stats.utilization <= 2.0 + 1e-9  # <= num_cores

    def test_every_thread_checkpointed(self):
        sim = build_sim(num_threads=4, num_cores=2, writes=300, quantum_ops=64)
        sim.run()
        last = sim.manager.last_committed
        assert last is not None
        assert {s.tid for s in last.threads} == set(sim.process.threads)


class TestCrashRecovery:
    def test_recovery_across_cores(self):
        sim = build_sim(num_threads=4, num_cores=2, writes=300, quantum_ops=64)
        sim.run()
        expected = {
            t.tid: t.registers.op_index for t in sim.process.iter_threads()
        }
        sim.crash()
        report = sim.recover()
        assert report.recovered
        for tid, op_index in expected.items():
            assert sim.process.thread(tid).registers.op_index == op_index
